//! Per-tenant energy accounting: exact integer quotas, chunk-granular
//! enforcement, and the `name:quota[:policy]` CLI grammar.
//!
//! A tenant's ledger is the integer sum of the `quanta_total` fields of
//! every chunk record across all of its jobs — rebuilt exactly on restart
//! by re-reading the journals, because [`EnergyQuanta`] addition is
//! associative and lossless. There is no float drift to accumulate and no
//! separate ledger file to keep consistent: the journals *are* the ledger.

use crate::spec::OverBudget;
use enerj_hw::quanta::EnergyQuanta;

/// A tenant's configured quota and over-budget policy.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name (`[a-zA-Z0-9._-]{1,64}`).
    pub name: String,
    /// Lifetime energy quota in exact scaled quanta; `None` = unlimited.
    pub quota: Option<EnergyQuanta>,
    /// What happens to a running job when the tenant crosses its quota.
    pub over_budget: OverBudget,
}

impl TenantConfig {
    /// An unlimited tenant (the default for names never configured).
    pub fn unlimited(name: &str) -> TenantConfig {
        TenantConfig { name: name.to_owned(), quota: None, over_budget: OverBudget::Stop }
    }

    /// Parses the `campaignd --tenant` grammar: `name:quota[:policy]`,
    /// where `quota` is a non-negative integer or `unlimited` and
    /// `policy` is `stop` (default) or `degrade`.
    pub fn parse(arg: &str) -> Result<TenantConfig, String> {
        let mut parts = arg.splitn(3, ':');
        let name = parts.next().unwrap_or_default();
        if name.is_empty() {
            return Err(format!("--tenant `{arg}`: empty tenant name"));
        }
        let quota = match parts.next() {
            None => return Err(format!("--tenant `{arg}`: expected name:quota[:policy]")),
            Some("unlimited") => None,
            Some(q) => Some(EnergyQuanta::new(q.parse::<u128>().map_err(|_| {
                format!("--tenant `{arg}`: quota must be a non-negative integer or `unlimited`")
            })?)),
        };
        let over_budget = match parts.next() {
            None => OverBudget::Stop,
            Some(p) => OverBudget::parse(p).map_err(|e| format!("--tenant `{arg}`: {e}"))?,
        };
        Ok(TenantConfig { name: name.to_owned(), quota, over_budget })
    }
}

/// A tenant's live accounting state.
#[derive(Debug, Clone)]
pub struct TenantState {
    /// Configuration (quota + policy).
    pub config: TenantConfig,
    /// Exact energy committed so far across all of this tenant's jobs.
    pub spent: EnergyQuanta,
    /// Jobs this tenant currently has queued or running (admission uses
    /// this for the per-tenant cap).
    pub active_jobs: usize,
}

impl TenantState {
    /// Fresh state for `config` with nothing spent.
    pub fn new(config: TenantConfig) -> TenantState {
        TenantState { config, spent: EnergyQuanta::ZERO, active_jobs: 0 }
    }

    /// Whether the ledger has crossed the quota.
    pub fn over_quota(&self) -> bool {
        matches!(self.config.quota, Some(q) if self.spent > q)
    }

    /// Whether admitting new work is pointless because the quota is
    /// already spent (admission-time check; enforcement during a run is
    /// chunk-granular and lives in the commit path).
    pub fn exhausted(&self) -> bool {
        matches!(self.config.quota, Some(q) if self.spent >= q)
    }

    /// Quanta still available under the quota (`None` = unlimited).
    pub fn remaining(&self) -> Option<EnergyQuanta> {
        self.config.quota.map(|q| q.saturating_sub(self.spent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tenant_grammar() {
        let t = TenantConfig::parse("acme:123456").expect("valid");
        assert_eq!(t.name, "acme");
        assert_eq!(t.quota, Some(EnergyQuanta::new(123456)));
        assert_eq!(t.over_budget, OverBudget::Stop);
        let t = TenantConfig::parse("lab:unlimited:degrade").expect("valid");
        assert!(t.quota.is_none());
        assert_eq!(t.over_budget, OverBudget::Degrade);
        let t = TenantConfig::parse("x:9:degrade").expect("valid");
        assert_eq!(t.over_budget, OverBudget::Degrade);
        for bad in [":", "noquota", "a:xyz", "a:1:retry", ":5"] {
            assert!(TenantConfig::parse(bad).is_err(), "`{bad}` must be rejected");
        }
    }

    #[test]
    fn quota_accounting_is_exact() {
        let mut s = TenantState::new(TenantConfig::parse("t:100").expect("valid"));
        assert!(!s.exhausted());
        s.spent += EnergyQuanta::new(100);
        assert!(s.exhausted(), "spent == quota leaves nothing to admit");
        assert!(!s.over_quota(), "spent == quota is not yet *over*");
        assert_eq!(s.remaining(), Some(EnergyQuanta::ZERO));
        s.spent += EnergyQuanta::new(1);
        assert!(s.over_quota());
        let unlimited = TenantState::new(TenantConfig::unlimited("u"));
        assert!(!unlimited.exhausted());
        assert_eq!(unlimited.remaining(), None);
    }
}
