//! The campaign server: bounded job queue, supervised worker pool,
//! lease-based chunk reclamation, exact tenant budgets, durable commits.
//!
//! # Execution model
//!
//! Every accepted job is split into fixed-size *chunks* of consecutive
//! trial indices (`spec.chunk` trials each). A chunk is the unit of
//! everything robust in this service: the unit of work a pool worker
//! claims, the unit of lease-based reclamation when a worker dies or
//! stalls, the unit of durable commit in the job's journal, and the
//! granularity at which budgets and deadlines are enforced. Workers claim
//! chunks in index order within a bounded in-flight window, execute them
//! through [`run_campaign_streamed`] (each trial a pure function of its
//! spec), and hand the rendered NDJSON payload back for *in-order* commit:
//! chunk `c` reaches the journal only after `c-1`, so `output.ndjson` is
//! always a clean prefix of the uninterrupted campaign.
//!
//! # Why `kill -9` is survivable at any instant
//!
//! All mutable service state is derivable from the journals (see
//! [`journal`](crate::journal)): the committed output prefix, the exact
//! integer energy ledgers (per job and per tenant — integer addition is
//! associative, so re-summing on restart reproduces them exactly), the
//! error-sum fold (chunk sums folded in chunk order, journaled as IEEE-754
//! bits), and the degrade rung (journaled as `degrade_after` on every
//! chunk). Recovery re-registers every unfinished job with its committed
//! prefix intact and re-runs only uncommitted chunks; determinism of the
//! trial functions makes the re-run byte-identical to the run that died.
//!
//! # Leases and stale results
//!
//! A claim holds a wall-clock lease and a generation number. If the lease
//! expires (worker dead, or stalled beyond the per-trial op-budget
//! watchdog's reach), the chunk returns to `Pending` and its generation is
//! bumped, so the original worker's late result — should the worker come
//! back — fails the generation check at commit and is discarded. The same
//! generation mechanism discards results computed under a stale degrade
//! rung after an over-budget degradation.

use std::collections::{BTreeMap, HashMap};
use std::fs;
use std::io::{self, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::http;
use crate::journal::{self, fnv1a, ChunkRecord, Journal};
use crate::spec::{JobSpec, OverBudget};
use crate::tenant::{TenantConfig, TenantState};
use enerj_apps::scheduler::SchedLevel;
use enerj_apps::trials::{
    run_campaign_streamed, trial_json, CampaignOptions, SpecFn, TrialResult, TrialSink,
};
use enerj_hw::quanta::EnergyQuanta;

/// Everything `campaignd` configures.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// State directory; jobs live under `<state_dir>/jobs/<id>/`.
    pub state_dir: PathBuf,
    /// Worker pool size.
    pub workers: usize,
    /// Admission cap on queued + running jobs (queue-full beyond it).
    pub queue_cap: usize,
    /// Admission cap on one tenant's queued + running jobs.
    pub max_jobs_per_tenant: usize,
    /// Chunk lease: a claim not committed within this window is reclaimed.
    pub lease: Duration,
    /// Per-connection socket read timeout.
    pub read_timeout: Duration,
    /// Per-connection socket write timeout (bounds slow readers).
    pub write_timeout: Duration,
    /// Configured tenants; unknown tenants run unlimited.
    pub tenants: Vec<TenantConfig>,
    /// Test hook: stall the `n`th claim for `ms` milliseconds *after*
    /// claiming (drives the lease-reclaim path in tests).
    pub test_stall_claim: Option<(u64, u64)>,
    /// Test hook: kill (panic) the worker making the `n`th claim.
    pub test_panic_claim: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            state_dir: PathBuf::from("results/serve"),
            workers: 2,
            queue_cap: 16,
            max_jobs_per_tenant: 8,
            lease: Duration::from_secs(30),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            tenants: Vec::new(),
            test_stall_claim: None,
            test_panic_claim: None,
        }
    }
}

/// Lifecycle of one chunk.
enum ChunkState {
    /// Not yet claimed (or reclaimed after a lease expiry).
    Pending,
    /// Claimed by a worker holding generation `gen` until `expires`.
    Leased { gen: u64, expires: Instant },
    /// Computed, parked until every earlier chunk has committed.
    Parked(ChunkPayload),
    /// Durably in the journal.
    Committed,
}

/// A computed chunk awaiting in-order commit.
struct ChunkPayload {
    /// Rendered NDJSON lines (`wall` zeroed, indices global).
    bytes: Vec<u8>,
    /// Exact scaled energy of the chunk's trials.
    quanta_total: EnergyQuanta,
    /// Exact precise-baseline energy.
    quanta_baseline: EnergyQuanta,
    /// Trial-order error sum within the chunk.
    error_sum: f64,
    /// Panicked trials.
    panics: usize,
    /// The degrade rung the chunk was computed under; a mismatch with the
    /// job's rung at commit time means the work is stale and re-runs.
    degrade_used: u32,
}

/// One job's live state.
struct Job {
    spec: JobSpec,
    journal: Journal,
    states: Vec<ChunkState>,
    /// Per-chunk claim generations (bumped on every lease and reclaim).
    gens: Vec<u64>,
    /// Lowest uncommitted chunk; `output.ndjson` holds exactly the chunks
    /// below it.
    next_commit: usize,
    committed_bytes: u64,
    /// Current over-budget degrade rung (0 = as requested).
    degrade: u32,
    /// Error sum folded per chunk in chunk order (restart-exact).
    error_sum: f64,
    panics: usize,
    quanta_total: EnergyQuanta,
    quanta_baseline: EnergyQuanta,
    /// Terminal verdict; `None` while queued or running.
    verdict: Option<String>,
    /// Wall-clock deadline, measured from registration (a resumed job's
    /// clock restarts — the deadline bounds *this* server's effort).
    deadline_at: Option<Instant>,
}

impl Job {
    /// Trials durably committed (always a prefix `0..n`).
    fn trials_committed(&self) -> usize {
        if self.next_commit == 0 {
            0
        } else {
            self.spec.chunk_range(self.next_commit - 1).1
        }
    }

    fn mean_error(&self) -> f64 {
        let n = self.trials_committed();
        if n == 0 {
            0.0
        } else {
            self.error_sum / n as f64
        }
    }
}

/// Shared mutable service state (one lock: jobs are few and chunk commits
/// are coarse, so contention is negligible next to trial compute).
struct State {
    jobs: BTreeMap<String, Job>,
    tenants: HashMap<String, TenantState>,
    next_job_seq: u64,
    /// Round-robin cursor over jobs, for cross-tenant claim fairness.
    rr: usize,
    draining: bool,
    /// Global claim counter (drives the chaos test hooks).
    claims: u64,
}

/// A worker's claim on one chunk.
struct Claim {
    job_id: String,
    chunk: usize,
    gen: u64,
    lo: usize,
    hi: usize,
    degrade: u32,
    spec: JobSpec,
    stall_ms: Option<u64>,
    panic_now: bool,
}

/// The running service.
pub struct Server {
    cfg: ServerConfig,
    state: Mutex<State>,
    work: Condvar,
}

impl Server {
    /// Recovers durable state, binds the listener, starts the pool and the
    /// supervisor, and serves until a drain completes. Prints
    /// `campaignd listening on <addr>` (and writes `<state_dir>/campaignd.addr`)
    /// once ready, so harnesses can bind port 0 and discover the port.
    pub fn run(cfg: ServerConfig) -> io::Result<()> {
        fs::create_dir_all(cfg.state_dir.join("jobs"))?;
        let state = recover_state(&cfg)?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        fs::write(cfg.state_dir.join("campaignd.addr"), format!("{local}\n"))?;
        let server = Arc::new(Server { cfg, state: Mutex::new(state), work: Condvar::new() });
        println!("campaignd listening on {local}");
        io::stdout().flush()?;

        let mut workers = Vec::new();
        for w in 0..server.cfg.workers.max(1) {
            let srv = Arc::clone(&server);
            let handle = std::thread::Builder::new()
                .name(format!("campaignd-worker-{w}"))
                .spawn(move || srv.worker_loop())
                .expect("spawn worker");
            workers.push(handle);
        }
        let supervisor = {
            let srv = Arc::clone(&server);
            std::thread::Builder::new()
                .name("campaignd-supervisor".to_owned())
                .spawn(move || srv.supervisor_loop())
                .expect("spawn supervisor")
        };

        listener.set_nonblocking(true)?;
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let srv = Arc::clone(&server);
                    std::thread::spawn(move || srv.handle_conn(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                    if server.lock().draining && workers.iter().all(|h| h.is_finished()) {
                        break;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        for h in workers {
            let _ = h.join();
        }
        let _ = supervisor.join();
        Ok(())
    }

    /// Locks the state, surviving poison: a test-hook worker panic must
    /// not take the whole service down with it.
    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ------------------------------------------------------------------
    // Worker pool
    // ------------------------------------------------------------------

    fn worker_loop(&self) {
        loop {
            let claim = {
                let mut st = self.lock();
                loop {
                    let now = Instant::now();
                    self.reclaim_and_deadlines(&mut st, now);
                    if st.draining {
                        break None;
                    }
                    if let Some(c) = self.claim_next(&mut st, now) {
                        break Some(c);
                    }
                    let tick = (self.cfg.lease / 4).max(Duration::from_millis(10));
                    st = self.work.wait_timeout(st, tick).unwrap_or_else(|e| e.into_inner()).0;
                }
            };
            let Some(claim) = claim else { return };
            if claim.panic_now {
                panic!("test hook: worker killed at claim {}", claim.chunk);
            }
            if let Some(ms) = claim.stall_ms {
                // Test hook: the worker goes dark mid-chunk. Its lease
                // expires, the chunk re-runs elsewhere, and the result
                // computed here is discarded by the generation check.
                std::thread::sleep(Duration::from_millis(ms));
            }
            let payload = run_chunk(&claim);
            self.commit(claim, payload);
        }
    }

    /// Ticks even when every worker is wedged in compute: reclaims expired
    /// leases and fires job deadlines so a stalled pool cannot stall the
    /// clock-driven transitions too.
    fn supervisor_loop(&self) {
        loop {
            std::thread::sleep((self.cfg.lease / 4).max(Duration::from_millis(10)));
            let mut st = self.lock();
            let draining = st.draining;
            self.reclaim_and_deadlines(&mut st, Instant::now());
            drop(st);
            self.work.notify_all();
            if draining {
                return;
            }
        }
    }

    /// Returns expired leases to `Pending` (bumping generations so late
    /// results are discarded) and finalizes jobs past their deadline.
    fn reclaim_and_deadlines(&self, st: &mut State, now: Instant) {
        let State { jobs, tenants, .. } = &mut *st;
        for job in jobs.values_mut() {
            if job.verdict.is_some() {
                continue;
            }
            if job.deadline_at.is_some_and(|d| now >= d) {
                finalize(job, tenants, "deadline_exceeded");
                continue;
            }
            for (c, s) in job.states.iter_mut().enumerate() {
                if let ChunkState::Leased { expires, .. } = s {
                    if now >= *expires {
                        job.gens[c] += 1;
                        *s = ChunkState::Pending;
                    }
                }
            }
        }
    }

    /// Claims the next runnable chunk: round-robin across jobs for
    /// fairness, lowest pending chunk first, within the in-flight window
    /// that bounds parked-payload memory per job.
    fn claim_next(&self, st: &mut State, now: Instant) -> Option<Claim> {
        let keys: Vec<String> = st.jobs.keys().cloned().collect();
        if keys.is_empty() {
            return None;
        }
        let window = (self.cfg.workers * 2).max(2);
        let n = keys.len();
        for off in 0..n {
            let idx = (st.rr + off) % n;
            let job = st.jobs.get_mut(&keys[idx]).expect("key snapshot");
            if job.verdict.is_some() {
                continue;
            }
            let end = (job.next_commit + window).min(job.spec.total_chunks());
            for c in job.next_commit..end {
                if matches!(job.states[c], ChunkState::Pending) {
                    job.gens[c] += 1;
                    let gen = job.gens[c];
                    job.states[c] = ChunkState::Leased { gen, expires: now + self.cfg.lease };
                    let (lo, hi) = job.spec.chunk_range(c);
                    let claim = Claim {
                        job_id: keys[idx].clone(),
                        chunk: c,
                        gen,
                        lo,
                        hi,
                        degrade: job.degrade,
                        spec: job.spec.clone(),
                        stall_ms: None,
                        panic_now: false,
                    };
                    st.rr = (idx + 1) % n;
                    st.claims += 1;
                    let claims = st.claims;
                    let mut claim = claim;
                    claim.stall_ms = self
                        .cfg
                        .test_stall_claim
                        .filter(|&(nth, _)| nth == claims)
                        .map(|(_, ms)| ms);
                    claim.panic_now = self.cfg.test_panic_claim == Some(claims);
                    return Some(claim);
                }
            }
        }
        None
    }

    /// Parks a computed chunk (if its claim is still current) and drains
    /// every in-order commit that is now possible.
    fn commit(&self, claim: Claim, payload: ChunkPayload) {
        let mut st = self.lock();
        let State { jobs, tenants, .. } = &mut *st;
        let Some(job) = jobs.get_mut(&claim.job_id) else { return };
        if job.verdict.is_none() {
            match job.states[claim.chunk] {
                ChunkState::Leased { gen, .. } if gen == claim.gen => {
                    job.states[claim.chunk] = ChunkState::Parked(payload);
                }
                // Stale: the lease was reclaimed (or the rung moved) and
                // someone else owns this chunk now. Discard silently —
                // determinism is preserved because only committed bytes
                // are observable.
                _ => return,
            }
            drain_commits(&self.cfg, job, tenants);
        }
        drop(st);
        self.work.notify_all();
    }

    // ------------------------------------------------------------------
    // HTTP surface
    // ------------------------------------------------------------------

    fn handle_conn(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let req = match http::read_request(&mut stream) {
            Ok(Some(r)) => r,
            Ok(None) => return,
            Err(_) => {
                let body = http::error_body("bad_request", "malformed request", false, None);
                let _ = http::write_json(&mut stream, 400, &body);
                return;
            }
        };
        let _ = self.route(req, &mut stream);
    }

    fn route(&self, req: http::Request, stream: &mut TcpStream) -> io::Result<()> {
        let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => {
                let st = self.lock();
                let active = st.jobs.values().filter(|j| j.verdict.is_none()).count();
                let body = format!(
                    "{{\"ok\":true,\"jobs_active\":{active},\"draining\":{}}}",
                    st.draining
                );
                drop(st);
                http::write_json(stream, 200, &body)
            }
            ("POST", ["jobs"]) => {
                let body = String::from_utf8_lossy(&req.body).into_owned();
                match self.admit(&body) {
                    Ok((id, trials)) => http::write_json(
                        stream,
                        200,
                        &format!(
                            "{{\"job_id\":{},\"accepted\":true,\"trials\":{trials}}}",
                            http::json_escape(&id)
                        ),
                    ),
                    Err((status, body)) => http::write_json(stream, status, &body),
                }
            }
            ("GET", ["jobs", id]) => match self.job_status_json(id) {
                Some(body) => http::write_json(stream, 200, &body),
                None => self.not_found(stream),
            },
            ("GET", ["jobs", id, "summary"]) => match self.job_summary_json(id) {
                Some(Ok(body)) => http::write_json(stream, 200, &body),
                Some(Err(body)) => http::write_json(stream, 409, &body),
                None => self.not_found(stream),
            },
            ("GET", ["jobs", id, "stream"]) => {
                let from_line =
                    req.query("from_line").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
                self.stream_job(stream, id, from_line)
            }
            ("GET", ["tenants", name]) => {
                let st = self.lock();
                let body = match st.tenants.get(*name) {
                    Some(t) => tenant_json(t),
                    None => {
                        // Never-seen tenants report their would-be config.
                        let cfg = self
                            .cfg
                            .tenants
                            .iter()
                            .find(|t| t.name == *name)
                            .cloned()
                            .unwrap_or_else(|| TenantConfig::unlimited(name));
                        tenant_json(&TenantState::new(cfg))
                    }
                };
                drop(st);
                http::write_json(stream, 200, &body)
            }
            ("POST", ["shutdown"]) => {
                let mut st = self.lock();
                st.draining = true;
                drop(st);
                self.work.notify_all();
                http::write_json(stream, 200, "{\"draining\":true}")
            }
            _ => self.not_found(stream),
        }
    }

    fn not_found(&self, stream: &mut TcpStream) -> io::Result<()> {
        let body = http::error_body("not_found", "no such resource", false, None);
        http::write_json(stream, 404, &body)
    }

    /// Admission control: explicit, typed rejections with retriability and
    /// backoff hints so clients never have to guess.
    fn admit(&self, body: &str) -> Result<(String, usize), (u16, String)> {
        let spec = JobSpec::parse(body)
            .map_err(|e| (400, http::error_body("bad_request", &e, false, None)))?;
        let mut st = self.lock();
        if st.draining {
            return Err((
                503,
                http::error_body("draining", "server is draining", true, Some(1000)),
            ));
        }
        let active = st.jobs.values().filter(|j| j.verdict.is_none()).count();
        if active >= self.cfg.queue_cap {
            return Err((
                429,
                http::error_body(
                    "queue_full",
                    &format!("{active} jobs queued or running (cap {})", self.cfg.queue_cap),
                    true,
                    Some(500),
                ),
            ));
        }
        let State { tenants, .. } = &mut *st;
        let ts = tenant_entry(tenants, &self.cfg.tenants, &spec.tenant);
        if ts.exhausted() {
            return Err((
                403,
                http::error_body(
                    "over_quota",
                    &format!(
                        "tenant `{}` has spent {} of {} quanta",
                        spec.tenant,
                        ts.spent,
                        ts.config.quota.unwrap_or(EnergyQuanta::ZERO)
                    ),
                    false,
                    None,
                ),
            ));
        }
        if ts.active_jobs >= self.cfg.max_jobs_per_tenant {
            return Err((
                429,
                http::error_body(
                    "tenant_busy",
                    &format!(
                        "tenant `{}` already has {} active jobs (cap {})",
                        spec.tenant, ts.active_jobs, self.cfg.max_jobs_per_tenant
                    ),
                    true,
                    Some(500),
                ),
            ));
        }
        ts.active_jobs += 1;
        let id = format!("j{:06}", st.next_job_seq);
        st.next_job_seq += 1;
        let dir = self.cfg.state_dir.join("jobs").join(&id);
        let journal = match Journal::create(&dir, &spec.to_json()) {
            Ok(j) => j,
            Err(e) => {
                let State { tenants, .. } = &mut *st;
                tenant_entry(tenants, &self.cfg.tenants, &spec.tenant).active_jobs -= 1;
                return Err((
                    500,
                    http::error_body(
                        "internal",
                        &format!("cannot create job dir: {e}"),
                        true,
                        Some(1000),
                    ),
                ));
            }
        };
        let trials = spec.total_trials();
        let total_chunks = spec.total_chunks();
        let deadline_at = spec.deadline_secs.map(|s| Instant::now() + Duration::from_secs_f64(s));
        let job = Job {
            spec,
            journal,
            states: (0..total_chunks).map(|_| ChunkState::Pending).collect(),
            gens: vec![0; total_chunks],
            next_commit: 0,
            committed_bytes: 0,
            degrade: 0,
            error_sum: 0.0,
            panics: 0,
            quanta_total: EnergyQuanta::ZERO,
            quanta_baseline: EnergyQuanta::ZERO,
            verdict: None,
            deadline_at,
        };
        st.jobs.insert(id.clone(), job);
        drop(st);
        self.work.notify_all();
        Ok((id, trials))
    }

    fn job_status_json(&self, id: &str) -> Option<String> {
        let st = self.lock();
        let job = st.jobs.get(id)?;
        Some(format!(
            "{{\"job_id\":{},\"tenant\":{},\"state\":{},\"verdict\":{},\
             \"trials_total\":{},\"trials_committed\":{},\"chunks_committed\":{},\
             \"committed_bytes\":{},\"mean_error\":{},\"panics\":{},\
             \"quanta_total\":{},\"quanta_baseline\":{},\"degrade\":{}}}",
            http::json_escape(id),
            http::json_escape(&job.spec.tenant),
            http::json_escape(if job.verdict.is_some() { "done" } else { "running" }),
            match &job.verdict {
                Some(v) => http::json_escape(v),
                None => "null".to_owned(),
            },
            job.spec.total_trials(),
            job.trials_committed(),
            job.next_commit,
            job.committed_bytes,
            finite_json(job.mean_error()),
            job.panics,
            job.quanta_total,
            job.quanta_baseline,
            job.degrade,
        ))
    }

    fn job_summary_json(&self, id: &str) -> Option<Result<String, String>> {
        let st = self.lock();
        let job = st.jobs.get(id)?;
        let Some(verdict) = &job.verdict else {
            return Some(Err(http::error_body(
                "not_done",
                "job is still running",
                true,
                Some(200),
            )));
        };
        Some(Ok(format!(
            "{{\"schema\":\"enerj-serve-summary/1\",\"job_id\":{},\"tenant\":{},\
             \"verdict\":{},\"trials_total\":{},\"trials_done\":{},\"mean_error\":{},\
             \"panics\":{},\"quanta_total\":{},\"quanta_baseline\":{},\"degrade_final\":{}}}",
            http::json_escape(id),
            http::json_escape(&job.spec.tenant),
            http::json_escape(verdict),
            job.spec.total_trials(),
            job.trials_committed(),
            finite_json(job.mean_error()),
            job.panics,
            job.quanta_total,
            job.quanta_baseline,
            job.degrade,
        )))
    }

    /// Streams a job's committed NDJSON to one client. Reads go straight
    /// to the job's output file — never through server buffers — so a slow
    /// reader backpressures only its own socket (bounded by the write
    /// timeout) and holds no lock while blocked. Only journal-committed
    /// bytes are ever sent, which is what makes a re-collected stream
    /// byte-identical across server crashes.
    fn stream_job(&self, stream: &mut TcpStream, id: &str, from_line: u64) -> io::Result<()> {
        let dir = {
            let st = self.lock();
            if !st.jobs.contains_key(id) {
                drop(st);
                return self.not_found(stream);
            }
            self.cfg.state_dir.join("jobs").join(id)
        };
        http::write_stream_head(stream)?;
        let mut offset = 0u64;
        let mut skip = from_line;
        loop {
            let (committed, done) = {
                let st = self.lock();
                match st.jobs.get(id) {
                    Some(j) => (j.committed_bytes, j.verdict.is_some()),
                    None => return Ok(()),
                }
            };
            if offset < committed {
                let len = ((committed - offset) as usize).min(256 * 1024);
                let buf = journal::read_output(&dir, offset, len)?;
                offset += buf.len() as u64;
                let mut start = 0usize;
                while skip > 0 && start < buf.len() {
                    match buf[start..].iter().position(|&b| b == b'\n') {
                        Some(nl) => {
                            start += nl + 1;
                            skip -= 1;
                        }
                        None => start = buf.len(),
                    }
                }
                if start < buf.len() {
                    stream.write_all(&buf[start..])?;
                }
            } else if done {
                return stream.flush();
            } else {
                std::thread::sleep(Duration::from_millis(15));
            }
        }
    }
}

/// Formats an f64 for JSON, clamping non-finite values (mirrors the
/// engine's own `json_f64` policy).
fn finite_json(x: f64) -> String {
    if x.is_nan() {
        "1.0".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 {
            "1e308".to_owned()
        } else {
            "-1e308".to_owned()
        }
    } else {
        format!("{x}")
    }
}

fn tenant_json(t: &TenantState) -> String {
    format!(
        "{{\"tenant\":{},\"quota\":{},\"spent\":{},\"remaining\":{},\
         \"active_jobs\":{},\"over_budget\":{}}}",
        http::json_escape(&t.config.name),
        match t.config.quota {
            Some(q) => q.to_string(),
            None => "null".to_owned(),
        },
        t.spent,
        match t.remaining() {
            Some(r) => r.to_string(),
            None => "null".to_owned(),
        },
        t.active_jobs,
        http::json_escape(t.config.over_budget.as_str()),
    )
}

/// The tenant's live state, created from configuration on first sight.
fn tenant_entry<'a>(
    tenants: &'a mut HashMap<String, TenantState>,
    configured: &[TenantConfig],
    name: &str,
) -> &'a mut TenantState {
    tenants.entry(name.to_owned()).or_insert_with(|| {
        let cfg = configured
            .iter()
            .find(|t| t.name == name)
            .cloned()
            .unwrap_or_else(|| TenantConfig::unlimited(name));
        TenantState::new(cfg)
    })
}

/// Executes one claimed chunk through the streaming engine (serially —
/// parallelism in this service comes from the pool, not from nesting).
/// Trial indices are remapped chunk-local → global and `wall` is zeroed:
/// wall time is the one nondeterministic field of `trial_json`, and the
/// service's contract is byte-determinism.
fn run_chunk(claim: &Claim) -> ChunkPayload {
    struct ChunkSink {
        lo: usize,
        bytes: Vec<u8>,
        quanta_total: EnergyQuanta,
        quanta_baseline: EnergyQuanta,
        error_sum: f64,
        panics: usize,
    }
    impl TrialSink for ChunkSink {
        fn accept(&mut self, mut t: TrialResult) -> io::Result<()> {
            t.index += self.lo;
            t.wall = Duration::ZERO;
            self.error_sum += t.error;
            if t.panicked() {
                self.panics += 1;
            }
            self.quanta_total += t.energy_quanta.total;
            self.quanta_baseline += t.energy_quanta.baseline_total;
            self.bytes.extend_from_slice(trial_json(&t).as_bytes());
            self.bytes.push(b'\n');
            Ok(())
        }
    }
    let len = claim.hi - claim.lo;
    let source = SpecFn::new(len, |i| claim.spec.trial_spec(claim.lo + i, claim.degrade));
    let opts = CampaignOptions {
        threads: 1,
        log_events: false,
        progress: false,
        chunk: len,
        deadline: None,
    };
    let mut sink = ChunkSink {
        lo: claim.lo,
        bytes: Vec::new(),
        quanta_total: EnergyQuanta::ZERO,
        quanta_baseline: EnergyQuanta::ZERO,
        error_sum: 0.0,
        panics: 0,
    };
    run_campaign_streamed(&source, &opts, &mut sink).expect("the in-memory chunk sink cannot fail");
    ChunkPayload {
        bytes: sink.bytes,
        quanta_total: sink.quanta_total,
        quanta_baseline: sink.quanta_baseline,
        error_sum: sink.error_sum,
        panics: sink.panics,
        degrade_used: claim.degrade,
    }
}

/// Commits every chunk that is parked, in order, with the budget check at
/// each commit — the single place quotas are enforced, which is what makes
/// enforcement chunk-granular and deterministic.
fn drain_commits(cfg: &ServerConfig, job: &mut Job, tenants: &mut HashMap<String, TenantState>) {
    while job.verdict.is_none() {
        let c = job.next_commit;
        if c >= job.spec.total_chunks() {
            finalize(job, tenants, "complete");
            return;
        }
        let payload = match &job.states[c] {
            ChunkState::Parked(p) if p.degrade_used == job.degrade => {
                match std::mem::replace(&mut job.states[c], ChunkState::Committed) {
                    ChunkState::Parked(p) => p,
                    _ => unreachable!("state checked above"),
                }
            }
            ChunkState::Parked(_) => {
                // Computed under a stale degrade rung (an over-budget
                // degradation landed between claim and commit): re-run.
                job.gens[c] += 1;
                job.states[c] = ChunkState::Pending;
                return;
            }
            _ => return, // pending or still running
        };

        // Ledger candidates (exact integer additions).
        let job_total = job.quanta_total + payload.quanta_total;
        let ts = tenant_entry(tenants, &cfg.tenants, &job.spec.tenant);
        let tenant_spent = ts.spent + payload.quanta_total;

        // Over-budget resolution: Stop wins over Degrade when both a job
        // budget and a tenant quota trip at once, and Degrade at the
        // Aggressive floor becomes Stop.
        let mut stop = false;
        let mut bump = false;
        if job.spec.budget_quanta.is_some_and(|b| job_total > b) {
            match job.spec.over_budget {
                OverBudget::Stop => stop = true,
                OverBudget::Degrade => bump = true,
            }
        }
        if ts.config.quota.is_some_and(|q| tenant_spent > q) {
            match ts.config.over_budget {
                OverBudget::Stop => stop = true,
                OverBudget::Degrade => bump = true,
            }
        }
        let floor = (SchedLevel::ALL.len() - 1) as u32;
        let mut degrade_after = job.degrade;
        if bump && !stop {
            if job.degrade >= floor {
                stop = true;
            } else {
                degrade_after += 1;
            }
        }

        let (lo, hi) = job.spec.chunk_range(c);
        let rec = ChunkRecord {
            chunk: c,
            lo,
            hi,
            bytes: payload.bytes.len() as u64,
            hash: fnv1a(&payload.bytes),
            quanta_total: payload.quanta_total,
            quanta_baseline: payload.quanta_baseline,
            error_sum_bits: payload.error_sum.to_bits(),
            panics: payload.panics,
            degrade_after,
        };
        if let Err(e) = job.journal.append_chunk(&payload.bytes, &rec) {
            eprintln!("campaignd: journal append failed for chunk {c}: {e}");
            finalize(job, tenants, "failed");
            return;
        }
        job.next_commit = c + 1;
        job.committed_bytes += rec.bytes;
        job.quanta_total = job_total;
        job.quanta_baseline += payload.quanta_baseline;
        job.error_sum += payload.error_sum;
        job.panics += payload.panics;
        job.degrade = degrade_after;
        tenant_entry(tenants, &cfg.tenants, &job.spec.tenant).spent = tenant_spent;
        if stop {
            finalize(job, tenants, "over_quota");
            return;
        }
    }
}

/// Journals the terminal verdict, frees parked memory, and releases the
/// tenant's admission slot.
fn finalize(job: &mut Job, tenants: &mut HashMap<String, TenantState>, verdict: &str) {
    if job.verdict.is_some() {
        return;
    }
    let verdict = if verdict == "complete" || job.next_commit < job.spec.total_chunks() {
        verdict
    } else {
        // Every chunk committed before the trigger fired: it's complete.
        "complete"
    };
    if let Err(e) = job.journal.append_verdict(verdict, job.trials_committed()) {
        eprintln!("campaignd: verdict append failed: {e}");
    }
    job.verdict = Some(verdict.to_owned());
    for (c, s) in job.states.iter_mut().enumerate() {
        if !matches!(s, ChunkState::Committed) {
            job.gens[c] += 1;
            *s = ChunkState::Pending;
        }
    }
    if let Some(t) = tenants.get_mut(&job.spec.tenant) {
        t.active_jobs = t.active_jobs.saturating_sub(1);
    }
}

/// Rebuilds the whole service state from the journals on startup: tenant
/// ledgers are re-summed exactly, finished jobs stay queryable, unfinished
/// jobs resume with their committed prefix intact.
fn recover_state(cfg: &ServerConfig) -> io::Result<State> {
    let jobs_dir = cfg.state_dir.join("jobs");
    let mut st = State {
        jobs: BTreeMap::new(),
        tenants: HashMap::new(),
        next_job_seq: 1,
        rr: 0,
        draining: false,
        claims: 0,
    };
    let mut dirs: Vec<PathBuf> = fs::read_dir(&jobs_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    dirs.sort();
    for dir in dirs {
        let id = dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_owned();
        if let Some(n) = id.strip_prefix('j').and_then(|s| s.parse::<u64>().ok()) {
            st.next_job_seq = st.next_job_seq.max(n + 1);
        }
        let rec = match journal::recover(&dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("campaignd: skipping unrecoverable job `{id}`: {e}");
                continue;
            }
        };
        let spec = match JobSpec::parse(&rec.spec_text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("campaignd: skipping job `{id}` with bad spec: {e}");
                continue;
            }
        };
        let recovered_quanta: EnergyQuanta = rec.chunks.iter().map(|c| c.quanta_total).sum();
        let State { tenants, .. } = &mut st;
        tenant_entry(tenants, &cfg.tenants, &spec.tenant).spent += recovered_quanta;
        let journal = Journal::open(&dir)?;
        let total_chunks = spec.total_chunks();
        let done = rec.verdict.is_some();
        let mut job =
            Job {
                states: (0..total_chunks)
                    .map(|c| {
                        if c < rec.chunks.len() {
                            ChunkState::Committed
                        } else {
                            ChunkState::Pending
                        }
                    })
                    .collect(),
                gens: vec![0; total_chunks],
                next_commit: rec.chunks.len(),
                committed_bytes: rec.committed_bytes,
                degrade: rec.chunks.last().map(|c| c.degrade_after).unwrap_or(0),
                error_sum: rec.chunks.iter().map(|c| f64::from_bits(c.error_sum_bits)).sum(),
                panics: rec.chunks.iter().map(|c| c.panics).sum(),
                quanta_total: recovered_quanta,
                quanta_baseline: rec.chunks.iter().map(|c| c.quanta_baseline).sum(),
                verdict: rec.verdict.map(|v| v.verdict),
                deadline_at: if done {
                    None
                } else {
                    spec.deadline_secs.map(|s| Instant::now() + Duration::from_secs_f64(s))
                },
                spec,
                journal,
            };
        if job.verdict.is_none() {
            let State { tenants, .. } = &mut st;
            tenant_entry(tenants, &cfg.tenants, &job.spec.tenant).active_jobs += 1;
            if job.next_commit >= job.spec.total_chunks() {
                // Crashed after the last chunk commit but before the
                // verdict: finish the paperwork now.
                let State { tenants, .. } = &mut st;
                finalize(&mut job, tenants, "complete");
            }
        }
        st.jobs.insert(id, job);
    }
    Ok(st)
}
