//! The `enerj-serve/1` campaign-spec schema and trial enumeration.
//!
//! A client submits a JSON object:
//!
//! ```json
//! {
//!   "schema": "enerj-serve/1",
//!   "tenant": "acme",
//!   "apps": ["MonteCarlo", "FFT"],
//!   "levels": ["Mild", "Aggressive"],
//!   "runs": 20,
//!   "recovery": false,
//!   "budget_quanta": 123456789,
//!   "over_budget": "degrade",
//!   "deadline_secs": 30.0,
//!   "chunk": 8
//! }
//! ```
//!
//! `apps`, `levels`, `runs` enumerate trials app-major, then level, then
//! run — exactly the canonical order of
//! [`run_level_campaign`](enerj_apps::trials::run_level_campaign) — with
//! fault seeds `FAULT_SEED_BASE ^ run`. Every trial is a pure function of
//! its index (plus the job's degrade rung, which is itself a deterministic
//! function of the durable chunk ledger), which is what makes crash
//! recovery replay-exact: re-running any uncommitted suffix reproduces the
//! uninterrupted bytes.
//!
//! `budget_quanta` is an optional *job-level* quota in exact scaled energy
//! quanta, enforced at chunk-commit granularity on top of the tenant's
//! quota; `over_budget` picks the policy: `"stop"` ends the job with an
//! `over_quota` verdict and partial results, `"degrade"` walks the
//! remaining trials down the PR 9 scheduler ladder (Precise → Mild →
//! Medium → Aggressive) one rung per over-budget commit and hard-stops
//! only at the Aggressive floor.

use std::sync::Arc;

use crate::http::json_escape;
use enerj_apps::qos::Output;
use enerj_apps::recovery;
use enerj_apps::scheduler::SchedLevel;
use enerj_apps::trials::TrialSpec;
use enerj_apps::{all_apps, harness, App};
use enerj_bench::json::Json;
use enerj_hw::quanta::EnergyQuanta;

/// The schema tag every spec must carry.
pub const SCHEMA: &str = "enerj-serve/1";

/// Default trials per journal chunk when the spec does not say.
pub const DEFAULT_CHUNK: usize = 8;

/// What to do when a job or tenant exhausts its quota mid-campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverBudget {
    /// End the job at the chunk boundary with an `over_quota` verdict;
    /// everything committed so far stands as partial results.
    Stop,
    /// Degrade the remaining trials one rung down the scheduler ladder per
    /// over-budget commit; hard-stop once already at the Aggressive floor.
    Degrade,
}

impl OverBudget {
    /// The schema string for this policy.
    pub fn as_str(self) -> &'static str {
        match self {
            OverBudget::Stop => "stop",
            OverBudget::Degrade => "degrade",
        }
    }

    /// Parses the schema string.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "stop" => Ok(OverBudget::Stop),
            "degrade" => Ok(OverBudget::Degrade),
            other => Err(format!("unknown over_budget policy `{other}` (stop|degrade)")),
        }
    }
}

/// A validated campaign spec.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The submitting tenant.
    pub tenant: String,
    /// Registered app names, in trial-enumeration (outermost) order.
    pub apps: Vec<String>,
    /// Rung names (`Precise` or a Table 2 level), middle enumeration order.
    pub levels: Vec<String>,
    /// Fault-injection runs per (app, level); seeds `FAULT_SEED_BASE ^ run`.
    pub runs: u64,
    /// Run every trial under the PR 5 standard recovery ladder instead of
    /// the plain watchdog-only policy.
    pub recovery: bool,
    /// Optional job-level quota in exact scaled quanta.
    pub budget_quanta: Option<EnergyQuanta>,
    /// Over-budget policy for [`budget_quanta`](Self::budget_quanta).
    pub over_budget: OverBudget,
    /// Optional wall-clock deadline from job start, in seconds.
    pub deadline_secs: Option<f64>,
    /// Trials per journal chunk (commit/lease/resume granularity).
    pub chunk: usize,
}

impl JobSpec {
    /// Total trials this spec enumerates.
    pub fn total_trials(&self) -> usize {
        self.apps.len() * self.levels.len() * self.runs as usize
    }

    /// Number of chunks (`ceil(total / chunk)`).
    pub fn total_chunks(&self) -> usize {
        self.total_trials().div_ceil(self.chunk)
    }

    /// The trial index range of chunk `c`.
    pub fn chunk_range(&self, c: usize) -> (usize, usize) {
        let lo = c * self.chunk;
        let hi = ((c + 1) * self.chunk).min(self.total_trials());
        (lo, hi)
    }

    /// Parses and validates a spec document against the app registry.
    pub fn parse(text: &str) -> Result<JobSpec, String> {
        let doc = Json::parse(text).map_err(|e| format!("spec is not valid JSON: {e}"))?;
        let schema = doc
            .get("schema")
            .and_then(|s| s.as_str())
            .ok_or("spec needs a string `schema` field")?;
        if schema != SCHEMA {
            return Err(format!("unsupported schema `{schema}` (expected `{SCHEMA}`)"));
        }
        let tenant = doc
            .get("tenant")
            .and_then(|t| t.as_str())
            .ok_or("spec needs a string `tenant` field")?
            .to_owned();
        if tenant.is_empty() || tenant.len() > 64 || !tenant.chars().all(tenant_char) {
            return Err("tenant names are 1-64 chars of [a-zA-Z0-9._-]".to_owned());
        }
        let registry = all_apps();
        let apps = match doc.get("apps") {
            Some(Json::Arr(list)) if !list.is_empty() => {
                let mut names = Vec::with_capacity(list.len());
                for a in list {
                    let name = a.as_str().ok_or("`apps` entries must be strings")?;
                    if !registry.iter().any(|r| r.meta.name == name) {
                        return Err(format!("unknown app `{name}`"));
                    }
                    names.push(name.to_owned());
                }
                names
            }
            _ => return Err("spec needs a non-empty `apps` array".to_owned()),
        };
        let levels = match doc.get("levels") {
            Some(Json::Arr(list)) if !list.is_empty() => {
                let mut names = Vec::with_capacity(list.len());
                for l in list {
                    let name = l.as_str().ok_or("`levels` entries must be strings")?;
                    rung_by_name(name).ok_or_else(|| {
                        format!("unknown level `{name}` (Precise|Mild|Medium|Aggressive)")
                    })?;
                    names.push(name.to_owned());
                }
                names
            }
            _ => return Err("spec needs a non-empty `levels` array".to_owned()),
        };
        let runs = doc
            .get("runs")
            .and_then(|r| r.as_i128())
            .filter(|&r| r > 0)
            .ok_or("spec needs a positive integer `runs` field")? as u64;
        let recovery = match doc.get("recovery") {
            None => false,
            Some(Json::Bool(b)) => *b,
            Some(_) => return Err("`recovery` must be a boolean".to_owned()),
        };
        let budget_quanta = match doc.get("budget_quanta") {
            None | Some(Json::Null) => None,
            Some(v) => Some(EnergyQuanta::new(
                v.as_u128().ok_or("`budget_quanta` must be a non-negative integer")?,
            )),
        };
        let over_budget = match doc.get("over_budget") {
            None => OverBudget::Stop,
            Some(v) => OverBudget::parse(
                v.as_str().ok_or("`over_budget` must be a string (stop|degrade)")?,
            )?,
        };
        let deadline_secs = match doc.get("deadline_secs") {
            None | Some(Json::Null) => None,
            Some(v) => {
                let secs = v.as_f64().ok_or("`deadline_secs` must be a number")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("`deadline_secs` must be a positive number".to_owned());
                }
                Some(secs)
            }
        };
        let chunk = match doc.get("chunk") {
            None => DEFAULT_CHUNK,
            Some(v) => {
                let c = v
                    .as_i128()
                    .filter(|&c| c > 0 && c <= 4096)
                    .ok_or("`chunk` must be a positive integer no larger than 4096")?;
                c as usize
            }
        };
        Ok(JobSpec {
            tenant,
            apps,
            levels,
            runs,
            recovery,
            budget_quanta,
            over_budget,
            deadline_secs,
            chunk,
        })
    }

    /// Re-serializes the spec canonically (the durable `spec.json` body,
    /// so a restarted server reconstructs the exact same job).
    pub fn to_json(&self) -> String {
        let apps: Vec<String> = self.apps.iter().map(|a| json_escape(a)).collect();
        let levels: Vec<String> = self.levels.iter().map(|l| json_escape(l)).collect();
        format!(
            "{{\"schema\":{},\"tenant\":{},\"apps\":[{}],\"levels\":[{}],\"runs\":{},\
             \"recovery\":{},\"budget_quanta\":{},\"over_budget\":{},\"deadline_secs\":{},\
             \"chunk\":{}}}",
            json_escape(SCHEMA),
            json_escape(&self.tenant),
            apps.join(","),
            levels.join(","),
            self.runs,
            self.recovery,
            match self.budget_quanta {
                Some(q) => q.to_string(),
                None => "null".to_owned(),
            },
            json_escape(self.over_budget.as_str()),
            match self.deadline_secs {
                Some(s) => format!("{s}"),
                None => "null".to_owned(),
            },
            self.chunk,
        )
    }

    /// The `(app index, level index, run)` coordinates of trial `index`.
    fn coordinates(&self, index: usize) -> (usize, usize, u64) {
        let per_level = self.runs as usize;
        let per_app = self.levels.len() * per_level;
        let (a, rem) = (index / per_app, index % per_app);
        let (l, r) = (rem / per_level, rem % per_level);
        (a, l, r as u64)
    }

    /// The [`TrialSpec`] for trial `index` with `degrade` ladder rungs
    /// applied. Degradation shifts the requested rung towards Aggressive
    /// (saturating at the floor); a degraded trial records its effective
    /// rung in `scheduled_level` so the NDJSON line says what actually ran.
    pub fn trial_spec(&self, index: usize, degrade: u32) -> TrialSpec {
        let (a, l, run) = self.coordinates(index);
        let app = registry_app(&self.apps[a]);
        let requested = rung_by_name(&self.levels[l]).expect("validated at parse");
        let effective_idx = (requested.index() + degrade as usize).min(SchedLevel::ALL.len() - 1);
        let effective = SchedLevel::ALL[effective_idx];
        let reference = reference_output(&self.apps[a]);
        let mut spec = TrialSpec::scored(
            &app,
            self.levels[l].clone(),
            effective.config(),
            harness::FAULT_SEED_BASE ^ run,
            reference,
        );
        if effective != requested {
            spec.scheduled_level = Some(effective.to_string());
        }
        spec.recovery = Some(if self.recovery {
            recovery::Policy::standard()
        } else {
            // Watchdog-only: contain runaway fault-corrupted loops without
            // retrying — a stalled trial must never outlive its lease.
            recovery::Policy {
                ladder: Vec::new(),
                max_ops: Some(recovery::Policy::DEFAULT_MAX_OPS),
                qos_threshold: None,
            }
        });
        spec
    }
}

fn tenant_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

/// The scheduler rung named `name`, if any.
pub fn rung_by_name(name: &str) -> Option<SchedLevel> {
    SchedLevel::ALL.into_iter().find(|r| r.to_string() == name)
}

fn registry_app(name: &str) -> App {
    all_apps().into_iter().find(|a| a.meta.name == name).expect("validated at parse")
}

/// Fault-free reference outputs, computed once per app per process.
/// References are pure functions of the app, so caching cannot perturb a
/// trial — it only keeps job startup from re-running every app.
fn reference_output(name: &str) -> Arc<Output> {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static REFS: OnceLock<Mutex<HashMap<String, Arc<Output>>>> = OnceLock::new();
    let refs = REFS.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = refs.lock().expect("reference cache");
    if let Some(out) = map.get(name) {
        return Arc::clone(out);
    }
    let app = registry_app(name);
    let out = Arc::new(harness::reference(&app).output);
    map.insert(name.to_owned(), Arc::clone(&out));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"tenant\":\"t1\",\"apps\":[\"MonteCarlo\"],\
             \"levels\":[\"Mild\"],\"runs\":4}}"
        )
    }

    #[test]
    fn parses_minimal_spec_with_defaults() {
        let spec = JobSpec::parse(&minimal()).expect("valid");
        assert_eq!(spec.tenant, "t1");
        assert_eq!(spec.total_trials(), 4);
        assert_eq!(spec.chunk, DEFAULT_CHUNK);
        assert_eq!(spec.over_budget, OverBudget::Stop);
        assert!(spec.budget_quanta.is_none());
        assert!(!spec.recovery);
        // Round-trips through the canonical serialization.
        let again = JobSpec::parse(&spec.to_json()).expect("canonical form is valid");
        assert_eq!(again.total_trials(), spec.total_trials());
        assert_eq!(again.tenant, spec.tenant);
    }

    #[test]
    fn rejects_bad_specs() {
        for (mutation, needle) in [
            ("\"schema\":\"enerj-serve/1\"", "\"schema\":\"enerj-serve/9\""),
            ("\"apps\":[\"MonteCarlo\"]", "\"apps\":[\"NoSuchApp\"]"),
            ("\"levels\":[\"Mild\"]", "\"levels\":[\"Extreme\"]"),
            ("\"runs\":4", "\"runs\":0"),
            ("\"tenant\":\"t1\"", "\"tenant\":\"has space\""),
        ] {
            let bad = minimal().replace(mutation, needle);
            assert!(JobSpec::parse(&bad).is_err(), "{needle} must be rejected");
        }
        assert!(JobSpec::parse("not json").is_err());
    }

    #[test]
    fn trial_specs_follow_canonical_order_and_degrade_saturates() {
        let text = format!(
            "{{\"schema\":\"{SCHEMA}\",\"tenant\":\"t1\",\"apps\":[\"MonteCarlo\",\"FFT\"],\
             \"levels\":[\"Precise\",\"Medium\"],\"runs\":2}}"
        );
        let spec = JobSpec::parse(&text).expect("valid");
        assert_eq!(spec.total_trials(), 8);
        let s0 = spec.trial_spec(0, 0);
        assert_eq!(s0.app.meta.name, "MonteCarlo");
        assert_eq!(s0.label, "Precise");
        assert_eq!(s0.seed, harness::FAULT_SEED_BASE);
        assert!(s0.scheduled_level.is_none());
        let s7 = spec.trial_spec(7, 0);
        assert_eq!(s7.app.meta.name, "FFT");
        assert_eq!(s7.label, "Medium");
        assert_eq!(s7.seed, harness::FAULT_SEED_BASE ^ 1);
        // One degrade rung: Precise→Mild, Medium→Aggressive.
        let d = spec.trial_spec(0, 1);
        assert_eq!(d.scheduled_level.as_deref(), Some("Mild"));
        let d = spec.trial_spec(7, 1);
        assert_eq!(d.scheduled_level.as_deref(), Some("Aggressive"));
        // Degradation saturates at the Aggressive floor.
        let d = spec.trial_spec(7, 9);
        assert_eq!(d.scheduled_level.as_deref(), Some("Aggressive"));
    }

    #[test]
    fn chunk_ranges_tile_the_campaign() {
        let mut text = minimal();
        text = text.replace("\"runs\":4", "\"runs\":10,\"chunk\":3");
        let spec = JobSpec::parse(&text).expect("valid");
        assert_eq!(spec.total_trials(), 10);
        assert_eq!(spec.total_chunks(), 4);
        let ranges: Vec<(usize, usize)> =
            (0..spec.total_chunks()).map(|c| spec.chunk_range(c)).collect();
        assert_eq!(ranges, vec![(0, 3), (3, 6), (6, 9), (9, 10)]);
    }
}
