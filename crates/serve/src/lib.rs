//! # enerj-serve — the crash-recoverable campaign service
//!
//! A long-running server (`campaignd`) that accepts EnerJ fault-injection
//! campaign specs over a minimal hand-rolled HTTP/1.1 (`std::net` only),
//! shards them across a supervised worker pool driving the streaming
//! campaign engine, and streams per-trial NDJSON back to clients — with
//! the robustness guarantees a service needs and a library run doesn't:
//!
//! * **Durability** ([`journal`]): every committed chunk is fsync'd
//!   (output bytes first, then the journal record), so `kill -9` at any
//!   instant loses at most uncommitted work, and a restarted server
//!   resumes every in-flight campaign. The committed NDJSON across any
//!   crash/restart sequence is *byte-identical* to an uninterrupted run —
//!   trials are pure functions of their specs.
//! * **Supervision** ([`server`]): chunks are claimed under wall-clock
//!   leases with generation counters. A dead or stalled worker's chunks
//!   are reclaimed and re-run; its late results are discarded at the
//!   generation check, never double-committed.
//! * **Budgets** ([`tenant`], [`spec`]): per-tenant and per-job energy
//!   quotas in exact integer [`EnergyQuanta`](enerj_hw::quanta::EnergyQuanta),
//!   enforced at chunk-commit granularity, with a configurable
//!   over-budget policy — hard-stop with an `over_quota` partial-results
//!   verdict, or degrade down the scheduler ladder one rung per
//!   over-budget commit.
//! * **Isolation** ([`server`], [`http`]): per-connection read/write
//!   timeouts and file-backed streaming mean a slow or dead reader
//!   backpressures only its own socket; admission control rejects
//!   overload with typed, retriable errors and backoff hints.
//!
//! Binaries: `campaignd` (the server), `campaignctl` (submit / status /
//! stream / shutdown), `servebench` (throughput + time-to-first-trial,
//! gated on kill-resume byte-identity).

pub mod client;
pub mod http;
pub mod journal;
pub mod server;
pub mod spec;
pub mod tenant;
