//! `campaignd` — the long-running campaign server.
//!
//! ```text
//! campaignd [--addr HOST:PORT] [--state-dir DIR] [--workers N]
//!           [--queue-cap N] [--max-jobs-per-tenant N] [--lease-secs S]
//!           [--read-timeout-secs S] [--write-timeout-secs S]
//!           [--tenant NAME:QUOTA[:stop|degrade]]...
//! ```
//!
//! Binds the address (`:0` picks a free port), recovers every job under
//! `<state-dir>/jobs/` from its journal, prints
//! `campaignd listening on <addr>` on stdout, and serves until a
//! `POST /shutdown` drain completes. `--tenant` may repeat; `QUOTA` is an
//! exact integer quanta count or `unlimited`.
//!
//! The two `--test-*` flags are chaos hooks for the integration tests and
//! `servebench`: they stall or kill the worker making the nth chunk claim
//! to exercise the lease-reclaim path. They are deliberately undocumented
//! in `--help`-style summaries elsewhere; production runs never pass them.

use std::process::ExitCode;
use std::time::Duration;

use enerj_serve::server::{Server, ServerConfig};
use enerj_serve::tenant::TenantConfig;

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("campaignd: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--state-dir" => cfg.state_dir = value("--state-dir").into(),
            "--workers" => cfg.workers = parse_num(&value("--workers"), "--workers"),
            "--queue-cap" => cfg.queue_cap = parse_num(&value("--queue-cap"), "--queue-cap"),
            "--max-jobs-per-tenant" => {
                cfg.max_jobs_per_tenant =
                    parse_num(&value("--max-jobs-per-tenant"), "--max-jobs-per-tenant");
            }
            "--lease-secs" => {
                cfg.lease = parse_secs(&value("--lease-secs"), "--lease-secs");
            }
            "--read-timeout-secs" => {
                cfg.read_timeout = parse_secs(&value("--read-timeout-secs"), "--read-timeout-secs");
            }
            "--write-timeout-secs" => {
                cfg.write_timeout =
                    parse_secs(&value("--write-timeout-secs"), "--write-timeout-secs");
            }
            "--tenant" => match TenantConfig::parse(&value("--tenant")) {
                Ok(t) => cfg.tenants.push(t),
                Err(e) => {
                    eprintln!("campaignd: {e}");
                    return ExitCode::from(2);
                }
            },
            "--test-stall-claim" => {
                let v = value("--test-stall-claim");
                let Some((n, ms)) = v.split_once(':') else {
                    eprintln!("campaignd: --test-stall-claim needs N:MS");
                    return ExitCode::from(2);
                };
                cfg.test_stall_claim = Some((
                    parse_num(n, "--test-stall-claim") as u64,
                    parse_num(ms, "--test-stall-claim") as u64,
                ));
            }
            "--test-panic-claim" => {
                cfg.test_panic_claim =
                    Some(parse_num(&value("--test-panic-claim"), "--test-panic-claim") as u64);
            }
            other => {
                eprintln!("campaignd: unknown flag `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    match Server::run(cfg) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("campaignd: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_num(v: &str, flag: &str) -> usize {
    v.parse().unwrap_or_else(|_| {
        eprintln!("campaignd: {flag} needs an integer, got `{v}`");
        std::process::exit(2);
    })
}

fn parse_secs(v: &str, flag: &str) -> Duration {
    let secs: f64 = v.parse().unwrap_or_else(|_| {
        eprintln!("campaignd: {flag} needs a number of seconds, got `{v}`");
        std::process::exit(2);
    });
    if !secs.is_finite() || secs <= 0.0 {
        eprintln!("campaignd: {flag} needs a positive number of seconds");
        std::process::exit(2);
    }
    Duration::from_secs_f64(secs)
}
