//! `servebench` — throughput and latency for the campaign service, gated
//! on crash-recovery correctness.
//!
//! ```text
//! servebench [--runs N] [--jobs N] [--workers N] [--quick]
//!            [--state-root DIR] [--out PATH]
//! ```
//!
//! Three phases:
//!
//! 1. **Identity gate.** Runs one campaign uninterrupted, then the same
//!    campaign on a second server that is `kill -9`ed at a randomized
//!    committed-chunk boundary and restarted to resume from its journal.
//!    The two collected NDJSON streams must be **byte-identical** and the
//!    exact quanta totals `==`-equal; otherwise servebench prints the
//!    divergence and exits 1 *without writing a report* — a throughput
//!    number for a service that loses bytes is not a number worth having.
//! 2. **Jobs/s.** Submits a batch of jobs and measures completion rate.
//! 3. **Time-to-first-trial.** Submits one job and measures submit → first
//!    streamed NDJSON line.
//!
//! Writes `results/BENCH_serveperf.json` (schema `enerj-serveperf/1`).

use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use enerj_serve::client::{Client, Submitted};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns a sibling `campaignd` on `state_dir` and waits for its
    /// listening line.
    fn start(state_dir: &Path, extra: &[&str]) -> Daemon {
        let exe = std::env::current_exe().expect("current_exe");
        let campaignd = exe.parent().expect("bin dir").join("campaignd");
        let mut child = Command::new(&campaignd)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--state-dir")
            .arg(state_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .unwrap_or_else(|e| panic!("cannot spawn {}: {e}", campaignd.display()));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .and_then(|l| l.ok())
            .unwrap_or_else(|| panic!("campaignd exited before announcing its address"));
        let addr = first.rsplit(' ').next().unwrap_or_default().to_owned();
        assert!(addr.contains(':'), "unexpected campaignd banner: {first}");
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone()).with_timeout(Duration::from_secs(120))
    }

    /// `kill -9`: the crash the journal must survive.
    fn kill9(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Graceful drain via the API, then reap.
    fn shutdown(&mut self) {
        let _ = self.client().shutdown();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spec_json(tenant: &str, runs: u64, chunk: usize) -> String {
    format!(
        "{{\"schema\":\"enerj-serve/1\",\"tenant\":\"{tenant}\",\
         \"apps\":[\"MonteCarlo\",\"FFT\"],\"levels\":[\"Mild\",\"Aggressive\"],\
         \"runs\":{runs},\"chunk\":{chunk}}}"
    )
}

fn submit_ok(client: &Client, spec: &str) -> String {
    match client.submit(spec).expect("submit") {
        Submitted::Accepted { job_id, .. } => job_id,
        Submitted::Rejected { error, detail, .. } => {
            panic!("benchmark job rejected ({error}): {detail}")
        }
    }
}

fn collect_stream(client: &Client, job: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    client
        .stream_lines(job, 0, |line| {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        })
        .expect("stream");
    bytes
}

fn summary_quanta(client: &Client, job: &str) -> (u128, u128) {
    let doc = client.summary(job).expect("summary").json().expect("summary json");
    (
        doc.get("quanta_total").and_then(|q| q.as_u128()).expect("quanta_total"),
        doc.get("quanta_baseline").and_then(|q| q.as_u128()).expect("quanta_baseline"),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let quick = args.iter().any(|a| a == "--quick");
    let runs: u64 =
        flag("--runs").map(|v| v.parse().expect("--runs")).unwrap_or(if quick { 3 } else { 6 });
    let jobs: usize =
        flag("--jobs").map(|v| v.parse().expect("--jobs")).unwrap_or(if quick { 4 } else { 8 });
    let workers: usize = flag("--workers")
        .map(|v| v.parse().expect("--workers"))
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2));
    let state_root =
        PathBuf::from(flag("--state-root").unwrap_or_else(|| "results/serve/bench".to_owned()));
    let out =
        PathBuf::from(flag("--out").unwrap_or_else(|| "results/BENCH_serveperf.json".to_owned()));
    let _ = fs::remove_dir_all(&state_root);
    fs::create_dir_all(&state_root).expect("state root");

    let chunk = 2usize;
    let spec = spec_json("bench", runs, chunk);
    let trials_per_job = 2 * 2 * runs as usize;

    // ---------------------------------------------------------------
    // Phase 1: kill-resume identity gate
    // ---------------------------------------------------------------
    eprintln!("servebench: phase 1 — kill -9 / resume identity gate");
    let worker_args = format!("{workers}");

    let mut clean = Daemon::start(&state_root.join("clean"), &["--workers", &worker_args]);
    let clean_client = clean.client();
    let clean_job = submit_ok(&clean_client, &spec);
    clean_client.wait(&clean_job, Duration::from_secs(600)).expect("clean run");
    let clean_bytes = collect_stream(&clean_client, &clean_job);
    let clean_quanta = summary_quanta(&clean_client, &clean_job);
    clean.shutdown();

    // Kill at a randomized committed boundary strictly inside the run.
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as usize;
    let kill_after = 1 + nanos % (trials_per_job - chunk).max(1);
    let crash_dir = state_root.join("crash");
    let mut crash = Daemon::start(&crash_dir, &["--workers", &worker_args]);
    let crash_client = crash.client();
    let crash_job = submit_ok(&crash_client, &spec);
    loop {
        let doc = crash_client.status(&crash_job).expect("status").json().expect("status json");
        let committed = doc.get("trials_committed").and_then(|t| t.as_i128()).unwrap_or(0) as usize;
        if committed >= kill_after || doc.get("verdict").and_then(|v| v.as_str()).is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    crash.kill9();
    eprintln!("servebench: killed campaignd after >= {kill_after} committed trials; restarting");
    let mut resumed = Daemon::start(&crash_dir, &["--workers", &worker_args]);
    let resumed_client = resumed.client();
    resumed_client.wait(&crash_job, Duration::from_secs(600)).expect("resumed run");
    let crash_bytes = collect_stream(&resumed_client, &crash_job);
    let crash_quanta = summary_quanta(&resumed_client, &crash_job);
    resumed.shutdown();

    if clean_bytes != crash_bytes || clean_quanta != crash_quanta {
        eprintln!(
            "servebench: IDENTITY GATE FAILED: uninterrupted {} bytes / quanta {:?}, \
             kill-resume {} bytes / quanta {:?} — refusing to write a report",
            clean_bytes.len(),
            clean_quanta,
            crash_bytes.len(),
            crash_quanta,
        );
        std::process::exit(1);
    }
    eprintln!(
        "servebench: identity gate passed ({} trials, {} bytes, kill after {kill_after})",
        trials_per_job,
        clean_bytes.len(),
    );

    // ---------------------------------------------------------------
    // Phase 2: jobs/s
    // ---------------------------------------------------------------
    eprintln!("servebench: phase 2 — {jobs} jobs x {trials_per_job} trials on {workers} workers");
    let mut thr = Daemon::start(
        &state_root.join("throughput"),
        &["--workers", &worker_args, "--queue-cap", "64", "--max-jobs-per-tenant", "64"],
    );
    let thr_client = thr.client();
    let t0 = Instant::now();
    let ids: Vec<String> = (0..jobs).map(|_| submit_ok(&thr_client, &spec)).collect();
    for id in &ids {
        thr_client.wait(id, Duration::from_secs(600)).expect("throughput job");
    }
    let thr_wall = t0.elapsed();
    let jobs_per_sec = jobs as f64 / thr_wall.as_secs_f64();
    let trials_per_sec = (jobs * trials_per_job) as f64 / thr_wall.as_secs_f64();

    // ---------------------------------------------------------------
    // Phase 3: time to first trial
    // ---------------------------------------------------------------
    let t0 = Instant::now();
    let ttft_job = submit_ok(&thr_client, &spec);
    let mut first_line_at: Option<Duration> = None;
    thr_client
        .stream_lines(&ttft_job, 0, |_| {
            if first_line_at.is_none() {
                first_line_at = Some(t0.elapsed());
            }
        })
        .expect("ttft stream");
    let ttft = first_line_at.expect("at least one trial line");
    thr.shutdown();

    // ---------------------------------------------------------------
    // Report
    // ---------------------------------------------------------------
    let report = format!(
        "{{\n  \"schema\": \"enerj-serveperf/1\",\n  \"kill_resume_identical\": true,\n  \
         \"identity\": {{\"trials\": {trials_per_job}, \"bytes\": {}, \
         \"kill_after_trials\": {kill_after}, \"quanta_total\": {}, \"quanta_baseline\": {}}},\n  \
         \"throughput\": {{\"jobs\": {jobs}, \"trials_per_job\": {trials_per_job}, \
         \"wall_seconds\": {:.6}, \"jobs_per_sec\": {:.3}, \"trials_per_sec\": {:.3}}},\n  \
         \"first_trial\": {{\"time_to_first_trial_ms\": {:.3}}},\n  \
         \"config\": {{\"workers\": {workers}, \"chunk\": {chunk}, \"runs\": {runs}}}\n}}\n",
        clean_bytes.len(),
        clean_quanta.0,
        clean_quanta.1,
        thr_wall.as_secs_f64(),
        jobs_per_sec,
        trials_per_sec,
        ttft.as_secs_f64() * 1e3,
    );
    if let Some(parent) = out.parent() {
        fs::create_dir_all(parent).expect("results dir");
    }
    fs::write(&out, &report).expect("write report");
    println!(
        "servebench: {jobs_per_sec:.2} jobs/s, {trials_per_sec:.1} trials/s, \
         first trial in {:.1} ms (report: {})",
        ttft.as_secs_f64() * 1e3,
        out.display(),
    );
    let _ = fs::remove_dir_all(&state_root);
}
