//! `campaignctl` — the command-line client for `campaignd`.
//!
//! ```text
//! campaignctl submit --addr HOST:PORT (--spec-file F | --spec JSON) [--wait] [--stream]
//! campaignctl status --addr HOST:PORT JOB
//! campaignctl summary --addr HOST:PORT JOB
//! campaignctl stream --addr HOST:PORT JOB [--from-line N]
//! campaignctl tenant --addr HOST:PORT NAME
//! campaignctl shutdown --addr HOST:PORT
//! campaignctl health --addr HOST:PORT
//! ```
//!
//! `stream` prints complete NDJSON lines to stdout; combined with
//! `--from-line N` it resumes exactly where a previous (killed) collection
//! stopped, and the concatenation is byte-identical to one uninterrupted
//! stream — the client drops torn trailing fragments, the server only
//! serves journal-committed bytes.

use std::process::ExitCode;
use std::time::Duration;

use enerj_serve::client::{Client, Submitted};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "campaignctl: need a subcommand (submit|status|summary|stream|tenant|shutdown|health)"
        );
        return ExitCode::from(2);
    };
    let flag_value = |name: &str| -> Option<String> {
        args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
    };
    let has_flag = |name: &str| args.iter().any(|a| a == name);
    let Some(addr) = flag_value("--addr") else {
        eprintln!("campaignctl: --addr HOST:PORT is required");
        return ExitCode::from(2);
    };
    let client = Client::new(addr).with_timeout(Duration::from_secs(600));
    // The first non-flag argument after the subcommand (job id / tenant).
    let positional = args[1..]
        .iter()
        .scan(false, |skip, a| {
            let take = !*skip && !a.starts_with("--");
            *skip = a.starts_with("--") && !matches!(a.as_str(), "--wait" | "--stream" | "--json");
            Some((take, a))
        })
        .find(|(take, _)| *take)
        .map(|(_, a)| a.clone());

    let outcome = match cmd.as_str() {
        "submit" => {
            let spec = match (flag_value("--spec-file"), flag_value("--spec")) {
                (Some(path), _) => match std::fs::read_to_string(&path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("campaignctl: cannot read {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                (None, Some(inline)) => inline,
                (None, None) => {
                    eprintln!("campaignctl: submit needs --spec-file or --spec");
                    return ExitCode::from(2);
                }
            };
            match client.submit(&spec) {
                Ok(Submitted::Accepted { job_id, trials }) => {
                    eprintln!("accepted {job_id}: {trials} trials");
                    let mut ok = true;
                    if has_flag("--stream") {
                        ok = client.stream_lines(&job_id, 0, |line| println!("{line}")).is_ok();
                    } else if has_flag("--wait") {
                        match client.wait(&job_id, Duration::from_secs(3600)) {
                            Ok(verdict) => eprintln!("{job_id}: {verdict}"),
                            Err(e) => {
                                eprintln!("campaignctl: {e}");
                                ok = false;
                            }
                        }
                    } else {
                        println!("{job_id}");
                    }
                    Ok(ok)
                }
                Ok(Submitted::Rejected { status, error, retriable, backoff_ms, detail }) => {
                    eprintln!(
                        "rejected ({status} {error}): {detail} [retriable={retriable}{}]",
                        match backoff_ms {
                            Some(ms) => format!(", backoff {ms}ms"),
                            None => String::new(),
                        }
                    );
                    Ok(false)
                }
                Err(e) => Err(e),
            }
        }
        "status" | "summary" | "tenant" => {
            let Some(target) = positional else {
                eprintln!("campaignctl: {cmd} needs a job id or tenant name");
                return ExitCode::from(2);
            };
            let resp = match cmd.as_str() {
                "status" => client.status(&target),
                "summary" => client.summary(&target),
                _ => client.tenant(&target),
            };
            resp.map(|r| {
                println!("{}", String::from_utf8_lossy(&r.body));
                r.status == 200
            })
        }
        "stream" => {
            let Some(job) = positional else {
                eprintln!("campaignctl: stream needs a job id");
                return ExitCode::from(2);
            };
            let from_line =
                flag_value("--from-line").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
            client.stream_lines(&job, from_line, |line| println!("{line}")).map(|()| true)
        }
        "shutdown" => client.shutdown().map(|r| r.status == 200),
        "health" => client.healthz().map(|r| {
            println!("{}", String::from_utf8_lossy(&r.body));
            r.status == 200
        }),
        other => {
            eprintln!("campaignctl: unknown subcommand `{other}`");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("campaignctl: {e}");
            ExitCode::FAILURE
        }
    }
}
