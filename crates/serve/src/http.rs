//! A hand-rolled, minimal HTTP/1.1 layer over [`std::net`].
//!
//! The build environment has no crates.io access, so the campaign service
//! speaks exactly the subset of HTTP/1.1 it needs and nothing more:
//! request line + headers + an optional `Content-Length` body on the way
//! in; status line + headers + either a `Content-Length` body or an
//! unbounded `Connection: close` stream (the NDJSON trial feed) on the way
//! out. Header and body sizes are capped so a misbehaving client cannot
//! balloon server memory, and all socket reads sit under the caller's
//! per-connection read timeout.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body (campaign specs are small JSON objects).
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path with the query string stripped (e.g. `/jobs/j000001/stream`).
    pub path: String,
    /// Decoded query pairs, in source order (`?from_line=3`).
    pub query: Vec<(String, String)>,
    /// Header name/value pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// The first query value under `key`, when present.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Reads one request from `stream`. `Ok(None)` means the peer closed the
/// connection before sending anything (a clean keep-alive end).
///
/// # Errors
///
/// Propagates socket errors (including read timeouts) and rejects oversized
/// or malformed heads/bodies with `InvalidData`.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Read byte-at-a-time until CRLFCRLF: simple and safe (the head is
    // tiny and reads are buffered by the kernel socket buffer).
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Ok(None);
                }
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "request head truncated"));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e),
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "request head too large"));
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
    }
    let head = String::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "request head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line =
        lines.next().ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty request"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing method"))?
        .to_owned();
    let target = parts
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing request target"))?;
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), parse_query(q)),
        None => (target.to_owned(), Vec::new()),
    };
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("malformed header `{line}`"))
        })?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad Content-Length"))?;
        }
        headers.push((name, value));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "request body too large"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request { method, path, query, headers, body }))
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|pair| !pair.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect()
}

/// The reason phrase for the handful of status codes the service uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response body.
pub fn write_json(stream: &mut TcpStream, status: u16, json: &str) -> io::Result<()> {
    write_response(stream, status, "application/json", json.as_bytes())
}

/// Starts an unbounded NDJSON stream: no `Content-Length`, the end of the
/// stream is the end of the connection (`Connection: close`). The caller
/// then writes raw NDJSON bytes directly to the stream.
pub fn write_stream_head(stream: &mut TcpStream) -> io::Result<()> {
    stream.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n",
    )?;
    stream.flush()
}

/// Escapes a string for embedding in the hand-rolled JSON emitters.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A retriable-or-not service error as the standard JSON error body:
/// `{"error": ..., "retriable": ..., "backoff_ms": ...}`. Every rejected
/// request carries one, so clients can distinguish "try again later"
/// (queue full, draining) from "never" (over quota, malformed spec).
pub fn error_body(error: &str, detail: &str, retriable: bool, backoff_ms: Option<u64>) -> String {
    format!(
        "{{\"error\":{},\"detail\":{},\"retriable\":{},\"backoff_ms\":{}}}",
        json_escape(error),
        json_escape(detail),
        retriable,
        match backoff_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_owned(),
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_parsing() {
        let q = parse_query("from_line=3&follow&x=a=b");
        assert_eq!(
            q,
            vec![
                ("from_line".to_owned(), "3".to_owned()),
                ("follow".to_owned(), String::new()),
                ("x".to_owned(), "a=b".to_owned()),
            ]
        );
    }

    #[test]
    fn error_bodies_are_well_formed_json() {
        let body = error_body("queue_full", "12 jobs pending", true, Some(500));
        let parsed = enerj_bench::json::Json::parse(&body).expect("valid JSON");
        assert_eq!(parsed.get("error").and_then(|e| e.as_str()), Some("queue_full"));
        assert_eq!(parsed.get("retriable"), Some(&enerj_bench::json::Json::Bool(true)));
        assert_eq!(parsed.get("backoff_ms").and_then(|b| b.as_i128()), Some(500));
    }
}
