//! The client side of the campaign service: what `campaignctl`,
//! `servebench` and the integration tests talk through.
//!
//! One request per connection (the server always answers
//! `Connection: close`), so the client is a handful of blocking socket
//! round-trips — no connection pooling, no state.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use enerj_bench::json::Json;

/// A parsed response: status code plus body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// The body bytes (complete: bounded responses are read to their
    /// `Content-Length`, streams to EOF).
    pub body: Vec<u8>,
}

impl Response {
    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Json, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        Json::parse(text).map_err(|e| e.to_string())
    }
}

/// A submission outcome the caller can branch on without parsing JSON.
#[derive(Debug)]
pub enum Submitted {
    /// Accepted: the job id and its total trial count.
    Accepted {
        /// Assigned job id (`j000001`, …).
        job_id: String,
        /// Total trials the job will run.
        trials: usize,
    },
    /// Rejected with the server's typed error.
    Rejected {
        /// HTTP status code.
        status: u16,
        /// The `error` field (`queue_full`, `over_quota`, …).
        error: String,
        /// Whether the server says retrying can succeed.
        retriable: bool,
        /// Suggested backoff before the retry, when given.
        backoff_ms: Option<u64>,
        /// Human-readable detail.
        detail: String,
    },
}

/// A blocking client bound to one server address.
#[derive(Debug, Clone)]
pub struct Client {
    addr: String,
    timeout: Duration,
}

impl Client {
    /// A client for `addr` (`host:port`) with a per-socket timeout.
    pub fn new(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), timeout: Duration::from_secs(30) }
    }

    /// Overrides the per-socket read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(stream)
    }

    /// One request/response round trip.
    pub fn request(&self, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
        let mut stream = self.connect()?;
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            self.addr,
            body.len(),
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.flush()?;
        read_response(&mut stream)
    }

    /// Submits a campaign spec (`enerj-serve/1` JSON).
    pub fn submit(&self, spec_json: &str) -> io::Result<Submitted> {
        let resp = self.request("POST", "/jobs", spec_json.as_bytes())?;
        let doc = resp.json().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        if resp.status == 200 {
            let job_id = doc
                .get("job_id")
                .and_then(|j| j.as_str())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no job_id"))?
                .to_owned();
            let trials = doc.get("trials").and_then(|t| t.as_i128()).unwrap_or(0).max(0) as usize;
            Ok(Submitted::Accepted { job_id, trials })
        } else {
            Ok(Submitted::Rejected {
                status: resp.status,
                error: doc.get("error").and_then(|e| e.as_str()).unwrap_or("unknown").to_owned(),
                retriable: doc.get("retriable") == Some(&Json::Bool(true)),
                backoff_ms: doc
                    .get("backoff_ms")
                    .and_then(|b| b.as_i128())
                    .map(|b| b.max(0) as u64),
                detail: doc.get("detail").and_then(|d| d.as_str()).unwrap_or_default().to_owned(),
            })
        }
    }

    /// The job's status document.
    pub fn status(&self, job_id: &str) -> io::Result<Response> {
        self.request("GET", &format!("/jobs/{job_id}"), b"")
    }

    /// The finished job's summary document (409 while running).
    pub fn summary(&self, job_id: &str) -> io::Result<Response> {
        self.request("GET", &format!("/jobs/{job_id}/summary"), b"")
    }

    /// The tenant's quota/ledger document.
    pub fn tenant(&self, name: &str) -> io::Result<Response> {
        self.request("GET", &format!("/tenants/{name}"), b"")
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&self) -> io::Result<Response> {
        self.request("POST", "/shutdown", b"")
    }

    /// Server liveness.
    pub fn healthz(&self) -> io::Result<Response> {
        self.request("GET", "/healthz", b"")
    }

    /// Streams the job's NDJSON from line `from_line`, invoking `on_line`
    /// for every *complete* line (a torn trailing fragment at connection
    /// teardown is dropped, so a caller that resumes with
    /// `from_line = lines_seen` never duplicates or skips a line).
    pub fn stream_lines(
        &self,
        job_id: &str,
        from_line: u64,
        mut on_line: impl FnMut(&str),
    ) -> io::Result<()> {
        let mut stream = self.connect()?;
        let head = format!(
            "GET /jobs/{job_id}/stream?from_line={from_line} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\r\n",
            self.addr,
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        let (status, mut body_prefix) = read_head(&mut stream)?;
        if status != 200 {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("stream request failed with status {status}"),
            ));
        }
        let mut buf = [0u8; 16 * 1024];
        loop {
            // Deliver complete lines; keep the partial tail buffered.
            while let Some(nl) = body_prefix.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = body_prefix.drain(..=nl).collect();
                if let Ok(text) = std::str::from_utf8(&line[..line.len() - 1]) {
                    on_line(text);
                }
            }
            match stream.read(&mut buf) {
                Ok(0) => return Ok(()),
                Ok(n) => body_prefix.extend_from_slice(&buf[..n]),
                Err(e) => return Err(e),
            }
        }
    }

    /// Polls until the job is done (or `timeout` passes), returning the
    /// final verdict string.
    pub fn wait(&self, job_id: &str, timeout: Duration) -> io::Result<String> {
        let start = Instant::now();
        loop {
            let resp = self.status(job_id)?;
            if resp.status == 200 {
                let doc = resp.json().map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
                if let Some(v) = doc.get("verdict").and_then(|v| v.as_str()) {
                    return Ok(v.to_owned());
                }
            }
            if start.elapsed() > timeout {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("job {job_id} not done after {timeout:?}"),
                ));
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

/// Reads the response head; returns the status and any body bytes that
/// arrived in the same reads.
fn read_head(stream: &mut TcpStream) -> io::Result<(u16, Vec<u8>)> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "response truncated"))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
        }
    }
    let text = String::from_utf8_lossy(&head);
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, Vec::new()))
}

/// Reads a whole bounded response (head + `Content-Length` body, or body
/// to EOF when no length was sent).
fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "response truncated"))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(e),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
        }
    }
    let text = String::from_utf8_lossy(&head).into_owned();
    let status = text
        .lines()
        .next()
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let content_length = text.lines().skip(1).find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("content-length")
            .then(|| value.trim().parse::<usize>().ok())?
    });
    let body = match content_length {
        Some(len) => {
            let mut body = vec![0u8; len];
            stream.read_exact(&mut body)?;
            body
        }
        None => {
            let mut body = Vec::new();
            stream.read_to_end(&mut body)?;
            body
        }
    };
    Ok(Response { status, body })
}
