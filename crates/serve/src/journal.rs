//! The durable per-job ledger: `spec.json` + `output.ndjson` + `journal.ndjson`.
//!
//! Every job owns one directory under the server's state dir:
//!
//! ```text
//! jobs/j000042/
//!   spec.json      # the canonical enerj-serve/1 spec, written once
//!   output.ndjson  # committed trial lines only, in trial-index order
//!   journal.ndjson # one record per committed chunk, plus a final verdict
//! ```
//!
//! The commit protocol makes `kill -9` at any instant recoverable without
//! ever re-emitting or losing a committed byte:
//!
//! 1. append the chunk's NDJSON bytes to `output.ndjson`, `fsync`;
//! 2. append the chunk record (byte count, FNV-1a 64 hash, exact quanta,
//!    error sum, degrade rung) to `journal.ndjson`, `fsync`.
//!
//! A crash between (1) and (2) leaves orphan output bytes with no journal
//! record; recovery truncates the output back to the journaled byte count
//! and the chunk simply re-runs — trials are pure functions of their spec,
//! so the re-run reproduces the identical bytes. A crash *during* either
//! append leaves a torn tail; recovery drops the partial trailing journal
//! line, verifies every chunk's hash against the output bytes, and
//! truncates both files to the longest verified prefix. The concatenation
//! of committed output across any crash/restart sequence is therefore
//! byte-identical to an uninterrupted run.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::http::json_escape;
use enerj_bench::json::Json;
use enerj_hw::quanta::EnergyQuanta;

/// Seed/prime pair of FNV-1a 64 — the integrity hash on every chunk record.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over `bytes`: tiny, dependency-free, and plenty for
/// detecting torn or corrupted chunk payloads (this is integrity
/// checking against crashes, not an adversarial MAC).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One committed chunk, exactly as journaled.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkRecord {
    /// Chunk index (records are strictly sequential from 0).
    pub chunk: usize,
    /// First trial index in the chunk.
    pub lo: usize,
    /// One past the last trial index.
    pub hi: usize,
    /// NDJSON payload length appended to `output.ndjson`.
    pub bytes: u64,
    /// FNV-1a 64 of the payload.
    pub hash: u64,
    /// Exact scaled energy of the chunk's trials.
    pub quanta_total: EnergyQuanta,
    /// Exact precise-baseline energy of the chunk's trials.
    pub quanta_baseline: EnergyQuanta,
    /// Chunk error sum as IEEE-754 bits — exact round-trip, so resumed
    /// mean-error folds are bit-identical to uninterrupted ones.
    pub error_sum_bits: u64,
    /// Panicked trials in the chunk.
    pub panics: usize,
    /// The degrade rung in force *after* this commit: the deterministic
    /// input for every later chunk, which is what makes degrade-on-budget
    /// replay-exact across restarts.
    pub degrade_after: u32,
}

impl ChunkRecord {
    fn to_line(&self) -> String {
        format!(
            "{{\"rec\":\"chunk\",\"chunk\":{},\"lo\":{},\"hi\":{},\"bytes\":{},\"hash\":{},\
             \"quanta_total\":{},\"quanta_baseline\":{},\"error_sum_bits\":{},\"panics\":{},\
             \"degrade_after\":{}}}\n",
            self.chunk,
            self.lo,
            self.hi,
            self.bytes,
            self.hash,
            self.quanta_total,
            self.quanta_baseline,
            self.error_sum_bits,
            self.panics,
            self.degrade_after,
        )
    }

    fn from_json(doc: &Json) -> Option<ChunkRecord> {
        let usize_of = |key: &str| doc.get(key)?.as_i128().filter(|&v| v >= 0).map(|v| v as usize);
        let u64_of = |key: &str| doc.get(key)?.as_u128().map(|v| v as u64);
        Some(ChunkRecord {
            chunk: usize_of("chunk")?,
            lo: usize_of("lo")?,
            hi: usize_of("hi")?,
            bytes: u64_of("bytes")?,
            hash: u64_of("hash")?,
            quanta_total: EnergyQuanta::new(doc.get("quanta_total")?.as_u128()?),
            quanta_baseline: EnergyQuanta::new(doc.get("quanta_baseline")?.as_u128()?),
            error_sum_bits: u64_of("error_sum_bits")?,
            panics: usize_of("panics")?,
            degrade_after: u64_of("degrade_after")? as u32,
        })
    }
}

/// The terminal verdict record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictRecord {
    /// `complete`, `over_quota`, `deadline_exceeded` or `failed`.
    pub verdict: String,
    /// Trials whose output is committed (always a prefix `0..trials_done`).
    pub trials_done: usize,
}

/// A job's durable state as read back from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The canonical spec text from `spec.json`.
    pub spec_text: String,
    /// The verified committed chunk records, in order.
    pub chunks: Vec<ChunkRecord>,
    /// Verified committed length of `output.ndjson` (both files have been
    /// truncated to the verified prefix by the time this returns).
    pub committed_bytes: u64,
    /// The terminal verdict, when the job had finished.
    pub verdict: Option<VerdictRecord>,
}

/// An open job ledger with the two append handles.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    output: File,
    journal: File,
}

impl Journal {
    /// Creates a fresh job directory with a durable `spec.json`.
    pub fn create(dir: &Path, spec_text: &str) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let spec_path = dir.join("spec.json");
        let mut spec = File::create(&spec_path)?;
        spec.write_all(spec_text.as_bytes())?;
        spec.write_all(b"\n")?;
        spec.sync_all()?;
        sync_dir(dir);
        Self::open(dir)
    }

    /// Opens an existing job directory for appending.
    pub fn open(dir: &Path) -> io::Result<Journal> {
        let output =
            OpenOptions::new().create(true).append(true).open(dir.join("output.ndjson"))?;
        let journal =
            OpenOptions::new().create(true).append(true).open(dir.join("journal.ndjson"))?;
        Ok(Journal { dir: dir.to_path_buf(), output, journal })
    }

    /// The job directory this ledger lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Commits one chunk: output bytes first (fsync), then the record
    /// (fsync). `payload` must hash to `rec.hash` and be `rec.bytes` long.
    pub fn append_chunk(&mut self, payload: &[u8], rec: &ChunkRecord) -> io::Result<()> {
        debug_assert_eq!(payload.len() as u64, rec.bytes);
        debug_assert_eq!(fnv1a(payload), rec.hash);
        self.output.write_all(payload)?;
        self.output.sync_all()?;
        self.journal.write_all(rec.to_line().as_bytes())?;
        self.journal.sync_all()
    }

    /// Journals the terminal verdict (fsync'd).
    pub fn append_verdict(&mut self, verdict: &str, trials_done: usize) -> io::Result<()> {
        let line = format!(
            "{{\"rec\":\"verdict\",\"verdict\":{},\"trials_done\":{}}}\n",
            json_escape(verdict),
            trials_done,
        );
        self.journal.write_all(line.as_bytes())?;
        self.journal.sync_all()
    }
}

/// Best-effort directory fsync so a freshly created job dir survives a
/// crash (POSIX requires the parent sync for the entry itself).
fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Reads a job directory back, verifying and truncating to the longest
/// committed prefix (see the module docs for the torn-write rules).
///
/// # Errors
///
/// I/O errors only; a torn or hash-mismatched tail is repaired, not an
/// error. A missing or unreadable `spec.json` *is* an error — without the
/// spec the output bytes are unattributable.
pub fn recover(dir: &Path) -> io::Result<Recovered> {
    let spec_text = fs::read_to_string(dir.join("spec.json"))?.trim_end().to_owned();
    let output_path = dir.join("output.ndjson");
    let journal_path = dir.join("journal.ndjson");
    let output_bytes = match fs::read(&output_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let journal_bytes = match fs::read(&journal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };

    let mut chunks = Vec::new();
    let mut verdict = None;
    let mut committed_bytes = 0u64;
    // Journal bytes surviving verification: grows line by line and becomes
    // the truncation point the moment anything fails to verify.
    let mut good_journal_len = 0usize;
    let mut cursor = 0usize;
    while cursor < journal_bytes.len() {
        let Some(nl) = journal_bytes[cursor..].iter().position(|&b| b == b'\n') else {
            break; // torn trailing line: drop it
        };
        let line = &journal_bytes[cursor..cursor + nl];
        let next = cursor + nl + 1;
        let Ok(text) = std::str::from_utf8(line) else { break };
        let Ok(doc) = Json::parse(text) else { break };
        match doc.get("rec").and_then(|r| r.as_str()) {
            Some("chunk") => {
                let Some(rec) = ChunkRecord::from_json(&doc) else { break };
                if rec.chunk != chunks.len() || verdict.is_some() {
                    break; // out-of-sequence record: corruption, stop here
                }
                let lo = committed_bytes as usize;
                let hi = lo + rec.bytes as usize;
                if hi > output_bytes.len() || fnv1a(&output_bytes[lo..hi]) != rec.hash {
                    break; // output never made it (or tore): chunk re-runs
                }
                committed_bytes = hi as u64;
                chunks.push(rec);
            }
            Some("verdict") => {
                let (Some(v), Some(n)) = (
                    doc.get("verdict").and_then(|v| v.as_str()),
                    doc.get("trials_done").and_then(|n| n.as_i128()),
                ) else {
                    break;
                };
                verdict =
                    Some(VerdictRecord { verdict: v.to_owned(), trials_done: n.max(0) as usize });
            }
            _ => break,
        }
        good_journal_len = next;
        cursor = next;
    }

    if good_journal_len < journal_bytes.len() {
        truncate_to(&journal_path, good_journal_len as u64)?;
    }
    if (committed_bytes as usize) < output_bytes.len() {
        truncate_to(&output_path, committed_bytes)?;
    }
    Ok(Recovered { spec_text, chunks, committed_bytes, verdict })
}

fn truncate_to(path: &Path, len: u64) -> io::Result<()> {
    if !path.exists() {
        return Ok(());
    }
    let f = OpenOptions::new().write(true).open(path)?;
    f.set_len(len)?;
    f.sync_all()
}

/// Reads `len` committed bytes starting at `offset` from a job's output
/// file (the streaming threads' read path — they never touch the append
/// handle and only ever read bytes a journal record has blessed).
pub fn read_output(dir: &Path, offset: u64, len: usize) -> io::Result<Vec<u8>> {
    let mut f = File::open(dir.join("output.ndjson"))?;
    f.seek(SeekFrom::Start(offset))?;
    let mut buf = vec![0u8; len];
    f.read_exact(&mut buf)?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(chunk: usize, payload: &[u8], degrade: u32) -> ChunkRecord {
        ChunkRecord {
            chunk,
            lo: chunk * 2,
            hi: chunk * 2 + 2,
            bytes: payload.len() as u64,
            hash: fnv1a(payload),
            quanta_total: EnergyQuanta::new(100 + chunk as u128),
            quanta_baseline: EnergyQuanta::new(200 + chunk as u128),
            error_sum_bits: (0.125f64 * (chunk as f64 + 1.0)).to_bits(),
            panics: 0,
            degrade_after: degrade,
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("enerj-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("tempdir");
        dir
    }

    #[test]
    fn round_trips_chunks_and_verdict() {
        let dir = tempdir("roundtrip");
        let mut j = Journal::create(&dir, "{\"spec\":true}").expect("create");
        let (a, b) = (b"line-a\n".as_slice(), b"line-b\n".as_slice());
        j.append_chunk(a, &rec(0, a, 0)).expect("chunk 0");
        j.append_chunk(b, &rec(1, b, 1)).expect("chunk 1");
        j.append_verdict("complete", 4).expect("verdict");
        let r = recover(&dir).expect("recover");
        assert_eq!(r.spec_text, "{\"spec\":true}");
        assert_eq!(r.chunks.len(), 2);
        assert_eq!(r.chunks[1], rec(1, b, 1));
        assert_eq!(r.committed_bytes, (a.len() + b.len()) as u64);
        assert_eq!(
            r.verdict,
            Some(VerdictRecord { verdict: "complete".to_owned(), trials_done: 4 })
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_drops_torn_journal_tail_and_orphan_output() {
        let dir = tempdir("torn");
        let mut j = Journal::create(&dir, "{}").expect("create");
        let a = b"committed\n".as_slice();
        j.append_chunk(a, &rec(0, a, 0)).expect("chunk 0");
        // Crash mid-commit: orphan output bytes, then a torn journal line.
        fs::OpenOptions::new()
            .append(true)
            .open(dir.join("output.ndjson"))
            .unwrap()
            .write_all(b"orphan bytes with no journal record")
            .unwrap();
        fs::OpenOptions::new()
            .append(true)
            .open(dir.join("journal.ndjson"))
            .unwrap()
            .write_all(b"{\"rec\":\"chunk\",\"chunk\":1,\"lo\":2,")
            .unwrap();
        let r = recover(&dir).expect("recover");
        assert_eq!(r.chunks.len(), 1);
        assert_eq!(r.committed_bytes, a.len() as u64);
        assert!(r.verdict.is_none());
        // Both files were physically truncated to the verified prefix.
        assert_eq!(fs::read(dir.join("output.ndjson")).unwrap(), a);
        let journal = fs::read_to_string(dir.join("journal.ndjson")).unwrap();
        assert!(journal.ends_with('\n'));
        assert_eq!(journal.lines().count(), 1);
        // Recovery is idempotent and appending continues cleanly.
        let mut j2 = Journal::open(&dir).expect("reopen");
        let b = b"after-crash\n".as_slice();
        j2.append_chunk(b, &rec(1, b, 0)).expect("chunk 1");
        let r2 = recover(&dir).expect("recover again");
        assert_eq!(r2.chunks.len(), 2);
        assert_eq!(r2.committed_bytes, (a.len() + b.len()) as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_rejects_hash_mismatch() {
        let dir = tempdir("hash");
        let mut j = Journal::create(&dir, "{}").expect("create");
        let a = b"good\n".as_slice();
        j.append_chunk(a, &rec(0, a, 0)).expect("chunk 0");
        // A record whose payload never hit the output file (crash between
        // the two appends, with the output write lost entirely).
        let phantom = rec(1, b"never written\n", 0);
        j.journal.write_all(phantom.to_line().as_bytes()).unwrap();
        j.journal.sync_all().unwrap();
        let r = recover(&dir).expect("recover");
        assert_eq!(r.chunks.len(), 1, "phantom record must be dropped");
        assert_eq!(r.committed_bytes, a.len() as u64);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_output_serves_committed_ranges() {
        let dir = tempdir("read");
        let mut j = Journal::create(&dir, "{}").expect("create");
        let a = b"0123456789\n".as_slice();
        j.append_chunk(a, &rec(0, a, 0)).expect("chunk 0");
        assert_eq!(read_output(&dir, 2, 4).expect("read"), b"2345");
        fs::remove_dir_all(&dir).ok();
    }
}
