//! End-to-end robustness tests for `campaignd`: kill -9 recovery with
//! byte-identity, tenant quota enforcement (stop and degrade), admission
//! control, lease-based reclamation of dead and stalled workers, and
//! client-failure isolation. Every test spawns the real server binary and
//! talks to it over real sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use enerj_serve::client::{Client, Submitted};

const WAIT: Duration = Duration::from_secs(120);

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn start(state_dir: &Path, extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_campaignd"))
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--state-dir")
            .arg(state_dir)
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn campaignd");
        let stdout = child.stdout.take().expect("piped stdout");
        let banner =
            BufReader::new(stdout).lines().next().and_then(|l| l.ok()).expect("campaignd banner");
        let addr = banner.rsplit(' ').next().unwrap_or_default().to_owned();
        assert!(addr.contains(':'), "unexpected banner: {banner}");
        Daemon { child, addr }
    }

    fn client(&self) -> Client {
        Client::new(self.addr.clone()).with_timeout(Duration::from_secs(30))
    }

    /// SIGKILL — no drain, no final fsync beyond what already committed.
    fn kill9(&mut self) {
        self.child.kill().expect("kill -9");
        self.child.wait().expect("reap");
    }

    fn shutdown(&mut self) {
        let _ = self.client().shutdown();
        let _ = self.child.wait();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("enerj-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

fn spec(tenant: &str, levels: &str, runs: u64, chunk: usize, extra: &str) -> String {
    format!(
        "{{\"schema\":\"enerj-serve/1\",\"tenant\":\"{tenant}\",\"apps\":[\"MonteCarlo\"],\
         \"levels\":[{levels}],\"runs\":{runs},\"chunk\":{chunk}{extra}}}"
    )
}

fn submit_ok(client: &Client, spec: &str) -> String {
    match client.submit(spec).expect("submit") {
        Submitted::Accepted { job_id, .. } => job_id,
        Submitted::Rejected { error, detail, .. } => panic!("rejected ({error}): {detail}"),
    }
}

fn collect(client: &Client, job: &str, from_line: u64) -> Vec<u8> {
    let mut bytes = Vec::new();
    client
        .stream_lines(job, from_line, |line| {
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
        })
        .expect("stream");
    bytes
}

fn status_field(client: &Client, job: &str, field: &str) -> i128 {
    client
        .status(job)
        .expect("status")
        .json()
        .expect("status json")
        .get(field)
        .and_then(|v| v.as_i128())
        .unwrap_or(-1)
}

/// Acceptance criterion 1: kill -9 mid-campaign at a randomized committed
/// boundary, restart, resume — the full NDJSON stream is byte-identical
/// to an uninterrupted run on a separate server, the exact quanta agree,
/// and a client resuming with `from_line` sees no duplicated or lost line.
#[test]
fn kill_resume_stream_is_byte_identical() {
    let two_levels = "\"Mild\",\"Aggressive\"";
    let job_spec = spec("t1", two_levels, 3, 2, "");
    let total_trials = 6;

    let mut clean = Daemon::start(&tempdir("clean"), &["--workers", "2"]);
    let clean_client = clean.client();
    let clean_job = submit_ok(&clean_client, &job_spec);
    assert_eq!(clean_client.wait(&clean_job, WAIT).expect("clean"), "complete");
    let clean_bytes = collect(&clean_client, &clean_job, 0);
    assert_eq!(clean_bytes.iter().filter(|&&b| b == b'\n').count(), total_trials);
    let clean_summary = clean_client.summary(&clean_job).expect("summary").json().expect("json");
    clean.shutdown();

    // Randomized kill point strictly inside the campaign.
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos() as usize;
    let kill_after = 1 + nanos % (total_trials - 2);
    let crash_dir = tempdir("crash");
    let mut crash = Daemon::start(&crash_dir, &["--workers", "2"]);
    let crash_client = crash.client();
    let crash_job = submit_ok(&crash_client, &job_spec);
    // Collect the pre-kill prefix like a real client would: a live stream
    // that the kill below severs mid-flight.
    let prefix = std::sync::Arc::new(std::sync::Mutex::new(Vec::<String>::new()));
    let streamer = {
        let prefix = std::sync::Arc::clone(&prefix);
        let client = crash_client.clone();
        let job = crash_job.clone();
        std::thread::spawn(move || {
            let _ = client.stream_lines(&job, 0, |line| {
                prefix.lock().expect("prefix").push(line.to_owned());
            });
        })
    };
    while status_field(&crash_client, &crash_job, "trials_committed") < kill_after as i128 {
        std::thread::sleep(Duration::from_millis(2));
    }
    crash.kill9();
    streamer.join().expect("streamer thread");
    let prefix_lines: Vec<String> = prefix.lock().expect("prefix").clone();

    let mut resumed = Daemon::start(&crash_dir, &["--workers", "2"]);
    let resumed_client = resumed.client();
    assert_eq!(resumed_client.wait(&crash_job, WAIT).expect("resumed"), "complete");
    let crash_bytes = collect(&resumed_client, &crash_job, 0);
    assert_eq!(
        clean_bytes, crash_bytes,
        "kill -9 after {kill_after} trials must not change a single byte"
    );
    let resumed_summary =
        resumed_client.summary(&crash_job).expect("summary").json().expect("json");
    for field in ["quanta_total", "quanta_baseline", "trials_done", "mean_error", "panics"] {
        assert_eq!(
            clean_summary.get(field),
            resumed_summary.get(field),
            "summary field `{field}` diverged across kill-resume"
        );
    }
    // Client-side resume: prefix collected before the kill + `from_line`
    // suffix collected after concatenates to the identical stream.
    let suffix = collect(&resumed_client, &crash_job, prefix_lines.len() as u64);
    let mut stitched: Vec<u8> = Vec::new();
    for line in &prefix_lines {
        stitched.extend_from_slice(line.as_bytes());
        stitched.push(b'\n');
    }
    stitched.extend_from_slice(&suffix);
    assert_eq!(clean_bytes, stitched, "from_line resume must stitch exactly");
    resumed.shutdown();
}

/// Acceptance criterion 2 (stop policy): a tenant crossing its quota gets
/// an `over_quota` verdict with partial results at a chunk boundary, and
/// further submissions are rejected 403 non-retriable while an unrelated
/// tenant on the same server is untouched.
#[test]
fn over_quota_tenant_stops_with_partial_results() {
    let dir = tempdir("quota-stop");
    // One MonteCarlo Mild trial costs ~1.2e11 quanta; a 1000-quanta quota
    // trips on the very first chunk commit.
    let mut d = Daemon::start(&dir, &["--workers", "2", "--tenant", "capped:1000:stop"]);
    let client = d.client();
    let job = submit_ok(&client, &spec("capped", "\"Mild\"", 4, 2, ""));
    assert_eq!(client.wait(&job, WAIT).expect("job"), "over_quota");
    let summary = client.summary(&job).expect("summary").json().expect("json");
    assert_eq!(summary.get("trials_done").and_then(|v| v.as_i128()), Some(2));
    assert_eq!(collect(&client, &job, 0).iter().filter(|&&b| b == b'\n').count(), 2);

    // The tenant is now exhausted: admission rejects, non-retriable.
    match client.submit(&spec("capped", "\"Mild\"", 4, 2, "")).expect("submit") {
        Submitted::Rejected { status, error, retriable, .. } => {
            assert_eq!(status, 403);
            assert_eq!(error, "over_quota");
            assert!(!retriable, "quota exhaustion is not retriable");
        }
        Submitted::Accepted { .. } => panic!("exhausted tenant must be rejected"),
    }
    // Chaos isolation: an unrelated tenant still completes normally.
    let other = submit_ok(&client, &spec("fine", "\"Mild\"", 2, 2, ""));
    assert_eq!(client.wait(&other, WAIT).expect("other tenant"), "complete");
    let t = client.tenant("capped").expect("tenant").json().expect("json");
    assert!(t.get("spent").and_then(|v| v.as_u128()).unwrap_or(0) > 1000);
    d.shutdown();
}

/// Over-budget `degrade` policy: each over-budget chunk commit walks the
/// remaining trials one rung down the scheduler ladder (visible as
/// `scheduled_level` in the stream), then hard-stops at the Aggressive
/// floor with `over_quota`.
#[test]
fn degrade_policy_walks_the_ladder_then_stops() {
    let dir = tempdir("quota-degrade");
    let mut d = Daemon::start(&dir, &["--workers", "1", "--tenant", "lab:1000:degrade"]);
    let client = d.client();
    // 6 Precise trials, chunk 1: commit 0 trips the quota (degrade -> 1),
    // commits 1..3 keep walking (Mild, Medium, Aggressive), commit 3 is
    // at the floor and still over -> stop. Exactly 4 trials committed.
    let job = submit_ok(&client, &spec("lab", "\"Precise\"", 6, 1, ""));
    assert_eq!(client.wait(&job, WAIT).expect("job"), "over_quota");
    let summary = client.summary(&job).expect("summary").json().expect("json");
    assert_eq!(summary.get("trials_done").and_then(|v| v.as_i128()), Some(4));
    assert_eq!(summary.get("degrade_final").and_then(|v| v.as_i128()), Some(3));
    let text = String::from_utf8(collect(&client, &job, 0)).expect("utf8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4);
    assert!(lines[0].contains("\"scheduled_level\":null"), "first trial ran as requested");
    for (line, rung) in lines[1..].iter().zip(["Mild", "Medium", "Aggressive"]) {
        assert!(
            line.contains(&format!("\"scheduled_level\":\"{rung}\"")),
            "expected rung {rung} in {line}"
        );
    }
    d.shutdown();
}

/// Admission control: with the queue full, submissions are rejected 429
/// `queue_full`, retriable, with a backoff hint — and succeed after the
/// queue drains.
#[test]
fn queue_full_rejection_is_retriable_with_backoff() {
    let dir = tempdir("queue");
    // Stall the first claim so job 1 reliably occupies the queue.
    let mut d = Daemon::start(
        &dir,
        &[
            "--workers",
            "1",
            "--queue-cap",
            "1",
            "--test-stall-claim",
            "1:1500",
            "--lease-secs",
            "30",
        ],
    );
    let client = d.client();
    let first = submit_ok(&client, &spec("t1", "\"Mild\"", 1, 1, ""));
    match client.submit(&spec("t1", "\"Mild\"", 1, 1, "")).expect("submit") {
        Submitted::Rejected { status, error, retriable, backoff_ms, .. } => {
            assert_eq!(status, 429);
            assert_eq!(error, "queue_full");
            assert!(retriable, "queue pressure is transient");
            assert!(backoff_ms.is_some(), "server must hint a backoff");
        }
        Submitted::Accepted { .. } => panic!("over-capacity submit must be rejected"),
    }
    assert_eq!(client.wait(&first, WAIT).expect("first"), "complete");
    let retry = submit_ok(&client, &spec("t1", "\"Mild\"", 1, 1, ""));
    assert_eq!(client.wait(&retry, WAIT).expect("retry"), "complete");
    d.shutdown();
}

/// Acceptance criterion 3a: a worker that dies mid-chunk (panic) loses its
/// lease; the chunk is reclaimed, re-run by a surviving worker, and the
/// output is byte-identical to a run on a healthy server.
#[test]
fn dead_worker_chunks_are_reclaimed_via_leases() {
    let job_spec = spec("t1", "\"Mild\"", 6, 2, "");
    let mut healthy = Daemon::start(&tempdir("healthy"), &["--workers", "2"]);
    let hc = healthy.client();
    let healthy_job = submit_ok(&hc, &job_spec);
    assert_eq!(hc.wait(&healthy_job, WAIT).expect("healthy"), "complete");
    let expected = collect(&hc, &healthy_job, 0);
    healthy.shutdown();

    let mut chaos = Daemon::start(
        &tempdir("panic-worker"),
        &["--workers", "2", "--lease-secs", "0.4", "--test-panic-claim", "1"],
    );
    let cc = chaos.client();
    let job = submit_ok(&cc, &job_spec);
    assert_eq!(cc.wait(&job, WAIT).expect("chaos"), "complete");
    assert_eq!(collect(&cc, &job, 0), expected, "reclaimed chunks must re-run identically");
    chaos.shutdown();
}

/// Acceptance criterion 3b: a *stalled* worker (alive but wedged past its
/// lease) is treated the same — the chunk re-runs elsewhere and the
/// stalled worker's late result is discarded by the generation check, so
/// nothing is committed twice.
#[test]
fn stalled_worker_chunks_are_reclaimed_and_not_double_committed() {
    let job_spec = spec("t1", "\"Mild\"", 6, 2, "");
    let mut healthy = Daemon::start(&tempdir("healthy2"), &["--workers", "2"]);
    let hc = healthy.client();
    let healthy_job = submit_ok(&hc, &job_spec);
    assert_eq!(hc.wait(&healthy_job, WAIT).expect("healthy"), "complete");
    let expected = collect(&hc, &healthy_job, 0);
    healthy.shutdown();

    let mut chaos = Daemon::start(
        &tempdir("stall-worker"),
        &["--workers", "2", "--lease-secs", "0.4", "--test-stall-claim", "2:2500"],
    );
    let cc = chaos.client();
    let job = submit_ok(&cc, &job_spec);
    assert_eq!(cc.wait(&job, WAIT).expect("chaos"), "complete");
    let got = collect(&cc, &job, 0);
    assert_eq!(got, expected, "stalled-worker reclaim must not duplicate or reorder lines");
    // Wait out the stalled worker's late commit attempt, then re-check
    // the durable bytes: the generation check must have discarded it.
    std::thread::sleep(Duration::from_millis(3000));
    assert_eq!(collect(&cc, &job, 0), expected, "late result must be discarded, not appended");
    chaos.shutdown();
}

/// Acceptance criterion 2 (chaos): a client that connects, reads a few
/// bytes and vanishes — and a slow reader that never drains its socket —
/// disturb neither the campaign nor other tenants.
#[test]
fn client_disconnect_and_slow_reader_are_isolated() {
    let dir = tempdir("clients");
    let mut d = Daemon::start(&dir, &["--workers", "2", "--write-timeout-secs", "1"]);
    let client = d.client();
    let job_a = submit_ok(&client, &spec("streamy", "\"Mild\",\"Aggressive\"", 3, 2, ""));

    // Rude client: read a little, then disconnect mid-stream.
    {
        let mut raw = TcpStream::connect(&d.addr).expect("connect");
        raw.write_all(
            format!("GET /jobs/{job_a}/stream HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("request");
        let mut tiny = [0u8; 64];
        let _ = raw.read(&mut tiny);
        // dropped here: connection reset mid-stream
    }
    // Slow reader: opens the stream and never reads. The server's write
    // timeout bounds the damage to this one socket.
    let slow = TcpStream::connect(&d.addr).expect("connect");
    {
        let mut s = slow.try_clone().expect("clone");
        s.write_all(
            format!("GET /jobs/{job_a}/stream HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("request");
    }

    // Another tenant's job completes promptly despite both misbehaving
    // clients, and job A itself is unharmed.
    let job_b = submit_ok(&client, &spec("prompt", "\"Mild\"", 2, 2, ""));
    assert_eq!(client.wait(&job_b, WAIT).expect("job b"), "complete");
    assert_eq!(client.wait(&job_a, WAIT).expect("job a"), "complete");
    let full = collect(&client, &job_a, 0);
    assert_eq!(full.iter().filter(|&&b| b == b'\n').count(), 6);
    drop(slow);
    d.shutdown();
}

/// A job deadline truncates at a chunk boundary with an explicit
/// `deadline_exceeded` verdict, and the committed prefix stays streamable.
#[test]
fn job_deadline_truncates_with_explicit_verdict() {
    let dir = tempdir("deadline");
    // One worker stalled 1.5s on its first claim + a 0.5s deadline: the
    // deadline fires before any chunk commits.
    let mut d = Daemon::start(
        &dir,
        &["--workers", "1", "--lease-secs", "30", "--test-stall-claim", "1:1500"],
    );
    let client = d.client();
    let job = submit_ok(&client, &spec("t1", "\"Mild\"", 4, 2, ",\"deadline_secs\":0.5"));
    assert_eq!(client.wait(&job, WAIT).expect("job"), "deadline_exceeded");
    let summary = client.summary(&job).expect("summary").json().expect("json");
    let done = summary.get("trials_done").and_then(|v| v.as_i128()).unwrap_or(-1);
    assert!((0..8).contains(&done), "deadline must truncate, got {done}");
    assert_eq!(
        collect(&client, &job, 0).iter().filter(|&&b| b == b'\n').count() as i128,
        done,
        "stream serves exactly the committed prefix"
    );
    d.shutdown();
}

/// Malformed specs are rejected 400 with a non-retriable typed error.
#[test]
fn bad_specs_are_rejected_with_typed_errors() {
    let dir = tempdir("badspec");
    let mut d = Daemon::start(&dir, &["--workers", "1"]);
    let client = d.client();
    for bad in [
        "not json at all",
        "{\"schema\":\"enerj-serve/2\",\"tenant\":\"t\",\"apps\":[\"MonteCarlo\"],\"levels\":[\"Mild\"],\"runs\":1}",
        "{\"schema\":\"enerj-serve/1\",\"tenant\":\"t\",\"apps\":[\"Nope\"],\"levels\":[\"Mild\"],\"runs\":1}",
        "{\"schema\":\"enerj-serve/1\",\"tenant\":\"t\",\"apps\":[\"MonteCarlo\"],\"levels\":[\"Mild\"],\"runs\":0}",
    ] {
        match client.submit(bad).expect("submit") {
            Submitted::Rejected { status, error, retriable, .. } => {
                assert_eq!(status, 400, "spec: {bad}");
                assert_eq!(error, "bad_request");
                assert!(!retriable);
            }
            Submitted::Accepted { .. } => panic!("must reject: {bad}"),
        }
    }
    d.shutdown();
}
