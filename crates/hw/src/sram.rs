//! Approximate SRAM: registers and data cache under lowered supply voltage
//! (section 4.2, "SRAM supply voltage").
//!
//! Per Kumar's characterization (cited in the paper), errors in
//! low-voltage SRAM are dominated by **read upsets** — the stored bit flips
//! while being read — and **write failures** — the wrong bit is written.
//! Both occur per bit, per access, with the probabilities of Table 2. Soft
//! errors in idle cells are comparatively rare and are not modeled, matching
//! the paper.
//!
//! Following section 5.3, stack data is considered SRAM-resident. The
//! embedded API routes every read and write of an approximate stack value
//! through [`Hardware::sram_read`] / [`Hardware::sram_write`]; each access
//! also contributes one access-quantum of byte-seconds to the storage
//! statistics, which is how the SRAM bars of Figure 3 are measured.

use crate::Hardware;

impl Hardware {
    /// Reads `width` bits of approximate SRAM data, possibly upsetting bits.
    ///
    /// The returned pattern is the *observed* value; per the read-upset
    /// model the stored value itself is also corrupted, so callers should
    /// treat the returned value as the new content.
    ///
    /// The steady-state cost is two integer adds: one bit-quantum of
    /// storage accounting and one decrement of the read-upset countdown
    /// (see [`crate::fault::GeomCountdown`]). The RNG is touched only when
    /// the countdown lands inside this access.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    #[inline]
    pub fn sram_read(&mut self, bits: u64, width: u32, approx: bool) -> u64 {
        assert!(width <= 64, "bad SRAM access width {width}");
        self.pending_sram_bits[usize::from(approx)] += u64::from(width);
        if !approx || self.sched.sram_read.pass(width) {
            return bits;
        }
        self.sram_read_fault(bits, width)
    }

    /// Fault payload of a read upset; out of line so the fault-free access
    /// carries none of the bit-walking machinery. Shared with the batched
    /// entry point ([`Hardware::sram_read_slice`]).
    #[cold]
    #[inline(never)]
    pub(crate) fn sram_read_fault(&mut self, bits: u64, width: u32) -> u64 {
        let out = self.sched.sram_read.flip_bits(bits, width, &mut self.rng);
        if out != bits {
            self.note_fault(
                crate::trace::FaultKind::SramReadUpset,
                width,
                (out ^ bits).count_ones(),
            );
        }
        out
    }

    /// Writes `width` bits to approximate SRAM, possibly failing some bits.
    ///
    /// Returns the pattern actually stored. Amortized like
    /// [`Hardware::sram_read`], on an independent write-failure countdown.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    #[inline]
    pub fn sram_write(&mut self, bits: u64, width: u32, approx: bool) -> u64 {
        assert!(width <= 64, "bad SRAM access width {width}");
        self.pending_sram_bits[usize::from(approx)] += u64::from(width);
        if !approx || self.sched.sram_write.pass(width) {
            return bits;
        }
        self.sram_write_fault(bits, width)
    }

    /// Fault payload of a write failure; out of line like
    /// [`Hardware::sram_read_fault`]. Shared with the batched entry point
    /// ([`Hardware::sram_write_slice`]).
    #[cold]
    #[inline(never)]
    pub(crate) fn sram_write_fault(&mut self, bits: u64, width: u32) -> u64 {
        let out = self.sched.sram_write.flip_bits(bits, width, &mut self.rng);
        if out != bits {
            self.note_fault(
                crate::trace::FaultKind::SramWriteFailure,
                width,
                (out ^ bits).count_ones(),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{HwConfig, Level, StrategyMask};
    use crate::stats::MemKind;
    use crate::Hardware;

    #[test]
    fn precise_accesses_never_fault() {
        let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 0);
        for i in 0..1000u64 {
            assert_eq!(hw.sram_read(i, 64, false), i);
            assert_eq!(hw.sram_write(i, 64, false), i);
        }
        assert_eq!(hw.stats().faults_injected, 0);
    }

    #[test]
    fn aggressive_reads_eventually_upset() {
        // p = 1e-3 per bit, 64 bits, 10_000 reads: expect ~640 flips.
        let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 5);
        let mut upsets = 0u32;
        for _ in 0..10_000 {
            upsets += hw.sram_read(0, 64, true).count_ones();
        }
        assert!(upsets > 400 && upsets < 900, "upsets = {upsets}");
    }

    #[test]
    fn mild_reads_essentially_never_upset() {
        // p = 10^-16.7: ten thousand reads should see nothing.
        let mut hw = Hardware::new(HwConfig::for_level(Level::Mild), 5);
        for _ in 0..10_000 {
            assert_eq!(hw.sram_read(u64::MAX, 64, true), u64::MAX);
        }
    }

    #[test]
    fn write_failures_more_likely_than_read_upsets_at_medium() {
        // Table 2: medium write failure 10^-4.94 vs read upset 10^-7.4.
        // Statistically verify the ordering that underlies the paper's
        // observation that write errors hurt more than read errors.
        let mut hw = Hardware::new(HwConfig::for_level(Level::Medium), 5);
        let mut write_flips = 0u32;
        let mut read_flips = 0u32;
        for _ in 0..200_000 {
            write_flips += hw.sram_write(0, 64, true).count_ones();
            read_flips += hw.sram_read(0, 64, true).count_ones();
        }
        assert!(
            write_flips > read_flips,
            "writes ({write_flips}) should fail more than reads ({read_flips})"
        );
        assert!(write_flips > 0);
    }

    #[test]
    fn storage_accounting_splits_by_precision() {
        let mut hw = Hardware::new(HwConfig::for_level(Level::Mild), 0);
        hw.sram_read(0, 64, true);
        hw.sram_read(0, 64, true);
        hw.sram_read(0, 64, false);
        let s = hw.stats();
        let frac = s.approx_storage_fraction(MemKind::Sram);
        assert!((frac - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mask_disables_each_direction_independently() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.sram_read_upset_prob = 1.0;
        cfg.params.sram_write_failure_prob = 1.0;
        cfg.mask = StrategyMask::NONE.with_sram_write(true);
        let mut hw = Hardware::new(cfg, 0);
        // Reads disabled: identity.
        assert_eq!(hw.sram_read(0xAB, 8, true), 0xAB);
        // Writes enabled with p=1: all 8 bits invert.
        assert_eq!(hw.sram_write(0x00, 8, true), 0xFF);
    }
}
