//! Approximation strategy configuration (paper Table 2).
//!
//! The paper evaluates three levels of approximation aggressiveness — *Mild*,
//! *Medium* and *Aggressive* — each a bundle of per-strategy error
//! probabilities and energy-saving factors. All *Medium* values are taken from
//! the literature the paper cites; values marked with `*` in Table 2 are the
//! authors' educated guesses, reproduced here verbatim.

use std::fmt;

/// Aggressiveness level of approximation (Table 2 columns).
///
/// # Examples
///
/// ```
/// use enerj_hw::config::Level;
///
/// let params = Level::Medium.params();
/// assert_eq!(params.float_mantissa_bits, 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Level {
    /// Lowest error probabilities; smallest energy savings.
    Mild,
    /// The literature-backed middle configuration.
    Medium,
    /// Highest error probabilities; largest energy savings.
    Aggressive,
}

impl Level {
    /// All levels, in increasing aggressiveness — the order of the numbered
    /// bars ("1", "2", "3") in Figures 4 and 5.
    pub const ALL: [Level; 3] = [Level::Mild, Level::Medium, Level::Aggressive];

    /// The parameter bundle for this level (one column of Table 2).
    pub fn params(self) -> ApproxParams {
        match self {
            Level::Mild => ApproxParams::MILD,
            Level::Medium => ApproxParams::MEDIUM,
            Level::Aggressive => ApproxParams::AGGRESSIVE,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Level::Mild => "Mild",
            Level::Medium => "Medium",
            Level::Aggressive => "Aggressive",
        };
        f.write_str(name)
    }
}

/// Error model for approximate functional units (section 4.2).
///
/// The paper considers three possibilities for the output of a functional
/// unit that suffers a timing error and finds the random-value model both the
/// most detrimental to output quality and the most realistic; it is the
/// default used for Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ErrorMode {
    /// A single uniformly-chosen bit of the result is flipped.
    SingleBitFlip,
    /// The unit returns the last value it computed.
    LastValue,
    /// The unit returns a uniformly random bit pattern (default).
    #[default]
    RandomValue,
}

impl ErrorMode {
    /// All error modes, in the order discussed in section 6.2.
    pub const ALL: [ErrorMode; 3] =
        [ErrorMode::SingleBitFlip, ErrorMode::LastValue, ErrorMode::RandomValue];
}

impl fmt::Display for ErrorMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ErrorMode::SingleBitFlip => "single-bit-flip",
            ErrorMode::LastValue => "last-value",
            ErrorMode::RandomValue => "random-value",
        };
        f.write_str(name)
    }
}

/// One column of Table 2: per-strategy error probabilities and energy savings.
///
/// Probabilities are per-bit unless noted. Savings are fractions in `[0, 1]`
/// of the energy attributable to the corresponding component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxParams {
    /// DRAM refresh reduction: per-second, per-bit flip probability.
    pub dram_flip_per_second: f64,
    /// Fraction of memory (DRAM) power saved by the reduced refresh rate.
    pub dram_power_saved: f64,
    /// SRAM: probability that a bit is flipped while being read.
    pub sram_read_upset_prob: f64,
    /// SRAM: probability that a written bit is stored incorrectly.
    pub sram_write_failure_prob: f64,
    /// Fraction of SRAM supply power saved by the lowered supply voltage.
    pub sram_power_saved: f64,
    /// Mantissa bits retained for approximate `f32` operations (of 23).
    pub float_mantissa_bits: u32,
    /// Mantissa bits retained for approximate `f64` operations (of 52).
    pub double_mantissa_bits: u32,
    /// Fraction of floating-point operation energy saved by width reduction.
    pub fp_energy_saved: f64,
    /// Probability that an approximate ALU operation suffers a timing error.
    pub timing_error_prob: f64,
    /// Fraction of integer operation energy saved by voltage scaling.
    pub alu_energy_saved: f64,
}

// The SRAM probabilities below are full decimal expansions of the paper's
// powers of ten (10^-16.7 etc.); the trailing digits document provenance.
#[allow(clippy::excessive_precision)]
impl ApproxParams {
    /// Table 2, "Mild" column.
    pub const MILD: ApproxParams = ApproxParams {
        dram_flip_per_second: 1e-9,
        dram_power_saved: 0.17,
        sram_read_upset_prob: 1.9952623149688828e-17, // 10^-16.7
        sram_write_failure_prob: 2.570395782768864e-6, // 10^-5.59
        sram_power_saved: 0.70,
        float_mantissa_bits: 16,
        double_mantissa_bits: 32,
        fp_energy_saved: 0.32,
        timing_error_prob: 1e-6,
        alu_energy_saved: 0.12,
    };

    /// Table 2, "Medium" column. Every value here is taken from the
    /// literature cited in section 4.2.
    pub const MEDIUM: ApproxParams = ApproxParams {
        dram_flip_per_second: 1e-5,
        dram_power_saved: 0.22,
        sram_read_upset_prob: 3.981071705534969e-8, // 10^-7.4
        sram_write_failure_prob: 1.1481536214968811e-5, // 10^-4.94
        sram_power_saved: 0.80,
        float_mantissa_bits: 8,
        double_mantissa_bits: 16,
        fp_energy_saved: 0.78,
        timing_error_prob: 1e-4,
        alu_energy_saved: 0.22,
    };

    /// Table 2, "Aggressive" column.
    pub const AGGRESSIVE: ApproxParams = ApproxParams {
        dram_flip_per_second: 1e-3,
        dram_power_saved: 0.24,
        sram_read_upset_prob: 1e-3,
        sram_write_failure_prob: 1e-3,
        sram_power_saved: 0.90,
        float_mantissa_bits: 4,
        double_mantissa_bits: 8,
        fp_energy_saved: 0.85,
        timing_error_prob: 1e-2,
        alu_energy_saved: 0.30,
    };

    /// Truly precise hardware: zero error probabilities *and* zero claimed
    /// savings, full mantissas. Unlike [`StrategyMask::NONE`] over a Table 2
    /// level — which silences faults but still *accounts* the level's energy
    /// savings — a run under these parameters is charged exactly the precise
    /// baseline (`scaled == baseline` for every component). This is the cost
    /// model of the scheduler's `Precise` rung.
    pub const PRECISE: ApproxParams = ApproxParams {
        dram_flip_per_second: 0.0,
        dram_power_saved: 0.0,
        sram_read_upset_prob: 0.0,
        sram_write_failure_prob: 0.0,
        sram_power_saved: 0.0,
        float_mantissa_bits: 23,
        double_mantissa_bits: 52,
        fp_energy_saved: 0.0,
        timing_error_prob: 0.0,
        alu_energy_saved: 0.0,
    };
}

/// Which approximation strategies are enabled.
///
/// The section 6.2 ablation study runs the benchmark suite "with each
/// optimization enabled in isolation"; this mask is how the harness expresses
/// those configurations. [`StrategyMask::ALL`] is the full-suite default.
///
/// # Examples
///
/// ```
/// use enerj_hw::config::StrategyMask;
///
/// let only_dram = StrategyMask::NONE.with_dram(true);
/// assert!(only_dram.dram && !only_dram.fu_timing);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyMask {
    /// DRAM refresh-rate reduction (decay of approximate heap data).
    pub dram: bool,
    /// SRAM read upsets on approximate stack/register data.
    pub sram_read: bool,
    /// SRAM write failures on approximate stack/register data.
    pub sram_write: bool,
    /// Timing errors in approximate functional units (voltage scaling).
    pub fu_timing: bool,
    /// Floating-point mantissa width reduction.
    pub fp_width: bool,
}

impl StrategyMask {
    /// Every strategy enabled (the configuration of Figures 4 and 5).
    pub const ALL: StrategyMask = StrategyMask {
        dram: true,
        sram_read: true,
        sram_write: true,
        fu_timing: true,
        fp_width: true,
    };

    /// No strategy enabled: approximate code runs precisely (but is still
    /// *accounted* as approximate for energy purposes — this models hardware
    /// that claims the savings but happens not to err).
    pub const NONE: StrategyMask = StrategyMask {
        dram: false,
        sram_read: false,
        sram_write: false,
        fu_timing: false,
        fp_width: false,
    };

    /// Returns a copy with the DRAM strategy set to `on`.
    pub fn with_dram(mut self, on: bool) -> Self {
        self.dram = on;
        self
    }

    /// Returns a copy with the SRAM read-upset strategy set to `on`.
    pub fn with_sram_read(mut self, on: bool) -> Self {
        self.sram_read = on;
        self
    }

    /// Returns a copy with the SRAM write-failure strategy set to `on`.
    pub fn with_sram_write(mut self, on: bool) -> Self {
        self.sram_write = on;
        self
    }

    /// Returns a copy with the functional-unit timing strategy set to `on`.
    pub fn with_fu_timing(mut self, on: bool) -> Self {
        self.fu_timing = on;
        self
    }

    /// Returns a copy with the FP width-reduction strategy set to `on`.
    pub fn with_fp_width(mut self, on: bool) -> Self {
        self.fp_width = on;
        self
    }

    /// The five single-strategy masks, for the section 6.2 isolation study.
    pub fn singletons() -> [(&'static str, StrategyMask); 5] {
        [
            ("dram", StrategyMask::NONE.with_dram(true)),
            ("sram-read", StrategyMask::NONE.with_sram_read(true)),
            ("sram-write", StrategyMask::NONE.with_sram_write(true)),
            ("fu-timing", StrategyMask::NONE.with_fu_timing(true)),
            ("fp-width", StrategyMask::NONE.with_fp_width(true)),
        ]
    }
}

impl Default for StrategyMask {
    fn default() -> Self {
        StrategyMask::ALL
    }
}

/// Full simulator configuration: a level plus strategy mask and error mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwConfig {
    /// The Table 2 parameter bundle.
    pub params: ApproxParams,
    /// Which strategies actually inject faults.
    pub mask: StrategyMask,
    /// Output model for functional-unit timing errors.
    pub error_mode: ErrorMode,
    /// Simulated seconds that each arithmetic operation or memory access
    /// advances the clock. The paper's workloads run for wall-clock seconds
    /// on real hardware; our reduced kernels execute far fewer operations, so
    /// this scale factor keeps total simulated time — which drives DRAM decay
    /// and byte-second accounting — in the same regime.
    pub seconds_per_op: f64,
}

impl HwConfig {
    /// Default time scale: 1 µs of simulated time per operation.
    pub const DEFAULT_SECONDS_PER_OP: f64 = 1e-6;

    /// Configuration for a Table 2 level with all strategies enabled and the
    /// random-value error model (the paper's headline setup).
    pub fn for_level(level: Level) -> Self {
        HwConfig {
            params: level.params(),
            mask: StrategyMask::ALL,
            error_mode: ErrorMode::RandomValue,
            seconds_per_op: Self::DEFAULT_SECONDS_PER_OP,
        }
    }

    /// Truly precise configuration: [`ApproxParams::PRECISE`] with every
    /// strategy disabled. Output is bit-identical to the reference run and
    /// the energy accounting charges the full precise baseline — the
    /// "spend everything, err never" end of the scheduler's level ladder.
    pub fn precise() -> Self {
        HwConfig {
            params: ApproxParams::PRECISE,
            mask: StrategyMask::NONE,
            error_mode: ErrorMode::RandomValue,
            seconds_per_op: Self::DEFAULT_SECONDS_PER_OP,
        }
    }

    /// Returns a copy with the given strategy mask.
    pub fn with_mask(mut self, mask: StrategyMask) -> Self {
        self.mask = mask;
        self
    }

    /// Returns a copy with the given functional-unit error mode.
    pub fn with_error_mode(mut self, mode: ErrorMode) -> Self {
        self.error_mode = mode;
        self
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        HwConfig::for_level(Level::Medium)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_increase_in_aggressiveness() {
        let [mild, medium, aggressive] =
            [Level::Mild.params(), Level::Medium.params(), Level::Aggressive.params()];
        assert!(mild.dram_flip_per_second < medium.dram_flip_per_second);
        assert!(medium.dram_flip_per_second < aggressive.dram_flip_per_second);
        assert!(mild.sram_read_upset_prob < medium.sram_read_upset_prob);
        assert!(medium.sram_read_upset_prob < aggressive.sram_read_upset_prob);
        assert!(mild.timing_error_prob < medium.timing_error_prob);
        assert!(medium.timing_error_prob < aggressive.timing_error_prob);
        assert!(mild.float_mantissa_bits > medium.float_mantissa_bits);
        assert!(medium.float_mantissa_bits > aggressive.float_mantissa_bits);
    }

    #[test]
    fn savings_increase_with_aggressiveness() {
        let [mild, medium, aggressive] =
            [Level::Mild.params(), Level::Medium.params(), Level::Aggressive.params()];
        assert!(mild.dram_power_saved < medium.dram_power_saved);
        assert!(medium.dram_power_saved < aggressive.dram_power_saved);
        assert!(mild.sram_power_saved < medium.sram_power_saved);
        assert!(mild.fp_energy_saved < aggressive.fp_energy_saved);
        assert!(mild.alu_energy_saved < aggressive.alu_energy_saved);
    }

    #[test]
    fn log_scale_probabilities_match_table2() {
        // Table 2 lists SRAM probabilities as powers of ten.
        let medium = ApproxParams::MEDIUM;
        assert!((medium.sram_read_upset_prob.log10() - (-7.4)).abs() < 1e-9);
        assert!((medium.sram_write_failure_prob.log10() - (-4.94)).abs() < 1e-9);
        let mild = ApproxParams::MILD;
        assert!((mild.sram_read_upset_prob.log10() - (-16.7)).abs() < 1e-9);
        assert!((mild.sram_write_failure_prob.log10() - (-5.59)).abs() < 1e-9);
    }

    #[test]
    fn strategy_mask_builders() {
        let m = StrategyMask::NONE.with_sram_read(true).with_fp_width(true);
        assert!(m.sram_read && m.fp_width);
        assert!(!m.dram && !m.sram_write && !m.fu_timing);
        assert_eq!(StrategyMask::default(), StrategyMask::ALL);
    }

    #[test]
    fn singleton_masks_enable_exactly_one() {
        for (name, m) in StrategyMask::singletons() {
            let count = [m.dram, m.sram_read, m.sram_write, m.fu_timing, m.fp_width]
                .iter()
                .filter(|&&b| b)
                .count();
            assert_eq!(count, 1, "mask {name} should enable exactly one strategy");
        }
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(Level::Aggressive.to_string(), "Aggressive");
        assert_eq!(ErrorMode::LastValue.to_string(), "last-value");
    }

    #[test]
    fn precise_params_claim_no_savings_and_inject_no_faults() {
        let p = ApproxParams::PRECISE;
        assert_eq!(p.dram_flip_per_second, 0.0);
        assert_eq!(p.sram_read_upset_prob, 0.0);
        assert_eq!(p.sram_write_failure_prob, 0.0);
        assert_eq!(p.timing_error_prob, 0.0);
        assert_eq!(p.dram_power_saved, 0.0);
        assert_eq!(p.sram_power_saved, 0.0);
        assert_eq!(p.fp_energy_saved, 0.0);
        assert_eq!(p.alu_energy_saved, 0.0);
        assert_eq!(p.float_mantissa_bits, 23);
        assert_eq!(p.double_mantissa_bits, 52);
        let cfg = HwConfig::precise();
        assert_eq!(cfg.params, ApproxParams::PRECISE);
        assert_eq!(cfg.mask, StrategyMask::NONE);
    }

    #[test]
    fn default_config_is_medium_full_suite() {
        let cfg = HwConfig::default();
        assert_eq!(cfg.params, ApproxParams::MEDIUM);
        assert_eq!(cfg.mask, StrategyMask::ALL);
        assert_eq!(cfg.error_mode, ErrorMode::RandomValue);
    }
}
