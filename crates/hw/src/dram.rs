//! Approximate DRAM: main memory under reduced refresh rate (section 4.2,
//! "DRAM refresh rate").
//!
//! Following Liu et al.'s Flikker (cited in the paper), lines holding
//! approximate data are refreshed at 1 Hz instead of the usual rate; a cell
//! then flips with a per-second, per-bit probability (Table 2). Each bit's
//! decay clock starts at its last access — any read or write of an element
//! effectively refreshes it.
//!
//! [`DramArray`] is the storage substrate for approximate heap arrays. It
//! honours the cache-line layout of section 4.1: the header line(s) are
//! precise, so the first few elements of an approximate array may land in
//! precise storage and neither decay nor save energy.

use crate::fault;
use crate::layout::{self, FieldSpec, Layout};
use crate::quanta::EnergyQuanta;
use crate::stats::MemKind;
use crate::Hardware;

impl Hardware {
    /// Per-bit decay hazard (`-ln(1-p)`) for a refresh gap of `dt_ticks`
    /// op-ticks, memoized on the most recent distinct gap. Application
    /// loops touch elements with a near-constant per-iteration stride, so
    /// the last-value cache hits almost always and the steady-state cost is
    /// one integer compare instead of `exp()` + `ln()` per read.
    fn dram_hazard(&mut self, dt_ticks: u64) -> f64 {
        if self.decay_cache.0 != dt_ticks {
            let dt = dt_ticks as f64 * self.hot.seconds_per_op;
            let p = fault::decay_probability(self.hot.dram_rate, dt);
            self.decay_cache = (dt_ticks, fault::hazard(p));
        }
        self.decay_cache.1
    }

    /// Applies refresh decay to `width` bits last refreshed `dt_ticks` ago,
    /// via the amortized hazard countdown. Returns the observed pattern and
    /// records a fault if any bit flipped.
    #[inline]
    fn dram_decay(&mut self, bits: u64, width: u32, dt_ticks: u64) -> u64 {
        if self.hot.dram_rate <= 0.0 || dt_ticks == 0 {
            return bits;
        }
        let h = self.dram_hazard(dt_ticks);
        if h <= 0.0 || self.sched.dram.pass(f64::from(width) * h) {
            return bits;
        }
        self.dram_decay_fault(bits, width, h)
    }

    /// [`Hardware::dram_decay`] over a run of elements sharing one refresh
    /// gap: the rate/gap guards, the hazard lookup and the exposure
    /// multiply are hoisted out of the loop, which then consumes the
    /// hazard countdown element by element exactly as a scalar
    /// `dram_decay` sequence would — the same f64 subtractions in the same
    /// order, the same RNG stream when a fault fires — so the observed
    /// patterns are bit-identical to per-element calls.
    fn dram_decay_run(&mut self, words: &mut [u64], width: u32, dt_ticks: u64) {
        if self.hot.dram_rate <= 0.0 || dt_ticks == 0 {
            return;
        }
        let h = self.dram_hazard(dt_ticks);
        if h <= 0.0 {
            return;
        }
        let exposure = f64::from(width) * h;
        for w in words.iter_mut() {
            if !self.sched.dram.pass(exposure) {
                *w = self.dram_decay_fault(*w, width, h);
            }
        }
    }

    /// Fault payload of a decay event; out of line so the fault-free read
    /// carries none of the bit-walking machinery.
    #[cold]
    #[inline(never)]
    fn dram_decay_fault(&mut self, bits: u64, width: u32, h: f64) -> u64 {
        let out = self.sched.dram.flip_bits(bits, width, h, &mut self.rng);
        if out != bits {
            self.note_fault(crate::trace::FaultKind::DramDecay, width, (out ^ bits).count_ones());
        }
        out
    }
}

/// A simulated DRAM-resident array of fixed-width elements.
///
/// Elements are bit patterns of `elem_width` bits (at most 64). Approximate
/// arrays decay over simulated time; precise arrays are reliable. Storage
/// byte-seconds are accounted when the array is retired via
/// [`DramArray::retire`] (higher layers call this from their `Drop`).
///
/// # Examples
///
/// ```
/// use enerj_hw::config::{HwConfig, Level};
/// use enerj_hw::{DramArray, Hardware};
///
/// let mut hw = Hardware::new(HwConfig::for_level(Level::Medium), 1);
/// let mut arr = DramArray::new(&mut hw, 128, 32, true);
/// arr.write(&mut hw, 5, 0xCAFE);
/// let observed = arr.read(&mut hw, 5);
/// // Decay over microseconds at 1e-5/s per bit is overwhelmingly unlikely.
/// assert_eq!(observed, 0xCAFE);
/// arr.retire(&mut hw);
/// ```
#[derive(Debug, Clone)]
pub struct DramArray {
    words: Vec<u64>,
    /// Op-tick of each element's last access (its refresh point). Integer
    /// ticks make the refresh gap an exact integer, which is what the
    /// memoized decay lookup keys on.
    last_access: Vec<u64>,
    elem_width: u32,
    approx: bool,
    alloc_tick: u64,
    layout: Layout,
    /// Index of the first element stored on an approximate line.
    first_approx_elem: usize,
    retired: bool,
}

impl DramArray {
    /// Allocates an array of `len` elements of `elem_width` bits each.
    ///
    /// # Panics
    ///
    /// Panics if `elem_width` is zero, exceeds 64, or is not a multiple of 8.
    pub fn new(hw: &mut Hardware, len: usize, elem_width: u32, approx: bool) -> Self {
        assert!(
            (8..=64).contains(&elem_width) && elem_width.is_multiple_of(8),
            "element width {elem_width} must be a multiple of 8 in 8..=64"
        );
        let elem_bytes = (elem_width / 8) as usize;
        let l = layout::layout_array(
            elem_bytes,
            len,
            approx,
            layout::DEFAULT_LINE_SIZE,
            layout::ARRAY_HEADER_BYTES,
        );
        let first_approx_elem =
            if approx { l.approx_bytes_on_precise_lines.div_ceil(elem_bytes.max(1)) } else { len };
        let now = hw.op_ticks();
        DramArray {
            words: vec![0; len],
            last_access: vec![now; len],
            elem_width,
            approx,
            alloc_tick: now,
            layout: l,
            first_approx_elem,
            retired: false,
        }
    }

    /// Number of elements. Array lengths are always precise (section 2.6).
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Element width in bits.
    pub fn elem_width(&self) -> u32 {
        self.elem_width
    }

    /// Whether elements are stored approximately.
    pub fn is_approx(&self) -> bool {
        self.approx
    }

    /// The cache-line layout computed at allocation.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Index of the first element whose storage is approximate. Elements
    /// below this index share precise cache lines with the header (§4.1)
    /// and never decay; for precise arrays this is `len()`.
    pub fn first_approx_elem(&self) -> usize {
        self.first_approx_elem
    }

    /// Reads element `i`, applying refresh decay if it lives on an
    /// approximate line. The read refreshes the element.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds — array indices must be precise, and
    /// bounds are always enforced (section 2.6).
    pub fn read(&mut self, hw: &mut Hardware, i: usize) -> u64 {
        hw.tick();
        let now = hw.op_ticks();
        let stored = self.words[i];
        let out = if self.approx && i >= self.first_approx_elem {
            hw.dram_decay(stored, self.elem_width, now - self.last_access[i])
        } else {
            stored
        };
        self.words[i] = out;
        self.last_access[i] = now;
        out
    }

    /// Writes element `i`, refreshing its decay clock. DRAM writes store
    /// reliably; transient corruption enters via the SRAM and FU models.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn write(&mut self, hw: &mut Hardware, i: usize, bits: u64) {
        hw.tick();
        self.words[i] = bits & fault::low_mask(self.elem_width);
        self.last_access[i] = hw.op_ticks();
    }

    /// Batched [`DramArray::read`]: reads `out.len()` consecutive elements
    /// starting at `start` into `out`, applying refresh decay per element.
    ///
    /// The clock advances by the batch length in one addition, but each
    /// element's refresh point is reconstructed by index (element `j` reads
    /// at tick `base + j + 1`), so decay exposure, the hazard countdown walk
    /// and the RNG stream are bit-identical to a scalar `read` loop. The
    /// amortization is in the borrow, bounds and accounting overhead — and
    /// in decay dispatch: elements whose refresh gaps are equal (the common
    /// case, when the slice was last touched by another slice op, which
    /// stamps consecutive ticks) are handed to [`Hardware::dram_decay_run`]
    /// as one maximal run, hoisting the per-read guards, hazard lookup and
    /// exposure multiply while keeping the per-element countdown walk. The
    /// fault model is untouched either way.
    ///
    /// # Panics
    ///
    /// Panics if `start + out.len()` exceeds the array length.
    pub fn read_slice(&mut self, hw: &mut Hardware, start: usize, out: &mut [u64]) {
        let base = hw.op_ticks();
        hw.tick_batch(out.len() as u64);
        let n = out.len();
        let mut j = 0;
        while j < n {
            let i = start + j;
            let now = base + j as u64 + 1;
            if !(self.approx && i >= self.first_approx_elem) {
                // Precise storage: no decay, just the refresh stamp.
                out[j] = self.words[i];
                self.last_access[i] = now;
                j += 1;
                continue;
            }
            // Maximal run of equal refresh gaps: element `j + k` reads at
            // tick `now + k`, so its gap equals `dt` iff its last access
            // was exactly `k` ticks after element `j`'s.
            let dt = now - self.last_access[i];
            let mut end = j + 1;
            while end < n
                && base + end as u64 + 1 >= self.last_access[start + end]
                && base + end as u64 + 1 - self.last_access[start + end] == dt
            {
                end += 1;
            }
            hw.dram_decay_run(&mut self.words[start + j..start + end], self.elem_width, dt);
            for (k, slot) in out.iter_mut().enumerate().take(end).skip(j) {
                self.last_access[start + k] = base + k as u64 + 1;
                *slot = self.words[start + k];
            }
            j = end;
        }
    }

    /// Batched [`DramArray::write`]: stores `vals` into consecutive elements
    /// starting at `start`, refreshing their decay clocks. Bit-identical to
    /// a scalar `write` loop (element `j` refreshes at tick `base + j + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `start + vals.len()` exceeds the array length.
    pub fn write_slice(&mut self, hw: &mut Hardware, start: usize, vals: &[u64]) {
        let base = hw.op_ticks();
        hw.tick_batch(vals.len() as u64);
        let mask = fault::low_mask(self.elem_width);
        for (j, &v) in vals.iter().enumerate() {
            let i = start + j;
            self.words[i] = v & mask;
            self.last_access[i] = base + j as u64 + 1;
        }
    }

    /// Accounts this array's storage quanta and marks it retired.
    ///
    /// Idempotent: a second call does nothing. Higher layers call this from
    /// `Drop`; benchmarks may call it eagerly before reading statistics.
    /// The charge is an exact widening multiply of bits held by op-ticks
    /// held — no floats, so retire order cannot perturb the totals.
    pub fn retire(&mut self, hw: &mut Hardware) {
        if self.retired {
            return;
        }
        self.retired = true;
        let held_ticks = hw.op_ticks() - self.alloc_tick;
        let precise_bits =
            8 * (self.layout.precise_bytes + self.layout.approx_bytes_on_precise_lines) as u64;
        let approx_bits = 8 * self.layout.approx_bytes_on_approx_lines as u64;
        let stats = hw.stats_mut();
        stats.record_storage_quanta(
            MemKind::Dram,
            false,
            EnergyQuanta::from_bits_quanta(precise_bits, held_ticks),
        );
        stats.record_storage_quanta(
            MemKind::Dram,
            true,
            EnergyQuanta::from_bits_quanta(approx_bits, held_ticks),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{HwConfig, Level};
    use crate::stats::MemKind;

    fn hw(level: Level) -> Hardware {
        Hardware::new(HwConfig::for_level(level), 11)
    }

    #[test]
    fn write_then_read_roundtrips_without_decay_time() {
        let mut hw = hw(Level::Aggressive);
        let mut arr = DramArray::new(&mut hw, 64, 64, true);
        for i in 0..64 {
            arr.write(&mut hw, i, i as u64 * 0x0101_0101);
        }
        for i in 0..64 {
            // dt is microseconds; p ~ 1e-9 per bit: reads are clean.
            assert_eq!(arr.read(&mut hw, i), i as u64 * 0x0101_0101);
        }
    }

    #[test]
    fn long_idle_time_decays_aggressive_data() {
        let mut hw = hw(Level::Aggressive);
        let mut arr = DramArray::new(&mut hw, 1024, 64, true);
        for i in 0..1024 {
            arr.write(&mut hw, i, u64::MAX);
        }
        // Simulate 100 seconds of idleness: p = 1 - exp(-0.1) ~ 0.095.
        for _ in 0..100_000_000 / 1000 {
            // Cheaper: advance clock directly through many ticks is slow;
            // use a run of precise ops to advance time.
            hw.precise_op(crate::stats::OpKind::Int);
        }
        // 1e5 ops * 1e-6 s = 0.1 s. Not enough; crank the decay rate instead
        // by reading after constructing a high-rate config.
        let mut cfg = *hw.config();
        cfg.params.dram_flip_per_second = 1.0;
        let mut hw2 = Hardware::new(cfg, 3);
        let mut arr2 = DramArray::new(&mut hw2, 1024, 64, true);
        for i in 0..1024 {
            arr2.write(&mut hw2, i, u64::MAX);
        }
        // Advance ~2 simulated seconds.
        for _ in 0..2_000_000 / 1000 {
            for _ in 0..1000 {
                hw2.precise_op(crate::stats::OpKind::Int);
            }
        }
        let mut flipped = 0u32;
        for i in 0..1024 {
            flipped += (!arr2.read(&mut hw2, i)).count_ones();
        }
        // Decay probability saturates at 0.5 per bit, so of the ~65k bits on
        // approximate lines roughly half should have flipped.
        assert!(flipped > 25_000, "flipped = {flipped}");
        let _ = arr; // silence unused in the first phase
    }

    #[test]
    fn header_line_elements_do_not_decay() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.dram_flip_per_second = 1e6; // instant decay for anything eligible
        let mut hw = Hardware::new(cfg, 7);
        let mut arr = DramArray::new(&mut hw, 256, 32, true);
        // Element 0 shares the header's precise line (header 16B, line 64B,
        // so elements 0..12 are precise for 4-byte elements).
        arr.write(&mut hw, 0, 0xDEAD);
        for _ in 0..1000 {
            hw.precise_op(crate::stats::OpKind::Int);
        }
        assert_eq!(arr.read(&mut hw, 0), 0xDEAD);
        // A later element decays to noise under the same idle time.
        arr.write(&mut hw, 200, 0xFFFF_FFFF);
        for _ in 0..1_000_000 / 100 {
            for _ in 0..100 {
                hw.precise_op(crate::stats::OpKind::Int);
            }
        }
        let v = arr.read(&mut hw, 200);
        assert_ne!(v, 0xFFFF_FFFF, "element on approximate line should decay");
    }

    #[test]
    fn precise_array_never_decays() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.dram_flip_per_second = 1e6;
        let mut hw = Hardware::new(cfg, 7);
        let mut arr = DramArray::new(&mut hw, 64, 64, false);
        arr.write(&mut hw, 32, 0x1234_5678_9ABC_DEF0);
        for _ in 0..10_000 {
            hw.precise_op(crate::stats::OpKind::Int);
        }
        assert_eq!(arr.read(&mut hw, 32), 0x1234_5678_9ABC_DEF0);
    }

    #[test]
    fn retire_accounts_byte_seconds_once() {
        let mut hw = hw(Level::Medium);
        let mut arr = DramArray::new(&mut hw, 1000, 64, true);
        for _ in 0..1000 {
            hw.precise_op(crate::stats::OpKind::Int);
        }
        arr.retire(&mut hw);
        let after_first = hw.stats();
        arr.retire(&mut hw);
        assert_eq!(after_first, hw.stats(), "retire must be idempotent");
        assert!(after_first.dram_approx_quanta > EnergyQuanta::ZERO);
        assert!(after_first.dram_precise_quanta > EnergyQuanta::ZERO); // header line
        let frac = after_first.approx_storage_fraction(MemKind::Dram);
        assert!(frac > 0.95, "8000-byte array should be almost all approximate");
    }

    #[test]
    fn writes_mask_to_element_width() {
        let mut hw = hw(Level::Mild);
        let mut arr = DramArray::new(&mut hw, 4, 16, true);
        arr.write(&mut hw, 0, 0xABCDEF);
        assert_eq!(arr.read(&mut hw, 0), 0xCDEF);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_read_panics() {
        let mut hw = hw(Level::Mild);
        let mut arr = DramArray::new(&mut hw, 4, 32, true);
        let _ = arr.read(&mut hw, 4);
    }

    #[test]
    #[should_panic(expected = "element width")]
    fn bad_element_width_rejected() {
        let mut hw = hw(Level::Mild);
        let _ = DramArray::new(&mut hw, 4, 12, true);
    }
}

/// A simulated DRAM-resident object with mixed precise and approximate
/// fields, laid out per section 4.1: header and precise fields first, then
/// approximate fields, with any approximate field that shares a cache line
/// with precise data *effectively precise* (it neither decays nor saves
/// memory energy — but is still approximate when operated on).
///
/// Each field occupies one 64-bit slot; the layout arithmetic uses the
/// declared byte sizes.
#[derive(Debug, Clone)]
pub struct DramRecord {
    words: Vec<u64>,
    /// Op-tick of each field's last access (its refresh point).
    last_access: Vec<u64>,
    widths: Vec<u32>,
    /// Whether each field's *storage* is approximate after layout.
    effective_approx: Vec<bool>,
    layout: Layout,
    alloc_tick: u64,
    retired: bool,
}

impl DramRecord {
    /// Lays out and allocates a record. Returns the record; query
    /// [`DramRecord::field_storage_approx`] for the per-field outcome.
    ///
    /// # Panics
    ///
    /// Panics if any field size is zero or exceeds 8 bytes.
    pub fn new(hw: &mut Hardware, fields: &[FieldSpec]) -> Self {
        for f in fields {
            assert!(
                f.size >= 1 && f.size <= 8,
                "field `{}` has unsupported size {}",
                f.name,
                f.size
            );
        }
        let line = layout::DEFAULT_LINE_SIZE;
        let l = layout::layout_object(fields, line, layout::OBJECT_HEADER_BYTES);
        // Precise prefix: header plus every precise field; the first line
        // boundary at or after it separates precise from approximate
        // storage.
        let precise_total: usize = layout::OBJECT_HEADER_BYTES
            + fields.iter().filter(|f| !f.approx).map(|f| f.size).sum::<usize>();
        let boundary = precise_total.div_ceil(line) * line;
        let mut offset = precise_total;
        let mut effective_approx = Vec::with_capacity(fields.len());
        for f in fields {
            if f.approx {
                effective_approx.push(offset >= boundary);
                offset += f.size;
            } else {
                effective_approx.push(false);
            }
        }
        let now = hw.op_ticks();
        DramRecord {
            words: vec![0; fields.len()],
            last_access: vec![now; fields.len()],
            widths: fields.iter().map(|f| (f.size * 8) as u32).collect(),
            effective_approx,
            layout: l,
            alloc_tick: now,
            retired: false,
        }
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.words.len()
    }

    /// Whether field `i`'s storage ended up approximate after layout.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn field_storage_approx(&self, i: usize) -> bool {
        self.effective_approx[i]
    }

    /// The computed cache-line layout.
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// Reads field `i`, applying refresh decay if its storage is
    /// approximate; the read refreshes the field.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn read(&mut self, hw: &mut Hardware, i: usize) -> u64 {
        hw.tick();
        let now = hw.op_ticks();
        let stored = self.words[i];
        let out = if self.effective_approx[i] {
            hw.dram_decay(stored, self.widths[i], now - self.last_access[i])
        } else {
            stored
        };
        self.words[i] = out;
        self.last_access[i] = now;
        out
    }

    /// Writes field `i`, refreshing its decay clock.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn write(&mut self, hw: &mut Hardware, i: usize, bits: u64) {
        hw.tick();
        self.words[i] = bits & fault::low_mask(self.widths[i]);
        self.last_access[i] = hw.op_ticks();
    }

    /// Accounts the record's storage quanta once (exact integer charge,
    /// like [`DramArray::retire`]).
    pub fn retire(&mut self, hw: &mut Hardware) {
        if self.retired {
            return;
        }
        self.retired = true;
        let held_ticks = hw.op_ticks() - self.alloc_tick;
        let precise_bits =
            8 * (self.layout.precise_bytes + self.layout.approx_bytes_on_precise_lines) as u64;
        let approx_bits = 8 * self.layout.approx_bytes_on_approx_lines as u64;
        let stats = hw.stats_mut();
        stats.record_storage_quanta(
            MemKind::Dram,
            false,
            EnergyQuanta::from_bits_quanta(precise_bits, held_ticks),
        );
        stats.record_storage_quanta(
            MemKind::Dram,
            true,
            EnergyQuanta::from_bits_quanta(approx_bits, held_ticks),
        );
    }
}

#[cfg(test)]
mod record_tests {
    use super::*;
    use crate::config::{HwConfig, Level};
    use crate::layout::FieldSpec;

    fn hw() -> Hardware {
        Hardware::new(HwConfig::for_level(Level::Aggressive), 3)
    }

    #[test]
    fn small_approx_fields_share_the_precise_line() {
        let mut hw = hw();
        // Header 8 + 8 precise = 16 bytes; two approximate 8-byte fields
        // fit inside the first 64-byte line: no approximate storage.
        let fields = [
            FieldSpec::new("id", 8, false),
            FieldSpec::new("a", 8, true),
            FieldSpec::new("b", 8, true),
        ];
        let rec = DramRecord::new(&mut hw, &fields);
        assert!(!rec.field_storage_approx(0));
        assert!(!rec.field_storage_approx(1));
        assert!(!rec.field_storage_approx(2));
        assert_eq!(rec.layout().approx_bytes_on_approx_lines, 0);
    }

    #[test]
    fn approx_fields_beyond_the_boundary_get_approx_storage() {
        let mut hw = hw();
        // Header 8 + 8 precise = 16; 64-16 = 48 bytes shared; fields 1..6
        // (48 bytes) stay precise, the rest go approximate.
        let mut fields = vec![FieldSpec::new("id", 8, false)];
        for _ in 0..10 {
            fields.push(FieldSpec::new("a", 8, true));
        }
        let rec = DramRecord::new(&mut hw, &fields);
        let approx_count = (0..rec.field_count()).filter(|&i| rec.field_storage_approx(i)).count();
        assert_eq!(approx_count, 4, "10 approx fields, 6 absorbed by the precise line");
    }

    #[test]
    fn shared_line_fields_do_not_decay() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.dram_flip_per_second = 1e6;
        let mut hw = Hardware::new(cfg, 1);
        let mut fields = vec![FieldSpec::new("id", 8, false)];
        for _ in 0..10 {
            fields.push(FieldSpec::new("a", 8, true));
        }
        let mut rec = DramRecord::new(&mut hw, &fields);
        rec.write(&mut hw, 1, 0xAAAA); // on the precise line
        rec.write(&mut hw, 10, 0xBBBB); // on an approximate line
        for _ in 0..10_000 {
            hw.precise_op(crate::stats::OpKind::Int);
        }
        assert_eq!(rec.read(&mut hw, 1), 0xAAAA, "shared-line field is reliable");
        assert_ne!(rec.read(&mut hw, 10), 0xBBBB, "approximate-line field decays");
    }

    #[test]
    fn retire_accounts_split_storage() {
        let mut hw = hw();
        let mut fields = vec![FieldSpec::new("id", 8, false)];
        for _ in 0..32 {
            fields.push(FieldSpec::new("a", 8, true));
        }
        let mut rec = DramRecord::new(&mut hw, &fields);
        for _ in 0..100 {
            hw.precise_op(crate::stats::OpKind::Int);
        }
        rec.retire(&mut hw);
        let s = hw.stats();
        assert!(s.dram_approx_quanta > EnergyQuanta::ZERO);
        assert!(s.dram_precise_quanta > EnergyQuanta::ZERO);
        rec.retire(&mut hw); // idempotent
        assert_eq!(s, hw.stats());
    }

    #[test]
    #[should_panic(expected = "unsupported size")]
    fn oversized_fields_rejected() {
        let mut hw = hw();
        let _ = DramRecord::new(&mut hw, &[FieldSpec::new("big", 16, true)]);
    }
}
