//! Whole-slice (batched) entry points on the approximate units.
//!
//! The amortized fault scheduler (see DESIGN.md, "Amortized fault
//! scheduling") made fault *scheduling* O(faults), but each operation still
//! paid a call into [`Hardware`]: a tick, an op-count increment and a
//! countdown decrement. For the SciMark inner loops that per-op overhead
//! dominates. The batched entry points in this module amortize all of it
//! over a slice:
//!
//! * one clock advance ([`Hardware::tick_batch`]) and one op-count addition
//!   per batch instead of per element;
//! * one countdown subtraction per batch on the fast path — the fault site,
//!   when a countdown lands inside the batch, is resolved *by index*
//!   ([`crate::fault::GeomCountdown::pass_accesses`] /
//!   [`crate::fault::GeomCountdown::next_fire`]), and the RNG is touched
//!   only at that index;
//! * mantissa-truncation masks hoisted from `HotConfig` and applied with
//!   `chunks_exact` loops the compiler can vectorize.
//!
//! Each batched stream walks the *identical* countdown state machine as the
//! scalar loop it replaces, so a pure batched stream (all SRAM reads, or all
//! result phases) is bit-for-bit identical to its scalar counterpart —
//! including RNG draws. Composed operations (load + load + compute per
//! element) regroup the per-element stream interleaving into per-stream
//! passes, which reorders RNG draws *between* streams when more than one
//! stream faults inside the same batch; the per-stream fault processes are
//! unchanged, so energy quanta and fault telemetry stay identical in
//! distribution (pinned by the 5σ equivalence tests in
//! `tests/batched.rs`).

use crate::fault;
use crate::stats::OpKind;
use crate::Hardware;

/// Chunk width for the mask loops: wide enough for the compiler to use
/// 256-bit vector lanes, small enough to stay in registers.
const LANES: usize = 8;

impl Hardware {
    /// Advances the virtual clock by `n` operation times with one addition.
    ///
    /// When an armed watchdog deadline falls inside the batch, falls back to
    /// per-tick advancing so the trip happens at exactly the same op-tick as
    /// a scalar loop would produce — watchdog trips stay a deterministic
    /// function of `(config, seed, program)` whether or not the program
    /// batches.
    #[inline]
    pub(crate) fn tick_batch(&mut self, n: u64) {
        let advanced = self.op_ticks.saturating_add(n);
        if advanced >= self.watchdog_deadline {
            for _ in 0..n {
                self.tick();
            }
        } else {
            self.op_ticks = advanced;
        }
    }

    /// Batched [`Hardware::sram_read`]: reads `width` bits per word over the
    /// whole slice, upsetting bits in place.
    ///
    /// Storage accounting is one addition (`width * len` bit-quanta); the
    /// read-upset countdown is consumed in whole-slice strides and resolved
    /// to a word index only when it lands inside the batch. The resulting
    /// word values, countdown state and RNG stream are bit-identical to
    /// calling `sram_read` once per word.
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    pub fn sram_read_slice(&mut self, words: &mut [u64], width: u32, approx: bool) {
        assert!(width <= 64, "bad SRAM access width {width}");
        let n = words.len() as u64;
        self.pending_sram_bits[usize::from(approx)] += u64::from(width) * n;
        if !approx || width == 0 {
            return;
        }
        let mut idx = 0u64;
        while idx < n {
            match self.sched.sram_read.pass_accesses(n - idx, width) {
                None => return,
                Some(k) => {
                    idx += k;
                    let w = &mut words[idx as usize];
                    *w = self.sram_read_fault(*w, width);
                    idx += 1;
                }
            }
        }
    }

    /// Batched [`Hardware::sram_write`]: writes `width` bits per word over
    /// the whole slice, failing bits in place. Bit-identical to a scalar
    /// `sram_write` loop, like [`Hardware::sram_read_slice`].
    ///
    /// # Panics
    ///
    /// Panics if `width` exceeds 64.
    pub fn sram_write_slice(&mut self, words: &mut [u64], width: u32, approx: bool) {
        assert!(width <= 64, "bad SRAM access width {width}");
        let n = words.len() as u64;
        self.pending_sram_bits[usize::from(approx)] += u64::from(width) * n;
        if !approx || width == 0 {
            return;
        }
        let mut idx = 0u64;
        while idx < n {
            match self.sched.sram_write.pass_accesses(n - idx, width) {
                None => return,
                Some(k) => {
                    idx += k;
                    let w = &mut words[idx as usize];
                    *w = self.sram_write_fault(*w, width);
                    idx += 1;
                }
            }
        }
    }

    /// Batched [`Hardware::approx_int_result`]: the result phase of
    /// `raws.len()` approximate integer operations in sequence, in place.
    ///
    /// Counts every operation, advances the clock by the batch length, masks
    /// every result to `width` bits with a `chunks_exact` loop, and resolves
    /// timing-error sites by index. For the `LastValue` error mode the
    /// "previous result" at index `i` is `raws[i - 1]` (or the unit's last
    /// result before the batch for `i == 0`), exactly as a scalar loop would
    /// observe. Given inputs that fit in `width` bits — which the wrapping
    /// arithmetic above this layer always produces — the outputs, countdown
    /// state and RNG stream are bit-identical to a scalar loop.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    pub fn approx_int_result_slice(&mut self, raws: &mut [u64], width: u32) {
        assert!((1..=64).contains(&width), "bad integer width {width}");
        let n = raws.len();
        if n == 0 {
            return;
        }
        self.tick_batch(n as u64);
        self.stats.record_ops(OpKind::Int, true, n as u64);
        if width < 64 {
            let mask = fault::low_mask(width);
            let mut chunks = raws.chunks_exact_mut(LANES);
            for chunk in &mut chunks {
                for w in chunk {
                    *w &= mask;
                }
            }
            for w in chunks.into_remainder() {
                *w &= mask;
            }
        }
        let total = n as u64;
        let mut idx = 0u64;
        while idx < total {
            match self.sched.int_timing.next_fire(total - idx, &mut self.rng) {
                None => break,
                Some(k) => {
                    idx += k;
                    let i = idx as usize;
                    // Stage the in-batch predecessor so the shared payload
                    // helper's LastValue mode sees what a scalar loop would.
                    self.last_int = if i == 0 { self.last_int } else { raws[i - 1] };
                    raws[i] = self.int_timing_fault(raws[i], width);
                    idx += 1;
                }
            }
        }
        self.last_int = raws[n - 1];
    }

    /// Batched [`Hardware::approx_f64_result`]: the result phase of
    /// `xs.len()` approximate `f64` operations in sequence, in place.
    /// Bit-identical to a scalar loop, like
    /// [`Hardware::approx_int_result_slice`].
    pub fn approx_f64_result_slice(&mut self, xs: &mut [f64]) {
        let n = xs.len();
        if n == 0 {
            return;
        }
        self.tick_batch(n as u64);
        self.stats.record_ops(OpKind::Fp, true, n as u64);
        let total = n as u64;
        let mut idx = 0u64;
        while idx < total {
            match self.sched.fp_timing.next_fire(total - idx, &mut self.rng) {
                None => break,
                Some(k) => {
                    idx += k;
                    let i = idx as usize;
                    self.last_fp = if i == 0 { self.last_fp } else { xs[i - 1].to_bits() };
                    let out = self.fp_timing_fault(xs[i].to_bits(), 64);
                    xs[i] = f64::from_bits(out);
                    idx += 1;
                }
            }
        }
        self.last_fp = xs[n - 1].to_bits();
    }

    /// Batched [`Hardware::approx_f32_result`]: the result phase of
    /// `xs.len()` approximate `f32` operations in sequence, in place.
    /// Bit-identical to a scalar loop.
    pub fn approx_f32_result_slice(&mut self, xs: &mut [f32]) {
        let n = xs.len();
        if n == 0 {
            return;
        }
        self.tick_batch(n as u64);
        self.stats.record_ops(OpKind::Fp, true, n as u64);
        let total = n as u64;
        let mut idx = 0u64;
        while idx < total {
            match self.sched.fp_timing.next_fire(total - idx, &mut self.rng) {
                None => break,
                Some(k) => {
                    idx += k;
                    let i = idx as usize;
                    self.last_fp =
                        if i == 0 { self.last_fp } else { u64::from(xs[i - 1].to_bits()) };
                    let out = self.fp_timing_fault(u64::from(xs[i].to_bits()), 32);
                    xs[i] = f32::from_bits(out as u32);
                    idx += 1;
                }
            }
        }
        self.last_fp = u64::from(xs[n - 1].to_bits());
    }

    /// Batched [`Hardware::approx_f64_operand`]: mantissa width reduction
    /// over a slice, in place.
    ///
    /// The truncation mask is hoisted from `HotConfig` once; when the
    /// fp-width strategy is masked off (mask all ones) the slice is
    /// untouched without a pass. Non-finite values pass through unchanged,
    /// as in the scalar path.
    pub fn approx_f64_operand_slice(&self, xs: &mut [f64]) {
        let mask = self.hot.f64_trunc_mask;
        if mask == u64::MAX {
            return;
        }
        // Branchless non-finite passthrough (exponent all ones keeps every
        // bit — masking a NaN payload could turn it into an infinity), so
        // the loop vectorizes instead of branching per element.
        let trunc = |x: f64| {
            let bits = x.to_bits();
            let keep = if (bits >> 52) & 0x7FF == 0x7FF { u64::MAX } else { mask };
            f64::from_bits(bits & keep)
        };
        let mut chunks = xs.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            for x in chunk {
                *x = trunc(*x);
            }
        }
        for x in chunks.into_remainder() {
            *x = trunc(*x);
        }
    }

    /// Batched [`Hardware::approx_f32_operand`]: mantissa width reduction
    /// over a slice, in place. See [`Hardware::approx_f64_operand_slice`].
    pub fn approx_f32_operand_slice(&self, xs: &mut [f32]) {
        let mask = self.hot.f32_trunc_mask;
        if mask == u32::MAX {
            return;
        }
        let trunc = |x: f32| {
            let bits = x.to_bits();
            let keep = if (bits >> 23) & 0xFF == 0xFF { u32::MAX } else { mask };
            f32::from_bits(bits & keep)
        };
        let mut chunks = xs.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            for x in chunk {
                *x = trunc(*x);
            }
        }
        for x in chunks.into_remainder() {
            *x = trunc(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ErrorMode, HwConfig, Level};
    use crate::Hardware;

    fn cfg_with_timing(p: f64, mode: ErrorMode) -> HwConfig {
        let mut cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(mode);
        cfg.params.timing_error_prob = p;
        cfg
    }

    #[test]
    fn empty_slices_are_no_ops() {
        let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 1);
        hw.sram_read_slice(&mut [], 64, true);
        hw.approx_int_result_slice(&mut [], 64);
        hw.approx_f64_result_slice(&mut []);
        hw.approx_f32_result_slice(&mut []);
        assert_eq!(hw.op_ticks(), 0);
        assert_eq!(hw.stats().int_approx_ops, 0);
    }

    #[test]
    fn batched_ops_tick_and_count_like_scalar() {
        let cfg = cfg_with_timing(0.0, ErrorMode::RandomValue);
        let mut hw = Hardware::new(cfg, 1);
        let mut xs = vec![1.5f64; 100];
        hw.approx_f64_result_slice(&mut xs);
        let mut raws = vec![7u64; 50];
        hw.approx_int_result_slice(&mut raws, 32);
        assert_eq!(hw.op_ticks(), 150);
        assert_eq!(hw.stats().fp_approx_ops, 100);
        assert_eq!(hw.stats().int_approx_ops, 50);
    }

    #[test]
    fn int_slice_masks_to_width() {
        let cfg = cfg_with_timing(0.0, ErrorMode::RandomValue);
        let mut hw = Hardware::new(cfg, 1);
        let mut raws: Vec<u64> = (0..20).map(|i| 0xFFFF_0000_0000_0000 | i).collect();
        hw.approx_int_result_slice(&mut raws, 16);
        for (i, w) in raws.iter().enumerate() {
            assert_eq!(*w, i as u64, "high bits must be masked off");
        }
    }

    #[test]
    fn operand_slice_is_identity_when_masked_off() {
        use crate::config::StrategyMask;
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        let hw = Hardware::new(cfg, 0);
        let orig: Vec<f64> = (0..17).map(|i| 0.1 + f64::from(i)).collect();
        let mut xs = orig.clone();
        hw.approx_f64_operand_slice(&mut xs);
        assert_eq!(xs, orig);
    }

    #[test]
    fn operand_slice_matches_scalar_truncation() {
        let hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 0);
        let orig: Vec<f64> =
            (0..37).map(|i| 0.123 + f64::from(i) * 1.7).chain([f64::NAN, f64::INFINITY]).collect();
        let mut xs = orig.clone();
        hw.approx_f64_operand_slice(&mut xs);
        for (x, o) in xs.iter().zip(&orig) {
            assert_eq!(x.to_bits(), hw.approx_f64_operand(*o).to_bits());
        }
        let orig32: Vec<f32> = (0..37).map(|i| 0.123 + (i as f32) * 1.7).collect();
        let mut xs32 = orig32.clone();
        hw.approx_f32_operand_slice(&mut xs32);
        for (x, o) in xs32.iter().zip(&orig32) {
            assert_eq!(x.to_bits(), hw.approx_f32_operand(*o).to_bits());
        }
    }

    /// The watchdog must trip at the same op-tick whether the clock is
    /// advanced per-op or per-batch.
    #[test]
    fn tick_batch_preserves_exact_watchdog_trips() {
        crate::clock::silence_watchdog_panics();
        let trip_tick = |batch: usize| -> u64 {
            let cfg = cfg_with_timing(0.0, ErrorMode::RandomValue);
            let mut hw = Hardware::new(cfg, 3);
            hw.arm_watchdog(1000);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| loop {
                let mut xs = vec![1.0f64; batch];
                hw.approx_f64_result_slice(&mut xs);
            }))
            .expect_err("armed watchdog must trip");
            err.downcast_ref::<crate::WatchdogTrip>().expect("WatchdogTrip payload").op_ticks
        };
        let scalar = trip_tick(1);
        assert_eq!(trip_tick(7), scalar);
        assert_eq!(trip_tick(256), scalar);
    }
}
