//! The imprecise integer unit (section 4.2, "voltage scaling in logic
//! circuits").
//!
//! Approximate integer instructions execute on a voltage-scaled ALU that
//! suffers a timing error with probability
//! [`timing_error_prob`](crate::config::ApproxParams::timing_error_prob).
//! On a timing error the observed result is determined by the configured
//! [`ErrorMode`] — a single flipped bit, the last
//! value the unit produced, or a uniformly random pattern. The paper finds
//! the random-value model most realistic and most damaging.
//!
//! Division by zero in an approximate integer operation returns zero rather
//! than trapping (section 5.2): "to avoid spurious errors due to
//! approximation, our simulated approximate functional units never raise
//! divide-by-zero exceptions."

use crate::config::ErrorMode;
use crate::fault;
use crate::stats::OpKind;
use crate::Hardware;
use rand::Rng;

impl Hardware {
    /// Records a precise operation: counting and clock only, never a fault.
    #[inline]
    pub fn precise_op(&mut self, kind: OpKind) {
        self.tick();
        self.stats.record_op(kind, false);
    }

    /// Executes the *result phase* of an approximate integer operation.
    ///
    /// The caller computes the raw (mathematically correct, wrapping) result
    /// and passes its bit pattern; this method counts the operation, advances
    /// the clock, and — if the functional-unit timing strategy is enabled —
    /// perturbs the result with the configured probability and error mode.
    /// `width` is the operand width in bits (32 or 64 for the embedded API).
    ///
    /// Timing errors come from an amortized per-operation countdown
    /// ([`crate::fault::GeomCountdown::fire`]); between faults no RNG state
    /// is consumed. When a fault fires, the gap to the next fault is redrawn
    /// *before* any error-mode payload bits are sampled.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds 64.
    #[inline]
    pub fn approx_int_result(&mut self, raw: u64, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "bad integer width {width}");
        self.tick();
        self.stats.record_op(OpKind::Int, true);
        let out = if self.sched.int_timing.fire(&mut self.rng) {
            self.int_timing_fault(raw, width)
        } else {
            raw & fault::low_mask(width)
        };
        self.last_int = out;
        out
    }

    /// Fault payload of an integer timing error. Out of line so the
    /// (overwhelmingly common) fault-free iteration carries none of the
    /// error-mode machinery in its hot loop. Shared with the batched entry
    /// point ([`Hardware::approx_int_result_slice`]), which pre-stages
    /// `last_int` so the `LastValue` mode sees the in-batch predecessor.
    #[cold]
    #[inline(never)]
    pub(crate) fn int_timing_fault(&mut self, raw: u64, width: u32) -> u64 {
        let out = match self.hot.error_mode {
            ErrorMode::SingleBitFlip => fault::flip_one_bit(raw, width, &mut self.rng),
            ErrorMode::LastValue => self.last_int & fault::low_mask(width),
            ErrorMode::RandomValue => fault::random_bits(width, &mut self.rng),
        };
        let flipped = ((out ^ raw) & fault::low_mask(width)).count_ones();
        self.note_fault(crate::trace::FaultKind::IntTiming, width, flipped);
        out
    }

    /// Executes the result phase of an approximate comparison.
    ///
    /// Comparisons execute on the integer or floating-point unit (per `kind`)
    /// and produce a single bit; a timing error perturbs that bit according
    /// to the error mode (for `LastValue` the unit's last low bit is reused).
    #[inline]
    pub fn approx_cmp_result(&mut self, raw: bool, kind: OpKind) -> bool {
        self.tick();
        self.stats.record_op(kind, true);
        let fired = match kind {
            OpKind::Int => self.sched.int_timing.fire(&mut self.rng),
            OpKind::Fp => self.sched.fp_timing.fire(&mut self.rng),
        };
        if fired {
            self.cmp_timing_fault(raw, kind)
        } else {
            raw
        }
    }

    /// Fault payload of a comparison timing error; out of line like
    /// [`Hardware::int_timing_fault`].
    #[cold]
    #[inline(never)]
    fn cmp_timing_fault(&mut self, raw: bool, kind: OpKind) -> bool {
        let fault_kind = match kind {
            OpKind::Int => crate::trace::FaultKind::IntTiming,
            OpKind::Fp => crate::trace::FaultKind::FpTiming,
        };
        let observed = match self.hot.error_mode {
            ErrorMode::SingleBitFlip => !raw,
            ErrorMode::LastValue => match kind {
                OpKind::Int => self.last_int & 1 == 1,
                OpKind::Fp => self.last_fp & 1 == 1,
            },
            ErrorMode::RandomValue => self.rng.gen_bool(0.5),
        };
        self.note_fault(fault_kind, 1, u32::from(observed != raw));
        observed
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{ErrorMode, HwConfig, Level, StrategyMask};
    use crate::Hardware;

    fn hw_with(p: f64, mode: ErrorMode) -> Hardware {
        let mut cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(mode);
        cfg.params.timing_error_prob = p;
        Hardware::new(cfg, 42)
    }

    #[test]
    fn no_error_probability_is_exact() {
        let mut hw = hw_with(0.0, ErrorMode::RandomValue);
        for i in 0..1000u64 {
            assert_eq!(hw.approx_int_result(i * 3, 64), i * 3);
        }
        assert_eq!(hw.stats().faults_injected, 0);
        assert_eq!(hw.stats().int_approx_ops, 1000);
    }

    #[test]
    fn certain_error_always_faults() {
        let mut hw = hw_with(1.0, ErrorMode::SingleBitFlip);
        for _ in 0..100 {
            let out = hw.approx_int_result(0, 64);
            assert_eq!(out.count_ones(), 1, "single-bit-flip must flip one bit");
        }
        assert_eq!(hw.stats().faults_injected, 100);
    }

    #[test]
    fn last_value_mode_returns_previous_result() {
        let mut hw = hw_with(1.0, ErrorMode::LastValue);
        let first = hw.approx_int_result(123, 64); // last_int was 0
        assert_eq!(first, 0);
        let second = hw.approx_int_result(456, 64);
        assert_eq!(second, first);
    }

    #[test]
    fn random_value_mode_respects_width() {
        let mut hw = hw_with(1.0, ErrorMode::RandomValue);
        for _ in 0..100 {
            assert_eq!(hw.approx_int_result(7, 16) >> 16, 0);
        }
    }

    #[test]
    fn masking_off_fu_timing_disables_faults() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.timing_error_prob = 1.0;
        cfg.mask = StrategyMask::NONE;
        let mut hw = Hardware::new(cfg, 1);
        for i in 0..100u64 {
            assert_eq!(hw.approx_int_result(i, 64), i);
        }
        // Still accounted as approximate operations (for the energy model).
        assert_eq!(hw.stats().int_approx_ops, 100);
        assert_eq!(hw.stats().faults_injected, 0);
    }

    #[test]
    fn fault_rate_is_statistically_plausible() {
        let mut hw = hw_with(0.05, ErrorMode::RandomValue);
        let n = 20_000u64;
        for i in 0..n {
            let _ = hw.approx_int_result(i, 64);
        }
        let observed = hw.stats().faults_injected as f64;
        let expected = n as f64 * 0.05;
        let sigma = (n as f64 * 0.05 * 0.95).sqrt();
        assert!((observed - expected).abs() < 5.0 * sigma);
    }
}
