//! Fault-event tracing.
//!
//! When enabled, the simulator records the last N injected faults — which
//! unit faulted, when, and how many bits changed. This is the debugging
//! facility the paper's authors would have wanted when an annotated
//! application misbehaves: it answers "*which* approximation bit me?"
//! without rerunning under a different mask.
//!
//! Tracing is off by default and costs nothing when disabled.

use std::collections::VecDeque;
use std::fmt;

/// Which fault model injected the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// SRAM read upset (bit flipped while being read).
    SramReadUpset,
    /// SRAM write failure (wrong bit stored).
    SramWriteFailure,
    /// DRAM refresh decay.
    DramDecay,
    /// Functional-unit timing error (integer unit).
    IntTiming,
    /// Functional-unit timing error (floating-point unit).
    FpTiming,
}

impl FaultKind {
    /// Every fault kind, in a fixed order (the index order of
    /// [`FaultKind::index`], used by telemetry counters and reports).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::SramReadUpset,
        FaultKind::SramWriteFailure,
        FaultKind::DramDecay,
        FaultKind::IntTiming,
        FaultKind::FpTiming,
    ];

    /// This kind's position in [`FaultKind::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            FaultKind::SramReadUpset => 0,
            FaultKind::SramWriteFailure => 1,
            FaultKind::DramDecay => 2,
            FaultKind::IntTiming => 3,
            FaultKind::FpTiming => 4,
        }
    }

    /// Parses the [`Display`](fmt::Display) rendering back into a kind.
    pub fn from_name(name: &str) -> Option<FaultKind> {
        FaultKind::ALL.iter().copied().find(|k| k.to_string() == name)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::SramReadUpset => "sram-read-upset",
            FaultKind::SramWriteFailure => "sram-write-failure",
            FaultKind::DramDecay => "dram-decay",
            FaultKind::IntTiming => "int-timing",
            FaultKind::FpTiming => "fp-timing",
        };
        f.write_str(s)
    }
}

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// The injecting model.
    pub kind: FaultKind,
    /// Simulated time of injection, in seconds.
    pub time: f64,
    /// Bit width of the affected value.
    pub width: u32,
    /// Number of bits that changed — the real Hamming distance between the
    /// correct and observed values within `width` bits, for every fault
    /// model (value-replacement models included; a replacement that happens
    /// to reproduce the raw value counts as 0 flipped bits).
    pub bits_flipped: u32,
}

/// A bounded ring buffer of the most recent fault events.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<FaultEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceBuffer { events: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Records an event, evicting the oldest when full.
    pub fn push(&mut self, event: FaultEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Count of retained events by kind.
    pub fn count_by_kind(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FaultKind, time: f64) -> FaultEvent {
        FaultEvent { kind, time, width: 32, bits_flipped: 1 }
    }

    #[test]
    fn retains_most_recent_and_counts_drops() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5 {
            t.push(ev(FaultKind::IntTiming, i as f64));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let times: Vec<f64> = t.events().map(|e| e.time).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn counts_by_kind() {
        let mut t = TraceBuffer::new(10);
        t.push(ev(FaultKind::SramReadUpset, 0.0));
        t.push(ev(FaultKind::SramReadUpset, 1.0));
        t.push(ev(FaultKind::DramDecay, 2.0));
        assert_eq!(t.count_by_kind(FaultKind::SramReadUpset), 2);
        assert_eq!(t.count_by_kind(FaultKind::DramDecay), 1);
        assert_eq!(t.count_by_kind(FaultKind::FpTiming), 0);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = TraceBuffer::new(0);
    }
}
