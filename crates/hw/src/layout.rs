//! Cache-line-granularity layout of approximate data (section 4.1).
//!
//! The proposed hardware marks whole cache lines as approximate or precise.
//! The runtime therefore has to segregate data: an object's precise fields
//! (and its vtable pointer) are laid out first, and every line containing at
//! least one precise byte must be kept precise. Approximate fields are
//! appended; those that land in the last precise line get no energy savings,
//! and only the remainder is stored in approximate lines. For arrays of
//! approximate primitives the first line (length and type information) is
//! precise and all remaining lines are approximate.
//!
//! This module computes how many bytes of a given object or array actually
//! end up approximable, which feeds both the DRAM byte-second accounting and
//! the layout ablation benchmark.

/// A field in an object layout request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpec {
    /// Field name (for diagnostics only).
    pub name: &'static str,
    /// Size in bytes.
    pub size: usize,
    /// Whether the field has approximate type.
    pub approx: bool,
}

impl FieldSpec {
    /// Convenience constructor.
    pub fn new(name: &'static str, size: usize, approx: bool) -> Self {
        FieldSpec { name, size, approx }
    }
}

/// Result of laying out an object or array onto cache lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Layout {
    /// Bytes of precise data (including headers and padding counted against
    /// precise lines).
    pub precise_bytes: usize,
    /// Bytes of approximate data that ended up on precise lines and thus
    /// save no memory energy (but are still approximate when operated on).
    pub approx_bytes_on_precise_lines: usize,
    /// Bytes of approximate data stored on approximate lines.
    pub approx_bytes_on_approx_lines: usize,
    /// Total cache lines occupied.
    pub lines: usize,
}

impl Layout {
    /// Total bytes accounted (data only, not line padding).
    pub fn total_bytes(&self) -> usize {
        self.precise_bytes + self.approx_bytes_on_precise_lines + self.approx_bytes_on_approx_lines
    }

    /// Fraction of the object's bytes that enjoy approximate storage.
    pub fn approx_fraction(&self) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            0.0
        } else {
            self.approx_bytes_on_approx_lines as f64 / total as f64
        }
    }
}

/// Default object header size: one vtable pointer, as in the paper's scheme.
pub const OBJECT_HEADER_BYTES: usize = 8;

/// Default array header size: length plus type information.
pub const ARRAY_HEADER_BYTES: usize = 16;

/// Default cache line size used throughout the evaluation (section 4.1).
pub const DEFAULT_LINE_SIZE: usize = 64;

/// Lays out an object's fields onto cache lines of `line_size` bytes.
///
/// Precise fields (preceded by a `header_bytes` header, which is always
/// precise) are placed contiguously first, then approximate fields. Any
/// approximate bytes sharing a line with precise data remain in precise
/// storage, per the paper's scheme: "wasting space in the precise line in
/// order to place the data in an approximate line would use more memory and
/// thus more energy."
///
/// # Panics
///
/// Panics if `line_size` is zero.
///
/// # Examples
///
/// ```
/// use enerj_hw::layout::{layout_object, FieldSpec, OBJECT_HEADER_BYTES};
///
/// // An object with one precise word and a large approximate payload.
/// let fields = [
///     FieldSpec::new("id", 8, false),
///     FieldSpec::new("pixels", 256, true),
/// ];
/// let l = layout_object(&fields, 64, OBJECT_HEADER_BYTES);
/// // Header + id occupy the first (precise) line; 48 approximate bytes share
/// // it, and the remaining 208 land on approximate lines.
/// assert_eq!(l.approx_bytes_on_approx_lines, 208);
/// ```
pub fn layout_object(fields: &[FieldSpec], line_size: usize, header_bytes: usize) -> Layout {
    assert!(line_size > 0, "cache line size must be positive");
    let precise_data: usize =
        header_bytes + fields.iter().filter(|f| !f.approx).map(|f| f.size).sum::<usize>();
    let approx_data: usize = fields.iter().filter(|f| f.approx).map(|f| f.size).sum();
    split_after_precise_prefix(precise_data, approx_data, line_size)
}

/// Lays out an array of `len` elements of `elem_size` bytes.
///
/// The header line(s) are precise. If `elem_approx` is false the whole array
/// is precise; otherwise element bytes sharing the last header line stay
/// precise and the rest are approximate.
///
/// # Panics
///
/// Panics if `line_size` is zero.
pub fn layout_array(
    elem_size: usize,
    len: usize,
    elem_approx: bool,
    line_size: usize,
    header_bytes: usize,
) -> Layout {
    assert!(line_size > 0, "cache line size must be positive");
    let data = elem_size * len;
    if elem_approx {
        split_after_precise_prefix(header_bytes, data, line_size)
    } else {
        let total = header_bytes + data;
        Layout {
            precise_bytes: total,
            approx_bytes_on_precise_lines: 0,
            approx_bytes_on_approx_lines: 0,
            lines: total.div_ceil(line_size).max(1),
        }
    }
}

/// Core of both layouts: `precise` bytes followed by `approx` bytes; the
/// line containing the precise/approximate boundary is precise.
fn split_after_precise_prefix(precise: usize, approx: usize, line_size: usize) -> Layout {
    let total = precise + approx;
    let lines = total.div_ceil(line_size).max(1);
    if approx == 0 {
        return Layout {
            precise_bytes: precise,
            approx_bytes_on_precise_lines: 0,
            approx_bytes_on_approx_lines: 0,
            lines,
        };
    }
    // First line boundary at or after the end of the precise prefix.
    let boundary = precise.div_ceil(line_size) * line_size;
    let shared = boundary.saturating_sub(precise).min(approx);
    Layout {
        precise_bytes: precise,
        approx_bytes_on_precise_lines: shared,
        approx_bytes_on_approx_lines: approx - shared,
        lines,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_precise_object() {
        let fields = [FieldSpec::new("a", 8, false), FieldSpec::new("b", 8, false)];
        let l = layout_object(&fields, 64, OBJECT_HEADER_BYTES);
        assert_eq!(l.precise_bytes, 24);
        assert_eq!(l.approx_bytes_on_approx_lines, 0);
        assert_eq!(l.lines, 1);
        assert_eq!(l.approx_fraction(), 0.0);
    }

    #[test]
    fn small_approx_fields_stay_on_precise_line() {
        // Header (8) + 8 precise + 16 approx = 32 bytes, all on one 64-byte
        // line, so the approximate fields save nothing.
        let fields = [FieldSpec::new("p", 8, false), FieldSpec::new("a", 16, true)];
        let l = layout_object(&fields, 64, OBJECT_HEADER_BYTES);
        assert_eq!(l.approx_bytes_on_precise_lines, 16);
        assert_eq!(l.approx_bytes_on_approx_lines, 0);
    }

    #[test]
    fn large_approx_payload_spills_to_approx_lines() {
        let fields = [FieldSpec::new("p", 8, false), FieldSpec::new("a", 256, true)];
        let l = layout_object(&fields, 64, OBJECT_HEADER_BYTES);
        // Precise prefix 16 bytes; boundary at 64; 48 approx bytes shared.
        assert_eq!(l.approx_bytes_on_precise_lines, 48);
        assert_eq!(l.approx_bytes_on_approx_lines, 208);
        assert_eq!(l.total_bytes(), 272);
        assert_eq!(l.lines, 5);
    }

    #[test]
    fn approx_exactly_at_line_boundary_shares_nothing() {
        // 64 precise bytes end exactly at the boundary: no sharing.
        let fields = [FieldSpec::new("p", 56, false), FieldSpec::new("a", 64, true)];
        let l = layout_object(&fields, 64, OBJECT_HEADER_BYTES);
        assert_eq!(l.precise_bytes, 64);
        assert_eq!(l.approx_bytes_on_precise_lines, 0);
        assert_eq!(l.approx_bytes_on_approx_lines, 64);
    }

    #[test]
    fn array_first_line_precise_rest_approx() {
        let l = layout_array(8, 100, true, 64, ARRAY_HEADER_BYTES);
        // 16-byte header; 48 element bytes share line 0; 752 approx.
        assert_eq!(l.precise_bytes, 16);
        assert_eq!(l.approx_bytes_on_precise_lines, 48);
        assert_eq!(l.approx_bytes_on_approx_lines, 752);
    }

    #[test]
    fn precise_array_is_all_precise() {
        let l = layout_array(8, 100, false, 64, ARRAY_HEADER_BYTES);
        assert_eq!(l.precise_bytes, 816);
        assert_eq!(l.approx_fraction(), 0.0);
    }

    #[test]
    fn finer_lines_increase_approx_fraction() {
        let coarse = layout_array(4, 64, true, 128, ARRAY_HEADER_BYTES);
        let fine = layout_array(4, 64, true, 16, ARRAY_HEADER_BYTES);
        assert!(fine.approx_fraction() >= coarse.approx_fraction());
    }

    #[test]
    fn empty_array_occupies_header_line() {
        let l = layout_array(8, 0, true, 64, ARRAY_HEADER_BYTES);
        assert_eq!(l.lines, 1);
        assert_eq!(l.approx_bytes_on_approx_lines, 0);
    }

    #[test]
    #[should_panic(expected = "cache line size")]
    fn zero_line_size_rejected() {
        let _ = layout_array(8, 8, true, 0, ARRAY_HEADER_BYTES);
    }

    #[test]
    fn byte_conservation() {
        for &(p, a) in &[(0usize, 0usize), (1, 1), (13, 200), (64, 64), (100, 3)] {
            let fields = [FieldSpec::new("p", p, false), FieldSpec::new("a", a, true)];
            let l = layout_object(&fields, 64, 0);
            assert_eq!(l.total_bytes(), p + a);
        }
    }
}
