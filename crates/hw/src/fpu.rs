//! The imprecise floating-point unit (section 4.2, "width reduction in
//! floating point operations").
//!
//! Approximate FP operations ignore part of the operand mantissa: Table 2
//! keeps 16/8/4 bits of an `f32`'s 23-bit mantissa and 32/16/8 bits of an
//! `f64`'s 52-bit mantissa at the Mild/Medium/Aggressive levels. On top of
//! width reduction, the voltage-scaled unit suffers the same timing errors
//! as the integer ALU. Approximate floating-point division by zero returns
//! NaN rather than trapping (section 5.2).

use crate::config::ErrorMode;
use crate::fault;
use crate::stats::OpKind;
use crate::Hardware;

/// Number of mantissa bits in an IEEE 754 `f32`.
pub const F32_MANTISSA_BITS: u32 = 23;
/// Number of mantissa bits in an IEEE 754 `f64`.
pub const F64_MANTISSA_BITS: u32 = 52;

/// Bit mask that truncates an `f32` mantissa to its `keep` most
/// significant bits (all ones — the identity — for `keep >= 23`).
pub fn trunc_mask_f32(keep: u32) -> u32 {
    if keep >= F32_MANTISSA_BITS {
        u32::MAX
    } else {
        !((1u32 << (F32_MANTISSA_BITS - keep)) - 1)
    }
}

/// Bit mask that truncates an `f64` mantissa to its `keep` most
/// significant bits (all ones for `keep >= 52`).
pub fn trunc_mask_f64(keep: u32) -> u64 {
    if keep >= F64_MANTISSA_BITS {
        u64::MAX
    } else {
        !((1u64 << (F64_MANTISSA_BITS - keep)) - 1)
    }
}

/// Truncates an `f32` mantissa to its `keep` most significant bits.
///
/// NaN and infinities pass through unchanged. `keep >= 23` is the identity.
pub fn truncate_f32(x: f32, keep: u32) -> f32 {
    if !x.is_finite() {
        return x;
    }
    f32::from_bits(x.to_bits() & trunc_mask_f32(keep))
}

/// Truncates an `f64` mantissa to its `keep` most significant bits.
///
/// NaN and infinities pass through unchanged. `keep >= 52` is the identity.
pub fn truncate_f64(x: f64, keep: u32) -> f64 {
    if !x.is_finite() {
        return x;
    }
    f64::from_bits(x.to_bits() & trunc_mask_f64(keep))
}

impl Hardware {
    /// Applies mantissa width reduction to an `f32` operand, if the FP-width
    /// strategy is enabled. (When masked off, the hoisted truncation mask is
    /// all ones and truncation is the identity.)
    #[inline]
    pub fn approx_f32_operand(&self, x: f32) -> f32 {
        if !x.is_finite() {
            return x;
        }
        f32::from_bits(x.to_bits() & self.hot.f32_trunc_mask)
    }

    /// Applies mantissa width reduction to an `f64` operand, if the FP-width
    /// strategy is enabled.
    #[inline]
    pub fn approx_f64_operand(&self, x: f64) -> f64 {
        if !x.is_finite() {
            return x;
        }
        f64::from_bits(x.to_bits() & self.hot.f64_trunc_mask)
    }

    /// Result phase of an approximate `f32` operation: counts, ticks the
    /// clock, and applies a timing error with the configured probability.
    #[inline]
    pub fn approx_f32_result(&mut self, raw: f32) -> f32 {
        let bits = self.approx_fp_result_bits(u64::from(raw.to_bits()), 32);
        f32::from_bits(bits as u32)
    }

    /// Result phase of an approximate `f64` operation: counts, ticks the
    /// clock, and applies a timing error with the configured probability.
    #[inline]
    pub fn approx_f64_result(&mut self, raw: f64) -> f64 {
        let bits = self.approx_fp_result_bits(raw.to_bits(), 64);
        f64::from_bits(bits)
    }

    #[inline]
    fn approx_fp_result_bits(&mut self, raw: u64, width: u32) -> u64 {
        self.tick();
        self.stats.record_op(OpKind::Fp, true);
        let out = if self.sched.fp_timing.fire(&mut self.rng) {
            self.fp_timing_fault(raw, width)
        } else {
            raw & fault::low_mask(width)
        };
        self.last_fp = out;
        out
    }

    /// Fault payload of a floating-point timing error; out of line to keep
    /// the fault-free result phase free of the error-mode machinery. Shared
    /// with the batched entry points, which pre-stage `last_fp` so the
    /// `LastValue` mode sees the in-batch predecessor.
    #[cold]
    #[inline(never)]
    pub(crate) fn fp_timing_fault(&mut self, raw: u64, width: u32) -> u64 {
        let out = match self.hot.error_mode {
            ErrorMode::SingleBitFlip => fault::flip_one_bit(raw, width, &mut self.rng),
            ErrorMode::LastValue => self.last_fp & fault::low_mask(width),
            ErrorMode::RandomValue => fault::random_bits(width, &mut self.rng),
        };
        let flipped = ((out ^ raw) & fault::low_mask(width)).count_ones();
        self.note_fault(crate::trace::FaultKind::FpTiming, width, flipped);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ErrorMode, HwConfig, Level, StrategyMask};
    use crate::Hardware;

    #[test]
    fn truncation_identity_at_full_width() {
        let x = 0.123_456_79_f32;
        assert_eq!(truncate_f32(x, 23), x);
        let y = 0.123_456_789_012_345_f64;
        assert_eq!(truncate_f64(y, 52), y);
    }

    #[test]
    fn truncation_error_bounded_by_ulp_of_kept_width() {
        // Relative error after keeping k mantissa bits is below 2^-k.
        for &k in &[4u32, 8, 16] {
            let x = 1.7182818f32;
            let t = truncate_f32(x, k);
            let rel = ((x - t) / x).abs();
            assert!(rel < 2f32.powi(-(k as i32)), "k={k}: rel err {rel}");
            assert!(t <= x, "truncation rounds toward zero for positive values");
        }
        for &k in &[8u32, 16, 32] {
            let x = std::f64::consts::PI;
            let t = truncate_f64(x, k);
            let rel = ((x - t) / x).abs();
            assert!(rel < 2f64.powi(-(k as i32)));
        }
    }

    #[test]
    fn truncation_preserves_specials() {
        assert!(truncate_f32(f32::NAN, 4).is_nan());
        assert_eq!(truncate_f32(f32::INFINITY, 4), f32::INFINITY);
        assert_eq!(truncate_f64(f64::NEG_INFINITY, 8), f64::NEG_INFINITY);
        assert_eq!(truncate_f64(0.0, 8), 0.0);
        assert_eq!(truncate_f32(-0.0, 8), -0.0);
    }

    #[test]
    fn truncation_preserves_sign_and_exponent() {
        let x = -123.456e10f64;
        let t = truncate_f64(x, 8);
        assert!(t < 0.0);
        // Exponent intact: truncation moves the value by less than 1 part in
        // 2^8 of its magnitude.
        assert!(((x - t) / x).abs() < 2f64.powi(-8));
    }

    #[test]
    fn operand_truncation_respects_mask() {
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        let hw = Hardware::new(cfg, 0);
        let x = 1.7182818f32;
        assert_eq!(hw.approx_f32_operand(x), x);
        let hw2 = Hardware::new(HwConfig::for_level(Level::Aggressive), 0);
        assert_ne!(hw2.approx_f32_operand(x), x);
    }

    #[test]
    fn fp_result_counts_ops() {
        let mut cfg = HwConfig::for_level(Level::Mild);
        cfg.params.timing_error_prob = 0.0;
        let mut hw = Hardware::new(cfg, 0);
        let y = hw.approx_f64_result(2.5);
        assert_eq!(y, 2.5);
        assert_eq!(hw.stats().fp_approx_ops, 1);
    }

    #[test]
    fn fp_timing_error_random_value_produces_garbage_bits() {
        let mut cfg =
            HwConfig::for_level(Level::Aggressive).with_error_mode(ErrorMode::RandomValue);
        cfg.params.timing_error_prob = 1.0;
        let mut hw = Hardware::new(cfg, 3);
        // With p=1 every op faults; over many trials at least one output
        // should differ from the raw result.
        let outputs: Vec<f32> = (0..100).map(|_| hw.approx_f32_result(1.0)).collect();
        assert!(outputs.iter().any(|&y| y != 1.0));
        assert_eq!(hw.stats().faults_injected, 100);
    }

    #[test]
    fn fp_last_value_mode() {
        let mut cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(ErrorMode::LastValue);
        cfg.params.timing_error_prob = 1.0;
        let mut hw = Hardware::new(cfg, 3);
        let a = hw.approx_f64_result(9.75); // faults; last_fp starts 0
        assert_eq!(a, 0.0);
        let b = hw.approx_f64_result(1.5);
        assert_eq!(b, a);
    }

    #[test]
    fn aggressive_truncation_flattens_nearby_values() {
        // With only 4 mantissa bits, values closer than 2^-5 relative
        // difference collapse together — the mechanism behind FP QoS loss.
        let a = truncate_f32(1.001, 4);
        let b = truncate_f32(1.002, 4);
        assert_eq!(a, b);
    }
}
