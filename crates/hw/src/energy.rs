//! The CPU/memory-system energy model (section 5.4, Figure 4).
//!
//! The paper assigns abstract energy units to instructions — 37 for integer
//! and 40 for floating-point operations, of which 22 units are instruction
//! fetch and decode and cannot be reduced by approximation. Savings apply
//! only to the execution portion: voltage scaling saves
//! [`alu_energy_saved`](crate::config::ApproxParams::alu_energy_saved) of an
//! approximate integer op's execution energy, and mantissa width reduction
//! saves [`fp_energy_saved`](crate::config::ApproxParams::fp_energy_saved)
//! of an approximate FP op's execution energy.
//!
//! SRAM storage and the instructions that access it account for 35% of
//! microarchitecture power and execution logic for the remaining 65%; the
//! full system splits 55% CPU / 45% DRAM (the paper's server-like setting).
//! Approximate SRAM saves `sram_power_saved` of its share, approximate DRAM
//! saves `dram_power_saved`.
//!
//! Accounting is exact: [`energy_quanta`] computes scaled and baseline
//! energy per component as integers ([`EnergyQuanta`]), using basis-point
//! savings that represent every Table 2 fraction exactly. The normalized
//! figures of the paper ([`EnergyBreakdown`]) are a *projection* — one f64
//! division per component at the very end — so the numbers in Figure 4 are
//! unchanged to within a final-rounding ulp, while totals and budgets can
//! be summed and compared with no order dependence at all.
//!
//! The model deliberately omits the overheads of switching between precise
//! and approximate hardware, as the paper's does; results are therefore
//! optimistic in the same way.

use crate::config::ApproxParams;
use crate::quanta::{ratio, savings_basis_points, EnergyQuanta, SAVINGS_SCALE};
use crate::stats::Stats;

/// Energy units per integer instruction.
pub const INT_OP_UNITS: f64 = 37.0;
/// Energy units per floating-point instruction.
pub const FP_OP_UNITS: f64 = 40.0;
/// Units of each instruction consumed by fetch and decode (irreducible).
pub const FETCH_DECODE_UNITS: f64 = 22.0;
/// Fraction of microarchitecture power attributed to SRAM storage.
pub const SRAM_CPU_FRACTION: f64 = 0.35;
/// Fraction of microarchitecture power attributed to execution logic.
pub const LOGIC_CPU_FRACTION: f64 = 0.65;
/// Fraction of system power attributed to the CPU (server setting).
pub const CPU_SYSTEM_FRACTION: f64 = 0.55;
/// Fraction of system power attributed to DRAM (server setting).
pub const DRAM_SYSTEM_FRACTION: f64 = 0.45;

/// Mobile-setting split: DRAM is only 25% of power (section 5.4 note).
pub const DRAM_MOBILE_FRACTION: f64 = 0.25;

/// Integer twin of [`INT_OP_UNITS`], used by the exact accounting path.
pub const INT_OP_UNITS_Q: u128 = 37;
/// Integer twin of [`FP_OP_UNITS`].
pub const FP_OP_UNITS_Q: u128 = 40;
/// Integer twin of [`FETCH_DECODE_UNITS`].
pub const FETCH_DECODE_UNITS_Q: u128 = 22;

/// Normalized energy of one simulated run, total and by component.
///
/// All fields are fractions of the same run executed fully precisely, so the
/// baseline is 1.0 and `total` directly gives one numbered bar of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Instruction-execution energy relative to precise execution.
    pub instructions: f64,
    /// SRAM storage energy relative to precise execution.
    pub sram: f64,
    /// DRAM storage energy relative to precise execution.
    pub dram: f64,
    /// Whole-system energy relative to precise execution (Figure 4 bar).
    pub total: f64,
}

impl EnergyBreakdown {
    /// Energy *saved* relative to the precise baseline, as a fraction.
    pub fn savings(&self) -> f64 {
        1.0 - self.total
    }
}

/// Exact integer energy of one run, per component, scaled and baseline.
///
/// Instruction fields are basis-point energy units (paper units ×
/// [`SAVINGS_SCALE`]); storage fields are basis-point bit·op-ticks (storage
/// quanta × `SAVINGS_SCALE`). `scaled ≤ baseline` holds per component by
/// construction. Totals are plain sums, so merging breakdowns from any
/// number of trials in any order yields bit-identical results, and a budget
/// expressed in quanta can be debited exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EnergyQuantaBreakdown {
    /// Scaled instruction energy (approximation savings applied).
    pub instructions: EnergyQuanta,
    /// Baseline instruction energy (as if fully precise).
    pub baseline_instructions: EnergyQuanta,
    /// Scaled SRAM storage energy.
    pub sram: EnergyQuanta,
    /// Baseline SRAM storage energy.
    pub baseline_sram: EnergyQuanta,
    /// Scaled DRAM storage energy.
    pub dram: EnergyQuanta,
    /// Baseline DRAM storage energy.
    pub baseline_dram: EnergyQuanta,
    /// Scaled whole-run energy: `instructions + sram + dram`.
    pub total: EnergyQuanta,
    /// Baseline whole-run energy.
    pub baseline_total: EnergyQuanta,
}

impl EnergyQuantaBreakdown {
    /// The all-zero breakdown (an empty run).
    pub const ZERO: EnergyQuantaBreakdown = EnergyQuantaBreakdown {
        instructions: EnergyQuanta::ZERO,
        baseline_instructions: EnergyQuanta::ZERO,
        sram: EnergyQuanta::ZERO,
        baseline_sram: EnergyQuanta::ZERO,
        dram: EnergyQuanta::ZERO,
        baseline_dram: EnergyQuanta::ZERO,
        total: EnergyQuanta::ZERO,
        baseline_total: EnergyQuanta::ZERO,
    };

    /// Field-wise exact merge; associative and commutative.
    pub fn merge(&mut self, other: &EnergyQuantaBreakdown) {
        self.instructions += other.instructions;
        self.baseline_instructions += other.baseline_instructions;
        self.sram += other.sram;
        self.baseline_sram += other.baseline_sram;
        self.dram += other.dram;
        self.baseline_dram += other.baseline_dram;
        self.total += other.total;
        self.baseline_total += other.baseline_total;
    }

    /// Projects the exact quanta to the paper's normalized figures using
    /// the server-like system split.
    pub fn normalized(&self) -> EnergyBreakdown {
        self.normalized_with_split(DRAM_SYSTEM_FRACTION)
    }

    /// Projects the exact quanta to normalized figures with an explicit
    /// DRAM share of system power.
    ///
    /// Each component is one f64 division of exact integers (1.0 for an
    /// empty pool, whose zero test is exact); the component weights are the
    /// paper's power-split fractions.
    ///
    /// # Panics
    ///
    /// Panics if `dram_fraction` is not in `[0, 1]`.
    pub fn normalized_with_split(&self, dram_fraction: f64) -> EnergyBreakdown {
        assert!((0.0..=1.0).contains(&dram_fraction), "dram_fraction {dram_fraction} out of range");
        let cpu_fraction = 1.0 - dram_fraction;
        let project = |scaled: EnergyQuanta, baseline: EnergyQuanta| {
            if baseline.is_zero() {
                1.0
            } else {
                ratio(scaled, baseline)
            }
        };
        let instructions = project(self.instructions, self.baseline_instructions);
        let sram = project(self.sram, self.baseline_sram);
        let dram = project(self.dram, self.baseline_dram);
        let cpu = LOGIC_CPU_FRACTION * instructions + SRAM_CPU_FRACTION * sram;
        let total = cpu_fraction * cpu + dram_fraction * dram;
        EnergyBreakdown { instructions, sram, dram, total }
    }
}

/// Which component of an [`EnergyQuantaBreakdown`] a live energy budget
/// meters.
///
/// The online scheduler debits a fixed per-campaign budget against one of
/// these; the snapshot is a field read — O(1), no recomputation — so a
/// controller can poll spend at every drain without touching the hot path.
/// `Sram` is the paper's Table 2 supply-voltage knob (the 70/80/90% saved
/// column): it is the component the level ladder actually moves across its
/// full range, whereas `Total` is dominated by DRAM residency, whose
/// savings cap at 24%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QuantaMeter {
    /// Whole-run scaled energy (`total`).
    Total,
    /// SRAM supply energy (`sram`) — the default scheduling meter.
    #[default]
    Sram,
}

impl QuantaMeter {
    /// The metered *scaled* spend of one breakdown: what a budget debits.
    pub fn spent(self, q: &EnergyQuantaBreakdown) -> EnergyQuanta {
        match self {
            QuantaMeter::Total => q.total,
            QuantaMeter::Sram => q.sram,
        }
    }

    /// The metered *baseline* (as-if-fully-precise) cost of one breakdown:
    /// what "100% of the all-Precise cost" means under this meter.
    pub fn baseline(self, q: &EnergyQuantaBreakdown) -> EnergyQuanta {
        match self {
            QuantaMeter::Total => q.baseline_total,
            QuantaMeter::Sram => q.baseline_sram,
        }
    }

    /// Stable lowercase name, used in reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            QuantaMeter::Total => "total",
            QuantaMeter::Sram => "sram",
        }
    }

    /// Parses a CLI/report name ([`name`](Self::name)).
    pub fn parse(s: &str) -> Option<QuantaMeter> {
        match s {
            "total" => Some(QuantaMeter::Total),
            "sram" => Some(QuantaMeter::Sram),
            _ => None,
        }
    }
}

/// Computes the exact integer energy of a run described by `stats` on
/// hardware with parameters `params`.
///
/// Instruction energy scales the non-fetch/decode component of approximate
/// instructions by the per-strategy savings in basis points; storage energy
/// scales each pool's approximate quanta likewise. Every multiply is an
/// expanded integer multiply — no intermediate floats — so the result is a
/// deterministic function of the counters alone.
pub fn energy_quanta(stats: &Stats, params: &ApproxParams) -> EnergyQuantaBreakdown {
    let alu_bp = savings_basis_points(params.alu_energy_saved);
    let fp_bp = savings_basis_points(params.fp_energy_saved);
    let sram_bp = savings_basis_points(params.sram_power_saved);
    let dram_bp = savings_basis_points(params.dram_power_saved);

    let int_exec = INT_OP_UNITS_Q - FETCH_DECODE_UNITS_Q;
    let fp_exec = FP_OP_UNITS_Q - FETCH_DECODE_UNITS_Q;

    let baseline_instructions = EnergyQuanta::new(
        u128::from(stats.total_ops(crate::stats::OpKind::Int)) * INT_OP_UNITS_Q * SAVINGS_SCALE
            + u128::from(stats.total_ops(crate::stats::OpKind::Fp)) * FP_OP_UNITS_Q * SAVINGS_SCALE,
    );
    let saved_instructions = EnergyQuanta::new(
        u128::from(stats.int_approx_ops) * int_exec * alu_bp
            + u128::from(stats.fp_approx_ops) * fp_exec * fp_bp,
    );
    let instructions = baseline_instructions - saved_instructions;

    let (sram, baseline_sram) =
        scaled_storage_quanta(stats.sram_precise_quanta, stats.sram_approx_quanta, sram_bp);
    let (dram, baseline_dram) =
        scaled_storage_quanta(stats.dram_precise_quanta, stats.dram_approx_quanta, dram_bp);

    EnergyQuantaBreakdown {
        instructions,
        baseline_instructions,
        sram,
        baseline_sram,
        dram,
        baseline_dram,
        total: instructions + sram + dram,
        baseline_total: baseline_instructions + baseline_sram + baseline_dram,
    }
}

/// Exact (scaled, baseline) energy of a storage pool where the approximate
/// share saves `saved_bp` basis points of its power.
fn scaled_storage_quanta(
    precise: EnergyQuanta,
    approx: EnergyQuanta,
    saved_bp: u128,
) -> (EnergyQuanta, EnergyQuanta) {
    let baseline = EnergyQuanta::new((precise.get() + approx.get()) * SAVINGS_SCALE);
    let scaled = EnergyQuanta::new(
        precise.get() * SAVINGS_SCALE + approx.get() * (SAVINGS_SCALE - saved_bp),
    );
    (scaled, baseline)
}

/// Computes the normalized energy of a run described by `stats` when executed
/// on hardware with parameters `params`, using the server-like system split.
///
/// # Examples
///
/// ```
/// use enerj_hw::config::ApproxParams;
/// use enerj_hw::energy::normalized_energy;
/// use enerj_hw::stats::{OpKind, Stats};
///
/// let mut stats = Stats::new();
/// for _ in 0..100 {
///     stats.record_op(OpKind::Fp, true); // everything approximate
/// }
/// let e = normalized_energy(&stats, &ApproxParams::MEDIUM);
/// assert!(e.total < 1.0, "approximate execution must save energy");
/// ```
pub fn normalized_energy(stats: &Stats, params: &ApproxParams) -> EnergyBreakdown {
    normalized_energy_with_split(stats, params, DRAM_SYSTEM_FRACTION)
}

/// Like [`normalized_energy`] but with an explicit DRAM share of system
/// power, e.g. [`DRAM_MOBILE_FRACTION`] for the smartphone setting.
///
/// This is a thin wrapper: the exact quanta are computed first and the
/// normalized figures are projected from them at the end.
///
/// # Panics
///
/// Panics if `dram_fraction` is not in `[0, 1]`.
pub fn normalized_energy_with_split(
    stats: &Stats,
    params: &ApproxParams,
    dram_fraction: f64,
) -> EnergyBreakdown {
    energy_quanta(stats, params).normalized_with_split(dram_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ApproxParams, Level};
    use crate::stats::{MemKind, OpKind, Stats};

    fn fully_approx_stats() -> Stats {
        let mut s = Stats::new();
        for _ in 0..1000 {
            s.record_op(OpKind::Fp, true);
            s.record_op(OpKind::Int, true);
        }
        s.record_storage(MemKind::Sram, true, 1000.0, 1.0);
        s.record_storage(MemKind::Dram, true, 1000.0, 1.0);
        s
    }

    fn fully_precise_stats() -> Stats {
        let mut s = Stats::new();
        for _ in 0..1000 {
            s.record_op(OpKind::Fp, false);
            s.record_op(OpKind::Int, false);
        }
        s.record_storage(MemKind::Sram, false, 1000.0, 1.0);
        s.record_storage(MemKind::Dram, false, 1000.0, 1.0);
        s
    }

    #[test]
    fn precise_run_has_unit_energy() {
        let e = normalized_energy(&fully_precise_stats(), &ApproxParams::AGGRESSIVE);
        assert!((e.total - 1.0).abs() < 1e-12);
        assert_eq!(e.savings(), 0.0);
    }

    #[test]
    fn precise_run_quanta_equal_baseline_exactly() {
        let q = energy_quanta(&fully_precise_stats(), &ApproxParams::AGGRESSIVE);
        assert_eq!(q.instructions, q.baseline_instructions);
        assert_eq!(q.sram, q.baseline_sram);
        assert_eq!(q.dram, q.baseline_dram);
        assert_eq!(q.total, q.baseline_total);
    }

    #[test]
    fn empty_run_has_unit_energy() {
        let e = normalized_energy(&Stats::new(), &ApproxParams::MEDIUM);
        assert!((e.total - 1.0).abs() < 1e-12);
        assert_eq!(
            energy_quanta(&Stats::new(), &ApproxParams::MEDIUM),
            EnergyQuantaBreakdown::ZERO
        );
    }

    #[test]
    fn savings_grow_with_aggressiveness() {
        let s = fully_approx_stats();
        let mild = normalized_energy(&s, &Level::Mild.params()).total;
        let medium = normalized_energy(&s, &Level::Medium.params()).total;
        let aggressive = normalized_energy(&s, &Level::Aggressive.params()).total;
        assert!(mild > medium && medium > aggressive);
        assert!(mild < 1.0);
    }

    #[test]
    fn savings_fall_in_papers_band_for_highly_approximate_runs() {
        // The paper reports 10%-50% savings across benchmarks; a fully
        // approximate workload should land at the upper end of that band.
        let s = fully_approx_stats();
        for level in Level::ALL {
            let savings = normalized_energy(&s, &level.params()).savings();
            assert!(
                savings > 0.09 && savings < 0.55,
                "{level}: savings {savings} outside the plausible band"
            );
        }
    }

    #[test]
    fn fetch_decode_floor_limits_instruction_savings() {
        // Even with 100% execution savings, 22/37 of integer energy remains
        // — and on quanta the floor is exact: 22/37 of the baseline.
        let mut s = Stats::new();
        for _ in 0..100 {
            s.record_op(OpKind::Int, true);
        }
        let mut params = ApproxParams::AGGRESSIVE;
        params.alu_energy_saved = 1.0;
        let e = normalized_energy(&s, &params);
        assert!((e.instructions - FETCH_DECODE_UNITS / INT_OP_UNITS).abs() < 1e-12);
        let q = energy_quanta(&s, &params);
        assert_eq!(q.instructions, EnergyQuanta::new(100 * 22 * SAVINGS_SCALE));
        assert_eq!(q.baseline_instructions, EnergyQuanta::new(100 * 37 * SAVINGS_SCALE));
    }

    #[test]
    fn fp_ops_save_more_than_int_ops() {
        // Table 2: FP width reduction saves far more than ALU voltage
        // scaling — the basis for the paper's observation that FP-heavy
        // applications offer more opportunity.
        let mut fp = Stats::new();
        let mut int = Stats::new();
        for _ in 0..100 {
            fp.record_op(OpKind::Fp, true);
            int.record_op(OpKind::Int, true);
        }
        let p = ApproxParams::MEDIUM;
        assert!(normalized_energy(&fp, &p).instructions < normalized_energy(&int, &p).instructions);
    }

    #[test]
    fn mobile_split_weights_cpu_more() {
        let mut s = Stats::new();
        // Only DRAM is approximate; in the mobile split that matters less.
        s.record_storage(MemKind::Dram, true, 100.0, 1.0);
        for _ in 0..100 {
            s.record_op(OpKind::Int, false);
        }
        let p = ApproxParams::MEDIUM;
        let server = normalized_energy_with_split(&s, &p, DRAM_SYSTEM_FRACTION);
        let mobile = normalized_energy_with_split(&s, &p, DRAM_MOBILE_FRACTION);
        assert!(mobile.total > server.total, "DRAM-only savings shrink on mobile");
    }

    #[test]
    fn component_fractions_sum_to_one() {
        assert!((SRAM_CPU_FRACTION + LOGIC_CPU_FRACTION - 1.0).abs() < 1e-12);
        assert!((CPU_SYSTEM_FRACTION + DRAM_SYSTEM_FRACTION - 1.0).abs() < 1e-12);
    }

    #[test]
    fn integer_unit_constants_match_their_float_twins() {
        assert_eq!(INT_OP_UNITS_Q as f64, INT_OP_UNITS);
        assert_eq!(FP_OP_UNITS_Q as f64, FP_OP_UNITS);
        assert_eq!(FETCH_DECODE_UNITS_Q as f64, FETCH_DECODE_UNITS);
    }

    #[test]
    fn quanta_merge_matches_merged_stats() {
        // Computing energy from merged stats equals merging per-part
        // energy: both are pure integer sums, so the identity is exact.
        let a = fully_approx_stats();
        let b = fully_precise_stats();
        let p = ApproxParams::MEDIUM;
        let mut merged_stats = a;
        merged_stats.merge(&b);
        let mut merged_energy = energy_quanta(&a, &p);
        merged_energy.merge(&energy_quanta(&b, &p));
        assert_eq!(energy_quanta(&merged_stats, &p), merged_energy);
    }

    #[test]
    fn empty_storage_pool_projects_to_unit_energy() {
        // Exact zero guard: an untouched pool is baseline (1.0), not NaN.
        let mut s = Stats::new();
        s.record_op(OpKind::Int, true);
        let e = normalized_energy(&s, &ApproxParams::AGGRESSIVE);
        assert_eq!(e.sram, 1.0);
        assert_eq!(e.dram, 1.0);
        assert!(e.instructions < 1.0);
    }

    #[test]
    #[should_panic(expected = "dram_fraction")]
    fn bad_split_rejected() {
        let _ = normalized_energy_with_split(&Stats::new(), &ApproxParams::MILD, 1.5);
    }

    #[test]
    fn quanta_meter_reads_the_matching_component() {
        let q = energy_quanta(&fully_approx_stats(), &ApproxParams::MEDIUM);
        assert_eq!(QuantaMeter::Total.spent(&q), q.total);
        assert_eq!(QuantaMeter::Total.baseline(&q), q.baseline_total);
        assert_eq!(QuantaMeter::Sram.spent(&q), q.sram);
        assert_eq!(QuantaMeter::Sram.baseline(&q), q.baseline_sram);
        for meter in [QuantaMeter::Total, QuantaMeter::Sram] {
            assert!(meter.spent(&q) <= meter.baseline(&q), "scaled never exceeds baseline");
            assert_eq!(QuantaMeter::parse(meter.name()), Some(meter));
        }
        assert_eq!(QuantaMeter::parse("dram"), None);
        assert_eq!(QuantaMeter::default(), QuantaMeter::Sram);
    }

    #[test]
    fn precise_params_charge_exactly_the_baseline() {
        // The scheduler's Precise rung: zero-savings params mean an
        // *approximate-annotated* workload is still charged the full
        // precise baseline, exactly, on every component.
        let q = energy_quanta(&fully_approx_stats(), &ApproxParams::PRECISE);
        assert_eq!(q.instructions, q.baseline_instructions);
        assert_eq!(q.sram, q.baseline_sram);
        assert_eq!(q.dram, q.baseline_dram);
        assert_eq!(q.total, q.baseline_total);
        assert!(!q.total.is_zero());
    }
}
