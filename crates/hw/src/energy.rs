//! The CPU/memory-system energy model (section 5.4, Figure 4).
//!
//! The paper assigns abstract energy units to instructions — 37 for integer
//! and 40 for floating-point operations, of which 22 units are instruction
//! fetch and decode and cannot be reduced by approximation. Savings apply
//! only to the execution portion: voltage scaling saves
//! [`alu_energy_saved`](crate::config::ApproxParams::alu_energy_saved) of an
//! approximate integer op's execution energy, and mantissa width reduction
//! saves [`fp_energy_saved`](crate::config::ApproxParams::fp_energy_saved)
//! of an approximate FP op's execution energy.
//!
//! SRAM storage and the instructions that access it account for 35% of
//! microarchitecture power and execution logic for the remaining 65%; the
//! full system splits 55% CPU / 45% DRAM (the paper's server-like setting).
//! Approximate SRAM saves `sram_power_saved` of its share, approximate DRAM
//! saves `dram_power_saved`.
//!
//! The model deliberately omits the overheads of switching between precise
//! and approximate hardware, as the paper's does; results are therefore
//! optimistic in the same way.

use crate::config::ApproxParams;
use crate::stats::Stats;

/// Energy units per integer instruction.
pub const INT_OP_UNITS: f64 = 37.0;
/// Energy units per floating-point instruction.
pub const FP_OP_UNITS: f64 = 40.0;
/// Units of each instruction consumed by fetch and decode (irreducible).
pub const FETCH_DECODE_UNITS: f64 = 22.0;
/// Fraction of microarchitecture power attributed to SRAM storage.
pub const SRAM_CPU_FRACTION: f64 = 0.35;
/// Fraction of microarchitecture power attributed to execution logic.
pub const LOGIC_CPU_FRACTION: f64 = 0.65;
/// Fraction of system power attributed to the CPU (server setting).
pub const CPU_SYSTEM_FRACTION: f64 = 0.55;
/// Fraction of system power attributed to DRAM (server setting).
pub const DRAM_SYSTEM_FRACTION: f64 = 0.45;

/// Mobile-setting split: DRAM is only 25% of power (section 5.4 note).
pub const DRAM_MOBILE_FRACTION: f64 = 0.25;

/// Normalized energy of one simulated run, total and by component.
///
/// All fields are fractions of the same run executed fully precisely, so the
/// baseline is 1.0 and `total` directly gives one numbered bar of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Instruction-execution energy relative to precise execution.
    pub instructions: f64,
    /// SRAM storage energy relative to precise execution.
    pub sram: f64,
    /// DRAM storage energy relative to precise execution.
    pub dram: f64,
    /// Whole-system energy relative to precise execution (Figure 4 bar).
    pub total: f64,
}

impl EnergyBreakdown {
    /// Energy *saved* relative to the precise baseline, as a fraction.
    pub fn savings(&self) -> f64 {
        1.0 - self.total
    }
}

/// Computes the normalized energy of a run described by `stats` when executed
/// on hardware with parameters `params`, using the server-like system split.
///
/// # Examples
///
/// ```
/// use enerj_hw::config::ApproxParams;
/// use enerj_hw::energy::normalized_energy;
/// use enerj_hw::stats::{OpKind, Stats};
///
/// let mut stats = Stats::new();
/// for _ in 0..100 {
///     stats.record_op(OpKind::Fp, true); // everything approximate
/// }
/// let e = normalized_energy(&stats, &ApproxParams::MEDIUM);
/// assert!(e.total < 1.0, "approximate execution must save energy");
/// ```
pub fn normalized_energy(stats: &Stats, params: &ApproxParams) -> EnergyBreakdown {
    normalized_energy_with_split(stats, params, DRAM_SYSTEM_FRACTION)
}

/// Like [`normalized_energy`] but with an explicit DRAM share of system
/// power, e.g. [`DRAM_MOBILE_FRACTION`] for the smartphone setting.
///
/// # Panics
///
/// Panics if `dram_fraction` is not in `[0, 1]`.
pub fn normalized_energy_with_split(
    stats: &Stats,
    params: &ApproxParams,
    dram_fraction: f64,
) -> EnergyBreakdown {
    assert!((0.0..=1.0).contains(&dram_fraction), "dram_fraction {dram_fraction} out of range");
    let cpu_fraction = 1.0 - dram_fraction;

    // Instruction execution: scale the non-fetch/decode component of
    // approximate instructions by the per-strategy savings.
    let int_exec = INT_OP_UNITS - FETCH_DECODE_UNITS;
    let fp_exec = FP_OP_UNITS - FETCH_DECODE_UNITS;
    let baseline_instr = (stats.int_precise_ops + stats.int_approx_ops) as f64 * INT_OP_UNITS
        + (stats.fp_precise_ops + stats.fp_approx_ops) as f64 * FP_OP_UNITS;
    let saved_instr = stats.int_approx_ops as f64 * int_exec * params.alu_energy_saved
        + stats.fp_approx_ops as f64 * fp_exec * params.fp_energy_saved;
    let instructions =
        if baseline_instr == 0.0 { 1.0 } else { (baseline_instr - saved_instr) / baseline_instr };

    // SRAM: approximate byte-seconds run at reduced supply power.
    let sram = scaled_storage(
        stats.sram_precise_byte_seconds,
        stats.sram_approx_byte_seconds,
        params.sram_power_saved,
    );

    // DRAM: approximate byte-seconds run at reduced refresh power.
    let dram = scaled_storage(
        stats.dram_precise_byte_seconds,
        stats.dram_approx_byte_seconds,
        params.dram_power_saved,
    );

    let cpu = LOGIC_CPU_FRACTION * instructions + SRAM_CPU_FRACTION * sram;
    let total = cpu_fraction * cpu + dram_fraction * dram;
    EnergyBreakdown { instructions, sram, dram, total }
}

/// Relative energy of a storage pool where the approximate share `a` (in
/// byte-seconds, against precise share `p`) saves fraction `saved`.
fn scaled_storage(p: f64, a: f64, saved: f64) -> f64 {
    if p + a == 0.0 {
        1.0
    } else {
        (p + a * (1.0 - saved)) / (p + a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ApproxParams, Level};
    use crate::stats::{MemKind, OpKind, Stats};

    fn fully_approx_stats() -> Stats {
        let mut s = Stats::new();
        for _ in 0..1000 {
            s.record_op(OpKind::Fp, true);
            s.record_op(OpKind::Int, true);
        }
        s.record_storage(MemKind::Sram, true, 1000.0, 1.0);
        s.record_storage(MemKind::Dram, true, 1000.0, 1.0);
        s
    }

    fn fully_precise_stats() -> Stats {
        let mut s = Stats::new();
        for _ in 0..1000 {
            s.record_op(OpKind::Fp, false);
            s.record_op(OpKind::Int, false);
        }
        s.record_storage(MemKind::Sram, false, 1000.0, 1.0);
        s.record_storage(MemKind::Dram, false, 1000.0, 1.0);
        s
    }

    #[test]
    fn precise_run_has_unit_energy() {
        let e = normalized_energy(&fully_precise_stats(), &ApproxParams::AGGRESSIVE);
        assert!((e.total - 1.0).abs() < 1e-12);
        assert_eq!(e.savings(), 0.0);
    }

    #[test]
    fn empty_run_has_unit_energy() {
        let e = normalized_energy(&Stats::new(), &ApproxParams::MEDIUM);
        assert!((e.total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn savings_grow_with_aggressiveness() {
        let s = fully_approx_stats();
        let mild = normalized_energy(&s, &Level::Mild.params()).total;
        let medium = normalized_energy(&s, &Level::Medium.params()).total;
        let aggressive = normalized_energy(&s, &Level::Aggressive.params()).total;
        assert!(mild > medium && medium > aggressive);
        assert!(mild < 1.0);
    }

    #[test]
    fn savings_fall_in_papers_band_for_highly_approximate_runs() {
        // The paper reports 10%-50% savings across benchmarks; a fully
        // approximate workload should land at the upper end of that band.
        let s = fully_approx_stats();
        for level in Level::ALL {
            let savings = normalized_energy(&s, &level.params()).savings();
            assert!(
                savings > 0.09 && savings < 0.55,
                "{level}: savings {savings} outside the plausible band"
            );
        }
    }

    #[test]
    fn fetch_decode_floor_limits_instruction_savings() {
        // Even with 100% execution savings, 22/37 of integer energy remains.
        let mut s = Stats::new();
        for _ in 0..100 {
            s.record_op(OpKind::Int, true);
        }
        let mut params = ApproxParams::AGGRESSIVE;
        params.alu_energy_saved = 1.0;
        let e = normalized_energy(&s, &params);
        assert!((e.instructions - FETCH_DECODE_UNITS / INT_OP_UNITS).abs() < 1e-12);
    }

    #[test]
    fn fp_ops_save_more_than_int_ops() {
        // Table 2: FP width reduction saves far more than ALU voltage
        // scaling — the basis for the paper's observation that FP-heavy
        // applications offer more opportunity.
        let mut fp = Stats::new();
        let mut int = Stats::new();
        for _ in 0..100 {
            fp.record_op(OpKind::Fp, true);
            int.record_op(OpKind::Int, true);
        }
        let p = ApproxParams::MEDIUM;
        assert!(normalized_energy(&fp, &p).instructions < normalized_energy(&int, &p).instructions);
    }

    #[test]
    fn mobile_split_weights_cpu_more() {
        let mut s = Stats::new();
        // Only DRAM is approximate; in the mobile split that matters less.
        s.record_storage(MemKind::Dram, true, 100.0, 1.0);
        for _ in 0..100 {
            s.record_op(OpKind::Int, false);
        }
        let p = ApproxParams::MEDIUM;
        let server = normalized_energy_with_split(&s, &p, DRAM_SYSTEM_FRACTION);
        let mobile = normalized_energy_with_split(&s, &p, DRAM_MOBILE_FRACTION);
        assert!(mobile.total > server.total, "DRAM-only savings shrink on mobile");
    }

    #[test]
    fn component_fractions_sum_to_one() {
        assert!((SRAM_CPU_FRACTION + LOGIC_CPU_FRACTION - 1.0).abs() < 1e-12);
        assert!((CPU_SYSTEM_FRACTION + DRAM_SYSTEM_FRACTION - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dram_fraction")]
    fn bad_split_rejected() {
        let _ = normalized_energy_with_split(&Stats::new(), &ApproxParams::MILD, 1.5);
    }
}
