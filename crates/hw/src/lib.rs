//! # enerj-hw: the approximation-aware execution substrate
//!
//! This crate simulates the hardware model of *EnerJ: Approximate Data Types
//! for Safe and General Low-Power Computation* (PLDI 2011), section 4: a
//! machine with approximate registers and caches (SRAM under lowered supply
//! voltage), approximate main memory (DRAM under reduced refresh rate), and
//! imprecise functional units (voltage-scaled ALUs and width-reduced FPUs).
//!
//! The central type is [`Hardware`]: a deterministic, seeded fault-injection
//! engine that also keeps the statistics (dynamic operation counts and
//! storage byte-seconds) and drives the energy model used to regenerate the
//! paper's Figures 3 and 4.
//!
//! Modules:
//!
//! * [`config`] — Table 2 parameter bundles (Mild/Medium/Aggressive),
//!   strategy masks for ablations, and functional-unit error modes.
//! * [`fault`] — bit-level fault injection primitives.
//! * [`clock`] — the deterministic virtual clock.
//! * [`stats`] — operation and byte-second accounting (Figure 3).
//! * [`layout`] — cache-line-granularity layout of approximate data (§4.1).
//! * [`alu`], [`fpu`] — imprecise functional units (§4.2).
//! * [`sram`], [`dram`] — approximate storage (§4.2, §5.3).
//! * [`energy`] — the CPU/memory-system energy model (§5.4, Figure 4).
//!
//! # Examples
//!
//! ```
//! use enerj_hw::config::{HwConfig, Level};
//! use enerj_hw::Hardware;
//!
//! let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 7);
//! // An approximate integer add: the raw result may be perturbed.
//! let raw = 2i64.wrapping_add(3) as u64;
//! let observed = hw.approx_int_result(raw, 64);
//! // With overwhelming probability this is still 5, but no guarantee.
//! let _ = observed;
//! assert_eq!(hw.stats().int_approx_ops, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod clock;
pub mod config;
pub mod dram;
pub mod energy;
pub mod fault;
pub mod fpu;
pub mod layout;
pub mod sram;
pub mod stats;
pub mod trace;

pub use config::{ApproxParams, ErrorMode, HwConfig, Level, StrategyMask};
pub use dram::DramArray;
pub use stats::{MemKind, OpKind, Stats};

use clock::SimClock;
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::{FaultEvent, FaultKind, TraceBuffer};

/// The simulated approximation-aware machine.
///
/// `Hardware` owns the random-number generator (seeded, so runs are
/// reproducible), the virtual clock, the statistics counters and the
/// per-unit state of the last-value error model. All fault injection and
/// accounting flows through methods on this type; the [`alu`], [`fpu`],
/// [`sram`] and [`dram`] modules contribute `impl Hardware` blocks.
#[derive(Debug, Clone)]
pub struct Hardware {
    cfg: HwConfig,
    rng: StdRng,
    clock: SimClock,
    stats: Stats,
    /// Last result of the integer unit (for [`ErrorMode::LastValue`]).
    pub(crate) last_int: u64,
    /// Last result of the floating-point unit (for [`ErrorMode::LastValue`]).
    pub(crate) last_fp: u64,
    trace: Option<TraceBuffer>,
}

impl Hardware {
    /// Creates a machine with the given configuration and RNG seed.
    pub fn new(cfg: HwConfig, seed: u64) -> Self {
        Hardware {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            clock: SimClock::new(),
            stats: Stats::new(),
            last_int: 0,
            last_fp: 0,
            trace: None,
        }
    }

    /// Enables fault tracing with a ring buffer of `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Disables fault tracing and discards retained events.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The retained fault trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Records one injected fault in the statistics and, when enabled, in
    /// the trace.
    pub(crate) fn note_fault(&mut self, kind: FaultKind, bits_flipped: u32) {
        self.stats.record_fault();
        if let Some(trace) = &mut self.trace {
            let time = self.clock.now();
            trace.push(FaultEvent { kind, time, bits_flipped });
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Accumulated statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Mutable access to the statistics (used by higher layers to account
    /// storage they manage themselves).
    pub fn stats_mut(&mut self) -> &mut Stats {
        &mut self.stats
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Advances the virtual clock by one operation time.
    pub(crate) fn tick(&mut self) {
        let dt = self.cfg.seconds_per_op;
        self.clock.advance(dt);
    }

    /// Internal access to the RNG for the unit modules.
    pub(crate) fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Resets statistics and the clock, keeping configuration and RNG state.
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
        self.clock = SimClock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Level;

    #[test]
    fn determinism_same_seed_same_behaviour() {
        let cfg = HwConfig::for_level(Level::Aggressive);
        let mut a = Hardware::new(cfg, 99);
        let mut b = Hardware::new(cfg, 99);
        for i in 0..1000u64 {
            assert_eq!(a.approx_int_result(i, 64), b.approx_int_result(i, 64));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge_eventually() {
        let cfg = HwConfig::for_level(Level::Aggressive);
        let mut a = Hardware::new(cfg, 1);
        let mut b = Hardware::new(cfg, 2);
        let diverged =
            (0..10_000u64).any(|i| a.approx_int_result(i, 64) != b.approx_int_result(i, 64));
        assert!(diverged, "aggressive config should inject some fault in 10k ops");
    }

    #[test]
    fn clock_advances_per_op() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        assert_eq!(hw.now(), 0.0);
        hw.precise_op(OpKind::Int);
        hw.precise_op(OpKind::Fp);
        let expected = 2.0 * hw.config().seconds_per_op;
        assert!((hw.now() - expected).abs() < 1e-18);
    }

    #[test]
    fn reset_clears_stats_and_clock() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        hw.precise_op(OpKind::Int);
        hw.reset_stats();
        assert_eq!(hw.stats().total_ops(OpKind::Int), 0);
        assert_eq!(hw.now(), 0.0);
    }
}
