//! # enerj-hw: the approximation-aware execution substrate
//!
//! This crate simulates the hardware model of *EnerJ: Approximate Data Types
//! for Safe and General Low-Power Computation* (PLDI 2011), section 4: a
//! machine with approximate registers and caches (SRAM under lowered supply
//! voltage), approximate main memory (DRAM under reduced refresh rate), and
//! imprecise functional units (voltage-scaled ALUs and width-reduced FPUs).
//!
//! The central type is [`Hardware`]: a deterministic, seeded fault-injection
//! engine that also keeps the statistics (dynamic operation counts and
//! storage byte-seconds) and drives the energy model used to regenerate the
//! paper's Figures 3 and 4.
//!
//! Modules:
//!
//! * [`config`] — Table 2 parameter bundles (Mild/Medium/Aggressive),
//!   strategy masks for ablations, and functional-unit error modes.
//! * [`fault`] — bit-level fault injection primitives.
//! * [`clock`] — the deterministic virtual clock.
//! * [`stats`] — operation and byte-second accounting (Figure 3).
//! * [`layout`] — cache-line-granularity layout of approximate data (§4.1).
//! * [`alu`], [`fpu`] — imprecise functional units (§4.2).
//! * [`sram`], [`dram`] — approximate storage (§4.2, §5.3).
//! * [`batch`] — whole-slice entry points on the units above.
//! * [`energy`] — the CPU/memory-system energy model (§5.4, Figure 4).
//!
//! # Examples
//!
//! ```
//! use enerj_hw::config::{HwConfig, Level};
//! use enerj_hw::Hardware;
//!
//! let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 7);
//! // An approximate integer add: the raw result may be perturbed.
//! let raw = 2i64.wrapping_add(3) as u64;
//! let observed = hw.approx_int_result(raw, 64);
//! // With overwhelming probability this is still 5, but no guarantee.
//! let _ = observed;
//! assert_eq!(hw.stats().int_approx_ops, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alu;
pub mod batch;
pub mod clock;
pub mod config;
pub mod dram;
pub mod energy;
pub mod fault;
pub mod fpu;
pub mod layout;
pub mod quanta;
pub mod sram;
pub mod stats;
pub mod telemetry;
pub mod trace;

pub use config::{ApproxParams, ErrorMode, HwConfig, Level, StrategyMask};
pub use dram::DramArray;
pub use quanta::EnergyQuanta;
pub use stats::{MemKind, OpKind, Stats};
pub use telemetry::FaultCounters;

pub use clock::{silence_watchdog_panics, WatchdogTrip};

use fault::{GeomCountdown, HazardCountdown};
use rand::rngs::StdRng;
use rand::SeedableRng;
use trace::{FaultEvent, FaultKind, TraceBuffer};

/// Snapshot of the `HwConfig` fields the per-access hot path reads, plus a
/// few derived constants. `HwConfig` is immutable once a `Hardware` is
/// constructed, so hoisting these into a flat struct lets the hot path skip
/// re-borrowing `config()` and re-deriving masks per access.
#[derive(Debug, Clone, Copy)]
struct HotConfig {
    seconds_per_op: f64,
    /// Effective DRAM decay rate: zero when the strategy is masked off.
    dram_rate: f64,
    error_mode: ErrorMode,
    /// Mantissa-truncation mask for `f32` operands, precomputed from the
    /// effective kept width (all ones — the identity — when the fp-width
    /// strategy is masked off).
    f32_trunc_mask: u32,
    /// Mantissa-truncation mask for `f64` operands.
    f64_trunc_mask: u64,
}

impl HotConfig {
    fn new(cfg: &HwConfig) -> Self {
        HotConfig {
            seconds_per_op: cfg.seconds_per_op,
            dram_rate: if cfg.mask.dram { cfg.params.dram_flip_per_second } else { 0.0 },
            error_mode: cfg.error_mode,
            f32_trunc_mask: if cfg.mask.fp_width {
                fpu::trunc_mask_f32(cfg.params.float_mantissa_bits)
            } else {
                u32::MAX
            },
            f64_trunc_mask: if cfg.mask.fp_width {
                fpu::trunc_mask_f64(cfg.params.double_mantissa_bits)
            } else {
                u64::MAX
            },
        }
    }
}

/// Per-stream amortized fault countdowns (see [`fault::GeomCountdown`] and
/// [`fault::HazardCountdown`]). Masked-off strategies get probability-zero
/// streams that never fire and never touch the RNG.
///
/// Streams draw their initial gaps in a fixed order (SRAM read, SRAM write,
/// int timing, fp timing, DRAM), so a given `(config, seed)` pair always
/// yields the same fault sequence.
#[derive(Debug, Clone)]
struct FaultScheduler {
    sram_read: GeomCountdown,
    sram_write: GeomCountdown,
    int_timing: GeomCountdown,
    fp_timing: GeomCountdown,
    dram: HazardCountdown,
}

impl FaultScheduler {
    fn new(cfg: &HwConfig, rng: &mut StdRng) -> Self {
        fn eff(enabled: bool, p: f64) -> f64 {
            if enabled {
                p
            } else {
                0.0
            }
        }
        let (m, p) = (&cfg.mask, &cfg.params);
        FaultScheduler {
            sram_read: GeomCountdown::new(eff(m.sram_read, p.sram_read_upset_prob), rng),
            sram_write: GeomCountdown::new(eff(m.sram_write, p.sram_write_failure_prob), rng),
            int_timing: GeomCountdown::new(eff(m.fu_timing, p.timing_error_prob), rng),
            fp_timing: GeomCountdown::new(eff(m.fu_timing, p.timing_error_prob), rng),
            dram: HazardCountdown::new(rng),
        }
    }
}

/// The simulated approximation-aware machine.
///
/// `Hardware` owns the random-number generator (seeded, so runs are
/// reproducible), the virtual clock, the statistics counters and the
/// per-unit state of the last-value error model. All fault injection and
/// accounting flows through methods on this type; the [`alu`], [`fpu`],
/// [`sram`] and [`dram`] modules contribute `impl Hardware` blocks.
///
/// Fault injection is *amortized*: each fault stream keeps a countdown to
/// its next fault, so the steady-state cost of an access is a counter
/// decrement (see DESIGN.md, "Amortized fault scheduling"). The injected
/// fault process is distributionally identical to per-access Bernoulli
/// sampling, but the RNG stream differs from the pre-amortization
/// implementation, so individual seeded trials produce a different —
/// equally valid — sample.
#[derive(Debug, Clone)]
pub struct Hardware {
    cfg: HwConfig,
    hot: HotConfig,
    rng: StdRng,
    sched: FaultScheduler,
    /// Completed simulated operations; simulated time is
    /// `op_ticks * seconds_per_op`.
    op_ticks: u64,
    /// Op-tick value at which an armed watchdog trips; `u64::MAX` (never)
    /// when disarmed, so the hot-path check is a single always-false
    /// comparison in the common case.
    watchdog_deadline: u64,
    /// The budget the watchdog was armed with, for trip diagnostics.
    watchdog_budget: u64,
    stats: Stats,
    /// SRAM residency not yet folded into `stats`, in bit-access quanta,
    /// indexed by `approx as usize`. Folded lazily by [`Hardware::stats`].
    pending_sram_bits: [u64; 2],
    /// Last DRAM decay lookup: refresh gap in op-ticks, per-bit hazard.
    decay_cache: (u64, f64),
    /// Last result of the integer unit (for [`ErrorMode::LastValue`]).
    pub(crate) last_int: u64,
    /// Last result of the floating-point unit (for [`ErrorMode::LastValue`]).
    pub(crate) last_fp: u64,
    trace: Option<TraceBuffer>,
    counters: FaultCounters,
    event_log: Option<Vec<FaultEvent>>,
}

impl Hardware {
    /// Creates a machine with the given configuration and RNG seed.
    pub fn new(cfg: HwConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let sched = FaultScheduler::new(&cfg, &mut rng);
        Hardware {
            hot: HotConfig::new(&cfg),
            cfg,
            rng,
            sched,
            op_ticks: 0,
            watchdog_deadline: u64::MAX,
            watchdog_budget: 0,
            stats: Stats::new(),
            pending_sram_bits: [0; 2],
            decay_cache: (0, 0.0),
            last_int: 0,
            last_fp: 0,
            trace: None,
            counters: FaultCounters::new(),
            event_log: None,
        }
    }

    /// Enables fault tracing with a ring buffer of `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Disables fault tracing and discards retained events.
    pub fn disable_trace(&mut self) {
        self.trace = None;
    }

    /// The retained fault trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// The always-on per-kind fault counters.
    pub fn fault_counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Enables the unbounded structured fault log (opt-in; the always-on
    /// counters are independent of this). Clears any previous log.
    pub fn enable_event_log(&mut self) {
        self.event_log = Some(Vec::new());
    }

    /// The collected fault events, if the event log is enabled.
    pub fn event_log(&self) -> Option<&[FaultEvent]> {
        self.event_log.as_deref()
    }

    /// Takes the collected fault events, leaving the log enabled and empty.
    /// Returns an empty vector if the log was never enabled.
    pub fn take_event_log(&mut self) -> Vec<FaultEvent> {
        match &mut self.event_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// Records one injected fault in the statistics, the always-on
    /// counters, and — when enabled — the trace ring buffer and the
    /// structured event log.
    ///
    /// Never touches the fault PRNG, so recording cannot perturb the
    /// simulated outcome.
    #[cold]
    pub(crate) fn note_fault(&mut self, kind: FaultKind, width: u32, bits_flipped: u32) {
        self.stats.record_fault();
        self.counters.record(kind, bits_flipped);
        if self.trace.is_some() || self.event_log.is_some() {
            let time = self.now();
            let event = FaultEvent { kind, time, width, bits_flipped };
            if let Some(trace) = &mut self.trace {
                trace.push(event);
            }
            if let Some(log) = &mut self.event_log {
                log.push(event);
            }
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Accumulated statistics so far.
    ///
    /// Returned by value: the hot path accumulates SRAM residency as a pair
    /// of plain `u64` bit counters, and this fold widens them into the
    /// `u128` quanta pools lazily at read time — a pure integer fold, so
    /// reading statistics is exact and side-effect-free.
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.sram_precise_quanta += EnergyQuanta::new(u128::from(self.pending_sram_bits[0]));
        s.sram_approx_quanta += EnergyQuanta::new(u128::from(self.pending_sram_bits[1]));
        s
    }

    /// Mutable access to the statistics (used by higher layers to account
    /// storage they manage themselves). Flushes pending SRAM bit-quanta
    /// first so the returned reference sees fully-folded values.
    pub fn stats_mut(&mut self) -> &mut Stats {
        self.flush_pending_storage();
        &mut self.stats
    }

    /// Folds the pending SRAM bit counters into the integer quanta pools.
    fn flush_pending_storage(&mut self) {
        self.stats.sram_precise_quanta += EnergyQuanta::new(u128::from(self.pending_sram_bits[0]));
        self.stats.sram_approx_quanta += EnergyQuanta::new(u128::from(self.pending_sram_bits[1]));
        self.pending_sram_bits = [0; 2];
    }

    /// Current simulated time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.op_ticks as f64 * self.hot.seconds_per_op
    }

    /// Completed simulated operations — the virtual clock in op-tick units.
    /// Multiply by [`HwConfig::seconds_per_op`] (or read [`Hardware::now`])
    /// for seconds.
    pub fn op_ticks(&self) -> u64 {
        self.op_ticks
    }

    /// Advances the virtual clock by one operation time. Trips the
    /// watchdog, if armed, when the deadline is crossed.
    #[inline]
    pub(crate) fn tick(&mut self) {
        self.op_ticks += 1;
        if self.op_ticks >= self.watchdog_deadline {
            self.watchdog_trip();
        }
    }

    /// Arms the watchdog: once `max_ops` further op-ticks have elapsed, the
    /// next clock advance unwinds with a [`WatchdogTrip`] payload. The
    /// deadline is measured in op-ticks — simulated work — so a trip is a
    /// deterministic function of `(config, seed, program)`, independent of
    /// host speed or thread scheduling. Re-arming replaces any previous
    /// deadline.
    pub fn arm_watchdog(&mut self, max_ops: u64) {
        self.watchdog_deadline = self.op_ticks.saturating_add(max_ops.max(1));
        self.watchdog_budget = max_ops;
    }

    /// Disarms the watchdog; subsequent op-ticks never trip.
    pub fn disarm_watchdog(&mut self) {
        self.watchdog_deadline = u64::MAX;
    }

    /// Whether a watchdog deadline is currently armed.
    pub fn watchdog_armed(&self) -> bool {
        self.watchdog_deadline != u64::MAX
    }

    /// Unwinds out of the approximate region with a [`WatchdogTrip`]
    /// payload. The watchdog disarms itself first so clock advances during
    /// unwinding (or after recovery) cannot re-trip.
    #[cold]
    #[inline(never)]
    fn watchdog_trip(&mut self) -> ! {
        let trip = WatchdogTrip { op_ticks: self.op_ticks, budget: self.watchdog_budget };
        self.watchdog_deadline = u64::MAX;
        std::panic::panic_any(trip);
    }

    /// Resets statistics, fault counters, the event log and the clock,
    /// keeping configuration, RNG state and the fault countdowns. Any armed
    /// watchdog is disarmed (its deadline is an absolute clock reading and
    /// would be meaningless after the clock rewinds).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new();
        self.pending_sram_bits = [0; 2];
        self.op_ticks = 0;
        self.watchdog_deadline = u64::MAX;
        self.counters = FaultCounters::new();
        if let Some(log) = &mut self.event_log {
            log.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::Level;

    #[test]
    fn determinism_same_seed_same_behaviour() {
        let cfg = HwConfig::for_level(Level::Aggressive);
        let mut a = Hardware::new(cfg, 99);
        let mut b = Hardware::new(cfg, 99);
        for i in 0..1000u64 {
            assert_eq!(a.approx_int_result(i, 64), b.approx_int_result(i, 64));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn different_seeds_diverge_eventually() {
        let cfg = HwConfig::for_level(Level::Aggressive);
        let mut a = Hardware::new(cfg, 1);
        let mut b = Hardware::new(cfg, 2);
        let diverged =
            (0..10_000u64).any(|i| a.approx_int_result(i, 64) != b.approx_int_result(i, 64));
        assert!(diverged, "aggressive config should inject some fault in 10k ops");
    }

    #[test]
    fn clock_advances_per_op() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        assert_eq!(hw.now(), 0.0);
        hw.precise_op(OpKind::Int);
        hw.precise_op(OpKind::Fp);
        let expected = 2.0 * hw.config().seconds_per_op;
        assert!((hw.now() - expected).abs() < 1e-18);
    }

    #[test]
    fn reset_clears_stats_and_clock() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        hw.precise_op(OpKind::Int);
        hw.reset_stats();
        assert_eq!(hw.stats().total_ops(OpKind::Int), 0);
        assert_eq!(hw.now(), 0.0);
    }

    #[test]
    fn counters_track_every_injected_fault() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.timing_error_prob = 1.0;
        let mut hw = Hardware::new(cfg, 9);
        for i in 0..50u64 {
            let _ = hw.approx_int_result(i, 64);
        }
        let c = hw.fault_counters();
        assert_eq!(c.count(trace::FaultKind::IntTiming).injections, 50);
        assert_eq!(c.total_injections(), hw.stats().faults_injected);
        assert_eq!(hw.event_log(), None, "event log is opt-in");
        hw.reset_stats();
        assert!(hw.fault_counters().is_empty());
    }

    #[test]
    fn event_log_collects_structured_events() {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.timing_error_prob = 1.0;
        let mut hw = Hardware::new(cfg, 9);
        hw.enable_event_log();
        for i in 0..10u64 {
            let _ = hw.approx_int_result(i, 32);
        }
        let events = hw.take_event_log();
        assert_eq!(events.len(), 10);
        for e in &events {
            assert_eq!(e.kind, trace::FaultKind::IntTiming);
            assert_eq!(e.width, 32);
        }
        // Taking leaves the log enabled and empty.
        assert_eq!(hw.event_log(), Some(&[][..]));
        let _ = hw.approx_int_result(1, 32);
        assert_eq!(hw.event_log().unwrap().len(), 1);
    }

    #[test]
    fn watchdog_trips_deterministically_at_the_deadline() {
        clock::silence_watchdog_panics();
        let trip_tick = |budget: u64| -> u64 {
            let mut hw = Hardware::new(HwConfig::default(), 0);
            hw.arm_watchdog(budget);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for i in 0.. {
                    let _ = hw.approx_int_result(i, 64);
                }
            }))
            .expect_err("armed watchdog must trip");
            let trip = err.downcast_ref::<WatchdogTrip>().expect("payload is WatchdogTrip");
            assert_eq!(trip.budget, budget);
            trip.op_ticks
        };
        assert_eq!(trip_tick(100), trip_tick(100));
        assert!(trip_tick(100) >= 100);
        assert!(trip_tick(10) < trip_tick(1000));
    }

    #[test]
    fn disarmed_watchdog_never_trips() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        hw.arm_watchdog(5);
        assert!(hw.watchdog_armed());
        hw.disarm_watchdog();
        assert!(!hw.watchdog_armed());
        for i in 0..1000u64 {
            let _ = hw.approx_int_result(i, 64);
        }
        assert!(hw.op_ticks() >= 1000);
    }

    #[test]
    fn reset_stats_disarms_the_watchdog() {
        let mut hw = Hardware::new(HwConfig::default(), 0);
        hw.arm_watchdog(5);
        hw.reset_stats();
        assert!(!hw.watchdog_armed());
    }

    #[test]
    fn telemetry_does_not_perturb_the_fault_prng() {
        let cfg = {
            let mut c = HwConfig::for_level(Level::Aggressive);
            c.params.timing_error_prob = 0.3;
            c
        };
        let mut plain = Hardware::new(cfg, 77);
        let mut logged = Hardware::new(cfg, 77);
        logged.enable_event_log();
        logged.enable_trace(8);
        for i in 0..2000u64 {
            assert_eq!(plain.approx_int_result(i, 64), logged.approx_int_result(i, 64));
            assert_eq!(plain.sram_read(i, 64, true), logged.sram_read(i, 64, true));
        }
        assert_eq!(plain.stats(), logged.stats());
        assert_eq!(plain.fault_counters(), logged.fault_counters());
    }
}
