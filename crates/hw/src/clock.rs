//! Virtual time.
//!
//! DRAM decay and byte-second storage accounting both need a notion of
//! elapsed time. Wall-clock time would make simulations nondeterministic, so
//! the simulator advances a virtual clock by a fixed amount per simulated
//! event (see [`HwConfig::seconds_per_op`](crate::config::HwConfig)).

use std::fmt;
use std::panic::PanicHookInfo;
use std::sync::Once;

/// The panic payload thrown when an armed watchdog exhausts its op-tick
/// budget (see [`Hardware::arm_watchdog`](crate::Hardware::arm_watchdog)).
///
/// A fault-corrupted loop bound cannot be interrupted cooperatively — the
/// approximate region is arbitrary host code — so the watchdog aborts it by
/// unwinding with this payload from the clock tick that crosses the
/// deadline. Guarded runners (`enerj_core::Runtime::run_guarded`, `fenerjc
/// --max-ops`) catch the unwind and downcast to this type to distinguish a
/// deterministic budget trip from an application panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogTrip {
    /// The clock reading (completed simulated operations) at trip time.
    pub op_ticks: u64,
    /// The budget that was armed, in op-ticks.
    pub budget: u64,
}

impl fmt::Display for WatchdogTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op budget exceeded: {} ticks elapsed, budget {}", self.op_ticks, self.budget)
    }
}

/// Suppresses the default "thread panicked" stderr message for
/// [`WatchdogTrip`] unwinds, process-wide.
///
/// Watchdog trips are an expected, recoverable outcome in campaigns with
/// recovery enabled; without this, every trip would spray a spurious panic
/// report into trace output and golden CLI captures. The hook wraps (and
/// otherwise delegates to) whatever hook was installed before it, and is
/// installed at most once per process.
pub fn silence_watchdog_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info: &PanicHookInfo<'_>| {
            if info.payload().downcast_ref::<WatchdogTrip>().is_none() {
                previous(info);
            }
        }));
    });
}

/// A deterministic virtual clock counting simulated seconds.
///
/// # Examples
///
/// ```
/// use enerj_hw::clock::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(1e-6);
/// clock.advance(2e-6);
/// assert!((clock.now() - 3e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is negative or not finite.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt.is_finite() && dt >= 0.0, "bad clock increment {dt}");
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0.0);
    }

    #[test]
    fn accumulates_increments() {
        let mut c = SimClock::new();
        for _ in 0..1000 {
            c.advance(1e-6);
        }
        assert!((c.now() - 1e-3).abs() < 1e-12);
    }
}
