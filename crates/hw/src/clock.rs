//! Virtual time.
//!
//! DRAM decay and byte-second storage accounting both need a notion of
//! elapsed time. Wall-clock time would make simulations nondeterministic, so
//! the simulator advances a virtual clock by a fixed amount per simulated
//! event (see [`HwConfig::seconds_per_op`](crate::config::HwConfig)).

/// A deterministic virtual clock counting simulated seconds.
///
/// # Examples
///
/// ```
/// use enerj_hw::clock::SimClock;
///
/// let mut clock = SimClock::new();
/// clock.advance(1e-6);
/// clock.advance(2e-6);
/// assert!((clock.now() - 3e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimClock {
    now: f64,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current simulated time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is negative or not finite.
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt.is_finite() && dt >= 0.0, "bad clock increment {dt}");
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), 0.0);
    }

    #[test]
    fn accumulates_increments() {
        let mut c = SimClock::new();
        for _ in 0..1000 {
            c.advance(1e-6);
        }
        assert!((c.now() - 1e-3).abs() < 1e-12);
    }
}
