//! Bit-level fault-injection primitives.
//!
//! All fault models in the paper bottom out in per-bit Bernoulli trials:
//! SRAM read upsets and write failures flip each bit with a constant
//! probability, and DRAM refresh reduction flips each bit with a probability
//! proportional to the time since the bit was last accessed (section 5.3).
//! This module provides those trials over `u64` bit patterns, with a
//! geometric-skip sampler so that the very low probabilities of the Mild
//! configuration cost almost nothing.

use rand::Rng;

/// Flips each of the low `width` bits of `bits` independently with
/// probability `p`. Returns the perturbed pattern.
///
/// Bits at positions `width..64` are left untouched. For small `p` the
/// implementation samples the gap to the next flipped bit from a geometric
/// distribution instead of performing `width` Bernoulli trials.
///
/// # Panics
///
/// Panics if `width > 64` or `p` is not in `[0, 1]`.
pub fn flip_bits<R: Rng + ?Sized>(bits: u64, width: u32, p: f64, rng: &mut R) -> u64 {
    assert!(width <= 64, "bit width {width} exceeds u64");
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    if p <= 0.0 || width == 0 {
        return bits;
    }
    if p >= 1.0 {
        return bits ^ low_mask(width);
    }
    let mut out = bits;
    // Geometric skip: the index of the next flipped bit after position i-1 is
    // i + floor(ln(U) / ln(1-p)). For p around 1e-3 and below this loop body
    // almost never executes. ln_1p keeps the denominator exact for the tiny
    // probabilities of the Mild configuration, where 1.0 - p rounds to 1.0.
    let denom = (-p).ln_1p();
    let mut i: u64 = skip(rng, denom);
    while i < u64::from(width) {
        out ^= 1u64 << i;
        i += 1 + skip(rng, denom);
    }
    out
}

/// Draws a geometric gap: `floor(ln(U) / ln(1-p))` with `denom = ln(1-p)`.
fn skip<R: Rng + ?Sized>(rng: &mut R, denom: f64) -> u64 {
    // U in (0, 1]; ln(U) <= 0 and denom < 0, so the quotient is >= 0.
    let u: f64 = 1.0 - rng.gen::<f64>();
    let g = (u.ln() / denom).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Draws a unit-rate exponential: `-ln(U)` with `U` in `(0, 1]`.
fn exp1<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    -(1.0 - rng.gen::<f64>()).ln()
}

/// A cross-access geometric countdown over a fixed-probability Bernoulli
/// fault stream (SRAM read upsets, SRAM write failures, FU timing errors).
///
/// Instead of running a Bernoulli trial per bit per access, the countdown
/// draws the gap to the next flipped trial *once* and carries the remainder
/// across accesses. Because the geometric distribution is memoryless, the
/// leftover countdown after an access is itself geometric, so the stream of
/// flipped trials is distributed exactly as per-access sampling with
/// [`flip_bits`] — see the equivalence tests and DESIGN.md, "Amortized
/// fault scheduling". Steady-state cost between faults is one integer
/// comparison and subtraction per access: no RNG draws, no `ln()`, no
/// branch into fault code.
#[derive(Debug, Clone)]
pub struct GeomCountdown {
    /// Per-trial flip probability.
    p: f64,
    /// `ln(1 - p)`, negative; meaningful only for `p` strictly in `(0, 1)`.
    denom: f64,
    /// Bernoulli trials that will pass before the next flipped trial.
    remaining: u64,
}

impl GeomCountdown {
    /// Creates a countdown for per-trial probability `p`, drawing the first
    /// gap. `p == 0` (including a masked-off strategy) never draws from the
    /// RNG and never fires; `p == 1` fires on every trial.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new<R: Rng + ?Sized>(p: f64, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let denom = (-p).ln_1p();
        let remaining = if p <= 0.0 {
            u64::MAX
        } else if p >= 1.0 {
            0
        } else {
            skip(rng, denom)
        };
        GeomCountdown { p, denom, remaining }
    }

    /// The per-trial probability this countdown was built with.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Fast path: consumes `trials` Bernoulli trials. Returns `true` when
    /// none of them flips (the overwhelmingly common case); `false` when the
    /// countdown runs out inside this batch and the caller must take the
    /// slow path ([`GeomCountdown::flip_bits`]).
    #[inline]
    pub fn pass(&mut self, trials: u32) -> bool {
        let t = u64::from(trials);
        if self.remaining >= t {
            self.remaining -= t;
            true
        } else {
            false
        }
    }

    /// Per-operation stream: consumes one trial and reports whether it
    /// fires. Equivalent to `gen_bool(p)` per operation, amortized.
    #[inline]
    pub fn fire<R: Rng + ?Sized>(&mut self, rng: &mut R) -> bool {
        if self.remaining > 0 {
            self.remaining -= 1;
            return false;
        }
        if self.p <= 0.0 {
            // Only reachable after 2^64 trials drained a never-fires stream.
            self.remaining = u64::MAX;
            return false;
        }
        self.remaining = if self.p >= 1.0 { 0 } else { skip(rng, self.denom) };
        true
    }

    /// Slow path for bit-pattern streams, called when [`GeomCountdown::pass`]
    /// returned `false`: flips the bit the countdown landed on, then keeps
    /// drawing geometric gaps until one escapes the access; the overshoot is
    /// carried into subsequent accesses. The caller is responsible for the
    /// fast path — invoking this directly with a live countdown would skew
    /// the stream.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn flip_bits<R: Rng + ?Sized>(&mut self, bits: u64, width: u32, rng: &mut R) -> u64 {
        assert!(width <= 64, "bit width {width} exceeds u64");
        if self.p <= 0.0 {
            self.remaining = u64::MAX;
            return bits;
        }
        if self.p >= 1.0 {
            // `remaining` stays 0: every bit of every access flips.
            return bits ^ low_mask(width);
        }
        let w = u64::from(width);
        debug_assert!(self.remaining < w, "slow path entered with a live countdown");
        let mut out = bits;
        let mut i = self.remaining;
        while i < w {
            out ^= 1u64 << i;
            i = i.saturating_add(1).saturating_add(skip(rng, self.denom));
        }
        self.remaining = i - w;
        out
    }

    /// Batch fast path for bit-pattern streams: consumes up to `accesses`
    /// whole accesses of `width` bits each and returns how many pass before
    /// the countdown lands inside one, or `None` when all of them pass.
    ///
    /// After `Some(k)`, the countdown has consumed exactly `k` accesses and
    /// sits inside access `k` (its `remaining` is below `width`): the caller
    /// must run [`GeomCountdown::flip_bits`] on that access next, then may
    /// call this again with the accesses left after it. Walking a slice this
    /// way performs the *identical* state-machine steps (and RNG draws) as a
    /// per-access `pass`/`flip_bits` loop, so batched and scalar streams are
    /// bit-for-bit the same — see the batched equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or greater than 64 (a zero-width access
    /// consumes no trials, so the loop below could never terminate).
    #[inline]
    pub fn pass_accesses(&mut self, accesses: u64, width: u32) -> Option<u64> {
        assert!((1..=64).contains(&width), "bit width {width} out of range");
        let w = u64::from(width);
        // `accesses * width` can exceed u64 only when `remaining` already
        // covers it (remaining is itself a u64), so compare in u128.
        let total = u128::from(accesses) * u128::from(w);
        if u128::from(self.remaining) >= total {
            self.remaining -= total as u64;
            return None;
        }
        let k = self.remaining / w;
        self.remaining -= k * w;
        Some(k)
    }

    /// Batch fast path for per-operation streams: consumes up to `trials`
    /// operations and returns the zero-based index of the first one that
    /// fires, or `None` when none does.
    ///
    /// On a fire the gap to the next fault is redrawn (exactly as
    /// [`GeomCountdown::fire`] does), so the caller applies the error payload
    /// at that index and calls this again with the operations left after it.
    /// The RNG draw sequence matches a scalar `fire` loop exactly.
    #[inline]
    pub fn next_fire<R: Rng + ?Sized>(&mut self, trials: u64, rng: &mut R) -> Option<u64> {
        if self.remaining >= trials {
            self.remaining -= trials;
            return None;
        }
        let idx = self.remaining;
        if self.p <= 0.0 {
            // Only reachable after 2^64 trials drained a never-fires stream.
            self.remaining = u64::MAX;
            return None;
        }
        self.remaining = if self.p >= 1.0 { 0 } else { skip(rng, self.denom) };
        Some(idx)
    }
}

/// Converts a per-bit flip probability into exponential hazard `-ln(1-p)`:
/// the units [`HazardCountdown`] counts in.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1)`. (`p == 1` would be infinite hazard;
/// [`decay_probability`] saturates at 0.5, so DRAM never produces it.)
pub fn hazard(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p), "probability {p} out of range for hazard");
    -(-p).ln_1p()
}

/// A cross-access countdown for per-bit Bernoulli streams whose probability
/// varies between accesses — DRAM refresh decay, where `p` depends on the
/// time since the element was last refreshed.
///
/// The countdown works in *hazard* units: a bit that flips with probability
/// `p` consumes `h = -ln(1-p)` of hazard ([`hazard`]), and a unit-rate
/// exponential alarm `R ~ Exp(1)` rings inside the bit that pushes the
/// cumulative hazard past `R`. Survival of `k` whole bits has probability
/// `e^{-k·h} = (1-p)^k`, exactly the geometric law — and because the
/// exponential is memoryless in hazard, carrying leftover hazard across
/// accesses stays exact even when each access contributes a different `p`.
#[derive(Debug, Clone)]
pub struct HazardCountdown {
    /// Remaining Exp(1) hazard before the next flip.
    remaining: f64,
}

impl HazardCountdown {
    /// Creates a countdown, drawing the first exponential alarm.
    pub fn new<R: Rng + ?Sized>(rng: &mut R) -> Self {
        HazardCountdown { remaining: exp1(rng) }
    }

    /// Fast path: consumes `exposure` hazard (typically `width * hazard(p)`
    /// for one access). Returns `true` when no bit flips.
    #[inline]
    pub fn pass(&mut self, exposure: f64) -> bool {
        if self.remaining > exposure {
            self.remaining -= exposure;
            true
        } else {
            false
        }
    }

    /// Slow path, called when [`HazardCountdown::pass`] returned `false`
    /// for an access of `width` bits at `per_bit` hazard per bit: flips the
    /// bit the alarm landed in, redraws, and repeats until an alarm escapes
    /// the access; the overshoot carries into subsequent accesses.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`; `per_bit` must be positive (callers gate
    /// zero-hazard accesses on the fast path).
    pub fn flip_bits<R: Rng + ?Sized>(
        &mut self,
        bits: u64,
        width: u32,
        per_bit: f64,
        rng: &mut R,
    ) -> u64 {
        assert!(width <= 64, "bit width {width} exceeds u64");
        debug_assert!(per_bit > 0.0, "slow path needs positive per-bit hazard");
        let mut out = bits;
        let mut base: u64 = 0;
        let mut left = u64::from(width);
        loop {
            // Whole bits the remaining hazard survives: the alarm rings in
            // the bit whose cumulative hazard first reaches `remaining`.
            let gap = ((self.remaining / per_bit).ceil() - 1.0).max(0.0);
            if gap >= left as f64 {
                self.remaining -= left as f64 * per_bit;
                return out;
            }
            let g = gap as u64;
            out ^= 1u64 << (base + g);
            base += g + 1;
            left -= g + 1;
            self.remaining = exp1(rng);
        }
    }
}

/// Flips exactly one uniformly-chosen bit among the low `width` bits.
///
/// This is the `single-bit-flip` functional-unit error model.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
pub fn flip_one_bit<R: Rng + ?Sized>(bits: u64, width: u32, rng: &mut R) -> u64 {
    assert!((1..=64).contains(&width), "bit width {width} out of range");
    let pos = rng.gen_range(0..width);
    bits ^ (1u64 << pos)
}

/// A uniformly random pattern over the low `width` bits.
///
/// This is the `random-value` functional-unit error model.
pub fn random_bits<R: Rng + ?Sized>(width: u32, rng: &mut R) -> u64 {
    rng.gen::<u64>() & low_mask(width)
}

/// A mask with the low `width` bits set.
pub fn low_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The per-bit flip probability after `dt` seconds without refresh, for a
/// per-second flip rate `rate`: `1 - exp(-rate * dt)`.
///
/// Saturates at 0.5 — a fully decayed DRAM cell carries no information, not
/// an inverted bit (see DESIGN.md, "Simulation-model decisions").
///
/// # Panics
///
/// Panics if `rate` or `dt` is negative or NaN. This is a real assert, not
/// a `debug_assert`: a negative product would silently yield a negative
/// "probability" (and NaN would propagate) in release builds otherwise.
pub fn decay_probability(rate: f64, dt: f64) -> f64 {
    assert!(rate >= 0.0 && dt >= 0.0, "decay rate {rate} and dt {dt} must be non-negative");
    let p = 1.0 - (-rate * dt).exp();
    p.min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn zero_probability_never_flips() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(flip_bits(0xDEAD_BEEF, 32, 0.0, &mut r), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn unit_probability_flips_everything_in_width() {
        let mut r = rng();
        assert_eq!(flip_bits(0, 8, 1.0, &mut r), 0xFF);
        assert_eq!(flip_bits(0xFF, 8, 1.0, &mut r), 0);
        // Bits beyond the width are untouched.
        assert_eq!(flip_bits(0xF00, 8, 1.0, &mut r), 0xFFF);
    }

    #[test]
    fn width_zero_is_identity() {
        let mut r = rng();
        assert_eq!(flip_bits(42, 0, 0.5, &mut r), 42);
    }

    #[test]
    fn flip_rate_matches_probability_statistically() {
        let mut r = rng();
        let p = 0.01;
        let trials = 20_000u64;
        let mut flips = 0u64;
        for _ in 0..trials {
            flips += u64::from(flip_bits(0, 64, p, &mut r).count_ones());
        }
        let expected = trials as f64 * 64.0 * p;
        let observed = flips as f64;
        // 5-sigma band for a binomial count.
        let sigma = (trials as f64 * 64.0 * p * (1.0 - p)).sqrt();
        assert!(
            (observed - expected).abs() < 5.0 * sigma,
            "observed {observed}, expected {expected} +/- {}",
            5.0 * sigma
        );
    }

    #[test]
    fn low_probability_rarely_flips() {
        let mut r = rng();
        let mut flips = 0u32;
        for _ in 0..10_000 {
            flips += flip_bits(0, 64, 1e-9, &mut r).count_ones();
        }
        // Expected flips: 10_000 * 64 * 1e-9 = 6.4e-4; seeing more than a few
        // would indicate a broken sampler.
        assert!(flips <= 2, "too many flips at p=1e-9: {flips}");
    }

    #[test]
    fn flip_one_bit_changes_exactly_one() {
        let mut r = rng();
        for _ in 0..200 {
            let x = r.gen::<u64>();
            let y = flip_one_bit(x, 32, &mut r);
            assert_eq!((x ^ y).count_ones(), 1);
            assert!((x ^ y).trailing_zeros() < 32);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(random_bits(12, &mut r) & !0xFFF, 0);
        }
        // Sanity: the full width eventually exercises high bits.
        let any_high = (0..50).any(|_| random_bits(64, &mut r) >> 60 != 0);
        assert!(any_high);
    }

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn decay_probability_monotone_and_saturating() {
        let rate = 1e-3;
        assert_eq!(decay_probability(rate, 0.0), 0.0);
        let p1 = decay_probability(rate, 1.0);
        let p10 = decay_probability(rate, 10.0);
        assert!(p1 > 0.0 && p10 > p1);
        // Very long decay saturates at 0.5.
        assert_eq!(decay_probability(1.0, 1e9), 0.5);
        // Short decay approximates rate * dt.
        assert!((p1 - rate).abs() / rate < 1e-3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn flip_bits_rejects_bad_probability() {
        let mut r = rng();
        let _ = flip_bits(0, 8, 1.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn decay_probability_rejects_negative_rate() {
        let _ = decay_probability(-1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn decay_probability_rejects_nan_dt() {
        let _ = decay_probability(1.0, f64::NAN);
    }

    fn countdown_run(p: f64, width: u32, accesses: u64, seed: u64) -> u64 {
        let mut r = StdRng::seed_from_u64(seed);
        let mut cd = GeomCountdown::new(p, &mut r);
        let mut flips = 0u64;
        for _ in 0..accesses {
            if !cd.pass(width) {
                flips += u64::from(cd.flip_bits(0, width, &mut r).count_ones());
            }
        }
        flips
    }

    #[test]
    fn countdown_zero_probability_never_fires_or_draws() {
        let mut r = rng();
        let mut untouched = rng();
        let mut cd = GeomCountdown::new(0.0, &mut r);
        for _ in 0..10_000 {
            assert!(cd.pass(64));
            assert!(!cd.fire(&mut r));
        }
        // A p = 0 stream must never consume RNG state.
        assert_eq!(r.gen::<u64>(), untouched.gen::<u64>());
    }

    #[test]
    fn countdown_unit_probability_flips_every_bit() {
        let mut r = rng();
        let mut cd = GeomCountdown::new(1.0, &mut r);
        for _ in 0..100 {
            assert!(!cd.pass(8));
            assert_eq!(cd.flip_bits(0, 8, &mut r), 0xFF);
            assert!(cd.fire(&mut r));
        }
    }

    #[test]
    fn countdown_flip_rate_matches_probability() {
        let p = 0.01;
        let accesses = 20_000u64;
        let flips = countdown_run(p, 64, accesses, 0x5EED) as f64;
        let trials = accesses as f64 * 64.0;
        let sigma = (trials * p * (1.0 - p)).sqrt();
        assert!(
            (flips - trials * p).abs() < 5.0 * sigma,
            "flips {flips}, expected {} +/- {}",
            trials * p,
            5.0 * sigma
        );
    }

    #[test]
    fn countdown_per_op_rate_matches_gen_bool() {
        let p = 0.05;
        let n = 50_000u64;
        let mut r = rng();
        let mut cd = GeomCountdown::new(p, &mut r);
        let fired = (0..n).filter(|_| cd.fire(&mut r)).count() as f64;
        let sigma = (n as f64 * p * (1.0 - p)).sqrt();
        assert!((fired - n as f64 * p).abs() < 5.0 * sigma, "fired {fired}");
    }

    #[test]
    fn hazard_of_zero_is_zero_and_grows_with_p() {
        assert_eq!(hazard(0.0), 0.0);
        assert!(hazard(0.5) > hazard(0.1));
        assert!((hazard(0.5) - std::f64::consts::LN_2).abs() < 1e-15);
    }

    #[test]
    fn hazard_countdown_matches_fixed_probability() {
        let p = 0.02;
        let h = hazard(p);
        let accesses = 20_000u64;
        let mut r = rng();
        let mut cd = HazardCountdown::new(&mut r);
        let mut flips = 0u64;
        for _ in 0..accesses {
            if !cd.pass(64.0 * h) {
                flips += u64::from(cd.flip_bits(0, 64, h, &mut r).count_ones());
            }
        }
        let trials = accesses as f64 * 64.0;
        let sigma = (trials * p * (1.0 - p)).sqrt();
        assert!(
            (flips as f64 - trials * p).abs() < 5.0 * sigma,
            "flips {flips}, expected {} +/- {}",
            trials * p,
            5.0 * sigma
        );
    }

    #[test]
    fn hazard_countdown_exact_under_varying_probability() {
        // Alternate two probabilities per access; the expected flip count is
        // the sum of the per-access expectations. A plain geometric counter
        // in trial units would be biased here; the hazard clock is not.
        let (p1, p2) = (0.001, 0.08);
        let (h1, h2) = (hazard(p1), hazard(p2));
        let accesses = 40_000u64;
        let mut r = rng();
        let mut cd = HazardCountdown::new(&mut r);
        let mut flips = 0u64;
        for i in 0..accesses {
            let h = if i % 2 == 0 { h1 } else { h2 };
            if !cd.pass(64.0 * h) {
                flips += u64::from(cd.flip_bits(0, 64, h, &mut r).count_ones());
            }
        }
        let n_each = accesses as f64 / 2.0 * 64.0;
        let expected = n_each * (p1 + p2);
        let var = n_each * (p1 * (1.0 - p1) + p2 * (1.0 - p2));
        let sigma = var.sqrt();
        assert!(
            (flips as f64 - expected).abs() < 5.0 * sigma,
            "flips {flips}, expected {expected} +/- {}",
            5.0 * sigma
        );
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn flip_one_bit_rejects_zero_width() {
        let mut r = rng();
        let _ = flip_one_bit(0, 0, &mut r);
    }

    /// `pass_accesses` + `flip_bits` over a slice must replay the identical
    /// countdown states and RNG draws as a per-access `pass` + `flip_bits`
    /// loop.
    #[test]
    fn pass_accesses_is_bit_identical_to_scalar_pass_loop() {
        for &(p, n) in &[(0.0, 1000u64), (1e-3, 50_000), (0.3, 2_000), (1.0, 100)] {
            for &width in &[1u32, 8, 32, 64] {
                let mut r_s = StdRng::seed_from_u64(0xBA7C);
                let mut cd_s = GeomCountdown::new(p, &mut r_s);
                let mut scalar = vec![0u64; n as usize];
                for word in scalar.iter_mut() {
                    if !cd_s.pass(width) {
                        *word = cd_s.flip_bits(*word, width, &mut r_s);
                    }
                }

                let mut r_b = StdRng::seed_from_u64(0xBA7C);
                let mut cd_b = GeomCountdown::new(p, &mut r_b);
                let mut batched = vec![0u64; n as usize];
                let mut idx = 0u64;
                while idx < n {
                    match cd_b.pass_accesses(n - idx, width) {
                        None => break,
                        Some(k) => {
                            idx += k;
                            let w = &mut batched[idx as usize];
                            *w = cd_b.flip_bits(*w, width, &mut r_b);
                            idx += 1;
                        }
                    }
                }

                assert_eq!(scalar, batched, "p={p} width={width}");
                assert_eq!(cd_s.remaining, cd_b.remaining, "p={p} width={width}");
                assert_eq!(r_s.gen::<u64>(), r_b.gen::<u64>(), "p={p} width={width}");
            }
        }
    }

    /// `next_fire` over a batch must fire at the same indices, with the same
    /// RNG draws, as a scalar `fire` loop.
    #[test]
    fn next_fire_is_bit_identical_to_scalar_fire_loop() {
        for &(p, n) in &[(0.0, 1000u64), (1e-3, 50_000), (0.3, 2_000), (1.0, 100)] {
            let mut r_s = StdRng::seed_from_u64(0xF14E);
            let mut cd_s = GeomCountdown::new(p, &mut r_s);
            let scalar: Vec<u64> = (0..n).filter(|_| cd_s.fire(&mut r_s)).collect();

            let mut r_b = StdRng::seed_from_u64(0xF14E);
            let mut cd_b = GeomCountdown::new(p, &mut r_b);
            let mut batched = Vec::new();
            let mut idx = 0u64;
            while idx < n {
                match cd_b.next_fire(n - idx, &mut r_b) {
                    None => break,
                    Some(k) => {
                        idx += k;
                        batched.push(idx);
                        idx += 1;
                    }
                }
            }

            assert_eq!(scalar, batched, "p={p}");
            assert_eq!(cd_s.remaining, cd_b.remaining, "p={p}");
            assert_eq!(r_s.gen::<u64>(), r_b.gen::<u64>(), "p={p}");
        }
    }

    #[test]
    fn pass_accesses_handles_huge_batches_without_overflow() {
        let mut r = rng();
        // `accesses * width` overflows u64; the u128 compare must stay exact.
        let mut cd = GeomCountdown::new(0.5, &mut r);
        assert!(cd.pass_accesses(u64::MAX, 64).is_some());
        // A p = 0 stream drains exactly like 2^64 scalar `pass` trials
        // would; its `flip_bits` then resets without flipping anything.
        let mut cd0 = GeomCountdown::new(0.0, &mut r);
        let landed = cd0.pass_accesses(u64::MAX, 64).expect("u64::MAX trials drain the stream");
        assert_eq!(landed, u64::MAX / 64);
        assert_eq!(cd0.flip_bits(0xABCD, 64, &mut r), 0xABCD);
    }
}
