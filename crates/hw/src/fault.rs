//! Bit-level fault-injection primitives.
//!
//! All fault models in the paper bottom out in per-bit Bernoulli trials:
//! SRAM read upsets and write failures flip each bit with a constant
//! probability, and DRAM refresh reduction flips each bit with a probability
//! proportional to the time since the bit was last accessed (section 5.3).
//! This module provides those trials over `u64` bit patterns, with a
//! geometric-skip sampler so that the very low probabilities of the Mild
//! configuration cost almost nothing.

use rand::Rng;

/// Flips each of the low `width` bits of `bits` independently with
/// probability `p`. Returns the perturbed pattern.
///
/// Bits at positions `width..64` are left untouched. For small `p` the
/// implementation samples the gap to the next flipped bit from a geometric
/// distribution instead of performing `width` Bernoulli trials.
///
/// # Panics
///
/// Panics if `width > 64` or `p` is not in `[0, 1]`.
pub fn flip_bits<R: Rng + ?Sized>(bits: u64, width: u32, p: f64, rng: &mut R) -> u64 {
    assert!(width <= 64, "bit width {width} exceeds u64");
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    if p <= 0.0 || width == 0 {
        return bits;
    }
    if p >= 1.0 {
        return bits ^ low_mask(width);
    }
    let mut out = bits;
    // Geometric skip: the index of the next flipped bit after position i-1 is
    // i + floor(ln(U) / ln(1-p)). For p around 1e-3 and below this loop body
    // almost never executes. ln_1p keeps the denominator exact for the tiny
    // probabilities of the Mild configuration, where 1.0 - p rounds to 1.0.
    let denom = (-p).ln_1p();
    let mut i: u64 = skip(rng, denom);
    while i < u64::from(width) {
        out ^= 1u64 << i;
        i += 1 + skip(rng, denom);
    }
    out
}

/// Draws a geometric gap: `floor(ln(U) / ln(1-p))` with `denom = ln(1-p)`.
fn skip<R: Rng + ?Sized>(rng: &mut R, denom: f64) -> u64 {
    // U in (0, 1]; ln(U) <= 0 and denom < 0, so the quotient is >= 0.
    let u: f64 = 1.0 - rng.gen::<f64>();
    let g = (u.ln() / denom).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        g as u64
    }
}

/// Flips exactly one uniformly-chosen bit among the low `width` bits.
///
/// This is the `single-bit-flip` functional-unit error model.
///
/// # Panics
///
/// Panics if `width` is zero or greater than 64.
pub fn flip_one_bit<R: Rng + ?Sized>(bits: u64, width: u32, rng: &mut R) -> u64 {
    assert!((1..=64).contains(&width), "bit width {width} out of range");
    let pos = rng.gen_range(0..width);
    bits ^ (1u64 << pos)
}

/// A uniformly random pattern over the low `width` bits.
///
/// This is the `random-value` functional-unit error model.
pub fn random_bits<R: Rng + ?Sized>(width: u32, rng: &mut R) -> u64 {
    rng.gen::<u64>() & low_mask(width)
}

/// A mask with the low `width` bits set.
pub fn low_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// The per-bit flip probability after `dt` seconds without refresh, for a
/// per-second flip rate `rate`: `1 - exp(-rate * dt)`.
///
/// Saturates at 0.5 — a fully decayed DRAM cell carries no information, not
/// an inverted bit.
pub fn decay_probability(rate: f64, dt: f64) -> f64 {
    debug_assert!(rate >= 0.0 && dt >= 0.0);
    let p = 1.0 - (-rate * dt).exp();
    p.min(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED)
    }

    #[test]
    fn zero_probability_never_flips() {
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(flip_bits(0xDEAD_BEEF, 32, 0.0, &mut r), 0xDEAD_BEEF);
        }
    }

    #[test]
    fn unit_probability_flips_everything_in_width() {
        let mut r = rng();
        assert_eq!(flip_bits(0, 8, 1.0, &mut r), 0xFF);
        assert_eq!(flip_bits(0xFF, 8, 1.0, &mut r), 0);
        // Bits beyond the width are untouched.
        assert_eq!(flip_bits(0xF00, 8, 1.0, &mut r), 0xFFF);
    }

    #[test]
    fn width_zero_is_identity() {
        let mut r = rng();
        assert_eq!(flip_bits(42, 0, 0.5, &mut r), 42);
    }

    #[test]
    fn flip_rate_matches_probability_statistically() {
        let mut r = rng();
        let p = 0.01;
        let trials = 20_000u64;
        let mut flips = 0u64;
        for _ in 0..trials {
            flips += u64::from(flip_bits(0, 64, p, &mut r).count_ones());
        }
        let expected = trials as f64 * 64.0 * p;
        let observed = flips as f64;
        // 5-sigma band for a binomial count.
        let sigma = (trials as f64 * 64.0 * p * (1.0 - p)).sqrt();
        assert!(
            (observed - expected).abs() < 5.0 * sigma,
            "observed {observed}, expected {expected} +/- {}",
            5.0 * sigma
        );
    }

    #[test]
    fn low_probability_rarely_flips() {
        let mut r = rng();
        let mut flips = 0u32;
        for _ in 0..10_000 {
            flips += flip_bits(0, 64, 1e-9, &mut r).count_ones();
        }
        // Expected flips: 10_000 * 64 * 1e-9 = 6.4e-4; seeing more than a few
        // would indicate a broken sampler.
        assert!(flips <= 2, "too many flips at p=1e-9: {flips}");
    }

    #[test]
    fn flip_one_bit_changes_exactly_one() {
        let mut r = rng();
        for _ in 0..200 {
            let x = r.gen::<u64>();
            let y = flip_one_bit(x, 32, &mut r);
            assert_eq!((x ^ y).count_ones(), 1);
            assert!((x ^ y).trailing_zeros() < 32);
        }
    }

    #[test]
    fn random_bits_respects_width() {
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(random_bits(12, &mut r) & !0xFFF, 0);
        }
        // Sanity: the full width eventually exercises high bits.
        let any_high = (0..50).any(|_| random_bits(64, &mut r) >> 60 != 0);
        assert!(any_high);
    }

    #[test]
    fn low_mask_edges() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(63), u64::MAX >> 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn decay_probability_monotone_and_saturating() {
        let rate = 1e-3;
        assert_eq!(decay_probability(rate, 0.0), 0.0);
        let p1 = decay_probability(rate, 1.0);
        let p10 = decay_probability(rate, 10.0);
        assert!(p1 > 0.0 && p10 > p1);
        // Very long decay saturates at 0.5.
        assert_eq!(decay_probability(1.0, 1e9), 0.5);
        // Short decay approximates rate * dt.
        assert!((p1 - rate).abs() / rate < 1e-3);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn flip_bits_rejects_bad_probability() {
        let mut r = rng();
        let _ = flip_bits(0, 8, 1.5, &mut r);
    }

    #[test]
    #[should_panic(expected = "bit width")]
    fn flip_one_bit_rejects_zero_width() {
        let mut r = rng();
        let _ = flip_one_bit(0, 0, &mut r);
    }
}
