//! Always-on fault telemetry: per-unit injection and bit-flip counters.
//!
//! The paper's central empirical claim is statistical — QoS degradation
//! under stochastic fault injection — so a misbehaving trial must be
//! attributable to a fault *source*, not just a scalar error. This module
//! keeps O(1)-per-event counters of every injected fault, split by
//! [`FaultKind`]: how many injections each unit performed and how many bits
//! they flipped in total. The counters are always on (they cost two integer
//! additions per fault and nothing per non-faulting operation), never touch
//! the fault PRNG, and therefore cannot perturb simulation results.
//!
//! The opt-in event *log* (an unbounded [`FaultEvent`] stream, exported as
//! NDJSON by the campaign runner) lives on [`Hardware`](crate::Hardware);
//! this module only defines the cheap summary layer.

use crate::trace::FaultKind;
use std::fmt;

/// Counters for one fault kind: injections and total bits flipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCount {
    /// Number of fault injections by this kind's model.
    pub injections: u64,
    /// Total Hamming distance introduced by those injections (a
    /// value-replacement fault that happens to reproduce the raw value
    /// contributes an injection with zero flipped bits).
    pub bits_flipped: u64,
}

/// Per-[`FaultKind`] fault counters for one simulation run.
///
/// # Examples
///
/// ```
/// use enerj_hw::telemetry::FaultCounters;
/// use enerj_hw::trace::FaultKind;
///
/// let mut c = FaultCounters::new();
/// c.record(FaultKind::SramReadUpset, 3);
/// c.record(FaultKind::SramReadUpset, 1);
/// assert_eq!(c.count(FaultKind::SramReadUpset).injections, 2);
/// assert_eq!(c.count(FaultKind::SramReadUpset).bits_flipped, 4);
/// assert_eq!(c.total_injections(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    counts: [KindCount; FaultKind::ALL.len()],
}

impl FaultCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        FaultCounters::default()
    }

    /// Records one injection of `kind` that flipped `bits_flipped` bits.
    #[inline]
    pub fn record(&mut self, kind: FaultKind, bits_flipped: u32) {
        let c = &mut self.counts[kind.index()];
        c.injections += 1;
        c.bits_flipped += u64::from(bits_flipped);
    }

    /// The counters for one kind.
    pub fn count(&self, kind: FaultKind) -> KindCount {
        self.counts[kind.index()]
    }

    /// Total injections across all kinds.
    pub fn total_injections(&self) -> u64 {
        self.counts.iter().map(|c| c.injections).sum()
    }

    /// Total bits flipped across all kinds.
    pub fn total_bits_flipped(&self) -> u64 {
        self.counts.iter().map(|c| c.bits_flipped).sum()
    }

    /// Whether no fault has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| c.injections == 0)
    }

    /// Iterates `(kind, count)` pairs in [`FaultKind::ALL`] order.
    pub fn per_kind(&self) -> impl Iterator<Item = (FaultKind, KindCount)> + '_ {
        FaultKind::ALL.iter().map(move |&k| (k, self.counts[k.index()]))
    }

    /// Adds another counter set into this one.
    pub fn merge(&mut self, other: &FaultCounters) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            mine.injections += theirs.injections;
            mine.bits_flipped += theirs.bits_flipped;
        }
    }
}

impl fmt::Display for FaultCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (kind, c) in self.per_kind() {
            if c.injections == 0 {
                continue;
            }
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{kind}: {} ({} bits)", c.injections, c.bits_flipped)?;
            first = false;
        }
        if first {
            write!(f, "no faults")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_merges_per_kind() {
        let mut a = FaultCounters::new();
        assert!(a.is_empty());
        a.record(FaultKind::IntTiming, 0);
        a.record(FaultKind::IntTiming, 7);
        a.record(FaultKind::DramDecay, 2);
        let mut b = FaultCounters::new();
        b.record(FaultKind::IntTiming, 1);
        a.merge(&b);
        assert_eq!(a.count(FaultKind::IntTiming), KindCount { injections: 3, bits_flipped: 8 });
        assert_eq!(a.count(FaultKind::DramDecay), KindCount { injections: 1, bits_flipped: 2 });
        assert_eq!(a.count(FaultKind::FpTiming), KindCount::default());
        assert_eq!(a.total_injections(), 4);
        assert_eq!(a.total_bits_flipped(), 10);
        assert!(!a.is_empty());
    }

    #[test]
    fn per_kind_iterates_in_all_order() {
        let mut c = FaultCounters::new();
        c.record(FaultKind::FpTiming, 1);
        let kinds: Vec<FaultKind> = c.per_kind().map(|(k, _)| k).collect();
        assert_eq!(kinds, FaultKind::ALL);
    }

    #[test]
    fn display_summarizes_nonzero_kinds() {
        let mut c = FaultCounters::new();
        assert_eq!(c.to_string(), "no faults");
        c.record(FaultKind::SramWriteFailure, 2);
        c.record(FaultKind::SramWriteFailure, 1);
        assert_eq!(c.to_string(), "sram-write-failure: 2 (3 bits)");
    }
}
