//! Simulation statistics (the raw material of Figure 3).
//!
//! The paper's simulator "records memory-footprint and arithmetic-operation
//! statistics while simultaneously injecting transient faults" (section 5.2).
//! Storage is measured in **byte-seconds** — bytes held multiplied by the
//! simulated time they were held — split by memory kind (SRAM for stack and
//! register data, DRAM for heap data) and by precision. Operations are dynamic
//! counts split by unit (integer vs floating point) and precision.

use std::fmt;

/// Memory kind, following the paper's stack-is-SRAM / heap-is-DRAM split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Registers and data cache (stack data).
    Sram,
    /// Main memory (heap data).
    Dram,
}

/// Functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer ALU operation.
    Int,
    /// Floating-point operation.
    Fp,
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    /// Approximate integer operations executed.
    pub int_approx_ops: u64,
    /// Precise integer operations executed.
    pub int_precise_ops: u64,
    /// Approximate floating-point operations executed.
    pub fp_approx_ops: u64,
    /// Precise floating-point operations executed.
    pub fp_precise_ops: u64,
    /// Byte-seconds of approximate SRAM storage.
    pub sram_approx_byte_seconds: f64,
    /// Byte-seconds of precise SRAM storage.
    pub sram_precise_byte_seconds: f64,
    /// Byte-seconds of approximate DRAM storage.
    pub dram_approx_byte_seconds: f64,
    /// Byte-seconds of precise DRAM storage.
    pub dram_precise_byte_seconds: f64,
    /// Count of faults actually injected, by any strategy.
    pub faults_injected: u64,
}

impl Stats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records one executed operation.
    pub fn record_op(&mut self, kind: OpKind, approx: bool) {
        match (kind, approx) {
            (OpKind::Int, true) => self.int_approx_ops += 1,
            (OpKind::Int, false) => self.int_precise_ops += 1,
            (OpKind::Fp, true) => self.fp_approx_ops += 1,
            (OpKind::Fp, false) => self.fp_precise_ops += 1,
        }
    }

    /// Records `bytes` of storage held for `seconds` simulated seconds.
    pub fn record_storage(&mut self, kind: MemKind, approx: bool, bytes: f64, seconds: f64) {
        debug_assert!(bytes >= 0.0 && seconds >= 0.0);
        let bs = bytes * seconds;
        match (kind, approx) {
            (MemKind::Sram, true) => self.sram_approx_byte_seconds += bs,
            (MemKind::Sram, false) => self.sram_precise_byte_seconds += bs,
            (MemKind::Dram, true) => self.dram_approx_byte_seconds += bs,
            (MemKind::Dram, false) => self.dram_precise_byte_seconds += bs,
        }
    }

    /// Records one injected fault.
    pub fn record_fault(&mut self) {
        self.faults_injected += 1;
    }

    /// Total dynamic operations of a kind.
    pub fn total_ops(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Int => self.int_approx_ops + self.int_precise_ops,
            OpKind::Fp => self.fp_approx_ops + self.fp_precise_ops,
        }
    }

    /// Fraction of dynamic operations of `kind` that were approximate
    /// (a Figure 3 bar). Returns 0 when no such operations ran.
    pub fn approx_op_fraction(&self, kind: OpKind) -> f64 {
        let (a, total) = match kind {
            OpKind::Int => (self.int_approx_ops, self.total_ops(OpKind::Int)),
            OpKind::Fp => (self.fp_approx_ops, self.total_ops(OpKind::Fp)),
        };
        if total == 0 {
            0.0
        } else {
            a as f64 / total as f64
        }
    }

    /// Fraction of byte-seconds in `kind` memory that stored approximate data
    /// (a Figure 3 bar). Returns 0 when the memory was unused.
    pub fn approx_storage_fraction(&self, kind: MemKind) -> f64 {
        let (a, p) = match kind {
            MemKind::Sram => (self.sram_approx_byte_seconds, self.sram_precise_byte_seconds),
            MemKind::Dram => (self.dram_approx_byte_seconds, self.dram_precise_byte_seconds),
        };
        if a + p == 0.0 {
            0.0
        } else {
            a / (a + p)
        }
    }

    /// Fraction of dynamic arithmetic that was floating point — the
    /// "Proportion FP" column of Table 3.
    pub fn fp_proportion(&self) -> f64 {
        let fp = self.total_ops(OpKind::Fp);
        let int = self.total_ops(OpKind::Int);
        if fp + int == 0 {
            0.0
        } else {
            fp as f64 / (fp + int) as f64
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &Stats) {
        self.int_approx_ops += other.int_approx_ops;
        self.int_precise_ops += other.int_precise_ops;
        self.fp_approx_ops += other.fp_approx_ops;
        self.fp_precise_ops += other.fp_precise_ops;
        self.sram_approx_byte_seconds += other.sram_approx_byte_seconds;
        self.sram_precise_byte_seconds += other.sram_precise_byte_seconds;
        self.dram_approx_byte_seconds += other.dram_approx_byte_seconds;
        self.dram_precise_byte_seconds += other.dram_precise_byte_seconds;
        self.faults_injected += other.faults_injected;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ops: int {}+{}a, fp {}+{}a; faults {}",
            self.int_precise_ops,
            self.int_approx_ops,
            self.fp_precise_ops,
            self.fp_approx_ops,
            self.faults_injected
        )?;
        write!(
            f,
            "storage (byte-s): sram {:.3e}+{:.3e}a, dram {:.3e}+{:.3e}a",
            self.sram_precise_byte_seconds,
            self.sram_approx_byte_seconds,
            self.dram_precise_byte_seconds,
            self.dram_approx_byte_seconds
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counting_and_fractions() {
        let mut s = Stats::new();
        for _ in 0..3 {
            s.record_op(OpKind::Int, false);
        }
        s.record_op(OpKind::Int, true);
        for _ in 0..4 {
            s.record_op(OpKind::Fp, true);
        }
        assert_eq!(s.total_ops(OpKind::Int), 4);
        assert_eq!(s.total_ops(OpKind::Fp), 4);
        assert!((s.approx_op_fraction(OpKind::Int) - 0.25).abs() < 1e-12);
        assert_eq!(s.approx_op_fraction(OpKind::Fp), 1.0);
        assert_eq!(s.fp_proportion(), 0.5);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let s = Stats::new();
        assert_eq!(s.approx_op_fraction(OpKind::Int), 0.0);
        assert_eq!(s.approx_storage_fraction(MemKind::Dram), 0.0);
        assert_eq!(s.fp_proportion(), 0.0);
    }

    #[test]
    fn storage_accounting() {
        let mut s = Stats::new();
        s.record_storage(MemKind::Dram, true, 100.0, 2.0);
        s.record_storage(MemKind::Dram, false, 50.0, 2.0);
        s.record_storage(MemKind::Sram, true, 8.0, 1.0);
        assert!((s.approx_storage_fraction(MemKind::Dram) - 200.0 / 300.0).abs() < 1e-12);
        assert_eq!(s.approx_storage_fraction(MemKind::Sram), 1.0);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Stats::new();
        a.record_op(OpKind::Int, true);
        a.record_fault();
        let mut b = Stats::new();
        b.record_op(OpKind::Int, true);
        b.record_storage(MemKind::Sram, false, 4.0, 1.0);
        a.merge(&b);
        assert_eq!(a.int_approx_ops, 2);
        assert_eq!(a.faults_injected, 1);
        assert_eq!(a.sram_precise_byte_seconds, 4.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }
}
