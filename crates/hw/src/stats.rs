//! Simulation statistics (the raw material of Figure 3).
//!
//! The paper's simulator "records memory-footprint and arithmetic-operation
//! statistics while simultaneously injecting transient faults" (section 5.2).
//! Storage residency is accounted in exact integer **quanta** — bit·op-ticks:
//! bits held multiplied by the op-ticks they were held (see
//! [`crate::quanta`]) — split by memory kind (SRAM for stack and register
//! data, DRAM for heap data) and by precision. Operations are dynamic counts
//! split by unit (integer vs floating point) and precision.
//!
//! Because every field is an integer, [`Stats::merge`] is associative and
//! commutative: merging per-thread or per-trial statistics in any order
//! yields bit-identical totals. The paper's byte-second figures are
//! projections (`quanta × seconds_per_op / 8`) computed only at display
//! time; the fractions that feed Figure 3 are scale-invariant ratios of
//! quanta.

use std::fmt;

use crate::quanta::{ratio, EnergyQuanta};

/// Memory kind, following the paper's stack-is-SRAM / heap-is-DRAM split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Registers and data cache (stack data).
    Sram,
    /// Main memory (heap data).
    Dram,
}

/// Functional-unit kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Integer ALU operation.
    Int,
    /// Floating-point operation.
    Fp,
}

/// Aggregated counters for one simulation run.
///
/// All fields are integers, so `Stats` is `Eq`/`Hash` and merging is exact:
/// no accumulation order can perturb a total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Stats {
    /// Approximate integer operations executed.
    pub int_approx_ops: u64,
    /// Precise integer operations executed.
    pub int_precise_ops: u64,
    /// Approximate floating-point operations executed.
    pub fp_approx_ops: u64,
    /// Precise floating-point operations executed.
    pub fp_precise_ops: u64,
    /// Storage quanta (bit·op-ticks) of approximate SRAM residency.
    pub sram_approx_quanta: EnergyQuanta,
    /// Storage quanta (bit·op-ticks) of precise SRAM residency.
    pub sram_precise_quanta: EnergyQuanta,
    /// Storage quanta (bit·op-ticks) of approximate DRAM residency.
    pub dram_approx_quanta: EnergyQuanta,
    /// Storage quanta (bit·op-ticks) of precise DRAM residency.
    pub dram_precise_quanta: EnergyQuanta,
    /// Count of faults actually injected, by any strategy.
    pub faults_injected: u64,
}

impl Stats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Records one executed operation.
    pub fn record_op(&mut self, kind: OpKind, approx: bool) {
        self.record_ops(kind, approx, 1);
    }

    /// Records `n` executed operations at once (the batched entry points
    /// account a whole slice with one addition).
    pub fn record_ops(&mut self, kind: OpKind, approx: bool, n: u64) {
        match (kind, approx) {
            (OpKind::Int, true) => self.int_approx_ops += n,
            (OpKind::Int, false) => self.int_precise_ops += n,
            (OpKind::Fp, true) => self.fp_approx_ops += n,
            (OpKind::Fp, false) => self.fp_precise_ops += n,
        }
    }

    /// Records exact storage residency quanta (bit·op-ticks). This is the
    /// accounting path the hardware uses: by construction its inputs are
    /// non-negative integers, so no range check is needed and no float ever
    /// enters the total.
    pub fn record_storage_quanta(&mut self, kind: MemKind, approx: bool, quanta: EnergyQuanta) {
        match (kind, approx) {
            (MemKind::Sram, true) => self.sram_approx_quanta += quanta,
            (MemKind::Sram, false) => self.sram_precise_quanta += quanta,
            (MemKind::Dram, true) => self.dram_approx_quanta += quanta,
            (MemKind::Dram, false) => self.dram_precise_quanta += quanta,
        }
    }

    /// Records `bytes` of storage held for `seconds` simulated seconds.
    ///
    /// Legacy float shim for callers that measure in byte-seconds (the
    /// in-binary baseline replica in `hwbench`, hand-built test fixtures):
    /// the product is converted to bit·op-tick quanta at the default time
    /// scale ([`crate::config::HwConfig::DEFAULT_SECONDS_PER_OP`]), rounding to
    /// nearest. The simulator itself charges quanta directly via
    /// [`Stats::record_storage_quanta`] and never pays this conversion.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative or NaN. (This was a
    /// `debug_assert!` once; in release builds a negative argument would
    /// have silently corrupted the totals.)
    pub fn record_storage(&mut self, kind: MemKind, approx: bool, bytes: f64, seconds: f64) {
        assert!(
            bytes >= 0.0 && seconds >= 0.0,
            "negative storage record: {bytes} bytes for {seconds} s"
        );
        let ticks = seconds / crate::config::HwConfig::DEFAULT_SECONDS_PER_OP;
        // Saturating f64→u128 cast: in-range by the assert above.
        let quanta = EnergyQuanta::new(((bytes * 8.0) * ticks).round() as u128);
        self.record_storage_quanta(kind, approx, quanta);
    }

    /// Records one injected fault.
    pub fn record_fault(&mut self) {
        self.faults_injected += 1;
    }

    /// Total dynamic operations of a kind.
    pub fn total_ops(&self, kind: OpKind) -> u64 {
        match kind {
            OpKind::Int => self.int_approx_ops + self.int_precise_ops,
            OpKind::Fp => self.fp_approx_ops + self.fp_precise_ops,
        }
    }

    /// Fraction of dynamic operations of `kind` that were approximate
    /// (a Figure 3 bar). Returns 0 when no such operations ran.
    pub fn approx_op_fraction(&self, kind: OpKind) -> f64 {
        let (a, total) = match kind {
            OpKind::Int => (self.int_approx_ops, self.total_ops(OpKind::Int)),
            OpKind::Fp => (self.fp_approx_ops, self.total_ops(OpKind::Fp)),
        };
        if total == 0 {
            0.0
        } else {
            a as f64 / total as f64
        }
    }

    /// Total storage quanta (approximate + precise) in `kind` memory.
    pub fn storage_quanta(&self, kind: MemKind) -> EnergyQuanta {
        match kind {
            MemKind::Sram => self.sram_approx_quanta + self.sram_precise_quanta,
            MemKind::Dram => self.dram_approx_quanta + self.dram_precise_quanta,
        }
    }

    /// Fraction of storage quanta in `kind` memory that held approximate
    /// data (a Figure 3 bar). Returns 0 when the memory was unused — the
    /// zero test is exact on integer quanta, unlike the float guard it
    /// replaces, which denormal sums could dodge.
    pub fn approx_storage_fraction(&self, kind: MemKind) -> f64 {
        let (a, p) = match kind {
            MemKind::Sram => (self.sram_approx_quanta, self.sram_precise_quanta),
            MemKind::Dram => (self.dram_approx_quanta, self.dram_precise_quanta),
        };
        let total = a + p;
        if total.is_zero() {
            0.0
        } else {
            ratio(a, total)
        }
    }

    /// Fraction of dynamic arithmetic that was floating point — the
    /// "Proportion FP" column of Table 3.
    pub fn fp_proportion(&self) -> f64 {
        let fp = self.total_ops(OpKind::Fp);
        let int = self.total_ops(OpKind::Int);
        if fp + int == 0 {
            0.0
        } else {
            fp as f64 / (fp + int) as f64
        }
    }

    /// Merges another counter set into this one. Pure integer addition:
    /// associative and commutative, so any merge tree over the same leaves
    /// produces bit-identical totals.
    pub fn merge(&mut self, other: &Stats) {
        self.int_approx_ops += other.int_approx_ops;
        self.int_precise_ops += other.int_precise_ops;
        self.fp_approx_ops += other.fp_approx_ops;
        self.fp_precise_ops += other.fp_precise_ops;
        self.sram_approx_quanta += other.sram_approx_quanta;
        self.sram_precise_quanta += other.sram_precise_quanta;
        self.dram_approx_quanta += other.dram_approx_quanta;
        self.dram_precise_quanta += other.dram_precise_quanta;
        self.faults_injected += other.faults_injected;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ops: int {}+{}a, fp {}+{}a; faults {}",
            self.int_precise_ops,
            self.int_approx_ops,
            self.fp_precise_ops,
            self.fp_approx_ops,
            self.faults_injected
        )?;
        write!(
            f,
            "storage (bit-ticks): sram {}+{}a, dram {}+{}a",
            self.sram_precise_quanta,
            self.sram_approx_quanta,
            self.dram_precise_quanta,
            self.dram_approx_quanta
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_counting_and_fractions() {
        let mut s = Stats::new();
        for _ in 0..3 {
            s.record_op(OpKind::Int, false);
        }
        s.record_op(OpKind::Int, true);
        for _ in 0..4 {
            s.record_op(OpKind::Fp, true);
        }
        assert_eq!(s.total_ops(OpKind::Int), 4);
        assert_eq!(s.total_ops(OpKind::Fp), 4);
        assert!((s.approx_op_fraction(OpKind::Int) - 0.25).abs() < 1e-12);
        assert_eq!(s.approx_op_fraction(OpKind::Fp), 1.0);
        assert_eq!(s.fp_proportion(), 0.5);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let s = Stats::new();
        assert_eq!(s.approx_op_fraction(OpKind::Int), 0.0);
        assert_eq!(s.approx_storage_fraction(MemKind::Dram), 0.0);
        assert_eq!(s.fp_proportion(), 0.0);
    }

    #[test]
    fn empty_pool_fraction_is_exactly_zero_per_kind() {
        // The zero guard is exact on quanta: an untouched pool reports 0.0
        // even when the *other* memory kind carries residency.
        let mut s = Stats::new();
        s.record_storage_quanta(MemKind::Dram, true, EnergyQuanta::new(1));
        assert_eq!(s.approx_storage_fraction(MemKind::Sram), 0.0);
        assert_eq!(s.approx_storage_fraction(MemKind::Dram), 1.0);
        assert_eq!(s.storage_quanta(MemKind::Sram), EnergyQuanta::ZERO);
    }

    #[test]
    fn storage_accounting() {
        let mut s = Stats::new();
        s.record_storage(MemKind::Dram, true, 100.0, 2.0);
        s.record_storage(MemKind::Dram, false, 50.0, 2.0);
        s.record_storage(MemKind::Sram, true, 8.0, 1.0);
        assert!((s.approx_storage_fraction(MemKind::Dram) - 200.0 / 300.0).abs() < 1e-12);
        assert_eq!(s.approx_storage_fraction(MemKind::Sram), 1.0);
    }

    #[test]
    fn storage_quanta_accounting_is_exact() {
        let mut s = Stats::new();
        s.record_storage_quanta(MemKind::Sram, true, EnergyQuanta::from_bits_quanta(64, 1));
        s.record_storage_quanta(MemKind::Sram, true, EnergyQuanta::from_bits_quanta(64, 1));
        s.record_storage_quanta(MemKind::Sram, false, EnergyQuanta::from_bits_quanta(64, 1));
        assert_eq!(s.sram_approx_quanta, EnergyQuanta::new(128));
        assert_eq!(s.sram_precise_quanta, EnergyQuanta::new(64));
        assert!((s.approx_storage_fraction(MemKind::Sram) - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "negative storage record")]
    fn negative_bytes_are_rejected_in_release_builds_too() {
        // Regression: this was a debug_assert!, so a release build would
        // have silently corrupted the totals.
        let mut s = Stats::new();
        s.record_storage(MemKind::Dram, true, -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "negative storage record")]
    fn nan_seconds_are_rejected() {
        let mut s = Stats::new();
        s.record_storage(MemKind::Sram, false, 1.0, f64::NAN);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Stats::new();
        a.record_op(OpKind::Int, true);
        a.record_fault();
        let mut b = Stats::new();
        b.record_op(OpKind::Int, true);
        b.record_storage_quanta(MemKind::Sram, false, EnergyQuanta::new(32));
        a.merge(&b);
        assert_eq!(a.int_approx_ops, 2);
        assert_eq!(a.faults_injected, 1);
        assert_eq!(a.sram_precise_quanta, EnergyQuanta::new(32));
    }

    #[test]
    fn merge_order_cannot_change_totals() {
        // Associativity/commutativity in miniature; the proptest suites
        // exercise this with shuffled orders at campaign scale.
        let mut parts = Vec::new();
        for i in 0..5u64 {
            let mut s = Stats::new();
            s.int_approx_ops = i;
            s.record_storage_quanta(
                MemKind::Dram,
                true,
                EnergyQuanta::from_bits_quanta(u64::MAX, i),
            );
            parts.push(s);
        }
        let mut forward = Stats::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = Stats::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!Stats::new().to_string().is_empty());
    }
}
