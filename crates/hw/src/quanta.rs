//! Exact integer energy accounting.
//!
//! Every accounting quantity in the simulator — storage residency, scaled
//! instruction energy, recovery overhead, campaign totals — is an integer
//! number of **quanta** held in an [`EnergyQuanta`] (`u128`). Integer
//! addition is associative and commutative, so merge order, sharding and
//! thread count provably cannot change a single bit of any total, and an
//! energy *budget* can be debited and compared with `==` instead of an
//! epsilon.
//!
//! Units:
//!
//! * **Storage** quanta are *bit·op-ticks*: bits resident multiplied by the
//!   op-ticks they were held. One SRAM access of width `w` charges `w`
//!   quanta; a DRAM allocation of `b` bytes retired after `t` ticks charges
//!   `8·b·t` via [`EnergyQuanta::from_bits_quanta`] — an expanded integer
//!   multiply with no intermediate floats. Byte-seconds are recovered, when
//!   a human-facing number is wanted, as
//!   `quanta × seconds_per_op / 8`.
//! * **Instruction** quanta are *basis-point energy units*: abstract paper
//!   units (37 per integer op, 40 per FP op) scaled by
//!   [`SAVINGS_SCALE`] = 10 000. All of Table 2's savings fractions are
//!   exact two-decimal values, so [`savings_basis_points`] converts them
//!   without rounding error and the scaled instruction energy of a run is
//!   an exact integer.
//!
//! The normalized figures of the paper (Figure 4 bars) are *projections*:
//! one f64 division per component, performed once at the very end on exact
//! integer numerators and denominators. This module therefore denies raw
//! float arithmetic; the only two functions allowed to touch floats are the
//! projection [`ratio`] and the constructor [`savings_basis_points`].

#![deny(clippy::float_arithmetic)]

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Fixed-point scale for savings fractions: 1.0 == 10 000 basis points.
///
/// Every savings parameter in Table 2 is an exact multiple of 0.01, so
/// scaling by 10 000 represents them all exactly (with two digits to
/// spare for finer-grained hypothetical strategies).
pub const SAVINGS_SCALE: u128 = 10_000;

/// An exact, order-independent quantity of energy quanta.
///
/// A `u128` newtype in the spirit of SpacetimeDB's `EnergyQuanta`: totals
/// are built with integer addition only, so they are independent of
/// accumulation order, and budgets are `==`-comparable. Arithmetic via the
/// `Add`/`Sub` operators is checked and panics on wrap — an overflowed
/// energy total is an accounting bug, never a value to propagate. Use
/// [`EnergyQuanta::saturating_add`]/[`EnergyQuanta::saturating_sub`] when
/// clamping is the intended semantics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnergyQuanta(u128);

impl EnergyQuanta {
    /// No energy at all; the additive identity.
    pub const ZERO: EnergyQuanta = EnergyQuanta(0);

    /// Wraps a raw quanta count.
    pub const fn new(quanta: u128) -> Self {
        EnergyQuanta(quanta)
    }

    /// The raw quanta count.
    pub const fn get(self) -> u128 {
        self.0
    }

    /// Exact storage quanta for `bits` bits held for `op_ticks` op-ticks:
    /// a widening `u64×u64→u128` multiply, which cannot overflow and
    /// involves no intermediate floats.
    pub const fn from_bits_quanta(bits: u64, op_ticks: u64) -> Self {
        EnergyQuanta((bits as u128) * (op_ticks as u128))
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(q) => Some(EnergyQuanta(q)),
            None => None,
        }
    }

    /// Checked subtraction; `None` on underflow.
    pub const fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.0.checked_sub(rhs.0) {
            Some(q) => Some(EnergyQuanta(q)),
            None => None,
        }
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Self) -> Self {
        EnergyQuanta(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at [`EnergyQuanta::ZERO`]).
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        EnergyQuanta(self.0.saturating_sub(rhs.0))
    }

    /// Whether this is exactly zero — exact on integers, unlike the old
    /// `a + p == 0.0` float guards this type replaces.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for EnergyQuanta {
    type Output = EnergyQuanta;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("energy quanta total overflowed u128")
    }
}

impl AddAssign for EnergyQuanta {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for EnergyQuanta {
    type Output = EnergyQuanta;
    fn sub(self, rhs: Self) -> Self {
        self.checked_sub(rhs).expect("energy quanta difference underflowed")
    }
}

impl SubAssign for EnergyQuanta {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Sum for EnergyQuanta {
    fn sum<I: Iterator<Item = EnergyQuanta>>(iter: I) -> Self {
        iter.fold(EnergyQuanta::ZERO, |acc, q| acc + q)
    }
}

impl<'a> Sum<&'a EnergyQuanta> for EnergyQuanta {
    fn sum<I: Iterator<Item = &'a EnergyQuanta>>(iter: I) -> Self {
        iter.fold(EnergyQuanta::ZERO, |acc, q| acc + *q)
    }
}

impl fmt::Display for EnergyQuanta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Converts a savings fraction in `[0, 1]` to basis points of
/// [`SAVINGS_SCALE`], rounding to nearest. Exact for every Table 2
/// parameter (all are two-decimal fractions).
///
/// # Panics
///
/// Panics if `fraction` is not a finite value in `[0, 1]`.
#[allow(clippy::float_arithmetic)]
pub fn savings_basis_points(fraction: f64) -> u128 {
    assert!((0.0..=1.0).contains(&fraction), "savings fraction {fraction} outside [0, 1]");
    // In-range by the assert above: the product is in [0, 10_000].
    (fraction * SAVINGS_SCALE as f64).round() as u128
}

/// The projection from exact quanta to a human-facing fraction: one f64
/// division, performed once at the very end of the accounting chain.
/// Callers guard the zero denominator (the guard is exact on integers).
#[allow(clippy::float_arithmetic)]
pub fn ratio(numerator: EnergyQuanta, denominator: EnergyQuanta) -> f64 {
    debug_assert!(!denominator.is_zero(), "projection of an empty pool");
    numerator.0 as f64 / denominator.0 as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_is_exact_widening_multiply() {
        let q = EnergyQuanta::from_bits_quanta(u64::MAX, u64::MAX);
        assert_eq!(q.get(), u64::MAX as u128 * u64::MAX as u128);
        assert_eq!(EnergyQuanta::from_bits_quanta(64, 3).get(), 192);
        assert_eq!(EnergyQuanta::from_bits_quanta(0, u64::MAX), EnergyQuanta::ZERO);
    }

    #[test]
    fn addition_is_associative_and_commutative() {
        let a = EnergyQuanta::new(u128::from(u64::MAX));
        let b = EnergyQuanta::new(1);
        let c = EnergyQuanta::new(u128::from(u64::MAX) * 7);
        assert_eq!((a + b) + c, a + (b + c));
        assert_eq!(a + b, b + a);
        assert_eq!([a, b, c].iter().sum::<EnergyQuanta>(), c + b + a);
    }

    #[test]
    fn checked_and_saturating_arithmetic() {
        let max = EnergyQuanta::new(u128::MAX);
        let one = EnergyQuanta::new(1);
        assert_eq!(max.checked_add(one), None);
        assert_eq!(max.saturating_add(one), max);
        assert_eq!(EnergyQuanta::ZERO.checked_sub(one), None);
        assert_eq!(EnergyQuanta::ZERO.saturating_sub(one), EnergyQuanta::ZERO);
        assert_eq!(one.checked_add(one), Some(EnergyQuanta::new(2)));
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn operator_sub_panics_on_underflow() {
        let _ = EnergyQuanta::ZERO - EnergyQuanta::new(1);
    }

    #[test]
    fn budgets_compare_exactly() {
        let budget = EnergyQuanta::new(1_000_000);
        let spent: EnergyQuanta = (0..1_000_000).map(|_| EnergyQuanta::new(1)).sum();
        assert_eq!(spent, budget);
        assert!(spent.checked_sub(budget).is_some());
        assert!(EnergyQuanta::new(999_999) < budget);
    }

    #[test]
    fn table2_savings_fractions_are_exact_basis_points() {
        // Every savings parameter in config.rs is a two-decimal fraction.
        for (f, bp) in [
            (0.17, 1_700),
            (0.22, 2_200),
            (0.70, 7_000),
            (0.80, 8_000),
            (0.90, 9_000),
            (0.32, 3_200),
            (0.78, 7_800),
            (0.85, 8_500),
            (0.12, 1_200),
            (0.30, 3_000),
            (0.24, 2_400),
            (0.0, 0),
            (1.0, 10_000),
        ] {
            assert_eq!(savings_basis_points(f), bp, "fraction {f}");
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_savings_fraction_rejected() {
        let _ = savings_basis_points(1.5);
    }

    #[test]
    fn ratio_projects_exact_quanta() {
        let num = EnergyQuanta::new(22);
        let den = EnergyQuanta::new(37);
        assert!((ratio(num, den) - 22.0 / 37.0).abs() < 1e-15);
        assert_eq!(ratio(den, den), 1.0);
        assert_eq!(ratio(EnergyQuanta::ZERO, den), 0.0);
    }

    #[test]
    fn display_renders_raw_quanta() {
        assert_eq!(EnergyQuanta::new(12_345).to_string(), "12345");
        assert_eq!(EnergyQuanta::ZERO.to_string(), "0");
    }
}
