//! Batched-vs-scalar equivalence for the whole-slice entry points.
//!
//! Each slice operation in [`enerj_hw::batch`] drives a *single* fault
//! stream, so it must be **bit-for-bit identical** to the scalar loop it
//! replaces: same observed values, same RNG draws, same tick/energy/fault
//! accounting, same subsequent behavior. These tests pin that guarantee
//! across levels, widths, and error modes, then re-pin the PR 3 5-sigma
//! statistical bands over the batched paths, and finally check that
//! telemetry never perturbs the batched fault PRNG.

use enerj_hw::config::{ErrorMode, HwConfig, Level};
use enerj_hw::dram::DramArray;
use enerj_hw::stats::OpKind;
use enerj_hw::Hardware;

/// A config whose fault streams are hot enough that a few thousand
/// accesses exercise every payload path, not just the fast path.
fn hot_cfg(mode: ErrorMode) -> HwConfig {
    let mut cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(mode);
    cfg.params.sram_read_upset_prob = 5e-2;
    cfg.params.sram_write_failure_prob = 5e-2;
    cfg.params.timing_error_prob = 5e-2;
    cfg.params.dram_flip_per_second = 1e2;
    cfg
}

/// Asserts that two hardware instances have fully converged: identical
/// statistics, identical fault counters, and identical *future* behavior
/// (the next few operations on every stream agree bit for bit).
fn assert_converged(a: &mut Hardware, b: &mut Hardware) {
    assert_eq!(a.op_ticks(), b.op_ticks(), "op ticks diverged");
    assert_eq!(a.stats(), b.stats(), "stats diverged");
    assert_eq!(a.fault_counters(), b.fault_counters(), "counters diverged");
    for i in 0..64u64 {
        assert_eq!(a.sram_read(i, 64, true), b.sram_read(i, 64, true));
        assert_eq!(a.sram_write(i, 64, true), b.sram_write(i, 64, true));
        assert_eq!(a.approx_int_result(i, 64), b.approx_int_result(i, 64));
        assert_eq!(
            a.approx_f64_result(i as f64).to_bits(),
            b.approx_f64_result(i as f64).to_bits()
        );
    }
}

#[test]
fn sram_slices_match_scalar_loops_bit_for_bit() {
    for mode in ErrorMode::ALL {
        for width in [1u32, 8, 17, 32, 64] {
            let mut scalar = Hardware::new(hot_cfg(mode), 0x5EED ^ u64::from(width));
            let mut batched = scalar.clone();

            let src: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let mut a = src.clone();
            for w in &mut a {
                *w = scalar.sram_read(*w, width, true);
            }
            let mut b = src.clone();
            batched.sram_read_slice(&mut b, width, true);
            assert_eq!(a, b, "read slice diverged at width {width}");

            let mut a = src.clone();
            for w in &mut a {
                *w = scalar.sram_write(*w, width, true);
            }
            let mut b = src.clone();
            batched.sram_write_slice(&mut b, width, true);
            assert_eq!(a, b, "write slice diverged at width {width}");

            // Precise slices are pure accounting: values untouched.
            let mut b = src.clone();
            batched.sram_read_slice(&mut b, width, false);
            batched.sram_write_slice(&mut b, width, false);
            assert_eq!(b, src);
            for w in &src {
                scalar.sram_read(*w, width, false);
                scalar.sram_write(*w, width, false);
            }

            assert_converged(&mut scalar, &mut batched);
        }
    }
}

#[test]
fn int_result_slice_matches_scalar_loop_in_every_error_mode() {
    for mode in ErrorMode::ALL {
        for width in [16u32, 32, 64] {
            let mut scalar = Hardware::new(hot_cfg(mode), 0xA1 ^ u64::from(width));
            let mut batched = scalar.clone();

            // The batched contract requires inputs that fit in `width` bits,
            // which the wrapping arithmetic above this layer always produces.
            let mask = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
            let src: Vec<u64> =
                (0..4096u64).map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95) & mask).collect();
            let mut a = src.clone();
            for w in &mut a {
                *w = scalar.approx_int_result(*w, width);
            }
            let mut b = src.clone();
            batched.approx_int_result_slice(&mut b, width);
            assert_eq!(a, b, "int slice diverged: mode {mode:?} width {width}");
            assert_converged(&mut scalar, &mut batched);
        }
    }
}

#[test]
fn fp_result_slices_match_scalar_loops_in_every_error_mode() {
    for mode in ErrorMode::ALL {
        let mut scalar = Hardware::new(hot_cfg(mode), 0xF9);
        let mut batched = scalar.clone();

        let src64: Vec<f64> = (0..4096).map(|i| (i as f64).sin() * 1e3).collect();
        let mut a = src64.clone();
        for x in &mut a {
            *x = scalar.approx_f64_result(*x);
        }
        let mut b = src64.clone();
        batched.approx_f64_result_slice(&mut b);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "f64 slice diverged: mode {mode:?}");

        let src32: Vec<f32> = (0..4096).map(|i| (i as f32).cos() * 1e2).collect();
        let mut a = src32.clone();
        for x in &mut a {
            *x = scalar.approx_f32_result(*x);
        }
        let mut b = src32.clone();
        batched.approx_f32_result_slice(&mut b);
        let bits32 = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits32(&a), bits32(&b), "f32 slice diverged: mode {mode:?}");

        assert_converged(&mut scalar, &mut batched);
    }
}

#[test]
fn operand_slices_match_scalar_truncation_at_every_level() {
    for level in Level::ALL {
        let hw = Hardware::new(HwConfig::for_level(level), 7);
        let src64: Vec<f64> = (0..257)
            .map(|i| (i as f64).exp_m1() / 97.0)
            .chain([f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -0.0])
            .collect();
        let mut batched = src64.clone();
        hw.approx_f64_operand_slice(&mut batched);
        for (x, y) in src64.iter().zip(&batched) {
            assert_eq!(hw.approx_f64_operand(*x).to_bits(), y.to_bits());
        }
        let src32: Vec<f32> = src64.iter().map(|x| *x as f32).collect();
        let mut batched = src32.clone();
        hw.approx_f32_operand_slice(&mut batched);
        for (x, y) in src32.iter().zip(&batched) {
            assert_eq!(hw.approx_f32_operand(*x).to_bits(), y.to_bits());
        }
    }
}

#[test]
fn dram_slices_match_scalar_loops_including_decay_times() {
    // Slice reads reconstruct per-element refresh ticks, so the decay
    // exposure seen by each element must equal the scalar loop's.
    let mut scalar = Hardware::new(hot_cfg(ErrorMode::SingleBitFlip), 0xD2);
    let mut batched = scalar.clone();
    let len = 512usize;
    let mut arr_a = DramArray::new(&mut scalar, len, 64, true);
    let mut arr_b = DramArray::new(&mut batched, len, 64, true);

    let vals: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0xABCD_EF01)).collect();
    for (i, &v) in vals.iter().enumerate() {
        arr_a.write(&mut scalar, i, v);
    }
    arr_b.write_slice(&mut batched, 0, &vals);

    // Let decay exposure accumulate identically, then read everything back.
    for _ in 0..10_000u64 {
        scalar.precise_op(OpKind::Int);
        batched.precise_op(OpKind::Int);
    }
    let mut a = vec![0u64; len];
    for (i, o) in a.iter_mut().enumerate() {
        *o = arr_a.read(&mut scalar, i);
    }
    let mut b = vec![0u64; len];
    arr_b.read_slice(&mut batched, 0, &mut b);
    assert_eq!(a, b, "dram read slice diverged");

    // Second pass: refresh times written by the slice ops must line up too.
    let mut a2 = vec![0u64; len];
    for (i, o) in a2.iter_mut().enumerate() {
        *o = arr_a.read(&mut scalar, i);
    }
    let mut b2 = vec![0u64; len];
    arr_b.read_slice(&mut batched, 0, &mut b2);
    assert_eq!(a2, b2, "dram refresh metadata diverged");

    arr_a.retire(&mut scalar);
    arr_b.retire(&mut batched);
    assert_converged(&mut scalar, &mut batched);
}

#[test]
fn batched_sram_flip_rate_is_binomial_at_aggressive() {
    // 5-sigma re-pin of the PR 3 statistical band, over the slice path.
    let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 0xBEEF);
    let accesses = 100_000usize;
    let mut flips = 0u64;
    let mut buf = vec![0u64; 2048];
    let mut done = 0usize;
    while done < accesses {
        let n = buf.len().min(accesses - done);
        buf[..n].fill(0);
        hw.sram_read_slice(&mut buf[..n], 64, true);
        flips += buf[..n].iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        buf[..n].fill(0);
        hw.sram_write_slice(&mut buf[..n], 64, true);
        flips += buf[..n].iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        done += n;
    }
    let trials = accesses as f64 * 128.0;
    let p = 1e-3;
    let sigma = (trials * p * (1.0 - p)).sqrt();
    assert!(
        (flips as f64 - trials * p).abs() < 5.0 * sigma,
        "batched flips {flips} vs {} +/- {}",
        trials * p,
        5.0 * sigma
    );
}

#[test]
fn batched_fu_timing_rate_matches_bernoulli_at_aggressive() {
    // Timing errors fire per-op at p = 1e-2 (Aggressive). Count faulted
    // elements through the slice path and hold them to the 5-sigma band.
    let cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(ErrorMode::SingleBitFlip);
    let mut hw = Hardware::new(cfg, 0x51);
    let ops = 400_000usize;
    let mut faults = 0u64;
    let mut buf = vec![0u64; 4096];
    let mut done = 0usize;
    while done < ops {
        let n = buf.len().min(ops - done);
        buf[..n].fill(0);
        hw.approx_int_result_slice(&mut buf[..n], 64);
        faults += buf[..n].iter().filter(|w| **w != 0).count() as u64;
        done += n;
    }
    let p = 1e-2;
    let expected = ops as f64 * p;
    let sigma = (ops as f64 * p * (1.0 - p)).sqrt();
    assert!(
        (faults as f64 - expected).abs() < 5.0 * sigma,
        "batched timing faults {faults} vs {expected} +/- {}",
        5.0 * sigma
    );
    assert_eq!(hw.stats().int_approx_ops, ops as u64);
}

#[test]
fn telemetry_does_not_perturb_the_batched_fault_prng() {
    // Mirror of the scalar guarantee: enabling the trace ring and the
    // event log must leave every batched observed value unchanged.
    let run = |telemetry: bool| -> (Vec<u64>, Vec<u64>) {
        let mut hw = Hardware::new(hot_cfg(ErrorMode::RandomValue), 0x7E1E);
        if telemetry {
            hw.enable_trace(512);
            hw.enable_event_log();
        }
        let mut sram: Vec<u64> = (0..2048u64).collect();
        hw.sram_read_slice(&mut sram, 64, true);
        hw.sram_write_slice(&mut sram, 32, true);
        let mut ints: Vec<u64> = (0..2048u64).collect();
        hw.approx_int_result_slice(&mut ints, 64);
        let mut fs: Vec<f64> = (0..2048).map(|i| i as f64 * 0.5).collect();
        hw.approx_f64_result_slice(&mut fs);
        ints.extend(fs.iter().map(|x| x.to_bits()));
        (sram, ints)
    };
    assert_eq!(run(false), run(true));
}

#[test]
fn cloned_hardware_replays_batched_streams_bit_identically() {
    let mut a = Hardware::new(hot_cfg(ErrorMode::LastValue), 0xC0FE);
    let mut warm: Vec<u64> = (0..1000u64).collect();
    a.approx_int_result_slice(&mut warm, 64);
    a.sram_read_slice(&mut warm, 32, true);
    let mut b = a.clone();

    let src: Vec<u64> = (0..4096u64).map(|i| i.wrapping_mul(31)).collect();
    let mut va = src.clone();
    let mut vb = src.clone();
    a.approx_int_result_slice(&mut va, 64);
    b.approx_int_result_slice(&mut vb, 64);
    assert_eq!(va, vb);
    a.sram_write_slice(&mut va, 64, true);
    b.sram_write_slice(&mut vb, 64, true);
    assert_eq!(va, vb);
    let mut fa: Vec<f64> = src.iter().map(|&x| x as f64).collect();
    let mut fb = fa.clone();
    a.approx_f64_result_slice(&mut fa);
    b.approx_f64_result_slice(&mut fb);
    assert_eq!(
        fa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        fb.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    assert_converged(&mut a, &mut b);
}
