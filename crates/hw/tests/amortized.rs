//! Statistical equivalence of the amortized fault scheduler.
//!
//! The cross-access countdowns ([`enerj_hw::fault::GeomCountdown`],
//! [`enerj_hw::fault::HazardCountdown`]) must inject faults at exactly the
//! per-bit Bernoulli rate that the per-access sampler
//! ([`enerj_hw::fault::flip_bits`]) realizes — the optimization may change
//! *which* seeded sample we observe, never the distribution. These tests run
//! both samplers over the same trial grid (the Table 2 probabilities named
//! in the scheduler's design note, at every access width the embedded API
//! uses) and require both counts to sit within a 5-sigma binomial band, and
//! within 5 sigma of each other.
//!
//! All seeds are fixed, so the tests are deterministic; the 5-sigma bands
//! describe how far a *correct* sampler could possibly sit from the mean.

use enerj_hw::config::{ErrorMode, HwConfig, Level};
use enerj_hw::fault::{self, GeomCountdown, HazardCountdown};
use enerj_hw::stats::OpKind;
use enerj_hw::Hardware;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Total flips from the per-access sampler: `accesses` independent calls.
fn per_access_flips(p: f64, width: u32, accesses: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flips = 0u64;
    for _ in 0..accesses {
        flips += u64::from(fault::flip_bits(0, width, p, &mut rng).count_ones());
    }
    flips
}

/// Total flips from the amortized countdown over the same trial count.
fn amortized_flips(p: f64, width: u32, accesses: u64, seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cd = GeomCountdown::new(p, &mut rng);
    let mut flips = 0u64;
    for _ in 0..accesses {
        if !cd.pass(width) {
            flips += u64::from(cd.flip_bits(0, width, &mut rng).count_ones());
        }
    }
    flips
}

#[test]
fn countdown_matches_per_access_sampler_across_the_table2_grid() {
    // (probability, accesses): Aggressive SRAM (1e-3), Medium SRAM write
    // (10^-4.94) and Mild DRAM-rate-magnitude (1e-9), per the satellite
    // spec. Access counts keep expected flips high enough for a meaningful
    // band at the two live probabilities.
    let grid: [(f64, u64); 3] = [
        (1e-3, 200_000),
        (1.148_153_621_5e-5, 2_000_000), // 10^-4.94
        (1e-9, 500_000),
    ];
    for (p, accesses) in grid {
        for width in [8u32, 16, 32, 64] {
            let trials = accesses as f64 * f64::from(width);
            let expected = trials * p;
            let sigma = (trials * p * (1.0 - p)).sqrt();
            // Distinct seeds per cell; also distinct between samplers so
            // the comparison is between independent correct samples.
            let seed = 0xA5A5_0000 ^ (p.to_bits().rotate_left(width));
            let a = per_access_flips(p, width, accesses, seed) as f64;
            let b = amortized_flips(p, width, accesses, seed ^ 1) as f64;
            if expected < 1.0 {
                // p = 1e-9: both samplers should be virtually silent.
                assert!(a <= 2.0 && b <= 2.0, "p={p} width={width}: a={a} b={b}");
                continue;
            }
            assert!(
                (a - expected).abs() < 5.0 * sigma,
                "per-access sampler off at p={p} width={width}: {a} vs {expected} +/- {}",
                5.0 * sigma
            );
            assert!(
                (b - expected).abs() < 5.0 * sigma,
                "amortized sampler off at p={p} width={width}: {b} vs {expected} +/- {}",
                5.0 * sigma
            );
            // Two independent binomial samples differ by N(0, 2*var).
            let pair_sigma = (2.0 * trials * p * (1.0 - p)).sqrt();
            assert!(
                (a - b).abs() < 5.0 * pair_sigma,
                "samplers disagree at p={p} width={width}: {a} vs {b} +/- {}",
                5.0 * pair_sigma
            );
        }
    }
}

#[test]
fn per_op_countdown_matches_bernoulli_fu_rates() {
    // The FU timing streams consume one trial per operation. Check the
    // amortized `fire` against a per-op `gen_bool` at the Medium and
    // Aggressive Table 2 probabilities.
    for (p, ops) in [(1e-2f64, 400_000u64), (1e-4f64, 4_000_000u64)] {
        let mut rng = StdRng::seed_from_u64(0xF1BE ^ p.to_bits());
        let baseline = (0..ops).filter(|_| rng.gen_bool(p)).count() as f64;
        let mut rng = StdRng::seed_from_u64(0xF1BE ^ p.to_bits() ^ 1);
        let mut cd = GeomCountdown::new(p, &mut rng);
        let amortized = (0..ops).filter(|_| cd.fire(&mut rng)).count() as f64;
        let expected = ops as f64 * p;
        let sigma = (ops as f64 * p * (1.0 - p)).sqrt();
        assert!((baseline - expected).abs() < 5.0 * sigma, "gen_bool off at p={p}");
        assert!(
            (amortized - expected).abs() < 5.0 * sigma,
            "fire() off at p={p}: {amortized} vs {expected} +/- {}",
            5.0 * sigma
        );
        assert!((amortized - baseline).abs() < 5.0 * (2.0f64).sqrt() * sigma);
    }
}

#[test]
fn hazard_countdown_matches_decay_probability_schedule() {
    // DRAM exposes the countdown to a *varying* per-access probability.
    // Replay a realistic refresh schedule (gaps cycling through 1..=5 ms at
    // the Aggressive decay rate) through both samplers.
    let rate = 1e-3; // Aggressive dram_flip_per_second
    let gaps_s: [f64; 5] = [1e-3, 2e-3, 3e-3, 4e-3, 5e-3];
    let accesses = 3_000_000u64;
    let width = 32u32;

    let mut expected = 0.0f64;
    let mut variance = 0.0f64;
    for &dt in &gaps_s {
        let p = fault::decay_probability(rate, dt);
        let n = (accesses as f64 / gaps_s.len() as f64) * f64::from(width);
        expected += n * p;
        variance += n * p * (1.0 - p);
    }
    let sigma = variance.sqrt();

    let mut rng = StdRng::seed_from_u64(0xD8A3);
    let mut baseline = 0u64;
    for i in 0..accesses {
        let p = fault::decay_probability(rate, gaps_s[(i % 5) as usize]);
        baseline += u64::from(fault::flip_bits(0, width, p, &mut rng).count_ones());
    }

    let mut rng = StdRng::seed_from_u64(0xD8A4);
    let mut cd = HazardCountdown::new(&mut rng);
    let mut amortized = 0u64;
    for i in 0..accesses {
        let h = fault::hazard(fault::decay_probability(rate, gaps_s[(i % 5) as usize]));
        if !cd.pass(f64::from(width) * h) {
            amortized += u64::from(cd.flip_bits(0, width, h, &mut rng).count_ones());
        }
    }

    let (a, b) = (baseline as f64, amortized as f64);
    assert!((a - expected).abs() < 5.0 * sigma, "baseline {a} vs {expected} +/- {}", 5.0 * sigma);
    assert!((b - expected).abs() < 5.0 * sigma, "amortized {b} vs {expected} +/- {}", 5.0 * sigma);
}

#[test]
fn hardware_sram_flip_rate_is_binomial_at_aggressive() {
    // End-to-end: the assembled `Hardware` hot path (countdowns + pending
    // bit-quanta accounting) still injects at the Table 2 rate.
    let mut hw = Hardware::new(HwConfig::for_level(Level::Aggressive), 0xBEEF);
    let accesses = 100_000u64;
    let mut flips = 0u64;
    for _ in 0..accesses {
        flips += u64::from(hw.sram_read(0, 64, true).count_ones());
        flips += u64::from(hw.sram_write(0, 64, true).count_ones());
    }
    let trials = accesses as f64 * 128.0;
    let p = 1e-3;
    let sigma = (trials * p * (1.0 - p)).sqrt();
    assert!(
        (flips as f64 - trials * p).abs() < 5.0 * sigma,
        "hardware flips {flips} vs {} +/- {}",
        trials * p,
        5.0 * sigma
    );
    // The two SRAM directions fault on independent streams; both recorded.
    let counters = hw.fault_counters();
    assert!(counters.count(enerj_hw::trace::FaultKind::SramReadUpset).injections > 0);
    assert!(counters.count(enerj_hw::trace::FaultKind::SramWriteFailure).injections > 0);
}

#[test]
fn cloned_hardware_replays_bit_identically_over_the_new_stream() {
    // Bit-identity guarantee, re-pinned over the amortized stream: cloning
    // mid-run (countdowns included) continues identically.
    let cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(ErrorMode::RandomValue);
    let mut a = Hardware::new(cfg, 1234);
    for i in 0..5_000u64 {
        let _ = a.approx_int_result(i, 64);
        let _ = a.sram_read(i, 32, true);
        let _ = a.approx_f64_result(i as f64);
        let _ = a.approx_cmp_result(i % 3 == 0, OpKind::Int);
    }
    let mut b = a.clone();
    for i in 0..5_000u64 {
        assert_eq!(a.approx_int_result(i, 64), b.approx_int_result(i, 64));
        assert_eq!(a.sram_read(i, 32, true), b.sram_read(i, 32, true));
        assert_eq!(a.sram_write(i, 16, true), b.sram_write(i, 16, true));
        assert_eq!(
            a.approx_f64_result(i as f64).to_bits(),
            b.approx_f64_result(i as f64).to_bits()
        );
    }
    assert_eq!(a.stats(), b.stats());
    assert_eq!(a.fault_counters(), b.fault_counters());
}
