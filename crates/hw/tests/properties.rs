//! In-crate property tests for the hardware substrate.

use enerj_hw::config::{ApproxParams, ErrorMode, HwConfig, Level, StrategyMask};
use enerj_hw::energy::normalized_energy_with_split;
use enerj_hw::layout::{layout_array, layout_object, FieldSpec};
use enerj_hw::stats::{MemKind, OpKind, Stats};
use enerj_hw::{fault, DramArray, Hardware};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// The geometric-skip flipper and a naive per-bit Bernoulli flipper
    /// agree in distribution; check the first moment over many trials.
    #[test]
    fn flip_bits_first_moment(seed: u64, p in 0.001f64..0.2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let trials = 4000u64;
        let mut flips = 0u64;
        for _ in 0..trials {
            flips += u64::from(fault::flip_bits(0, 64, p, &mut rng).count_ones());
        }
        let expected = trials as f64 * 64.0 * p;
        let sigma = (trials as f64 * 64.0 * p * (1.0 - p)).sqrt();
        prop_assert!(
            ((flips as f64) - expected).abs() < 6.0 * sigma,
            "flips {flips}, expected {expected}"
        );
    }

    /// flip_one_bit always changes exactly one bit inside the width.
    #[test]
    fn flip_one_bit_invariant(bits: u64, width in 1u32..=64, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let out = fault::flip_one_bit(bits, width, &mut rng);
        let diff = bits ^ out;
        prop_assert_eq!(diff.count_ones(), 1);
        prop_assert_eq!(diff & !fault::low_mask(width), 0);
    }

    /// Decay probability is monotone in time and rate, bounded by 0.5.
    #[test]
    fn decay_probability_properties(
        rate in 0.0f64..10.0,
        t1 in 0.0f64..100.0,
        dt in 0.0f64..100.0,
    ) {
        let p1 = fault::decay_probability(rate, t1);
        let p2 = fault::decay_probability(rate, t1 + dt);
        prop_assert!((0.0..=0.5).contains(&p1));
        prop_assert!(p2 >= p1 - 1e-15);
    }

    /// Array layout: byte totals are conserved and header stays precise.
    #[test]
    fn array_layout_conservation(
        elem in prop::sample::select(vec![1usize, 2, 4, 8]),
        len in 0usize..4096,
        approx: bool,
    ) {
        let l = layout_array(elem, len, approx, 64, 16);
        prop_assert_eq!(l.total_bytes(), 16 + elem * len);
        prop_assert!(l.precise_bytes >= 16);
        if !approx {
            prop_assert_eq!(l.approx_bytes_on_approx_lines, 0);
        }
    }

    /// Object layout puts at least the header on precise lines and never
    /// fabricates approximate bytes.
    #[test]
    fn object_layout_sanity(
        precise_size in 0usize..256,
        approx_size in 0usize..2048,
        line in prop::sample::select(vec![16usize, 32, 64, 128]),
    ) {
        let fields = [
            FieldSpec::new("p", precise_size, false),
            FieldSpec::new("a", approx_size, true),
        ];
        let l = layout_object(&fields, line, 8);
        prop_assert!(l.approx_bytes_on_approx_lines <= approx_size);
        prop_assert_eq!(
            l.approx_bytes_on_precise_lines + l.approx_bytes_on_approx_lines,
            approx_size
        );
    }

    /// `DramArray::first_approx_elem` agrees with a first-principles scan of
    /// the cache-line layout: an element has approximate storage exactly
    /// when every one of its bytes lands at or beyond the first line
    /// boundary after the header (a straddling element stays precise).
    #[test]
    fn first_approx_elem_matches_layout_scan(
        width in prop::sample::select(vec![8u32, 16, 24, 32, 40, 48, 56, 64]),
        len in 0usize..600,
        approx: bool,
    ) {
        use enerj_hw::layout::{ARRAY_HEADER_BYTES, DEFAULT_LINE_SIZE};
        let mut hw = Hardware::new(HwConfig::for_level(Level::Medium), 1);
        let arr = DramArray::new(&mut hw, len, width, approx);
        let elem = (width / 8) as usize;
        let expected = if approx {
            let boundary = ARRAY_HEADER_BYTES.div_ceil(DEFAULT_LINE_SIZE) * DEFAULT_LINE_SIZE;
            (0..len)
                .find(|&i| ARRAY_HEADER_BYTES + i * elem >= boundary)
                .unwrap_or(len)
        } else {
            len
        };
        prop_assert_eq!(arr.first_approx_elem(), expected);
    }

    /// The `div_ceil` shortcut `DramArray` uses to locate the first
    /// approximate element agrees with the scan at any line size and header,
    /// not just the defaults.
    #[test]
    fn first_approx_formula_matches_scan_at_any_geometry(
        elem in 1usize..=8,
        len in 0usize..512,
        line in prop::sample::select(vec![16usize, 32, 64, 128, 256]),
        header in prop::sample::select(vec![0usize, 8, 16, 24, 64]),
    ) {
        let l = layout_array(elem, len, true, line, header);
        let formula = l.approx_bytes_on_precise_lines.div_ceil(elem);
        let boundary = header.div_ceil(line) * line;
        let scan = (0..len).find(|&i| header + i * elem >= boundary).unwrap_or(len);
        prop_assert_eq!(formula, scan);
    }

    /// Elements below `first_approx_elem` share the header's precise lines:
    /// they survive arbitrary idle time under an extreme decay rate without
    /// a single fault being injected.
    #[test]
    fn elements_before_first_approx_never_decay(
        width in prop::sample::select(vec![8u32, 16, 32, 64]),
        len in 1usize..64,
        seed: u64,
    ) {
        let mut cfg = HwConfig::for_level(Level::Aggressive);
        cfg.params.dram_flip_per_second = 1e9;
        let mut hw = Hardware::new(cfg, seed);
        let mut arr = DramArray::new(&mut hw, len, width, true);
        let mask = fault::low_mask(width);
        for i in 0..len.min(arr.first_approx_elem()) {
            arr.write(&mut hw, i, mask);
        }
        for _ in 0..2_000 {
            hw.precise_op(OpKind::Int);
        }
        for i in 0..len.min(arr.first_approx_elem()) {
            prop_assert_eq!(arr.read(&mut hw, i), mask, "precise-line element {} decayed", i);
        }
        prop_assert_eq!(hw.stats().faults_injected, 0);
        prop_assert!(hw.fault_counters().is_empty());
    }

    /// A masked DramArray is an exact store for arbitrary data and widths.
    #[test]
    fn masked_dram_array_roundtrips(
        data in prop::collection::vec(any::<u64>(), 1..64),
        width in prop::sample::select(vec![8u32, 16, 32, 64]),
        level in prop::sample::select(vec![Level::Mild, Level::Medium, Level::Aggressive]),
    ) {
        let cfg = HwConfig::for_level(level).with_mask(StrategyMask::NONE);
        let mut hw = Hardware::new(cfg, 9);
        let mut arr = DramArray::new(&mut hw, data.len(), width, true);
        for (i, &x) in data.iter().enumerate() {
            arr.write(&mut hw, i, x);
        }
        for (i, &x) in data.iter().enumerate() {
            prop_assert_eq!(arr.read(&mut hw, i), x & fault::low_mask(width));
        }
        prop_assert_eq!(hw.stats().faults_injected, 0);
    }

    /// The energy model is monotone in the approximate fraction of work:
    /// more approximate ops (same total) never cost more energy.
    #[test]
    fn energy_monotone_in_approx_fraction(
        total in 1u64..100_000,
        split1 in 0.0f64..=1.0,
        split2 in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if split1 <= split2 { (split1, split2) } else { (split2, split1) };
        let mk = |frac: f64| {
            let mut s = Stats::new();
            s.fp_approx_ops = (total as f64 * frac) as u64;
            s.fp_precise_ops = total - s.fp_approx_ops;
            s.record_storage(MemKind::Sram, true, 1.0, 1.0);
            s
        };
        let e_lo = normalized_energy_with_split(&mk(lo), &ApproxParams::MEDIUM, 0.45).total;
        let e_hi = normalized_energy_with_split(&mk(hi), &ApproxParams::MEDIUM, 0.45).total;
        prop_assert!(e_hi <= e_lo + 1e-12, "more approx work must not cost more");
    }

    /// Comparison results under every error mode are valid booleans and
    /// exact when the fault probability is zero.
    #[test]
    fn cmp_results_sane(raw: bool, seed: u64, mode in prop::sample::select(ErrorMode::ALL.to_vec())) {
        let mut cfg = HwConfig::for_level(Level::Aggressive).with_error_mode(mode);
        cfg.params.timing_error_prob = 0.0;
        let mut hw = Hardware::new(cfg, seed);
        prop_assert_eq!(hw.approx_cmp_result(raw, OpKind::Int), raw);
        prop_assert_eq!(hw.approx_cmp_result(raw, OpKind::Fp), raw);
    }
}
