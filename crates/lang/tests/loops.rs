//! Tests for `while` loops and mutable locals, and the FEnerJ SOR kernel
//! cross-validated against a plain-Rust model of the same algorithm.

use enerj_lang::compile;
use enerj_lang::interp::{run, run_with_fuel, ExecMode, Value};
use enerj_lang::noninterference::check_non_interference;
use std::cell::RefCell;
use std::rc::Rc;

use enerj_hw::config::{HwConfig, Level, StrategyMask};
use enerj_hw::Hardware;

fn eval(src: &str) -> Value {
    let tp = compile(src).expect("well-typed");
    run(&tp, ExecMode::Reliable).expect("evaluates").value
}

#[test]
fn while_loops_iterate_and_yield_zero() {
    let src = "
        main {
            let i = 0 in
            let acc = 0 in
            let unit = while (i < 10) { acc := acc + i; i := i + 1; 0 } in
            acc * 1000 + unit
        }
    ";
    assert_eq!(eval(src), Value::Int(45_000));
}

#[test]
fn variable_assignment_respects_declared_types() {
    // A variable bound from approximate data keeps its approximate type;
    // precise values may be assigned into it (subtyping)...
    compile(
        "class C extends Object { approx int a; }
         main {
             let c = new C() in
             let x = c.a in
             x := 3;
             0
         }",
    )
    .expect("precise into approx is subtyping");
    // ...but not the other way around.
    let err = compile(
        "class C extends Object { approx int a; }
         main {
             let c = new C() in
             let x = 3 in
             x := c.a;
             0
         }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("not a subtype"), "{err}");
}

#[test]
fn approximate_loop_conditions_are_rejected() {
    let err = compile(
        "class C extends Object { approx int n; }
         main {
             let c = new C() in
             while (c.n > 0) { 0 }
         }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("precise int"), "{err}");
}

#[test]
fn nonterminating_loops_run_out_of_fuel() {
    let tp = compile("main { while (1 == 1) { 0 } }").expect("well-typed");
    let err = run_with_fuel(&tp, ExecMode::Reliable, 10_000).unwrap_err();
    assert_eq!(err, enerj_lang::error::EvalError::OutOfFuel);
}

fn load_sor() -> String {
    let path = format!("{}/programs/sor.fej", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).expect("sor.fej exists")
}

/// Plain-Rust model of sor.fej, bit-for-bit.
fn sor_model(n: usize, sweeps: usize) -> f64 {
    let mut g = vec![0.0f64; n * n];
    for r in 1..n - 1 {
        for c in 1..n - 1 {
            g[r * n + c] = ((r * 37 + c * 17) % 100) as f64 / 100.0;
        }
    }
    for _ in 0..sweeps {
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                let i = r * n + c;
                g[i] = 0.3125 * (g[i - n] + g[i + n] + g[i - 1] + g[i + 1]) - 0.25 * g[i];
            }
        }
    }
    g.iter().sum()
}

#[test]
fn fenerj_sor_matches_the_rust_model_exactly() {
    let tp = compile(&load_sor()).expect("well-typed");
    // Masked hardware: approximate ops run exactly but are accounted.
    let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
    let hw = Rc::new(RefCell::new(Hardware::new(cfg, 0)));
    let out = run(&tp, ExecMode::Faulty(Rc::clone(&hw))).expect("runs");
    let expected = sor_model(12, 8);
    let Value::Float(got) = out.value else { panic!("float result") };
    assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    // The kernel's approximate work was charged to the imprecise units.
    let stats = hw.borrow().stats();
    assert!(stats.fp_approx_ops > 1_000, "stencil math is approximate FP");
    assert!(stats.int_precise_ops > 1_000, "loop control is precise int");
}

#[test]
fn fenerj_sor_degrades_gracefully_under_faults() {
    let tp = compile(&load_sor()).expect("well-typed");
    let expected = sor_model(12, 8);
    for seed in 0..3 {
        let hw = Rc::new(RefCell::new(Hardware::new(HwConfig::for_level(Level::Mild), seed)));
        let out = run(&tp, ExecMode::Faulty(hw)).expect("never crashes");
        let Value::Float(got) = out.value else { panic!("float result") };
        // Mild faults are rare; the checksum is usually spot-on.
        assert!((got - expected).abs() < 1.0 || got.is_nan(), "seed {seed}: {got} vs {expected}");
    }
}

#[test]
fn loop_heavy_program_satisfies_non_interference() {
    let src = "
        class W extends Object {
            approx float junk;
            int exact;
        }
        main {
            let w = new W() in
            let i = 0 in
            while (i < 100) {
                w.junk := w.junk * 1.5 + 2.0;
                w.exact := w.exact + 3;
                i := i + 1;
                0
            };
            w.exact
        }
    ";
    let tp = compile(src).expect("well-typed");
    check_non_interference(&tp, 0..25).expect("non-interference");
    assert_eq!(run(&tp, ExecMode::Reliable).unwrap().value, Value::Int(300));
}

/// Plain-Rust model of wht.fej, bit-for-bit.
fn wht_model(n: usize) -> f64 {
    let mut x: Vec<f64> = (0..n).map(|i| ((i * 13 + 5) % 32) as f64 / 32.0 - 0.5).collect();
    let mut len = 1;
    while len < n {
        let mut base = 0;
        while base < n {
            for i in base..base + len {
                let (a, b) = (x[i], x[i + len]);
                x[i] = a + b;
                x[i + len] = a - b;
            }
            base += 2 * len;
        }
        len *= 2;
    }
    x.iter().enumerate().map(|(i, &v)| v * ((i % 5) as f64 + 1.0)).sum()
}

#[test]
fn fenerj_wht_matches_the_rust_model_exactly() {
    let path = format!("{}/programs/wht.fej", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).expect("wht.fej exists");
    let tp = compile(&src).expect("well-typed");
    let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
    let hw = Rc::new(RefCell::new(Hardware::new(cfg, 0)));
    let out = run(&tp, ExecMode::Faulty(Rc::clone(&hw))).expect("runs");
    let Value::Float(got) = out.value else { panic!("float result") };
    let expected = wht_model(32);
    assert!((got - expected).abs() < 1e-12, "{got} vs {expected}");
    assert!(hw.borrow().stats().fp_approx_ops > 100, "butterflies are approximate");
}

#[test]
fn fenerj_wht_satisfies_non_interference_without_the_checksum() {
    // Strip the endorsing checksum: the transform alone is endorsement-
    // free and must be chaos-immune in its precise observables.
    let src = "
        class Wht extends Object {
            approx float[] x;
            int n;
            int init(int n) {
                this.n := n;
                this.x := new approx float[n];
                0
            }
            int transform() {
                let len = 1 in
                while (len < this.n) {
                    let base = 0 in
                    while (base < this.n) {
                        let i = base in
                        while (i < base + len) {
                            let a = this.x[i] in
                            let b = this.x[i + len] in
                            this.x[i] := a + b;
                            this.x[i + len] := a - b;
                            i := i + 1;
                            0
                        };
                        base := base + 2 * len;
                        0
                    };
                    len := 2 * len;
                    0
                }
            }
        }
        main {
            let w = new Wht() in
            w.init(16);
            w.transform();
            w.n
        }
    ";
    let tp = compile(src).expect("well-typed");
    check_non_interference(&tp, 0..20).expect("non-interference");
}
