//! Integration tests driving the `fenerjc` binary end to end.

use std::process::Command;

fn fenerjc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fenerjc"))
}

fn program(name: &str) -> String {
    format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_accepts_well_typed_programs() {
    for name in ["mean.fej", "isolated.fej", "checksum.fej", "sor.fej"] {
        let out = fenerjc().args(["check", &program(name)]).output().expect("spawn");
        assert!(out.status.success(), "{name}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("OK"), "{name}: {stdout}");
    }
}

#[test]
fn check_rejects_illegal_flow_with_location() {
    let out = fenerjc().args(["check", &program("illegal_flow.fej")]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a subtype"), "{stderr}");
    assert!(stderr.contains("illegal_flow.fej:"), "diagnostic has file:line:col: {stderr}");
}

#[test]
fn run_prints_the_result() {
    let out = fenerjc().args(["run", &program("checksum.fej")]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected: i64 = (0..32).map(|i: i64| (i * 13 + 7) % 256).sum();
    assert_eq!(stdout.trim(), expected.to_string());
}

#[test]
fn run_with_level_injects_faults_deterministically() {
    let run = || {
        let out = fenerjc()
            .args(["run", &program("sor.fej"), "--level", "aggressive", "--seed", "9"])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).trim().to_owned()
    };
    assert_eq!(run(), run(), "same seed, same faulty output");
}

#[test]
fn chaos_verifies_non_interference() {
    let out = fenerjc()
        .args(["chaos", &program("isolated.fej"), "--seeds", "20"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("non-interference holds"), "{stdout}");
}

#[test]
fn chaos_refuses_endorsing_programs() {
    let out = fenerjc().args(["chaos", &program("checksum.fej")]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("endorse"), "{stderr}");
}

#[test]
fn print_emits_reparseable_source() {
    let out = fenerjc().args(["print", &program("mean.fej")]).output().expect("spawn");
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout).into_owned();
    enerj_lang::compile(&printed).expect("printed program is well-typed");
}

#[test]
fn run_trace_reports_fault_counters() {
    let out = fenerjc()
        .args(["run", &program("sor.fej"), "--level", "aggressive", "--seed", "3", "--trace"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("fault counters:"), "{stderr}");
    assert!(stderr.contains("sram-read-upset"), "aggressive SOR hits SRAM reads: {stderr}");
}

#[test]
fn run_fault_log_writes_ndjson_and_leaves_output_unchanged() {
    let dir = std::env::temp_dir();
    let log_path = dir.join("fenerjc_cli_run_fault_log.ndjson");
    let log_path = log_path.to_str().expect("utf-8 temp path");
    let base = ["run", &program("sor.fej"), "--level", "aggressive", "--seed", "9"];

    let plain = fenerjc().args(base).output().expect("spawn");
    let logged = fenerjc()
        .args(base.iter().copied().chain(["--fault-log", log_path]))
        .output()
        .expect("spawn");
    assert!(plain.status.success() && logged.status.success());
    assert_eq!(plain.stdout, logged.stdout, "telemetry must not perturb the fault stream");

    let log = std::fs::read_to_string(log_path).expect("log written");
    std::fs::remove_file(log_path).ok();
    assert!(!log.is_empty(), "aggressive SOR injects faults");
    for line in log.lines() {
        assert!(line.starts_with("{\"time\":"), "NDJSON event line: {line}");
        assert!(line.contains("\"unit\":") && line.contains("\"bits_flipped\":"), "{line}");
    }
}

#[test]
fn run_reliable_trace_notes_the_absence_of_faults() {
    let out = fenerjc().args(["run", &program("checksum.fej"), "--trace"]).output().expect("spawn");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("reliable mode"), "{stderr}");
}

#[test]
fn chaos_trace_reports_per_seed_progress() {
    let out = fenerjc()
        .args(["chaos", &program("isolated.fej"), "--seeds", "3", "--trace"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    for s in 0..3 {
        assert!(stderr.contains(&format!("chaos: seed {s} ")), "{stderr}");
    }
    assert!(String::from_utf8_lossy(&out.stdout).contains("non-interference holds"));
}

#[test]
fn chaos_fault_log_records_per_seed_verdicts() {
    let dir = std::env::temp_dir();
    let log_path = dir.join("fenerjc_cli_chaos_fault_log.ndjson");
    let log_path = log_path.to_str().expect("utf-8 temp path");
    let out = fenerjc()
        .args(["chaos", &program("isolated.fej"), "--seeds", "4", "--fault-log", log_path])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let log = std::fs::read_to_string(log_path).expect("log written");
    std::fs::remove_file(log_path).ok();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 4);
    for (s, line) in lines.iter().enumerate() {
        assert_eq!(*line, format!("{{\"seed\":{s},\"interference\":false}}"));
    }
}

#[test]
fn fault_log_path_is_not_mistaken_for_the_source_file() {
    // The --fault-log value looks like a plausible source path; read_source
    // must skip it and still find the real program.
    let dir = std::env::temp_dir();
    let log_path = dir.join("fenerjc_cli_flagorder.ndjson");
    let log_path = log_path.to_str().expect("utf-8 temp path");
    let out = fenerjc()
        .args(["run", "--fault-log", log_path, &program("checksum.fej")])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_file(log_path).ok();
}

#[test]
fn unknown_commands_and_files_fail_cleanly() {
    let out = fenerjc().args(["frobnicate", "x.fej"]).output().expect("spawn");
    assert!(!out.status.success());
    let out = fenerjc().args(["check", "/nonexistent.fej"]).output().expect("spawn");
    assert!(!out.status.success());
}

// --- Golden output: exact stdout/stderr and exit codes per subcommand. ---

/// Writes `source` to a uniquely named temp file and returns its path.
fn fixture(name: &str, source: &str) -> String {
    let path = std::env::temp_dir().join(format!("fenerjc_golden_{name}.fej"));
    std::fs::write(&path, source).expect("write fixture");
    path.to_str().expect("utf-8 temp path").to_owned()
}

const GOLDEN_OK: &str = "class A {\n    approx int f;\n}\nmain {\n    let o = new A() in\n    (o.f := 3); endorse(o.f) + 4\n}\n";
const GOLDEN_NI: &str = "class Unused { }\nmain {\n    let x = 2 in\n    x * x + 1\n}\n";
const GOLDEN_BAD: &str = "main {\n    if (1.5) { 1 } else { 2 }\n}\n";

#[test]
fn golden_check_reports_class_count_and_main_type() {
    let path = fixture("check_ok", GOLDEN_OK);
    let out = fenerjc().args(["check", &path]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        format!("{path}: OK (1 class(es), main : precise int)\n")
    );
    assert!(out.stderr.is_empty(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

#[test]
fn golden_run_prints_only_the_result_value() {
    let path = fixture("run_ok", GOLDEN_OK);
    let out = fenerjc().args(["run", &path]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), "7\n");
    assert!(out.stderr.is_empty());
}

#[test]
fn golden_chaos_reports_the_adversarial_run_count() {
    let path = fixture("chaos_ok", GOLDEN_NI);
    let out = fenerjc().args(["chaos", &path, "--seeds", "7"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        format!("{path}: non-interference holds over 7 adversarial runs\n")
    );
    assert!(out.stderr.is_empty());
}

#[test]
fn golden_chaos_refuses_endorsing_programs_on_stderr() {
    let path = fixture("chaos_endorse", GOLDEN_OK);
    let out = fenerjc().args(["chaos", &path]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    assert_eq!(
        String::from_utf8_lossy(&out.stderr),
        "fenerjc: program uses endorse; non-interference is not claimed\n"
    );
}

#[test]
fn golden_print_emits_the_canonical_form() {
    let path = fixture("print_ok", GOLDEN_OK);
    let out = fenerjc().args(["print", &path]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        "class A {\n    approx int f;\n}\nmain {\n    let o = new A() in (o.f := 3); endorse(o.f) + 4\n}\n"
    );
    assert!(out.stderr.is_empty());
}

#[test]
fn golden_type_error_has_path_line_col_and_hint() {
    let path = fixture("check_bad", GOLDEN_BAD);
    for cmd in ["check", "run", "chaos"] {
        let out = fenerjc().args([cmd, &path]).output().expect("spawn");
        assert_eq!(out.status.code(), Some(1), "{cmd}");
        assert!(out.stdout.is_empty(), "{cmd} stdout not empty");
        assert_eq!(
            String::from_utf8_lossy(&out.stderr),
            format!(
                "fenerjc: {path}:2:9: type error at byte 15: condition must have type \
                 `precise int`, got `precise float`; wrap it in endorse(...) to accept the risk\n"
            ),
            "{cmd}"
        );
    }
}

/// A precise-only runaway loop: with no op budget it would spin for 10^8
/// iterations; `--max-ops` must cut it off with a diagnostic instead.
const GOLDEN_SPIN: &str = "class L {\n    int spin(int n) {\n        if (n == 0) { 0 } else { this.spin(n - 1) }\n    }\n}\nmain {\n    new L().spin(100000000)\n}\n";

#[test]
fn golden_max_ops_stops_runaway_runs_with_a_diagnostic() {
    let path = fixture("spin_run", GOLDEN_SPIN);
    let diagnostic = "fenerjc: op budget exceeded: execution passed 1000 ops (see --max-ops); \
                      a fault-corrupted loop bound is the usual cause\n";
    // Reliable mode bounds via interpreter fuel; faulty mode additionally
    // arms the hardware watchdog. Both must yield the same diagnostic.
    for extra in [&[][..], &["--level", "aggressive", "--seed", "3"][..]] {
        let out = fenerjc()
            .args(["run", &path, "--max-ops", "1000"].iter().copied().chain(extra.iter().copied()))
            .output()
            .expect("spawn");
        assert_eq!(out.status.code(), Some(1), "args: {extra:?}");
        assert!(out.stdout.is_empty(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
        assert_eq!(String::from_utf8_lossy(&out.stderr), diagnostic, "args: {extra:?}");
    }
}

#[test]
fn golden_max_ops_bounds_chaos_verification_too() {
    let path = fixture("spin_chaos", GOLDEN_SPIN);
    let out = fenerjc()
        .args(["chaos", &path, "--seeds", "2", "--max-ops", "1000"])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty(), "stdout: {}", String::from_utf8_lossy(&out.stdout));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("op budget exceeded"), "{stderr}");
}

#[test]
fn max_ops_leaves_terminating_runs_unchanged() {
    let bounded = fenerjc()
        .args(["run", &program("checksum.fej"), "--max-ops", "1000000"])
        .output()
        .expect("spawn");
    let plain = fenerjc().args(["run", &program("checksum.fej")]).output().expect("spawn");
    assert!(bounded.status.success(), "{}", String::from_utf8_lossy(&bounded.stderr));
    assert_eq!(bounded.stdout, plain.stdout, "a generous budget must not change the result");
}

#[test]
fn golden_missing_file_reports_os_error_with_exit_one() {
    let path = "/nonexistent/enerjc_golden.fej";
    let out = fenerjc().args(["check", path]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.starts_with(&format!("fenerjc: {path}: ")),
        "stderr should prefix the path: {stderr}"
    );
}

#[test]
fn golden_unknown_command_prints_usage() {
    let out = fenerjc().args(["frobnicate", "x.fej"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(1));
    assert!(out.stdout.is_empty());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("fenerjc: unknown command `frobnicate`"), "{stderr}");
    assert!(stderr.contains("usage: fenerjc <check|run|chaos|print>"), "{stderr}");
}
