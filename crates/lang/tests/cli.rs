//! Integration tests driving the `fenerjc` binary end to end.

use std::process::Command;

fn fenerjc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fenerjc"))
}

fn program(name: &str) -> String {
    format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn check_accepts_well_typed_programs() {
    for name in ["mean.fej", "isolated.fej", "checksum.fej", "sor.fej"] {
        let out = fenerjc().args(["check", &program(name)]).output().expect("spawn");
        assert!(out.status.success(), "{name}: {}", String::from_utf8_lossy(&out.stderr));
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("OK"), "{name}: {stdout}");
    }
}

#[test]
fn check_rejects_illegal_flow_with_location() {
    let out = fenerjc().args(["check", &program("illegal_flow.fej")]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a subtype"), "{stderr}");
    assert!(stderr.contains("illegal_flow.fej:"), "diagnostic has file:line:col: {stderr}");
}

#[test]
fn run_prints_the_result() {
    let out = fenerjc().args(["run", &program("checksum.fej")]).output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let expected: i64 = (0..32).map(|i: i64| (i * 13 + 7) % 256).sum();
    assert_eq!(stdout.trim(), expected.to_string());
}

#[test]
fn run_with_level_injects_faults_deterministically() {
    let run = || {
        let out = fenerjc()
            .args(["run", &program("sor.fej"), "--level", "aggressive", "--seed", "9"])
            .output()
            .expect("spawn");
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).trim().to_owned()
    };
    assert_eq!(run(), run(), "same seed, same faulty output");
}

#[test]
fn chaos_verifies_non_interference() {
    let out = fenerjc()
        .args(["chaos", &program("isolated.fej"), "--seeds", "20"])
        .output()
        .expect("spawn");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("non-interference holds"), "{stdout}");
}

#[test]
fn chaos_refuses_endorsing_programs() {
    let out = fenerjc().args(["chaos", &program("checksum.fej")]).output().expect("spawn");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("endorse"), "{stderr}");
}

#[test]
fn print_emits_reparseable_source() {
    let out = fenerjc().args(["print", &program("mean.fej")]).output().expect("spawn");
    assert!(out.status.success());
    let printed = String::from_utf8_lossy(&out.stdout).into_owned();
    enerj_lang::compile(&printed).expect("printed program is well-typed");
}

#[test]
fn unknown_commands_and_files_fail_cleanly() {
    let out = fenerjc().args(["frobnicate", "x.fej"]).output().expect("spawn");
    assert!(!out.status.success());
    let out = fenerjc().args(["check", "/nonexistent.fej"]).output().expect("spawn");
    assert!(!out.status.success());
}
