//! Pretty-printer round-trip coverage: for every shipped `.fej` program
//! (good and bad) and a battery of syntactically thorny inline sources,
//! `parse → print → parse → print` must reach a fixpoint and the
//! typecheck verdict must be identical on both sides of the trip.

use enerj_lang::pretty::program_to_string;
use enerj_lang::{compile, parser, CompileError};

/// Asserts the round-trip property for one source, returning the printed
/// form for further inspection.
#[track_caller]
fn roundtrips(label: &str, source: &str) -> String {
    let program = parser::parse(source).unwrap_or_else(|e| panic!("{label}: does not parse: {e}"));
    let printed = program_to_string(&program);
    let reparsed = parser::parse(&printed)
        .unwrap_or_else(|e| panic!("{label}: printed form does not parse: {e}\n{printed}"));
    let reprinted = program_to_string(&reparsed);
    assert_eq!(printed, reprinted, "{label}: printing is not a fixpoint");

    let verdict = |src: &str| match compile(src) {
        Ok(_) => None,
        Err(CompileError::Type(e)) => Some(e.kind),
        Err(e) => panic!("{label}: unexpected parse failure in verdict: {e}"),
    };
    assert_eq!(
        verdict(source),
        verdict(&printed),
        "{label}: typecheck verdict changed across the round trip\n{printed}"
    );
    printed
}

#[test]
fn every_shipped_program_roundtrips() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let mut paths = Vec::new();
    for dir in [root.join("programs"), root.join("programs/bad"), root.join("../../corpus")] {
        for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|x| x == "fej") {
                paths.push(path);
            }
        }
    }
    paths.sort();
    assert!(paths.len() >= 12, "expected the full program set, found {}", paths.len());
    for path in paths {
        let label = path.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&path).unwrap();
        roundtrips(&label, &source);
    }
}

#[test]
fn array_cast_prints_without_duplicate_qualifier() {
    // The element qualifier lives inside the brackets; a naive printer
    // emits `(precise approx int[])` which does not re-parse.
    let printed = roundtrips(
        "array-cast",
        "class A { } main { let a = new approx int[2] in ((approx int[]) a).length }",
    );
    assert!(printed.contains("(approx int[])"), "cast lost its shape:\n{printed}");
}

#[test]
fn non_postfix_receivers_are_parenthesized() {
    roundtrips(
        "if-receiver",
        "class A { int f; } main { let o = new A() in ((if (1 < 2) { o } else { o }).f := 3) }",
    );
    roundtrips(
        "let-receiver",
        "class A { int m() { 0 } } main { let o = new A() in (let p = o in p).m() }",
    );
    roundtrips("cast-receiver", "class A { int f; } main { let o = new A() in ((precise A) o).f }");
}

#[test]
fn assignments_inside_arithmetic_keep_their_parens() {
    roundtrips(
        "fieldset-operand",
        "class A { int f; int[] g; } main { let o = new A() in \
         (o.g := new int[2]); ((o.g[0] := 2); 0) + (o.f := 5) + o.g[0] }",
    );
}

#[test]
fn endorse_and_length_chains_roundtrip() {
    roundtrips(
        "endorse-chain",
        "class A { approx int f; } main { let o = new A() in endorse(o.f + 1) * 2 }",
    );
    roundtrips(
        "length-of-cast",
        "class A { approx int[] f; } main { let o = new A() in ((approx int[]) o.f).length }",
    );
}

#[test]
fn operator_precedence_survives_printing() {
    for (label, src) in [
        ("mul-add", "main { 1 + 2 * 3 - 4 }"),
        ("paren-add", "main { (1 + 2) * 3 }"),
        ("cmp-nesting", "main { if ((1 < 2) == (3 < 4)) { 1 } else { 0 } }"),
        ("mod-div", "main { 7 % 3 / 2 }"),
        ("unary-ish", "main { 0 - 1 - 2 }"),
    ] {
        roundtrips(label, src);
    }
}
