//! Tests for FEnerJ arrays (paper section 2.6): approximate element types,
//! always-precise lengths, mandatory-precise indices, and always-on bounds
//! checks.

use enerj_lang::compile;
use enerj_lang::error::EvalError;
use enerj_lang::interp::{run, ExecMode, Value};
use enerj_lang::noninterference::check_non_interference;

fn eval(src: &str) -> Value {
    let tp = compile(src).expect("well-typed");
    run(&tp, ExecMode::Reliable).expect("evaluates").value
}

#[test]
fn allocate_fill_and_sum() {
    let src = "
        class Sum extends Object {
            int go(int[] xs, int i, int acc) {
                if (i == xs.length) { acc }
                else { this.go(xs, i + 1, acc + xs[i]) }
            }
            int fill(int[] xs, int i) {
                if (i == xs.length) { 0 }
                else { xs[i] := i * i; this.fill(xs, i + 1) }
            }
        }
        main {
            let xs = new int[10] in
            let s = new Sum() in
            s.fill(xs, 0);
            s.go(xs, 0, 0)
        }
    ";
    assert_eq!(eval(src), Value::Int(285)); // sum of squares 0..9
}

#[test]
fn approximate_elements_flow_like_approx_data() {
    // @Approx float[]: writing precise data in is subtyping; reading out
    // requires an endorsement.
    let src = "
        main {
            let xs = new approx float[4] in
            xs[0] := 1.5;
            xs[1] := 2.5;
            endorse(xs[0] + xs[1])
        }
    ";
    assert_eq!(eval(src), Value::Float(4.0));
}

#[test]
fn approx_element_cannot_reach_precise_code() {
    let err = compile(
        "main {
             let xs = new approx int[4] in
             let p = 0 in
             let q = xs[0] + 1 in
             if (q == 1) { 1 } else { 0 }
         }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("precise int"), "{err}");
}

#[test]
fn approximate_indices_are_rejected() {
    // The paper's rule: approximate integers cannot subscript arrays.
    let err = compile(
        "class C extends Object { approx int i; }
         main {
             let c = new C() in
             let xs = new int[4] in
             xs[c.i]
         }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("indices must be `precise int`"), "{err}");
    // Endorsing the index makes it legal.
    compile(
        "class C extends Object { approx int i; }
         main {
             let c = new C() in
             let xs = new int[4] in
             xs[endorse(c.i)]
         }",
    )
    .expect("endorsed index is precise");
}

#[test]
fn lengths_are_precise_even_for_approx_arrays() {
    // xs.length drives control flow with no endorsement: it is precise by
    // construction (memory safety, section 2.6).
    let src = "
        main {
            let xs = new approx float[7] in
            if (xs.length == 7) { 1 } else { 0 }
        }
    ";
    assert_eq!(eval(src), Value::Int(1));
}

#[test]
fn array_lengths_must_be_precise() {
    let err = compile(
        "class C extends Object { approx int n; }
         main { let c = new C() in new int[c.n] }",
    )
    .unwrap_err();
    assert!(err.to_string().contains("lengths must be `precise int`"), "{err}");
}

#[test]
fn bounds_are_always_checked() {
    let tp = compile("main { let xs = new int[3] in xs[3] }").expect("well-typed");
    let err = run(&tp, ExecMode::Reliable).unwrap_err();
    assert!(matches!(err, EvalError::IndexOutOfBounds(_, 3, 3)));

    let tp = compile("main { let xs = new int[3] in xs[0 - 1] }").expect("well-typed");
    let err = run(&tp, ExecMode::Reliable).unwrap_err();
    assert!(matches!(err, EvalError::IndexOutOfBounds(_, -1, 3)));
}

#[test]
fn negative_lengths_are_runtime_errors() {
    let tp = compile("main { let xs = new int[0 - 2] in 0 }").expect("well-typed");
    let err = run(&tp, ExecMode::Reliable).unwrap_err();
    assert!(matches!(err, EvalError::BadArrayLength(_, -2)));
}

#[test]
fn context_element_arrays_follow_the_instance() {
    // The paper's FloatSet: a @Context float[] member is approximate in
    // approximate instances. Reading it into the precise overload is fine;
    // in the approx overload it is approximate.
    let src = "
        class Holder extends Object {
            context int stored;
            int probe() { this.stored }
            approx int probe() approx { this.stored }
        }
        main {
            let p = new Holder() in
            p.stored := 5;
            p.probe()
        }
    ";
    assert_eq!(eval(src), Value::Int(5));
}

#[test]
fn chaos_respects_precise_arrays_but_not_approx_ones() {
    // Precise array contents are part of the non-interference observables.
    let src = "
        class F extends Object {
            int fill(int[] xs, approx float[] noise, int i) {
                if (i == xs.length) { xs[0] }
                else {
                    xs[i] := i * 7;
                    noise[i] := 0.5;
                    this.fill(xs, noise, i + 1)
                }
            }
        }
        main {
            let xs = new int[8] in
            let noise = new approx float[8] in
            new F().fill(xs, noise, 0)
        }
    ";
    let tp = compile(src).expect("well-typed");
    check_non_interference(&tp, 0..25).expect("precise array survives chaos");
}

#[test]
fn chaos_can_change_approximate_array_results() {
    let src = "
        main {
            let xs = new approx int[2] in
            xs[0] := 5;
            xs[0] + 1
        }
    ";
    let tp = compile(src).expect("well-typed");
    let reliable = run(&tp, ExecMode::Reliable).unwrap().value;
    let changed = (0..10).any(|seed| run(&tp, ExecMode::Chaos { seed }).unwrap().value != reliable);
    assert!(changed);
}

#[test]
fn arrays_pretty_print_and_reparse() {
    let src = "
        class A extends Object {
            approx float[] data;
            int touch(int i) { this.data[i] := 1.0; 0 }
        }
        main { let xs = new approx float[4] in xs.length }
    ";
    let tp = compile(src).expect("well-typed");
    let printed = enerj_lang::pretty::program_to_string(&tp.program);
    let reparsed = enerj_lang::parser::parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
    enerj_lang::typecheck::check(reparsed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
}

#[test]
fn array_fields_adapt_through_receivers() {
    // A context-element array field read through an approx receiver gives
    // approximate elements; writing them from precise data is subtyping.
    let src = "
        class Buf extends Object {
            context float[] data;
            int init(int n) { this.data := new context float[n]; 0 }
        }
        main {
            let b = new approx Buf() in
            b.init(4);
            0
        }
    ";
    assert_eq!(eval(src), Value::Int(0));
}
