//! The negative corpus: every `.fej` file under `programs/bad/` must be
//! rejected by the checker, with the error its header comment predicts.
//! This is the test the paper's own checker artifact would ship with.

use enerj_lang::compile;

fn corpus_dir() -> String {
    format!("{}/programs/bad", env!("CARGO_MANIFEST_DIR"))
}

/// Extracts the "Expected error: ..." phrase from a program's header.
fn expected_error(source: &str) -> String {
    source
        .lines()
        .find_map(|l| l.split("Expected error:").nth(1))
        .expect("bad programs declare their expected error")
        .trim()
        .trim_end_matches('.')
        .to_owned()
}

#[test]
fn every_bad_program_is_rejected_with_the_predicted_error() {
    let mut seen = 0;
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().is_none_or(|e| e != "fej") {
            continue;
        }
        seen += 1;
        let source = std::fs::read_to_string(&path).expect("readable program");
        let expected = expected_error(&source);
        match compile(&source) {
            Ok(_) => panic!("{} should be rejected", path.display()),
            Err(err) => {
                let msg = err.to_string();
                assert!(
                    msg.contains(&expected),
                    "{}: expected {expected:?} in {msg:?}",
                    path.display()
                );
            }
        }
    }
    assert!(seen >= 5, "corpus should contain at least five programs, found {seen}");
}

#[test]
fn fixing_each_bad_program_with_endorse_makes_it_compile() {
    // The positive twins of three corpus entries: one explicit endorsement
    // turns each illegal flow into a legal one (section 2.2).
    let fixed = [
        "class C extends Object { approx int val; }
         main { let c = new C() in if (endorse(c.val == 5)) { 1 } else { 0 } }",
        "class C extends Object { approx int i; }
         main { let c = new C() in let xs = new int[8] in xs[endorse(c.i)] }",
        "class C extends Object {
             approx int a;
             int id(int x) { x }
         }
         main { let c = new C() in c.id(endorse(c.a)) }",
    ];
    for (i, src) in fixed.iter().enumerate() {
        compile(src).unwrap_or_else(|e| panic!("fixed program {i}: {e}"));
    }
}
