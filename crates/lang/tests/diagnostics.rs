//! Diagnostic coverage: one test per [`TypeErrorKind`] variant.
//!
//! Each test pins *which* rule rejects a minimal offending program and
//! *where* — the reported span's text must be exactly the offending
//! fragment. Two variants are unreachable from source text (the parser
//! cannot spell them) and are exercised through hand-built ASTs:
//! `NewOfNonClass` and `LostInDeclaration`.

use enerj_lang::ast::{ClassDecl, Expr, ExprKind, FieldDecl, NodeId, Program};
use enerj_lang::error::{Span, TypeErrorKind};
use enerj_lang::types::{BaseType, Qual, Type};
use enerj_lang::CompileError;

/// Compiles `src`, asserting rejection with `kind` at the span whose text
/// is exactly `at`.
#[track_caller]
fn rejects(src: &str, kind: TypeErrorKind, at: &str) {
    match enerj_lang::compile(src) {
        Ok(_) => panic!("accepted, expected {kind:?}:\n{src}"),
        Err(CompileError::Type(e)) => {
            assert_eq!(e.kind, kind, "wrong kind ({}):\n{src}", e.message);
            let text = &src[e.span.start..e.span.end];
            assert_eq!(text, at, "span points at {text:?}, expected {at:?}:\n{src}");
        }
        Err(e) => panic!("did not parse ({e}):\n{src}"),
    }
}

#[test]
fn object_redefined() {
    rejects("class Object { } main { 0 }", TypeErrorKind::ObjectRedefined, "class Object { }");
}

#[test]
fn duplicate_class() {
    rejects("class A { } class A { } main { 0 }", TypeErrorKind::DuplicateClass, "class A { }");
}

#[test]
fn unknown_superclass() {
    rejects(
        "class A extends B { } main { 0 }",
        TypeErrorKind::UnknownSuperclass,
        "class A extends B { }",
    );
}

#[test]
fn cyclic_inheritance() {
    rejects(
        "class A extends B { } class B extends A { } main { 0 }",
        TypeErrorKind::CyclicInheritance,
        "class A extends B { }",
    );
}

#[test]
fn duplicate_field() {
    rejects("class A { int f; int f; } main { 0 }", TypeErrorKind::DuplicateField, "int f;");
}

#[test]
fn field_shadowing() {
    rejects(
        "class A { int f; } class B extends A { int f; } main { 0 }",
        TypeErrorKind::FieldShadowing,
        "int f;",
    );
}

#[test]
fn duplicate_method() {
    rejects(
        "class A { int m() { 0 } int m() { 1 } } main { 0 }",
        TypeErrorKind::DuplicateMethod,
        "int m() { 1 }",
    );
}

#[test]
fn signature_changing_override() {
    rejects(
        "class A { int m() { 0 } } class B extends A { float m() { 1.0 } } main { 0 }",
        TypeErrorKind::SignatureChangingOverride,
        "float m() { 1.0 }",
    );
}

#[test]
fn mismatched_approx_overload() {
    rejects(
        "class A { int m() { 0 } int m(int p) approx { 0 } } main { 0 }",
        TypeErrorKind::MismatchedApproxOverload,
        "int m(int p) approx { 0 }",
    );
}

#[test]
fn not_a_subtype() {
    rejects(
        "class A { int f; approx int g; } main { let a = new A() in (a.f := a.g); 0 }",
        TypeErrorKind::NotASubtype,
        "a.g",
    );
}

#[test]
fn incompatible_branches() {
    rejects(
        "class A { } main { if (1) { 1 } else { new A() } }",
        TypeErrorKind::IncompatibleBranches,
        "if (1) { 1 } else { new A() }",
    );
}

#[test]
fn unknown_variable() {
    rejects("main { x }", TypeErrorKind::UnknownVariable, "x");
}

#[test]
fn this_outside_class() {
    rejects("main { this }", TypeErrorKind::ThisOutsideClass, "this");
}

#[test]
fn unknown_class() {
    rejects("main { new C() }", TypeErrorKind::UnknownClass, "new C()");
}

#[test]
fn context_outside_class() {
    rejects(
        "class A { } main { new context A() }",
        TypeErrorKind::ContextOutsideClass,
        "new context A()",
    );
}

#[test]
fn bad_instantiation_qualifier() {
    rejects(
        "class A { } main { new top A() }",
        TypeErrorKind::BadInstantiationQualifier,
        "new top A()",
    );
}

#[test]
fn imprecise_array_length() {
    rejects("main { new int[1.5] }", TypeErrorKind::ImpreciseArrayLength, "1.5");
}

#[test]
fn not_an_array() {
    rejects("main { let x = 1 in x[0] }", TypeErrorKind::NotAnArray, "x");
}

#[test]
fn imprecise_index() {
    rejects("main { let a = new int[4] in a[1.5] }", TypeErrorKind::ImpreciseIndex, "1.5");
}

#[test]
fn write_through_lost() {
    // Reading `g` through a `top` receiver adapts `context` to `lost`;
    // writing through the lost type is unsound and must be rejected.
    rejects(
        "class A { top A g; context int f; } main { let o = new A() in (o.g.f := 1) }",
        TypeErrorKind::WriteThroughLost,
        "o.g.f := 1",
    );
}

#[test]
fn unknown_field() {
    rejects("class A { } main { new A().nope }", TypeErrorKind::UnknownField, "new A().nope");
}

#[test]
fn unknown_method() {
    rejects("class A { } main { new A().nope() }", TypeErrorKind::UnknownMethod, "new A().nope()");
}

#[test]
fn arity_mismatch() {
    rejects(
        "class A { int m(int p) { p } } main { new A().m() }",
        TypeErrorKind::ArityMismatch,
        "new A().m()",
    );
}

#[test]
fn lost_parameter() {
    rejects(
        "class A { top A g; int m(context int p) { 0 } } main { let o = new A() in o.g.m(1) }",
        TypeErrorKind::LostParameter,
        "o.g.m(1)",
    );
}

#[test]
fn cast_target_not_class() {
    rejects(
        "class A { } main { (precise int) new A() }",
        TypeErrorKind::CastTargetNotClass,
        "(precise int) new A()",
    );
}

#[test]
fn cast_of_primitive() {
    rejects("class A { } main { (precise A) 1 }", TypeErrorKind::CastOfPrimitive, "(precise A) 1");
}

#[test]
fn unrelated_cast() {
    rejects(
        "class A { } class B { } main { (precise B) new A() }",
        TypeErrorKind::UnrelatedCast,
        "(precise B) new A()",
    );
}

#[test]
fn qualifier_narrowing_cast() {
    rejects(
        "class A { } main { (precise A) new approx A() }",
        TypeErrorKind::QualifierNarrowingCast,
        "(precise A) new approx A()",
    );
}

#[test]
fn non_primitive_operands() {
    rejects("class A { } main { new A() + 1 }", TypeErrorKind::NonPrimitiveOperands, "new A() + 1");
}

#[test]
fn compute_on_top_or_lost() {
    rejects(
        "class A { top int f; } main { new A().f + 1 }",
        TypeErrorKind::ComputeOnTopOrLost,
        "new A().f + 1",
    );
}

#[test]
fn imprecise_condition() {
    rejects("main { if (1.5) { 1 } else { 2 } }", TypeErrorKind::ImpreciseCondition, "1.5");
}

#[test]
fn bind_lost() {
    rejects(
        "class A { top A g; context int f; } main { let o = new A() in let x = o.g.f in 0 }",
        TypeErrorKind::BindLost,
        "o.g.f",
    );
}

#[test]
fn null_receiver() {
    rejects("main { null.f }", TypeErrorKind::NullReceiver, "null");
}

#[test]
fn not_an_object() {
    rejects("main { let x = 1 in x.f }", TypeErrorKind::NotAnObject, "x");
}

#[test]
fn endorse_of_non_primitive() {
    rejects(
        "class A { } main { endorse(new A()) }",
        TypeErrorKind::EndorseOfNonPrimitive,
        "endorse(new A())",
    );
}

// --- Variants the parser cannot spell: exercised at the AST level. ---

fn expr(id: u32, lo: usize, hi: usize, kind: ExprKind) -> Expr {
    Expr { id: NodeId(id), span: Span::new(lo, hi), kind }
}

#[test]
fn new_of_non_class() {
    // `new precise int()` is unparseable; the checker still guards it.
    let main = expr(0, 0, 3, ExprKind::New(Type::precise_int()));
    let program = Program { classes: vec![], main };
    let e = enerj_lang::typecheck::check(program).unwrap_err();
    assert_eq!(e.kind, TypeErrorKind::NewOfNonClass);
    assert_eq!(e.span, Span::new(0, 3));
}

#[test]
fn lost_in_declaration() {
    // `lost int f;` is unparseable; the class-table validator still
    // rejects a declared type that mentions the internal qualifier.
    let field_span = Span::new(10, 21);
    let class = ClassDecl {
        name: "A".to_owned(),
        superclass: None,
        fields: vec![FieldDecl {
            ty: Type::new(Qual::Lost, BaseType::Int),
            name: "f".to_owned(),
            span: field_span,
        }],
        methods: vec![],
        span: Span::new(0, 23),
    };
    let program = Program { classes: vec![class], main: expr(0, 24, 25, ExprKind::IntLit(0)) };
    let e = enerj_lang::typecheck::check(program).unwrap_err();
    assert_eq!(e.kind, TypeErrorKind::LostInDeclaration);
    assert_eq!(e.span, field_span);
}
