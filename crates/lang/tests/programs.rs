//! Drives the sample `.fej` programs shipped in `programs/` through the
//! full pipeline, pinning their behaviour.

use enerj_lang::compile;
use enerj_lang::interp::{run, ExecMode, Value};
use enerj_lang::noninterference::check_non_interference;

fn load(name: &str) -> String {
    let path = format!("{}/programs/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"))
}

#[test]
fn mean_fej_runs_and_dispatches_overloads() {
    let tp = compile(&load("mean.fej")).expect("well-typed");
    let out = run(&tp, ExecMode::Reliable).expect("runs");
    // Precise mean of 1..=16 is 8.5 (scaled by 1000); the approximate
    // overload averages the odd values 1,3,..,15 = 2*64/16 = 8.
    assert_eq!(out.value, Value::Float(8500.0 + 8.0));
}

#[test]
fn isolated_fej_satisfies_non_interference() {
    let tp = compile(&load("isolated.fej")).expect("well-typed");
    assert!(!tp.program.uses_endorse());
    check_non_interference(&tp, 0..30).expect("non-interference");
    let out = run(&tp, ExecMode::Reliable).expect("runs");
    assert_eq!(out.value, Value::Int(80));
}

#[test]
fn illegal_flow_fej_is_rejected() {
    let err = compile(&load("illegal_flow.fej")).unwrap_err();
    assert!(err.to_string().contains("not a subtype"), "{err}");
}

#[test]
fn checksum_fej_computes_a_stable_checksum() {
    let tp = compile(&load("checksum.fej")).expect("well-typed");
    let out = run(&tp, ExecMode::Reliable).expect("runs");
    // sum over i of (13 i + 7) mod 256 for i in 0..32.
    let expected: i64 = (0..32).map(|i: i64| (i * 13 + 7) % 256).sum();
    assert_eq!(out.value, Value::Int(expected));
}

#[test]
fn montecarlo_fej_estimates_pi() {
    let tp = compile(&load("montecarlo.fej")).expect("well-typed");
    let out = run(&tp, ExecMode::Reliable).expect("runs");
    let Value::Float(pi) = out.value else { panic!("float result") };
    assert!((pi - std::f64::consts::PI).abs() < 0.15, "pi = {pi}");
}

#[test]
fn all_programs_pretty_print_stably() {
    for name in ["mean.fej", "isolated.fej", "checksum.fej", "sor.fej", "montecarlo.fej", "wht.fej"]
    {
        let tp = compile(&load(name)).expect("well-typed");
        let printed = enerj_lang::pretty::program_to_string(&tp.program);
        let reparsed = enerj_lang::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: {printed}\n{e}"));
        enerj_lang::typecheck::check(reparsed).unwrap_or_else(|e| panic!("{name}: {printed}\n{e}"));
    }
}
