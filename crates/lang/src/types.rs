//! Precision qualifiers and types (paper Figure 1 and section 3.1).
//!
//! FEnerJ types pair a precision qualifier `q` with a base type: a primitive
//! (`int`, `float`) or a class. The qualifier lattice, the `lost` qualifier,
//! context adaptation (the ⊳ operator) and the subtyping rules follow the
//! paper's formal definitions.

use std::fmt;

/// A precision qualifier.
///
/// `Lost` never appears in source programs; it arises from context
/// adaptation when the enclosing context cannot be expressed (section 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Qual {
    /// `precise` — conventional guarantees (the default).
    Precise,
    /// `approx` — no guarantees.
    Approx,
    /// `top` — common supertype of `precise` and `approx`.
    Top,
    /// `context` — the enclosing object's qualifier (class bodies only).
    Context,
    /// `lost` — unexpressible context information (internal).
    Lost,
}

impl Qual {
    /// The qualifier ordering `q1 <:q q2` (section 3.1):
    /// reflexive; everything below `top`; everything but `top` below `lost`.
    /// `precise` and `approx` are unrelated.
    pub fn is_sub(self, other: Qual) -> bool {
        self == other || other == Qual::Top || (other == Qual::Lost && self != Qual::Top)
    }

    /// Context adaptation `q ⊳ q'` (section 3.1): replaces `context` in a
    /// member's qualifier by the receiver's qualifier, degrading to `lost`
    /// when the receiver's qualifier is `top` or `lost`.
    pub fn adapt(self, member: Qual) -> Qual {
        if member == Qual::Context {
            match self {
                Qual::Precise | Qual::Approx | Qual::Context => self,
                Qual::Top | Qual::Lost => Qual::Lost,
            }
        } else {
            member
        }
    }

    /// Least upper bound in the qualifier ordering, used for joining the
    /// branches of a conditional on class types.
    pub fn lub(self, other: Qual) -> Qual {
        if self == other {
            self
        } else if self.is_sub(other) {
            other
        } else if other.is_sub(self) {
            self
        } else {
            // precise vs approx vs context: unrelated, join at lost.
            Qual::Lost
        }
    }

    /// Least upper bound in the *primitive* ordering, where additionally
    /// `precise <: approx` (section 2.1). Used for operand joining.
    pub fn lub_prim(self, other: Qual) -> Qual {
        if self == other {
            return self;
        }
        match (self, other) {
            (Qual::Precise, q) | (q, Qual::Precise) => q,
            (Qual::Approx, Qual::Context) | (Qual::Context, Qual::Approx) => Qual::Approx,
            (Qual::Lost, q) | (q, Qual::Lost) if q != Qual::Top => Qual::Lost,
            _ => Qual::Top,
        }
    }
}

impl fmt::Display for Qual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Qual::Precise => "precise",
            Qual::Approx => "approx",
            Qual::Top => "top",
            Qual::Context => "context",
            Qual::Lost => "lost",
        };
        f.write_str(name)
    }
}

/// A base type: primitive, class, or array.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BaseType {
    /// `int`
    Int,
    /// `float`
    Float,
    /// A class, by name.
    Class(String),
    /// An array `T[]`; the element type carries its own qualifier and the
    /// array's length is always precise (section 2.6).
    Array(Box<Type>),
    /// The type of `null` — a subtype of every class and array type
    /// (internal).
    Null,
}

impl BaseType {
    /// Whether this is a primitive base type.
    pub fn is_prim(&self) -> bool {
        matches!(self, BaseType::Int | BaseType::Float)
    }
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Int => f.write_str("int"),
            BaseType::Float => f.write_str("float"),
            BaseType::Class(name) => f.write_str(name),
            BaseType::Array(elem) => write!(f, "{elem}[]"),
            BaseType::Null => f.write_str("<null>"),
        }
    }
}

/// A qualified type `q B`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    /// The precision qualifier.
    pub qual: Qual,
    /// The base type.
    pub base: BaseType,
}

impl Type {
    /// Convenience constructor.
    pub fn new(qual: Qual, base: BaseType) -> Self {
        Type { qual, base }
    }

    /// `precise int`.
    pub fn precise_int() -> Self {
        Type::new(Qual::Precise, BaseType::Int)
    }

    /// `precise float`.
    pub fn precise_float() -> Self {
        Type::new(Qual::Precise, BaseType::Float)
    }

    /// The type of `null`.
    pub fn null() -> Self {
        Type::new(Qual::Precise, BaseType::Null)
    }

    /// Context adaptation lifted to types: `q ⊳ (q' B) = (q ⊳ q') B`,
    /// recursing into array element types.
    pub fn adapt(&self, receiver: Qual) -> Type {
        let base = match &self.base {
            BaseType::Array(elem) => BaseType::Array(Box::new(elem.adapt(receiver))),
            other => other.clone(),
        };
        Type::new(receiver.adapt(self.qual), base)
    }

    /// Whether the qualifier (or an array element qualifier) is `lost` —
    /// such types cannot be written to (section 3.1: "it would be unsound
    /// to allow the update of such a field").
    pub fn has_lost(&self) -> bool {
        self.qual == Qual::Lost || matches!(&self.base, BaseType::Array(elem) if elem.has_lost())
    }

    /// Whether this type is a primitive of some qualifier.
    pub fn is_prim(&self) -> bool {
        self.base.is_prim()
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qual, self.base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qualifier_ordering_matches_paper() {
        use Qual::*;
        for q in [Precise, Approx, Top, Context, Lost] {
            assert!(q.is_sub(q), "{q} reflexive");
            assert!(q.is_sub(Top), "{q} below top");
        }
        for q in [Precise, Approx, Context, Lost] {
            assert!(q.is_sub(Lost), "{q} below lost");
        }
        assert!(!Top.is_sub(Lost));
        assert!(!Precise.is_sub(Approx), "class-type quals unrelated");
        assert!(!Approx.is_sub(Precise));
        assert!(!Lost.is_sub(Precise));
        assert!(!Top.is_sub(Precise));
    }

    #[test]
    fn context_adaptation_matches_paper() {
        use Qual::*;
        // q ⊳ context = q when q ∈ {approx, precise, context}.
        assert_eq!(Precise.adapt(Context), Precise);
        assert_eq!(Approx.adapt(Context), Approx);
        assert_eq!(Context.adapt(Context), Context);
        // q ⊳ context = lost when q ∈ {top, lost}.
        assert_eq!(Top.adapt(Context), Lost);
        assert_eq!(Lost.adapt(Context), Lost);
        // q ⊳ q' = q' when q' != context.
        for recv in [Precise, Approx, Top, Context, Lost] {
            for member in [Precise, Approx, Top, Lost] {
                assert_eq!(recv.adapt(member), member);
            }
        }
    }

    #[test]
    fn lub_joins_unrelated_at_lost() {
        use Qual::*;
        assert_eq!(Precise.lub(Approx), Lost);
        assert_eq!(Precise.lub(Precise), Precise);
        assert_eq!(Approx.lub(Top), Top);
        assert_eq!(Lost.lub(Precise), Lost);
        assert_eq!(Lost.lub(Top), Top);
    }

    #[test]
    fn prim_lub_prefers_approx_over_lost() {
        use Qual::*;
        assert_eq!(Precise.lub_prim(Approx), Approx);
        assert_eq!(Approx.lub_prim(Precise), Approx);
        assert_eq!(Precise.lub_prim(Context), Context);
        assert_eq!(Context.lub_prim(Approx), Approx);
        assert_eq!(Precise.lub_prim(Precise), Precise);
    }

    #[test]
    fn type_adaptation_and_lost_detection() {
        let t = Type::new(Qual::Context, BaseType::Int);
        assert_eq!(t.adapt(Qual::Approx).qual, Qual::Approx);
        assert!(t.adapt(Qual::Top).has_lost());
        assert!(!Type::precise_int().has_lost());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::precise_int().to_string(), "precise int");
        assert_eq!(
            Type::new(Qual::Approx, BaseType::Class("Vec".into())).to_string(),
            "approx Vec"
        );
    }
}
