//! The big-step interpreter for FEnerJ (section 3.2).
//!
//! Three execution modes instantiate the paper's operational semantics:
//!
//! * [`ExecMode::Reliable`] — the standard semantics: every operation is
//!   exact. This is the reference against which quality of service is
//!   measured.
//! * [`ExecMode::Faulty`] — the approximating semantics: operations and
//!   storage whose static types are approximate run on the simulated
//!   hardware of [`enerj-hw`](enerj_hw), suffering mantissa truncation,
//!   timing errors, and storage bit flips, and being charged as approximate
//!   in the statistics. Heap faults are injected at access granularity with
//!   the SRAM probabilities (the FEnerJ heap has no per-field decay clocks;
//!   this is a simplification relative to the embedded API's `ApproxVec`).
//! * [`ExecMode::Chaos`] — the adversarial semantics used to *test*
//!   non-interference: it implements the paper's rule that "any approximate
//!   value may be replaced by any other value of the same type" by replacing
//!   every approximately-typed primitive result with a uniformly random
//!   value. If the program is endorsement-free, its precise results must be
//!   unaffected (theorem, section 3.3).
//!
//! Division: a *precise* integer division by zero is a runtime error, as in
//! Java; *approximate* divisions never trap — integer division by zero
//! yields 0 and floating-point division by zero yields NaN (section 5.2).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ast::{BinOp, Expr, ExprKind};
use crate::error::EvalError;
use crate::typecheck::TypedProgram;
use crate::types::{BaseType, Qual, Type};
use enerj_hw::stats::OpKind;
use enerj_hw::Hardware;

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// The null reference.
    Null,
    /// An integer.
    Int(i64),
    /// A float.
    Float(f64),
    /// A heap reference.
    Ref(usize),
}

impl Value {
    /// Renders the value for output.
    pub fn describe(&self) -> String {
        match self {
            Value::Null => "null".to_owned(),
            Value::Int(v) => v.to_string(),
            Value::Float(v) => v.to_string(),
            Value::Ref(a) => format!("<object@{a}>"),
        }
    }
}

/// The runtime precision of an object instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RtQual {
    /// A precise instance.
    Precise,
    /// An approximate instance.
    Approx,
}

/// A heap object: its class, its instance qualifier and its fields.
#[derive(Debug, Clone)]
pub struct Object {
    /// The runtime class.
    pub class: String,
    /// The instance qualifier fixed at allocation.
    pub qual: RtQual,
    /// Field values.
    pub fields: HashMap<String, Value>,
}

/// A heap array (section 2.6): elements of one precision, precise length.
#[derive(Debug, Clone)]
pub struct ArrayObj {
    /// Whether the elements are approximate (resolved at allocation).
    pub elem_approx: bool,
    /// The element values.
    pub values: Vec<Value>,
}

/// An entry in the simulated heap.
#[derive(Debug, Clone)]
pub enum HeapEntry {
    /// An object instance.
    Object(Object),
    /// An array.
    Array(ArrayObj),
}

/// How to execute approximate operations and storage.
#[derive(Clone)]
pub enum ExecMode {
    /// Exact execution (the reference semantics).
    Reliable,
    /// Fault injection through simulated hardware.
    Faulty(Rc<RefCell<Hardware>>),
    /// Adversarial randomization of every approximate value (section 3.3).
    Chaos {
        /// Seed for the adversary's random choices.
        seed: u64,
    },
}

/// Default evaluation step budget.
pub const DEFAULT_FUEL: u64 = 10_000_000;

/// Maximum FEnerJ method-call depth (bounds the native stack).
pub const MAX_CALL_DEPTH: u32 = 128;

/// The interpreter state.
pub struct Interp<'p> {
    program: &'p TypedProgram,
    mode: ExecMode,
    chaos_rng: Option<StdRng>,
    heap: Vec<HeapEntry>,
    fuel: u64,
    depth: u32,
}

/// The result of running a program: the main expression's value plus the
/// final heap (for whole-state inspection in tests).
#[derive(Debug)]
pub struct RunOutcome {
    /// Value of the main expression.
    pub value: Value,
    /// The heap at the end of execution.
    pub heap: Vec<HeapEntry>,
}

/// Evaluates a checked program's main expression.
///
/// # Errors
///
/// Returns an [`EvalError`] for null dereferences, precise division by
/// zero, failed casts, or fuel exhaustion.
pub fn run(program: &TypedProgram, mode: ExecMode) -> Result<RunOutcome, EvalError> {
    run_with_fuel(program, mode, DEFAULT_FUEL)
}

/// Like [`run`] with an explicit step budget.
///
/// # Errors
///
/// As [`run`]; additionally [`EvalError::OutOfFuel`] if the budget is
/// exhausted.
pub fn run_with_fuel(
    program: &TypedProgram,
    mode: ExecMode,
    fuel: u64,
) -> Result<RunOutcome, EvalError> {
    let chaos_rng = match &mode {
        ExecMode::Chaos { seed } => Some(StdRng::seed_from_u64(*seed)),
        _ => None,
    };
    let mut interp = Interp { program, mode, chaos_rng, heap: Vec::new(), fuel, depth: 0 };
    let mut env = Env { vars: Vec::new(), this: None };
    let value = interp.eval(&program.program.main, &mut env)?;
    Ok(RunOutcome { value, heap: interp.heap })
}

struct Env {
    vars: Vec<(String, Value)>,
    this: Option<usize>,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.vars.iter().rev().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

impl<'p> Interp<'p> {
    fn charge(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Resolves a possibly-`context` qualifier against the runtime qualifier
    /// of the object at `recv`.
    fn resolve_qual(&self, qual: Qual, recv: Option<usize>) -> RtQual {
        match qual {
            Qual::Approx => RtQual::Approx,
            Qual::Context => match recv.map(|a| match &self.heap[a] {
                HeapEntry::Object(o) => o.qual,
                HeapEntry::Array(_) => RtQual::Precise,
            }) {
                Some(q) => q,
                None => RtQual::Precise,
            },
            // `top`/`lost` receivers execute conservatively precisely.
            _ => RtQual::Precise,
        }
    }

    fn addr(&self, value: Value, span: crate::error::Span) -> Result<usize, EvalError> {
        match value {
            Value::Ref(a) => Ok(a),
            Value::Null => Err(EvalError::NullDereference(span)),
            other => {
                Err(EvalError::Internal(format!("expected a reference, got {}", other.describe())))
            }
        }
    }

    fn object(&self, value: Value, span: crate::error::Span) -> Result<usize, EvalError> {
        let a = self.addr(value, span)?;
        match &self.heap[a] {
            HeapEntry::Object(_) => Ok(a),
            HeapEntry::Array(_) => {
                Err(EvalError::Internal("expected an object, found an array".into()))
            }
        }
    }

    fn obj(&self, a: usize) -> &Object {
        match &self.heap[a] {
            HeapEntry::Object(o) => o,
            HeapEntry::Array(_) => unreachable!("checked by `object`"),
        }
    }

    fn obj_mut(&mut self, a: usize) -> &mut Object {
        match &mut self.heap[a] {
            HeapEntry::Object(o) => o,
            HeapEntry::Array(_) => unreachable!("checked by `object`"),
        }
    }

    /// Perturbs a primitive value that passed through approximate storage.
    fn storage_fault(&mut self, value: Value, write: bool) -> Value {
        match &self.mode {
            ExecMode::Reliable => value,
            ExecMode::Faulty(hw) => {
                let mut hw = hw.borrow_mut();
                match value {
                    Value::Int(v) => {
                        let bits = if write {
                            hw.sram_write(v as u64, 64, true)
                        } else {
                            hw.sram_read(v as u64, 64, true)
                        };
                        Value::Int(bits as i64)
                    }
                    Value::Float(v) => {
                        let bits = if write {
                            hw.sram_write(v.to_bits(), 64, true)
                        } else {
                            hw.sram_read(v.to_bits(), 64, true)
                        };
                        Value::Float(f64::from_bits(bits))
                    }
                    other => other,
                }
            }
            ExecMode::Chaos { .. } => self.chaos(value),
        }
    }

    /// The chaos adversary: any approximate primitive becomes random.
    fn chaos(&mut self, value: Value) -> Value {
        let rng = self.chaos_rng.as_mut().expect("chaos mode has an RNG");
        match value {
            Value::Int(_) => Value::Int(rng.gen()),
            Value::Float(_) => Value::Float(f64::from_bits(rng.gen())),
            other => other,
        }
    }

    fn eval(&mut self, e: &Expr, env: &mut Env) -> Result<Value, EvalError> {
        self.charge()?;
        match &e.kind {
            ExprKind::Null => Ok(Value::Null),
            ExprKind::IntLit(v) => Ok(Value::Int(*v)),
            ExprKind::FloatLit(v) => Ok(Value::Float(*v)),
            ExprKind::Var(name) => env
                .lookup(name)
                .ok_or_else(|| EvalError::Internal(format!("unbound variable `{name}`"))),
            ExprKind::This => match env.this {
                Some(addr) => Ok(Value::Ref(addr)),
                None => Err(EvalError::Internal("`this` outside a method".into())),
            },
            ExprKind::New(ty) => {
                let BaseType::Class(class) = &ty.base else {
                    return Err(EvalError::Internal("new on non-class".into()));
                };
                let qual = self.resolve_qual(ty.qual, env.this);
                let fields = self
                    .program
                    .table
                    .all_fields(class)
                    .into_iter()
                    .map(|(name, ty)| (name, default_value(&ty)))
                    .collect();
                let addr = self.heap.len();
                self.heap.push(HeapEntry::Object(Object { class: class.clone(), qual, fields }));
                Ok(Value::Ref(addr))
            }
            ExprKind::NewArray(elem, len) => {
                let lv = self.eval(len, env)?;
                let Value::Int(n) = lv else {
                    return Err(EvalError::Internal("non-integer array length".into()));
                };
                if n < 0 {
                    return Err(EvalError::BadArrayLength(e.span, n));
                }
                let elem_approx = self.resolve_qual(elem.qual, env.this) == RtQual::Approx;
                let default = default_value(elem);
                let addr = self.heap.len();
                self.heap.push(HeapEntry::Array(ArrayObj {
                    elem_approx,
                    values: vec![default; n as usize],
                }));
                Ok(Value::Ref(addr))
            }
            ExprKind::Index(arr, idx) => {
                let (addr, i) = self.array_access(arr, idx, env)?;
                let HeapEntry::Array(a) = &self.heap[addr] else { unreachable!() };
                let value = a.values[i];
                if a.elem_approx {
                    Ok(self.storage_fault(value, false))
                } else {
                    Ok(value)
                }
            }
            ExprKind::IndexSet(arr, idx, value) => {
                let (addr, i) = self.array_access(arr, idx, env)?;
                let mut v = self.eval(value, env)?;
                let HeapEntry::Array(a) = &self.heap[addr] else { unreachable!() };
                if a.elem_approx {
                    v = self.storage_fault(v, true);
                }
                let HeapEntry::Array(a) = &mut self.heap[addr] else { unreachable!() };
                a.values[i] = v;
                Ok(v)
            }
            ExprKind::Length(arr) => {
                let av = self.eval(arr, env)?;
                let addr = self.addr(av, arr.span)?;
                match &self.heap[addr] {
                    HeapEntry::Array(a) => Ok(Value::Int(a.values.len() as i64)),
                    HeapEntry::Object(_) => {
                        Err(EvalError::Internal("length of a non-array".into()))
                    }
                }
            }
            ExprKind::FieldGet(recv, field) => {
                let rv = self.eval(recv, env)?;
                let addr = self.object(rv, recv.span)?;
                let value = *self
                    .obj(addr)
                    .fields
                    .get(field)
                    .ok_or_else(|| EvalError::Internal(format!("missing field `{field}`")))?;
                let fq = self.program.field_qual.get(&e.id).copied().unwrap_or(Qual::Precise);
                if self.resolve_qual(fq, Some(addr)) == RtQual::Approx {
                    Ok(self.storage_fault(value, false))
                } else {
                    Ok(value)
                }
            }
            ExprKind::FieldSet(recv, field, value) => {
                let rv = self.eval(recv, env)?;
                let addr = self.object(rv, recv.span)?;
                let mut v = self.eval(value, env)?;
                let fq = self.program.field_qual.get(&e.id).copied().unwrap_or(Qual::Precise);
                if self.resolve_qual(fq, Some(addr)) == RtQual::Approx {
                    v = self.storage_fault(v, true);
                }
                self.obj_mut(addr).fields.insert(field.clone(), v);
                Ok(v)
            }
            ExprKind::Call(recv, name, args) => {
                let rv = self.eval(recv, env)?;
                let addr = self.object(rv, recv.span)?;
                let mut arg_values = Vec::with_capacity(args.len());
                for arg in args {
                    arg_values.push(self.eval(arg, env)?);
                }
                // Overload selection (section 2.5.2): the static receiver
                // qualifier decides between the precise and approx bodies;
                // `context` resolves to the instance's runtime qualifier.
                let static_q =
                    self.program.call_recv_qual.get(&e.id).copied().unwrap_or(Qual::Precise);
                let dispatch_q = match self.resolve_qual(static_q, Some(addr)) {
                    RtQual::Approx => Qual::Approx,
                    RtQual::Precise => Qual::Precise,
                };
                let class = self.obj(addr).class.clone();
                let (_, decl) = self
                    .program
                    .table
                    .select_method(dispatch_q, &class, name)
                    .ok_or_else(|| EvalError::Internal(format!("missing method `{name}`")))?;
                let decl = decl.clone();
                if self.depth >= MAX_CALL_DEPTH {
                    return Err(EvalError::OutOfFuel);
                }
                self.depth += 1;
                let mut callee = Env {
                    vars: decl.params.iter().map(|(n, _)| n.clone()).zip(arg_values).collect(),
                    this: Some(addr),
                };
                let out = self.eval(&decl.body, &mut callee);
                self.depth -= 1;
                out
            }
            ExprKind::Cast(target, operand) => {
                let v = self.eval(operand, env)?;
                if let Value::Ref(addr) = v {
                    let BaseType::Class(tc) = &target.base else {
                        return Err(EvalError::Internal("cast to non-class".into()));
                    };
                    let addr = self.object(Value::Ref(addr), operand.span)?;
                    if !self.program.table.is_subclass(&self.obj(addr).class, tc) {
                        return Err(EvalError::CastFailed(e.span, tc.clone()));
                    }
                }
                Ok(v)
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lv = self.eval(lhs, env)?;
                let rv = self.eval(rhs, env)?;
                let prec = self.program.op_prec.get(&e.id).copied().unwrap_or(Qual::Precise);
                let approx = self.resolve_qual(prec, env.this) == RtQual::Approx;
                self.binop(*op, lv, rv, approx, e.span)
            }
            ExprKind::If(cond, then, els) => {
                let cv = self.eval(cond, env)?;
                let Value::Int(c) = cv else {
                    return Err(EvalError::Internal("non-integer condition".into()));
                };
                if c != 0 {
                    self.eval(then, env)
                } else {
                    self.eval(els, env)
                }
            }
            ExprKind::Let(name, value, body) => {
                let v = self.eval(value, env)?;
                env.vars.push((name.clone(), v));
                let out = self.eval(body, env);
                env.vars.pop();
                out
            }
            ExprKind::VarSet(name, value) => {
                let v = self.eval(value, env)?;
                let slot = env
                    .vars
                    .iter_mut()
                    .rev()
                    .find(|(n, _)| n == name)
                    .map(|(_, slot)| slot)
                    .ok_or_else(|| EvalError::Internal(format!("unbound variable `{name}`")))?;
                *slot = v;
                Ok(v)
            }
            ExprKind::While(cond, body) => {
                loop {
                    let cv = self.eval(cond, env)?;
                    let Value::Int(c) = cv else {
                        return Err(EvalError::Internal("non-integer loop condition".into()));
                    };
                    if c == 0 {
                        break;
                    }
                    self.eval(body, env)?;
                }
                Ok(Value::Int(0))
            }
            ExprKind::Seq(first, rest) => {
                self.eval(first, env)?;
                self.eval(rest, env)
            }
            ExprKind::Endorse(inner) => self.eval(inner, env),
        }
    }

    /// Evaluates an array receiver and a (precise) index, with the
    /// always-on bounds check of section 2.6.
    fn array_access(
        &mut self,
        arr: &Expr,
        idx: &Expr,
        env: &mut Env,
    ) -> Result<(usize, usize), EvalError> {
        let av = self.eval(arr, env)?;
        let addr = self.addr(av, arr.span)?;
        let iv = self.eval(idx, env)?;
        let Value::Int(i) = iv else {
            return Err(EvalError::Internal("non-integer index".into()));
        };
        let len = match &self.heap[addr] {
            HeapEntry::Array(a) => a.values.len(),
            HeapEntry::Object(_) => return Err(EvalError::Internal("indexing a non-array".into())),
        };
        if i < 0 || i as usize >= len {
            return Err(EvalError::IndexOutOfBounds(idx.span, i, len));
        }
        Ok((addr, i as usize))
    }

    fn binop(
        &mut self,
        op: BinOp,
        lv: Value,
        rv: Value,
        approx: bool,
        span: crate::error::Span,
    ) -> Result<Value, EvalError> {
        match (lv, rv) {
            (Value::Int(a), Value::Int(b)) => self.int_op(op, a, b, approx, span),
            (Value::Float(a), Value::Float(b)) => Ok(self.float_op(op, a, b, approx)),
            // Binary numeric promotion: int operands widen to float.
            (Value::Int(a), Value::Float(b)) => Ok(self.float_op(op, a as f64, b, approx)),
            (Value::Float(a), Value::Int(b)) => Ok(self.float_op(op, a, b as f64, approx)),
            _ => Err(EvalError::Internal("operand type confusion".into())),
        }
    }

    fn int_op(
        &mut self,
        op: BinOp,
        a: i64,
        b: i64,
        approx: bool,
        span: crate::error::Span,
    ) -> Result<Value, EvalError> {
        if !approx && matches!(op, BinOp::Div | BinOp::Rem) && b == 0 {
            return Err(EvalError::DivisionByZero(span));
        }
        let raw = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
        };
        let out = match (&self.mode, approx) {
            (_, false) => {
                if let ExecMode::Faulty(hw) = &self.mode {
                    hw.borrow_mut().precise_op(OpKind::Int);
                }
                raw
            }
            (ExecMode::Reliable, true) => raw,
            (ExecMode::Faulty(hw), true) => {
                let hw = Rc::clone(hw);
                if op.is_comparison() {
                    i64::from(hw.borrow_mut().approx_cmp_result(raw != 0, OpKind::Int))
                } else {
                    hw.borrow_mut().approx_int_result(raw as u64, 64) as i64
                }
            }
            (ExecMode::Chaos { .. }, true) => match self.chaos(Value::Int(raw)) {
                Value::Int(v) => v,
                _ => unreachable!(),
            },
        };
        Ok(Value::Int(out))
    }

    fn float_op(&mut self, op: BinOp, a: f64, b: f64, approx: bool) -> Value {
        let (a, b) = match (&self.mode, approx) {
            (ExecMode::Faulty(hw), true) => {
                let hw = hw.borrow();
                (hw.approx_f64_operand(a), hw.approx_f64_operand(b))
            }
            _ => (a, b),
        };
        let raw = match op {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => {
                if approx && b == 0.0 {
                    f64::NAN
                } else {
                    a / b
                }
            }
            BinOp::Rem => {
                if approx && b == 0.0 {
                    f64::NAN
                } else {
                    a % b
                }
            }
            // Comparisons on floats still produce ints.
            BinOp::Eq => return self.float_cmp(a == b, approx),
            BinOp::Ne => return self.float_cmp(a != b, approx),
            BinOp::Lt => return self.float_cmp(a < b, approx),
            BinOp::Le => return self.float_cmp(a <= b, approx),
            BinOp::Gt => return self.float_cmp(a > b, approx),
            BinOp::Ge => return self.float_cmp(a >= b, approx),
        };
        match (&self.mode, approx) {
            (_, false) => {
                if let ExecMode::Faulty(hw) = &self.mode {
                    hw.borrow_mut().precise_op(OpKind::Fp);
                }
                Value::Float(raw)
            }
            (ExecMode::Reliable, true) => Value::Float(raw),
            (ExecMode::Faulty(hw), true) => {
                let hw = Rc::clone(hw);
                let out = hw.borrow_mut().approx_f64_result(raw);
                Value::Float(out)
            }
            (ExecMode::Chaos { .. }, true) => self.chaos(Value::Float(raw)),
        }
    }

    fn float_cmp(&mut self, raw: bool, approx: bool) -> Value {
        match (&self.mode, approx) {
            (_, false) => {
                if let ExecMode::Faulty(hw) = &self.mode {
                    hw.borrow_mut().precise_op(OpKind::Fp);
                }
                Value::Int(i64::from(raw))
            }
            (ExecMode::Reliable, true) => Value::Int(i64::from(raw)),
            (ExecMode::Faulty(hw), true) => {
                let hw = Rc::clone(hw);
                let out = hw.borrow_mut().approx_cmp_result(raw, OpKind::Fp);
                Value::Int(i64::from(out))
            }
            (ExecMode::Chaos { .. }, true) => {
                let r = self.chaos_rng.as_mut().expect("chaos rng").gen_bool(0.5);
                Value::Int(i64::from(r))
            }
        }
    }
}

fn default_value(ty: &Type) -> Value {
    match ty.base {
        BaseType::Int => Value::Int(0),
        BaseType::Float => Value::Float(0.0),
        _ => Value::Null,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typecheck::check;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn eval_reliable(src: &str) -> Value {
        let tp = check(parse(src).unwrap()).unwrap();
        run(&tp, ExecMode::Reliable).unwrap().value
    }

    fn faulty_hw(level: Level, seed: u64) -> Rc<RefCell<Hardware>> {
        Rc::new(RefCell::new(Hardware::new(HwConfig::for_level(level), seed)))
    }

    #[test]
    fn arithmetic_and_let() {
        assert_eq!(eval_reliable("main { let x = 6 in x * 7 }"), Value::Int(42));
        assert_eq!(eval_reliable("main { 1.5 + 2.25 }"), Value::Float(3.75));
        assert_eq!(eval_reliable("main { 7 % 3 }"), Value::Int(1));
    }

    #[test]
    fn conditionals_branch_on_nonzero() {
        assert_eq!(eval_reliable("main { if (1 < 2) { 10 } else { 20 } }"), Value::Int(10));
        assert_eq!(eval_reliable("main { if (2 < 1) { 10 } else { 20 } }"), Value::Int(20));
    }

    #[test]
    fn objects_fields_and_methods() {
        let src = "
            class Counter extends Object {
                int n;
                int bump(int by) { this.n := this.n + by; this.n }
            }
            main {
                let c = new Counter() in
                c.bump(3);
                c.bump(4)
            }
        ";
        assert_eq!(eval_reliable(src), Value::Int(7));
    }

    #[test]
    fn recursion_terminates() {
        let src = "
            class Math extends Object {
                int fact(int n) {
                    if (n <= 1) { 1 } else { n * this.fact(n - 1) }
                }
            }
            main { new Math().fact(10) }
        ";
        assert_eq!(eval_reliable(src), Value::Int(3_628_800));
    }

    #[test]
    fn fuel_limits_runaway_recursion() {
        let src = "
            class Loop extends Object {
                int go() { this.go() }
            }
            main { new Loop().go() }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        let err = run_with_fuel(&tp, ExecMode::Reliable, 10_000).unwrap_err();
        assert_eq!(err, EvalError::OutOfFuel);
    }

    #[test]
    fn precise_division_by_zero_is_an_error() {
        let tp = check(parse("main { 1 / 0 }").unwrap()).unwrap();
        assert!(matches!(run(&tp, ExecMode::Reliable).unwrap_err(), EvalError::DivisionByZero(_)));
    }

    #[test]
    fn approximate_division_by_zero_never_traps() {
        // endorse(a / z) with approximate operands: returns 0 instead.
        let src = "
            class C extends Object { approx int a; approx int z; }
            main {
                let c = new C() in
                c.a := 7;
                endorse(c.a / c.z)
            }
        ";
        assert_eq!(eval_reliable(src), Value::Int(0));
    }

    #[test]
    fn null_dereference_reported() {
        let src = "
            class C extends Object { int x; }
            main { let c = (precise C) null in c.x }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        assert!(matches!(run(&tp, ExecMode::Reliable).unwrap_err(), EvalError::NullDereference(_)));
    }

    #[test]
    fn overload_dispatch_follows_instance_precision() {
        let src = "
            class FloatSet extends Object {
                float mean() { 1.0 }
                float mean() approx { 2.0 }
            }
            main { new approx FloatSet().mean() }
        ";
        assert_eq!(eval_reliable(src), Value::Float(2.0));
        let src_precise = "
            class FloatSet extends Object {
                float mean() { 1.0 }
                float mean() approx { 2.0 }
            }
            main { new FloatSet().mean() }
        ";
        assert_eq!(eval_reliable(src_precise), Value::Float(1.0));
    }

    #[test]
    fn virtual_dispatch_uses_runtime_class() {
        let src = "
            class A extends Object { int tag() { 1 } }
            class B extends A { int tag() { 2 } }
            main { ((precise A) new B()).tag() }
        ";
        assert_eq!(eval_reliable(src), Value::Int(2));
    }

    #[test]
    fn failed_downcast_is_a_runtime_error() {
        let src = "
            class A extends Object {}
            class B extends A {}
            main { (precise B) new A(); 0 }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        assert!(matches!(run(&tp, ExecMode::Reliable).unwrap_err(), EvalError::CastFailed(_, _)));
    }

    #[test]
    fn faulty_mode_counts_approx_and_precise_ops() {
        let src = "
            class C extends Object { approx int a; }
            main {
                let c = new C() in
                c.a := c.a + 1;
                1 + 2
            }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        let hw = faulty_hw(Level::Mild, 0);
        run(&tp, ExecMode::Faulty(Rc::clone(&hw))).unwrap();
        let stats = hw.borrow().stats();
        assert_eq!(stats.int_approx_ops, 1);
        assert_eq!(stats.int_precise_ops, 1);
    }

    #[test]
    fn faulty_mode_with_masked_strategies_is_exact() {
        let src = "
            class Acc extends Object {
                approx float total;
                float addn(int n) {
                    if (n == 0) { endorse(this.total) }
                    else { this.total := this.total + 1.5; this.addn(n - 1) }
                }
            }
            main { new Acc().addn(40) }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        let hw = Rc::new(RefCell::new(Hardware::new(cfg, 1)));
        let out = run(&tp, ExecMode::Faulty(hw)).unwrap();
        assert_eq!(out.value, Value::Float(60.0));
    }

    #[test]
    fn aggressive_faulty_mode_perturbs_float_sums() {
        let src = "
            class Acc extends Object {
                approx float total;
                float addn(int n) {
                    if (n == 0) { endorse(this.total) }
                    else { this.total := this.total + 1.015625; this.addn(n - 1) }
                }
            }
            main { new Acc().addn(60) }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        let hw = faulty_hw(Level::Aggressive, 7);
        let out = run(&tp, ExecMode::Faulty(hw)).unwrap();
        let Value::Float(total) = out.value else { panic!("expected float") };
        // With 8 mantissa bits, 1.015625 is representable but the running
        // sum loses low bits; the result must deviate from the exact sum.
        assert!((total - 60.9375).abs() > 1e-9 || total.is_nan());
    }

    #[test]
    fn chaos_mode_destroys_approximate_data_only() {
        let src = "
            class C extends Object { approx int a; int p; }
            main {
                let c = new C() in
                c.a := 1;
                c.p := 2;
                c.p
            }
        ";
        let tp = check(parse(src).unwrap()).unwrap();
        let out = run(&tp, ExecMode::Chaos { seed: 99 }).unwrap();
        assert_eq!(out.value, Value::Int(2), "precise field must survive chaos");
    }

    #[test]
    fn endorse_passes_value_through() {
        let src = "
            class C extends Object { approx int a; }
            main { let c = new C() in c.a := 41; endorse(c.a) + 1 }
        ";
        assert_eq!(eval_reliable(src), Value::Int(42));
    }

    #[test]
    fn context_instantiation_inherits_receiver_qualifier() {
        let src = "
            class Inner extends Object {
                float mean() { 1.0 }
                float mean() approx { 2.0 }
            }
            class Maker extends Object {
                float make() { (new context Inner()).mean() }
            }
            main {
                (new approx Maker()).make() + (new Maker()).make() * 10.0
            }
        ";
        // Approx maker creates an approx Inner (mean = 2.0); precise maker a
        // precise Inner (mean = 1.0): 2 + 1*10 = 12.
        assert_eq!(eval_reliable(src), Value::Float(12.0));
    }
}
