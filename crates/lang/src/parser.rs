//! Recursive-descent parser for FEnerJ.
//!
//! Concrete syntax, with `[...]` optional and `{...}*` repeated:
//!
//! ```text
//! program  := classdecl* "main" "{" expr "}"
//! classdecl:= "class" Cid ["extends" Cid] "{" member* "}"
//! member   := type Ident ";"                                  // field
//!           | type Ident "(" params ")" ["approx"] "{" expr "}" // method
//! type     := [qual] ("int" | "float" | Cid)                  // default precise
//! qual     := "precise" | "approx" | "top" | "context"
//! expr     := assign [";" expr]                               // sequencing
//! assign   := cmp [":=" assign]                               // field write
//! cmp      := add [("=="|"!="|"<"|"<="|">"|">=") add]
//! add      := mul {("+"|"-") mul}*
//! mul      := unary {("*"|"/"|"%") unary}*
//! unary    := "-" unary | postfix
//! postfix  := primary {"." Ident ["(" args ")"]}*
//! primary  := literal | Ident | "this" | "null"
//!           | "new" [qual] Cid "(" ")"
//!           | "endorse" "(" expr ")"
//!           | "let" Ident "=" expr "in" expr
//!           | "if" "(" expr ")" "{" expr "}" "else" "{" expr "}"
//!           | "(" qual Cid ")" unary                          // cast
//!           | "(" expr ")"
//! ```
//!
//! Casts always spell out the qualifier (`(precise C) e`), which keeps the
//! grammar unambiguous without Java's parse-tree backtracking.

use crate::ast::{
    BinOp, ClassDecl, Expr, ExprKind, FieldDecl, MethodDecl, MethodQual, NodeId, Program,
};
use crate::error::{ParseError, Span};
use crate::token::{lex, Spanned, Token};
use crate::types::{BaseType, Qual, Type};

/// Parses FEnerJ source text into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0, next_id: 0 };
    parser.program()
}

/// Parses a single expression (used by tests and the property harness).
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = lex(source)?;
    let mut parser = Parser { tokens, pos: 0, next_id: 0 };
    let e = parser.expr()?;
    parser.expect(&Token::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
    next_id: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].token
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Spanned {
        let t = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token) -> Result<Span, ParseError> {
        if self.peek() == want {
            Ok(self.bump().span)
        } else {
            Err(ParseError::new(self.span(), format!("expected `{want}`, found `{}`", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            other => {
                Err(ParseError::new(self.span(), format!("expected identifier, found `{other}`")))
            }
        }
    }

    fn node(&mut self, span: Span, kind: ExprKind) -> Expr {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        Expr { id, span, kind }
    }

    // ---- types ----

    fn qual_opt(&mut self) -> Option<Qual> {
        let q = match self.peek() {
            Token::Precise => Qual::Precise,
            Token::Approx => Qual::Approx,
            Token::Top => Qual::Top,
            Token::Context => Qual::Context,
            _ => return None,
        };
        self.bump();
        Some(q)
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        let qual = self.qual_opt().unwrap_or(Qual::Precise);
        let base = match self.peek().clone() {
            Token::Int => {
                self.bump();
                BaseType::Int
            }
            Token::Float => {
                self.bump();
                BaseType::Float
            }
            Token::Ident(name) => {
                self.bump();
                BaseType::Class(name)
            }
            other => {
                return Err(ParseError::new(
                    self.span(),
                    format!("expected a type, found `{other}`"),
                ))
            }
        };
        let mut ty = Type::new(qual, base);
        while *self.peek() == Token::LBracket && *self.peek2() == Token::RBracket {
            self.bump();
            self.bump();
            // The element type carries the written qualifier; the array
            // reference itself is precise (lengths and references carry
            // conventional guarantees, section 2.6).
            ty = Type::new(Qual::Precise, BaseType::Array(Box::new(ty)));
        }
        Ok(ty)
    }

    // ---- program structure ----

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut classes = Vec::new();
        while *self.peek() == Token::Class {
            classes.push(self.class_decl()?);
        }
        self.expect(&Token::Main)?;
        self.expect(&Token::LBrace)?;
        let main = self.expr()?;
        self.expect(&Token::RBrace)?;
        self.expect(&Token::Eof)?;
        Ok(Program { classes, main })
    }

    fn class_decl(&mut self) -> Result<ClassDecl, ParseError> {
        let start = self.expect(&Token::Class)?;
        let (name, _) = self.ident()?;
        let superclass = if *self.peek() == Token::Extends {
            self.bump();
            let (sup, _) = self.ident()?;
            Some(sup)
        } else {
            None
        };
        self.expect(&Token::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        while *self.peek() != Token::RBrace {
            let member_start = self.span();
            let ty = self.ty()?;
            let (member_name, _) = self.ident()?;
            if *self.peek() == Token::LParen {
                // Method.
                self.bump();
                let mut params = Vec::new();
                if *self.peek() != Token::RParen {
                    loop {
                        let pty = self.ty()?;
                        let (pname, _) = self.ident()?;
                        params.push((pname, pty));
                        if *self.peek() == Token::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                let qual = if *self.peek() == Token::Approx {
                    self.bump();
                    MethodQual::Approx
                } else {
                    MethodQual::Precise
                };
                self.expect(&Token::LBrace)?;
                let body = self.expr()?;
                let end = self.expect(&Token::RBrace)?;
                methods.push(MethodDecl {
                    ret: ty,
                    name: member_name,
                    params,
                    qual,
                    body,
                    span: member_start.merge(end),
                });
            } else {
                let end = self.expect(&Token::Semi)?;
                fields.push(FieldDecl { ty, name: member_name, span: member_start.merge(end) });
            }
        }
        let end = self.expect(&Token::RBrace)?;
        Ok(ClassDecl { name, superclass, fields, methods, span: start.merge(end) })
    }

    // ---- expressions ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let first = self.assign()?;
        if *self.peek() == Token::Semi {
            self.bump();
            let rest = self.expr()?;
            let span = first.span.merge(rest.span);
            Ok(self.node(span, ExprKind::Seq(Box::new(first), Box::new(rest))))
        } else {
            Ok(first)
        }
    }

    fn assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.cmp()?;
        if *self.peek() == Token::Assign {
            let at = self.span();
            self.bump();
            let rhs = self.assign()?;
            match lhs.kind {
                ExprKind::FieldGet(recv, field) => {
                    let span = lhs.span.merge(rhs.span);
                    Ok(self.node(span, ExprKind::FieldSet(recv, field, Box::new(rhs))))
                }
                ExprKind::Index(arr, idx) => {
                    let span = lhs.span.merge(rhs.span);
                    Ok(self.node(span, ExprKind::IndexSet(arr, idx, Box::new(rhs))))
                }
                ExprKind::Var(name) => {
                    let span = lhs.span.merge(rhs.span);
                    Ok(self.node(span, ExprKind::VarSet(name, Box::new(rhs))))
                }
                _ => Err(ParseError::new(
                    at,
                    "only variables, fields and array elements can be assigned with `:=`",
                )),
            }
        } else {
            Ok(lhs)
        }
    }

    fn cmp(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Token::EqEq => BinOp::Eq,
            Token::NotEq => BinOp::Ne,
            Token::Lt => BinOp::Lt,
            Token::Le => BinOp::Le,
            Token::Gt => BinOp::Gt,
            Token::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add()?;
        let span = lhs.span.merge(rhs.span);
        Ok(self.node(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs))))
    }

    fn add(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.node(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary()?;
            let span = lhs.span.merge(rhs.span);
            lhs = self.node(span, ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)));
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if *self.peek() == Token::Minus {
            let start = self.span();
            self.bump();
            let operand = self.unary()?;
            let span = start.merge(operand.span);
            // Desugar unary minus to `0 - e` / `0.0 - e` when the operand is
            // a literal; otherwise to integer subtraction from zero.
            let zero = match operand.kind {
                ExprKind::FloatLit(_) => ExprKind::FloatLit(0.0),
                _ => ExprKind::IntLit(0),
            };
            let zero = self.node(start, zero);
            return Ok(
                self.node(span, ExprKind::Binary(BinOp::Sub, Box::new(zero), Box::new(operand)))
            );
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if *self.peek() == Token::LBracket {
                self.bump();
                let index = self.expr()?;
                let end = self.expect(&Token::RBracket)?;
                let span = e.span.merge(end);
                e = self.node(span, ExprKind::Index(Box::new(e), Box::new(index)));
                continue;
            }
            if *self.peek() != Token::Dot {
                break;
            }
            self.bump();
            if *self.peek() == Token::Ident("length".to_owned()) {
                let (_, name_span) = self.ident()?;
                let span = e.span.merge(name_span);
                e = self.node(span, ExprKind::Length(Box::new(e)));
                continue;
            }
            let (name, name_span) = self.ident()?;
            if *self.peek() == Token::LParen {
                self.bump();
                let mut args = Vec::new();
                if *self.peek() != Token::RParen {
                    loop {
                        args.push(self.assign()?);
                        if *self.peek() == Token::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                let end = self.expect(&Token::RParen)?;
                let span = e.span.merge(end);
                e = self.node(span, ExprKind::Call(Box::new(e), name, args));
            } else {
                let span = e.span.merge(name_span);
                e = self.node(span, ExprKind::FieldGet(Box::new(e), name));
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Token::IntLit(v) => {
                self.bump();
                Ok(self.node(span, ExprKind::IntLit(v)))
            }
            Token::FloatLit(v) => {
                self.bump();
                Ok(self.node(span, ExprKind::FloatLit(v)))
            }
            Token::Null => {
                self.bump();
                Ok(self.node(span, ExprKind::Null))
            }
            Token::This => {
                self.bump();
                Ok(self.node(span, ExprKind::This))
            }
            Token::Ident(name) => {
                self.bump();
                Ok(self.node(span, ExprKind::Var(name)))
            }
            Token::New => {
                self.bump();
                let qual = self.qual_opt().unwrap_or(Qual::Precise);
                let base = match self.peek().clone() {
                    Token::Int => {
                        self.bump();
                        BaseType::Int
                    }
                    Token::Float => {
                        self.bump();
                        BaseType::Float
                    }
                    Token::Ident(name) => {
                        self.bump();
                        BaseType::Class(name)
                    }
                    other => {
                        return Err(ParseError::new(
                            self.span(),
                            format!("expected a type after `new`, found `{other}`"),
                        ))
                    }
                };
                if *self.peek() == Token::LBracket {
                    self.bump();
                    let len = self.expr()?;
                    let end = self.expect(&Token::RBracket)?;
                    let full = span.merge(end);
                    let elem = Type::new(qual, base);
                    return Ok(self.node(full, ExprKind::NewArray(elem, Box::new(len))));
                }
                let BaseType::Class(_) = base else {
                    return Err(ParseError::new(
                        self.span(),
                        "primitive `new` requires an array length in brackets",
                    ));
                };
                self.expect(&Token::LParen)?;
                let end = self.expect(&Token::RParen)?;
                let full = span.merge(end);
                Ok(self.node(full, ExprKind::New(Type::new(qual, base))))
            }
            Token::Endorse => {
                self.bump();
                self.expect(&Token::LParen)?;
                let inner = self.expr()?;
                let end = self.expect(&Token::RParen)?;
                let full = span.merge(end);
                Ok(self.node(full, ExprKind::Endorse(Box::new(inner))))
            }
            Token::Let => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(&Token::Eq)?;
                let value = self.assign()?;
                self.expect(&Token::In)?;
                let body = self.expr()?;
                let full = span.merge(body.span);
                Ok(self.node(full, ExprKind::Let(name, Box::new(value), Box::new(body))))
            }
            Token::While => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::LBrace)?;
                let body = self.expr()?;
                let end = self.expect(&Token::RBrace)?;
                let full = span.merge(end);
                Ok(self.node(full, ExprKind::While(Box::new(cond), Box::new(body))))
            }
            Token::If => {
                self.bump();
                self.expect(&Token::LParen)?;
                let cond = self.expr()?;
                self.expect(&Token::RParen)?;
                self.expect(&Token::LBrace)?;
                let then = self.expr()?;
                self.expect(&Token::RBrace)?;
                self.expect(&Token::Else)?;
                self.expect(&Token::LBrace)?;
                let els = self.expr()?;
                let end = self.expect(&Token::RBrace)?;
                let full = span.merge(end);
                Ok(self.node(full, ExprKind::If(Box::new(cond), Box::new(then), Box::new(els))))
            }
            Token::LParen => {
                // Either a cast `(qual C) e` or a parenthesized expression.
                if matches!(
                    self.peek2(),
                    Token::Precise | Token::Approx | Token::Top | Token::Context
                ) {
                    self.bump(); // (
                    let ty = self.ty()?;
                    self.expect(&Token::RParen)?;
                    let operand = self.unary()?;
                    let full = span.merge(operand.span);
                    Ok(self.node(full, ExprKind::Cast(ty, Box::new(operand))))
                } else {
                    self.bump();
                    let inner = self.expr()?;
                    self.expect(&Token::RParen)?;
                    Ok(inner)
                }
            }
            other => Err(ParseError::new(span, format!("expected an expression, found `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_program() {
        let p = parse("main { 1 + 2 }").unwrap();
        assert!(p.classes.is_empty());
        assert!(matches!(p.main.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Add, lhs, rhs) => {
                assert!(matches!(lhs.kind, ExprKind::IntLit(1)));
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_class_with_fields_and_methods() {
        let src = "
            class Pair extends Object {
                context int x;
                approx int hits;
                int getX() { this.x }
                float mean() approx { 1.0 }
            }
            main { new Pair().getX() }
        ";
        let p = parse(src).unwrap();
        assert_eq!(p.classes.len(), 1);
        let c = &p.classes[0];
        assert_eq!(c.superclass.as_deref(), Some("Object"));
        assert_eq!(c.fields.len(), 2);
        assert_eq!(c.fields[0].ty.qual, Qual::Context);
        assert_eq!(c.fields[1].ty.qual, Qual::Approx);
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[0].qual, MethodQual::Precise);
        assert_eq!(c.methods[1].qual, MethodQual::Approx);
    }

    #[test]
    fn parses_field_assignment() {
        let e = parse_expr("this.x := 5").unwrap();
        assert!(matches!(e.kind, ExprKind::FieldSet(_, _, _)));
    }

    #[test]
    fn assignment_targets() {
        // Variables, fields and array elements are assignable...
        assert!(matches!(parse_expr("x := 5").unwrap().kind, ExprKind::VarSet(_, _)));
        assert!(matches!(parse_expr("this.f := 5").unwrap().kind, ExprKind::FieldSet(_, _, _)));
        assert!(matches!(parse_expr("a[0] := 5").unwrap().kind, ExprKind::IndexSet(_, _, _)));
        // ...but arbitrary expressions are not.
        assert!(parse_expr("(1 + 2) := 5").is_err());
        assert!(parse_expr("f() := 5").is_err());
    }

    #[test]
    fn parses_let_if_seq_endorse() {
        let e = parse_expr("let x = 3 in if (x < 4) { endorse(x + 1) } else { 0 }; 9").unwrap();
        assert!(matches!(e.kind, ExprKind::Let(_, _, _)));
    }

    #[test]
    fn parses_new_with_qualifier() {
        let e = parse_expr("new approx Pair()").unwrap();
        match e.kind {
            ExprKind::New(ty) => assert_eq!(ty.qual, Qual::Approx),
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn parses_cast_and_parens() {
        let e = parse_expr("(approx Pair) x").unwrap();
        assert!(matches!(e.kind, ExprKind::Cast(_, _)));
        let e = parse_expr("(1 + 2) * 3").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn parses_unary_minus() {
        let e = parse_expr("-5").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary(BinOp::Sub, _, _)));
        let e = parse_expr("-5.5").unwrap();
        match e.kind {
            ExprKind::Binary(BinOp::Sub, z, _) => {
                assert!(matches!(z.kind, ExprKind::FloatLit(f) if f == 0.0));
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse_expr("1 < 2 < 3").is_err());
    }

    #[test]
    fn method_call_args() {
        let e = parse_expr("p.addToBoth(1, x.y)").unwrap();
        match e.kind {
            ExprKind::Call(_, name, args) => {
                assert_eq!(name, "addToBoth");
                assert_eq!(args.len(), 2);
            }
            other => panic!("wrong shape: {other:?}"),
        }
    }

    #[test]
    fn node_ids_are_unique() {
        let e = parse_expr("1 + 2 * 3 - 4").unwrap();
        let mut ids = Vec::new();
        fn collect(e: &Expr, ids: &mut Vec<u32>) {
            ids.push(e.id.0);
            if let ExprKind::Binary(_, a, b) = &e.kind {
                collect(a, ids);
                collect(b, ids);
            }
        }
        collect(&e, &mut ids);
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn reports_error_position() {
        let err = parse("main { 1 + }").unwrap_err();
        assert!(err.span.start >= 11);
    }
}
