//! Tokens and the FEnerJ lexer.

use crate::error::{ParseError, Span};
use std::fmt;

/// A lexical token of FEnerJ.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    // Literals and identifiers.
    /// Integer literal.
    IntLit(i64),
    /// Floating-point literal.
    FloatLit(f64),
    /// Identifier (variable, field, method or class name).
    Ident(String),

    // Keywords.
    /// `class`
    Class,
    /// `extends`
    Extends,
    /// `new`
    New,
    /// `this`
    This,
    /// `null`
    Null,
    /// `if`
    If,
    /// `else`
    Else,
    /// `let`
    Let,
    /// `in`
    In,
    /// `endorse`
    Endorse,
    /// `while`
    While,
    /// `main`
    Main,
    /// `int`
    Int,
    /// `float`
    Float,
    /// `precise`
    Precise,
    /// `approx`
    Approx,
    /// `top`
    Top,
    /// `context`
    Context,

    // Punctuation and operators.
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:=`
    Assign,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::IntLit(v) => write!(f, "{v}"),
            Token::FloatLit(v) => write!(f, "{v}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Class => write!(f, "class"),
            Token::Extends => write!(f, "extends"),
            Token::New => write!(f, "new"),
            Token::This => write!(f, "this"),
            Token::Null => write!(f, "null"),
            Token::If => write!(f, "if"),
            Token::Else => write!(f, "else"),
            Token::Let => write!(f, "let"),
            Token::In => write!(f, "in"),
            Token::Endorse => write!(f, "endorse"),
            Token::While => write!(f, "while"),
            Token::Main => write!(f, "main"),
            Token::Int => write!(f, "int"),
            Token::Float => write!(f, "float"),
            Token::Precise => write!(f, "precise"),
            Token::Approx => write!(f, "approx"),
            Token::Top => write!(f, "top"),
            Token::Context => write!(f, "context"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Semi => write!(f, ";"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Assign => write!(f, ":="),
            Token::Eq => write!(f, "="),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::EqEq => write!(f, "=="),
            Token::NotEq => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Where it came from.
    pub span: Span,
}

/// Tokenizes FEnerJ source text.
///
/// Line comments start with `//`; whitespace is insignificant.
///
/// # Errors
///
/// Returns a [`ParseError`] on unrecognized characters or malformed
/// numeric literals.
pub fn lex(source: &str) -> Result<Vec<Spanned>, ParseError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '[' => push(&mut tokens, Token::LBracket, start, &mut i),
            ']' => push(&mut tokens, Token::RBracket, start, &mut i),
            '{' => push(&mut tokens, Token::LBrace, start, &mut i),
            '}' => push(&mut tokens, Token::RBrace, start, &mut i),
            '(' => push(&mut tokens, Token::LParen, start, &mut i),
            ')' => push(&mut tokens, Token::RParen, start, &mut i),
            ';' => push(&mut tokens, Token::Semi, start, &mut i),
            ',' => push(&mut tokens, Token::Comma, start, &mut i),
            '.' => push(&mut tokens, Token::Dot, start, &mut i),
            '+' => push(&mut tokens, Token::Plus, start, &mut i),
            '-' => push(&mut tokens, Token::Minus, start, &mut i),
            '*' => push(&mut tokens, Token::Star, start, &mut i),
            '/' => push(&mut tokens, Token::Slash, start, &mut i),
            '%' => push(&mut tokens, Token::Percent, start, &mut i),
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Assign, span: Span::new(start, i) });
                } else {
                    return Err(ParseError::new(
                        Span::new(start, start + 1),
                        "expected ':=' after ':'",
                    ));
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::EqEq, span: Span::new(start, i) });
                } else {
                    push(&mut tokens, Token::Eq, start, &mut i);
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::NotEq, span: Span::new(start, i) });
                } else {
                    return Err(ParseError::new(
                        Span::new(start, start + 1),
                        "expected '!=' after '!'",
                    ));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Le, span: Span::new(start, i) });
                } else {
                    push(&mut tokens, Token::Lt, start, &mut i);
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Spanned { token: Token::Ge, span: Span::new(start, i) });
                } else {
                    push(&mut tokens, Token::Gt, start, &mut i);
                }
            }
            '0'..='9' => {
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && bytes[j + 1].is_ascii_digit()
                {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &source[i..j];
                let span = Span::new(i, j);
                let token = if is_float {
                    Token::FloatLit(
                        text.parse()
                            .map_err(|_| ParseError::new(span, "malformed float literal"))?,
                    )
                } else {
                    Token::IntLit(
                        text.parse()
                            .map_err(|_| ParseError::new(span, "integer literal out of range"))?,
                    )
                };
                tokens.push(Spanned { token, span });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &source[i..j];
                let token = match word {
                    "class" => Token::Class,
                    "extends" => Token::Extends,
                    "new" => Token::New,
                    "this" => Token::This,
                    "null" => Token::Null,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "let" => Token::Let,
                    "in" => Token::In,
                    "endorse" => Token::Endorse,
                    "while" => Token::While,
                    "main" => Token::Main,
                    "int" => Token::Int,
                    "float" => Token::Float,
                    "precise" => Token::Precise,
                    "approx" => Token::Approx,
                    "top" => Token::Top,
                    "context" => Token::Context,
                    _ => Token::Ident(word.to_owned()),
                };
                tokens.push(Spanned { token, span: Span::new(i, j) });
                i = j;
            }
            other => {
                return Err(ParseError::new(
                    Span::new(start, start + 1),
                    format!("unexpected character {other:?}"),
                ));
            }
        }
    }
    tokens.push(Spanned { token: Token::Eof, span: Span::new(bytes.len(), bytes.len()) });
    Ok(tokens)
}

fn push(tokens: &mut Vec<Spanned>, token: Token, start: usize, i: &mut usize) {
    *i += 1;
    tokens.push(Spanned { token, span: Span::new(start, *i) });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_keywords_and_identifiers() {
        assert_eq!(
            kinds("class Foo extends Bar"),
            vec![
                Token::Class,
                Token::Ident("Foo".into()),
                Token::Extends,
                Token::Ident("Bar".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn lexes_qualifiers() {
        assert_eq!(
            kinds("precise approx top context"),
            vec![Token::Precise, Token::Approx, Token::Top, Token::Context, Token::Eof]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![Token::IntLit(42), Token::Eof]);
        assert_eq!(kinds("3.25"), vec![Token::FloatLit(3.25), Token::Eof]);
        // A dot not followed by a digit is member access, not a float.
        assert_eq!(
            kinds("4.f"),
            vec![Token::IntLit(4), Token::Dot, Token::Ident("f".into()), Token::Eof]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a := b == c <= 1 != 2 >= 3 < >"),
            vec![
                Token::Ident("a".into()),
                Token::Assign,
                Token::Ident("b".into()),
                Token::EqEq,
                Token::Ident("c".into()),
                Token::Le,
                Token::IntLit(1),
                Token::NotEq,
                Token::IntLit(2),
                Token::Ge,
                Token::IntLit(3),
                Token::Lt,
                Token::Gt,
                Token::Eof
            ]
        );
    }

    #[test]
    fn skips_comments_and_whitespace() {
        assert_eq!(
            kinds("1 // a comment\n 2"),
            vec![Token::IntLit(1), Token::IntLit(2), Token::Eof]
        );
    }

    #[test]
    fn spans_point_at_source() {
        let toks = lex("let x").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 3));
        assert_eq!(toks[1].span, Span::new(4, 5));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("let # x").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("a : b").is_err());
    }
}
