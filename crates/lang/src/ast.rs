//! The abstract syntax of FEnerJ (paper Figure 1).
//!
//! The formal language is extended with two conveniences that desugar to
//! nothing interesting — `let x = e in e` and sequencing `e; e` — so that
//! realistic programs can be written; everything else matches Figure 1:
//! classes with fields and (receiver-precision-overloaded) methods, field
//! reads and writes, method invocation, casts, binary primitive operations
//! and conditionals. `endorse(e)` from full EnerJ (section 2.2) is included;
//! the non-interference property is stated for programs that do not use it.

use crate::error::Span;
use crate::types::Type;
use std::fmt;

/// A unique identifier assigned to every expression node by the parser;
/// the type checker stores each node's type and operator precision under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A binary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// Whether this operator is a comparison (result type `int`).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// Unique node id (the key into the checker's type tables).
    pub id: NodeId,
    /// Source span.
    pub span: Span,
    /// The syntactic form.
    pub kind: ExprKind,
}

/// The syntactic forms of expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// `null`
    Null,
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// Local variable or parameter read.
    Var(String),
    /// `this`
    This,
    /// `new q C()`
    New(Type),
    /// `new T[e]`: a new array of approximate or precise elements with a
    /// precise length (section 2.6).
    NewArray(Type, Box<Expr>),
    /// `e[e]`: array element read; the index must be precise.
    Index(Box<Expr>, Box<Expr>),
    /// `e[e] := e`: array element write.
    IndexSet(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `e.length`: the (always precise) array length.
    Length(Box<Expr>),
    /// `e.f`
    FieldGet(Box<Expr>, String),
    /// `e.f := e`
    FieldSet(Box<Expr>, String, Box<Expr>),
    /// `e.m(e, ...)`
    Call(Box<Expr>, String, Vec<Expr>),
    /// `(q C) e`
    Cast(Type, Box<Expr>),
    /// `e op e`
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `if (e) { e } else { e }`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let x = e in e` (bindings are mutable, as in Java)
    Let(String, Box<Expr>, Box<Expr>),
    /// `x := e`: assignment to a local variable.
    VarSet(String, Box<Expr>),
    /// `while (e) { e }`: loops while the (precise) condition is nonzero;
    /// evaluates to `0`.
    While(Box<Expr>, Box<Expr>),
    /// `e; e`
    Seq(Box<Expr>, Box<Expr>),
    /// `endorse(e)` — the explicit approximate→precise cast (section 2.2).
    Endorse(Box<Expr>),
}

/// A field declaration `T f;`.
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDecl {
    /// Declared type.
    pub ty: Type,
    /// Field name.
    pub name: String,
    /// Source span.
    pub span: Span,
}

/// The receiver precision a method body is written for (section 2.5.2).
///
/// `Precise` bodies are the default implementation; an `Approx` body is the
/// `_APPROX` overload, invoked when the receiver has approximate type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MethodQual {
    /// The default implementation.
    #[default]
    Precise,
    /// The `_APPROX` overload.
    Approx,
}

impl fmt::Display for MethodQual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodQual::Precise => f.write_str("precise"),
            MethodQual::Approx => f.write_str("approx"),
        }
    }
}

/// A method declaration `T m(T pid, ...) q { e }`.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodDecl {
    /// Return type.
    pub ret: Type,
    /// Method name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Receiver precision this body is written for.
    pub qual: MethodQual,
    /// The method body expression.
    pub body: Expr,
    /// Source span.
    pub span: Span,
}

/// A class declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// Superclass name, `None` for `Object`.
    pub superclass: Option<String>,
    /// Field declarations.
    pub fields: Vec<FieldDecl>,
    /// Method declarations.
    pub methods: Vec<MethodDecl>,
    /// Source span.
    pub span: Span,
}

/// A whole program: classes plus a main expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The class declarations.
    pub classes: Vec<ClassDecl>,
    /// The main expression, evaluated to run the program.
    pub main: Expr,
}

impl Program {
    /// Whether any expression in the program uses `endorse`.
    ///
    /// The non-interference theorem (section 3.3) is stated for
    /// endorsement-free programs.
    pub fn uses_endorse(&self) -> bool {
        fn walk(e: &Expr) -> bool {
            match &e.kind {
                ExprKind::Endorse(_) => true,
                ExprKind::Null
                | ExprKind::IntLit(_)
                | ExprKind::FloatLit(_)
                | ExprKind::Var(_)
                | ExprKind::This
                | ExprKind::New(_) => false,
                ExprKind::FieldGet(e0, _)
                | ExprKind::Cast(_, e0)
                | ExprKind::NewArray(_, e0)
                | ExprKind::Length(e0) => walk(e0),
                ExprKind::VarSet(_, e0) => walk(e0),
                ExprKind::FieldSet(e0, _, e1)
                | ExprKind::Binary(_, e0, e1)
                | ExprKind::Let(_, e0, e1)
                | ExprKind::Index(e0, e1)
                | ExprKind::While(e0, e1)
                | ExprKind::Seq(e0, e1) => walk(e0) || walk(e1),
                ExprKind::Call(e0, _, args) => walk(e0) || args.iter().any(walk),
                ExprKind::IndexSet(a, i, v) => walk(a) || walk(i) || walk(v),
                ExprKind::If(c, t, f) => walk(c) || walk(t) || walk(f),
            }
        }
        self.classes.iter().flat_map(|c| &c.methods).any(|m| walk(&m.body)) || walk(&self.main)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{BaseType, Qual};

    fn lit(id: u32, v: i64) -> Expr {
        Expr { id: NodeId(id), span: Span::default(), kind: ExprKind::IntLit(v) }
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Rem.is_comparison());
    }

    #[test]
    fn uses_endorse_detects_nested() {
        let inner = Expr {
            id: NodeId(2),
            span: Span::default(),
            kind: ExprKind::Endorse(Box::new(lit(1, 5))),
        };
        let prog = Program {
            classes: vec![],
            main: Expr {
                id: NodeId(3),
                span: Span::default(),
                kind: ExprKind::Seq(Box::new(lit(0, 1)), Box::new(inner)),
            },
        };
        assert!(prog.uses_endorse());
        let clean = Program { classes: vec![], main: lit(0, 1) };
        assert!(!clean.uses_endorse());
    }

    #[test]
    fn uses_endorse_looks_into_methods() {
        let m = MethodDecl {
            ret: Type::precise_int(),
            name: "m".into(),
            params: vec![],
            qual: MethodQual::Precise,
            body: Expr {
                id: NodeId(1),
                span: Span::default(),
                kind: ExprKind::Endorse(Box::new(lit(0, 3))),
            },
            span: Span::default(),
        };
        let prog = Program {
            classes: vec![ClassDecl {
                name: "C".into(),
                superclass: None,
                fields: vec![],
                methods: vec![m],
                span: Span::default(),
            }],
            main: lit(2, 0),
        };
        assert!(prog.uses_endorse());
    }

    #[test]
    fn type_display_in_new() {
        let t = Type::new(Qual::Approx, BaseType::Class("Pair".into()));
        assert_eq!(t.to_string(), "approx Pair");
    }
}
