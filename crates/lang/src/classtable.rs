//! The class table: hierarchy, field and method lookup with context
//! adaptation (the `FType` and `MSig` functions of section 3.1).

use std::collections::HashMap;

use crate::ast::{ClassDecl, MethodDecl, MethodQual, Program};
use crate::error::{Span, TypeError, TypeErrorKind};
use crate::types::{Qual, Type};

/// A method signature after context adaptation at a call site.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSig {
    /// Adapted parameter types.
    pub params: Vec<Type>,
    /// Adapted return type.
    pub ret: Type,
    /// Which body the call dispatches to (class, method index).
    pub target: (String, usize),
}

/// All classes of a program, indexed by name, with lookup helpers.
#[derive(Debug, Clone)]
pub struct ClassTable {
    classes: HashMap<String, ClassDecl>,
}

impl ClassTable {
    /// Builds and validates the class table: no duplicate classes, fields or
    /// incompatible method pairs; superclasses exist; the hierarchy is
    /// acyclic; `context` and user-written `lost`/`top` are used legally.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] describing the first violated condition.
    pub fn build(program: &Program) -> Result<ClassTable, TypeError> {
        let mut classes = HashMap::new();
        for class in &program.classes {
            if class.name == "Object" {
                return Err(TypeError::new(
                    TypeErrorKind::ObjectRedefined,
                    class.span,
                    "`Object` cannot be redefined",
                ));
            }
            if classes.insert(class.name.clone(), class.clone()).is_some() {
                return Err(TypeError::new(
                    TypeErrorKind::DuplicateClass,
                    class.span,
                    format!("duplicate class `{}`", class.name),
                ));
            }
        }
        let table = ClassTable { classes };
        table.check_hierarchy(program)?;
        table.check_members(program)?;
        Ok(table)
    }

    fn check_hierarchy(&self, program: &Program) -> Result<(), TypeError> {
        for class in &program.classes {
            if let Some(sup) = &class.superclass {
                if sup != "Object" && !self.classes.contains_key(sup) {
                    return Err(TypeError::new(
                        TypeErrorKind::UnknownSuperclass,
                        class.span,
                        format!("unknown superclass `{sup}` of `{}`", class.name),
                    ));
                }
            }
            // Walk up; a cycle would revisit the starting class.
            let mut seen = vec![class.name.clone()];
            let mut cur = class.superclass.clone();
            while let Some(name) = cur {
                if name == "Object" {
                    break;
                }
                if seen.contains(&name) {
                    return Err(TypeError::new(
                        TypeErrorKind::CyclicInheritance,
                        class.span,
                        format!("cyclic inheritance involving `{name}`"),
                    ));
                }
                seen.push(name.clone());
                cur = self.classes[&name].superclass.clone();
            }
        }
        Ok(())
    }

    fn check_members(&self, program: &Program) -> Result<(), TypeError> {
        for class in &program.classes {
            let mut field_names: Vec<&str> = Vec::new();
            for field in &class.fields {
                if field_names.contains(&field.name.as_str()) {
                    return Err(TypeError::new(
                        TypeErrorKind::DuplicateField,
                        field.span,
                        format!("duplicate field `{}` in `{}`", field.name, class.name),
                    ));
                }
                // No shadowing of superclass fields.
                if let Some(sup) = &class.superclass {
                    if self.field_decl(sup, &field.name).is_some() {
                        return Err(TypeError::new(
                            TypeErrorKind::FieldShadowing,
                            field.span,
                            format!("field `{}` shadows an inherited field", field.name),
                        ));
                    }
                }
                check_declared_type(&field.ty, field.span)?;
                field_names.push(&field.name);
            }
            let mut sigs: Vec<(&str, MethodQual)> = Vec::new();
            for method in &class.methods {
                let key = (method.name.as_str(), method.qual);
                if sigs.contains(&key) {
                    return Err(TypeError::new(
                        TypeErrorKind::DuplicateMethod,
                        method.span,
                        format!("duplicate {} implementation of `{}`", method.qual, method.name),
                    ));
                }
                sigs.push(key);
                check_declared_type(&method.ret, method.span)?;
                for (_, pty) in &method.params {
                    check_declared_type(pty, method.span)?;
                }
                // Overriding must preserve the declared signature so that
                // dynamic dispatch is type-preserving.
                if let Some(sup) = &class.superclass {
                    if let Some((_, inherited)) = self.method_decl(sup, &method.name, method.qual) {
                        let same = inherited.ret == method.ret
                            && inherited.params.len() == method.params.len()
                            && inherited.params.iter().zip(&method.params).all(|(a, b)| a.1 == b.1);
                        if !same {
                            return Err(TypeError::new(
                                TypeErrorKind::SignatureChangingOverride,
                                method.span,
                                format!("override of `{}` changes its signature", method.name),
                            ));
                        }
                    }
                }
                // An approx overload must match its precise sibling's
                // signature, since call sites dispatch on the receiver only.
                if method.qual == MethodQual::Approx {
                    if let Some((_, precise)) =
                        self.method_decl(&class.name, &method.name, MethodQual::Precise)
                    {
                        let same = precise.ret.base == method.ret.base
                            && precise.params.len() == method.params.len();
                        if !same {
                            return Err(TypeError::new(
                                TypeErrorKind::MismatchedApproxOverload,
                                method.span,
                                format!(
                                    "approx overload of `{}` must match the precise signature",
                                    method.name
                                ),
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Whether `name` denotes a known class (including `Object`).
    pub fn is_class(&self, name: &str) -> bool {
        name == "Object" || self.classes.contains_key(name)
    }

    /// The declared superclass of `name` (`None` for `Object`).
    pub fn superclass(&self, name: &str) -> Option<&str> {
        self.classes.get(name).map(|c| c.superclass.as_deref().unwrap_or("Object"))
    }

    /// Whether `sub` is a (reflexive, transitive) subclass of `sup`.
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        if sub == sup || sup == "Object" {
            return true;
        }
        let mut cur = self.superclass(sub);
        while let Some(name) = cur {
            if name == sup {
                return true;
            }
            cur = self.superclass(name);
        }
        false
    }

    /// The nearest common superclass of two classes.
    pub fn join_classes(&self, a: &str, b: &str) -> String {
        let mut cur = a.to_owned();
        loop {
            if self.is_subclass(b, &cur) {
                return cur;
            }
            match self.superclass(&cur) {
                Some(sup) => cur = sup.to_owned(),
                None => return "Object".to_owned(),
            }
        }
    }

    /// The raw (unadapted) declaration of field `f`, searching superclasses.
    pub fn field_decl(&self, class: &str, field: &str) -> Option<&Type> {
        let mut cur = Some(class);
        while let Some(name) = cur {
            if let Some(c) = self.classes.get(name) {
                if let Some(fd) = c.fields.iter().find(|fd| fd.name == field) {
                    return Some(&fd.ty);
                }
            }
            cur = self.superclass(name);
        }
        None
    }

    /// All fields of a class (inherited first), with their declaring class.
    pub fn all_fields(&self, class: &str) -> Vec<(String, Type)> {
        let mut chain = Vec::new();
        let mut cur = Some(class.to_owned());
        while let Some(name) = cur {
            if let Some(c) = self.classes.get(&name) {
                chain.push(c);
            }
            cur = self.superclass(&name).map(str::to_owned);
        }
        chain
            .iter()
            .rev()
            .flat_map(|c| c.fields.iter().map(|f| (f.name.clone(), f.ty.clone())))
            .collect()
    }

    /// `FType(q C, f)` (section 3.1): the context-adapted type of a field
    /// access through a receiver qualified `recv_qual`.
    pub fn ftype(&self, recv_qual: Qual, class: &str, field: &str) -> Option<Type> {
        self.field_decl(class, field).map(|t| t.adapt(recv_qual))
    }

    /// Finds the method body `(declaring class, decl)` that a call to
    /// `name` with receiver-precision `qual` dispatches to, walking up the
    /// hierarchy. Does **not** fall back between precisions; see
    /// [`ClassTable::select_method`].
    pub fn method_decl(
        &self,
        class: &str,
        name: &str,
        qual: MethodQual,
    ) -> Option<(String, &MethodDecl)> {
        let mut cur = Some(class.to_owned());
        while let Some(cname) = cur {
            if let Some(c) = self.classes.get(&cname) {
                if let Some(m) = c.methods.iter().find(|m| m.name == name && m.qual == qual) {
                    return Some((cname, m));
                }
            }
            cur = self.superclass(&cname).map(str::to_owned);
        }
        None
    }

    /// Selects the implementation a call dispatches to (section 2.5.2):
    /// approximate receivers prefer the `approx` overload and fall back to
    /// the precise body (best effort); all other receivers use the precise
    /// body.
    pub fn select_method(
        &self,
        recv_qual: Qual,
        class: &str,
        name: &str,
    ) -> Option<(String, &MethodDecl)> {
        if matches!(recv_qual, Qual::Approx) {
            if let Some(found) = self.method_decl(class, name, MethodQual::Approx) {
                return Some(found);
            }
        }
        self.method_decl(class, name, MethodQual::Precise)
    }

    /// `MSig(q C, m)` (section 3.1): the context-adapted signature of a
    /// call through a receiver of type `recv_qual class`.
    pub fn msig(&self, recv_qual: Qual, class: &str, name: &str) -> Option<MethodSig> {
        let (declaring, decl) = self.select_method(recv_qual, class, name)?;
        let idx = self.classes[&declaring]
            .methods
            .iter()
            .position(|m| std::ptr::eq(m, decl))
            .unwrap_or(0);
        Some(MethodSig {
            params: decl.params.iter().map(|(_, t)| t.adapt(recv_qual)).collect(),
            ret: decl.ret.adapt(recv_qual),
            target: (declaring, idx),
        })
    }
}

/// Declared types may not mention `lost` (it is internal) and may only use
/// `context` where there is an enclosing instance — which is everywhere a
/// declaration can appear in FEnerJ, so only `lost` is rejected here.
fn check_declared_type(ty: &Type, span: Span) -> Result<(), TypeError> {
    if ty.qual == Qual::Lost {
        return Err(TypeError::new(
            TypeErrorKind::LostInDeclaration,
            span,
            "`lost` cannot be written in programs",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn table(src: &str) -> Result<ClassTable, TypeError> {
        ClassTable::build(&parse(src).expect("parse"))
    }

    const PAIR: &str = "
        class Pair extends Object {
            context int x;
            context int y;
            approx int hits;
            int sum() { this.x + this.y }
            float mean() { 1.0 }
            float mean() approx { 2.0 }
        }
        class Triple extends Pair {
            context int z;
        }
        main { 0 }
    ";

    #[test]
    fn builds_and_answers_subclassing() {
        let t = table(PAIR).unwrap();
        assert!(t.is_subclass("Triple", "Pair"));
        assert!(t.is_subclass("Triple", "Object"));
        assert!(t.is_subclass("Pair", "Pair"));
        assert!(!t.is_subclass("Pair", "Triple"));
        assert_eq!(t.join_classes("Triple", "Pair"), "Pair");
        assert_eq!(t.join_classes("Pair", "Triple"), "Pair");
    }

    #[test]
    fn ftype_adapts_context_fields() {
        let t = table(PAIR).unwrap();
        let precise = t.ftype(Qual::Precise, "Pair", "x").unwrap();
        assert_eq!(precise.qual, Qual::Precise);
        let approx = t.ftype(Qual::Approx, "Pair", "x").unwrap();
        assert_eq!(approx.qual, Qual::Approx);
        // The paper's IntPair example: numAdditions stays approx regardless.
        let hits = t.ftype(Qual::Precise, "Pair", "hits").unwrap();
        assert_eq!(hits.qual, Qual::Approx);
        // Through a top receiver, context degrades to lost.
        let lost = t.ftype(Qual::Top, "Pair", "x").unwrap();
        assert_eq!(lost.qual, Qual::Lost);
    }

    #[test]
    fn inherited_fields_resolve() {
        let t = table(PAIR).unwrap();
        assert!(t.ftype(Qual::Precise, "Triple", "x").is_some());
        assert!(t.ftype(Qual::Precise, "Triple", "z").is_some());
        assert!(t.ftype(Qual::Precise, "Pair", "z").is_none());
        assert_eq!(t.all_fields("Triple").len(), 4);
    }

    #[test]
    fn method_selection_prefers_approx_for_approx_receivers() {
        let t = table(PAIR).unwrap();
        let (_, m) = t.select_method(Qual::Approx, "Pair", "mean").unwrap();
        assert_eq!(m.qual, MethodQual::Approx);
        let (_, m) = t.select_method(Qual::Precise, "Pair", "mean").unwrap();
        assert_eq!(m.qual, MethodQual::Precise);
        // Best effort: approx receiver falls back to the only (precise) body.
        let (_, m) = t.select_method(Qual::Approx, "Pair", "sum").unwrap();
        assert_eq!(m.qual, MethodQual::Precise);
    }

    #[test]
    fn rejects_duplicate_class_and_field() {
        assert!(table("class A extends Object {} class A extends Object {} main { 0 }").is_err());
        assert!(table("class A extends Object { int x; int x; } main { 0 }").is_err());
    }

    #[test]
    fn rejects_field_shadowing() {
        let err = table(
            "class A extends Object { int x; }
             class B extends A { int x; }
             main { 0 }",
        )
        .unwrap_err();
        assert!(err.message.contains("shadows"));
    }

    #[test]
    fn rejects_cyclic_hierarchy() {
        let err = table(
            "class A extends B {}
             class B extends A {}
             main { 0 }",
        )
        .unwrap_err();
        assert!(err.message.contains("cyclic"));
    }

    #[test]
    fn rejects_unknown_superclass() {
        assert!(table("class A extends Missing {} main { 0 }").is_err());
    }

    #[test]
    fn rejects_signature_changing_override() {
        let err = table(
            "class A extends Object { int m() { 0 } }
             class B extends A { float m() { 1.0 } }
             main { 0 }",
        )
        .unwrap_err();
        assert!(err.message.contains("override"));
    }

    #[test]
    fn rejects_mismatched_approx_overload() {
        let err = table(
            "class A extends Object {
                 int m() { 0 }
                 float m() approx { 1.0 }
             }
             main { 0 }",
        )
        .unwrap_err();
        assert!(err.message.contains("approx overload"));
    }

    #[test]
    fn rejects_redefining_object() {
        assert!(table("class Object extends Object {} main { 0 }").is_err());
    }
}
