//! `fenerjc` — the FEnerJ command-line driver.
//!
//! ```text
//! fenerjc check <file>                 type-check only
//! fenerjc run <file> [--level L] [--seed N]
//!                                      run (precise, or fault-injected at
//!                                      mild/medium/aggressive)
//! fenerjc chaos <file> [--seeds N]     verify non-interference adversarially
//! fenerjc print <file>                 parse and pretty-print
//! ```
//!
//! Exit code 0 on success, 1 on any reported failure — usable in test
//! harnesses and CI, like the paper's JSR 308 checker plugin.

use enerj_lang::interp::{run, ExecMode};
use enerj_lang::noninterference::check_non_interference;
use enerj_lang::{compile, pretty};
use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;

use enerj_hw::config::{HwConfig, Level};
use enerj_hw::Hardware;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fenerjc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "check" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            println!(
                "{path}: OK ({} class(es), main : {})",
                program.program.classes.len(),
                program.main_type()
            );
            Ok(())
        }
        "run" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            let mode = parse_mode(rest)?;
            let out = run(&program, mode).map_err(|e| e.to_string())?;
            println!("{}", out.value.describe());
            Ok(())
        }
        "chaos" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            let seeds = flag_value(rest, "--seeds")?.unwrap_or(50);
            check_non_interference(&program, 0..seeds).map_err(|e| e.to_string())?;
            println!("{path}: non-interference holds over {seeds} adversarial runs");
            Ok(())
        }
        "print" => {
            let (source, path) = read_source(rest)?;
            let program = enerj_lang::parser::parse(&source).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", pretty::program_to_string(&program));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: fenerjc <check|run|chaos|print> <file.fej> \
     [--level mild|medium|aggressive] [--seed N] [--seeds N]"
        .to_owned()
}

fn read_source(rest: &[String]) -> Result<(String, String), String> {
    let path = rest
        .iter()
        .find(|a| !a.starts_with("--") && !a.chars().all(|c| c.is_ascii_digit()))
        .ok_or_else(usage)?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok((source, path.clone()))
}

fn flag_value(rest: &[String], flag: &str) -> Result<Option<u64>, String> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let v = rest.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse().map(Some).map_err(|_| format!("{flag} needs an integer"))
        }
    }
}

fn parse_mode(rest: &[String]) -> Result<ExecMode, String> {
    let level = match rest.iter().position(|a| a == "--level") {
        None => return Ok(ExecMode::Reliable),
        Some(i) => rest.get(i + 1).ok_or("--level needs a value")?,
    };
    let level = match level.as_str() {
        "mild" => Level::Mild,
        "medium" => Level::Medium,
        "aggressive" => Level::Aggressive,
        other => return Err(format!("unknown level `{other}`")),
    };
    let seed = flag_value(rest, "--seed")?.unwrap_or(0);
    let hw = Rc::new(RefCell::new(Hardware::new(HwConfig::for_level(level), seed)));
    Ok(ExecMode::Faulty(hw))
}

/// Renders a compile error with line/column information.
fn diagnose(source: &str, path: &str, err: &enerj_lang::CompileError) -> String {
    let span = match err {
        enerj_lang::CompileError::Parse(e) => e.span,
        enerj_lang::CompileError::Type(e) => e.span,
    };
    let (line, col) = span.line_col(source);
    format!("{path}:{line}:{col}: {err}")
}
