//! `fenerjc` — the FEnerJ command-line driver.
//!
//! ```text
//! fenerjc check <file>                 type-check only
//! fenerjc run <file> [--level L] [--seed N] [--max-ops N] [--trace]
//!                    [--fault-log F]
//!                                      run (precise, or fault-injected at
//!                                      mild/medium/aggressive); `--max-ops`
//!                                      bounds execution so a fault-corrupted
//!                                      loop terminates with a diagnostic
//!                                      instead of hanging; `--trace` prints
//!                                      per-unit fault counters on stderr,
//!                                      `--fault-log` writes the NDJSON
//!                                      fault-event stream to F
//! fenerjc chaos <file> [--seeds N] [--max-ops N] [--trace] [--fault-log F]
//!                                      verify non-interference
//!                                      adversarially; `--trace` reports
//!                                      per-seed progress, `--fault-log`
//!                                      writes per-seed NDJSON records
//! fenerjc print <file>                 parse and pretty-print
//! ```
//!
//! Exit code 0 on success, 1 on any reported failure — usable in test
//! harnesses and CI, like the paper's JSR 308 checker plugin.

use enerj_lang::interp::{run_with_fuel, ExecMode, DEFAULT_FUEL};
use enerj_lang::noninterference::check_non_interference_with_fuel;
use enerj_lang::{compile, pretty};
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::rc::Rc;

use enerj_hw::config::{HwConfig, Level};
use enerj_hw::{Hardware, WatchdogTrip};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fenerjc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let (cmd, rest) = args.split_first().ok_or_else(usage)?;
    match cmd.as_str() {
        "check" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            println!(
                "{path}: OK ({} class(es), main : {})",
                program.program.classes.len(),
                program.main_type()
            );
            Ok(())
        }
        "run" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            let trace = has_flag(rest, "--trace");
            let fault_log = flag_string(rest, "--fault-log")?;
            let max_ops = flag_value(rest, "--max-ops")?;
            let hw = parse_hardware(rest)?;
            let mode = match &hw {
                None => ExecMode::Reliable,
                Some(hw) => {
                    if fault_log.is_some() {
                        hw.borrow_mut().enable_event_log();
                    }
                    if let Some(budget) = max_ops {
                        // The runtime watchdog hook: hardware op-ticks are
                        // bounded exactly like `Runtime::run_guarded`.
                        hw.borrow_mut().arm_watchdog(budget);
                    }
                    ExecMode::Faulty(Rc::clone(hw))
                }
            };
            // The interpreter's own step budget covers work the hardware
            // clock cannot see (reliable mode, precise-only loops).
            let fuel = max_ops.unwrap_or(DEFAULT_FUEL);
            enerj_hw::silence_watchdog_panics();
            let out = catch_unwind(AssertUnwindSafe(|| run_with_fuel(&program, mode, fuel)));
            if let Some(hw) = &hw {
                hw.borrow_mut().disarm_watchdog();
            }
            let out = match out {
                Ok(result) => result.map_err(|e| match (max_ops, e) {
                    (Some(budget), enerj_lang::error::EvalError::OutOfFuel) => {
                        op_budget_diagnostic(budget)
                    }
                    (_, e) => e.to_string(),
                })?,
                Err(payload) => match payload.downcast_ref::<WatchdogTrip>() {
                    Some(trip) => return Err(op_budget_diagnostic(trip.budget)),
                    None => std::panic::resume_unwind(payload),
                },
            };
            println!("{}", out.value.describe());
            match &hw {
                None => {
                    if trace {
                        eprintln!("fault counters: reliable mode, no faults injected");
                    }
                    if fault_log.is_some() {
                        eprintln!("fault log: reliable mode, nothing to record");
                    }
                }
                Some(hw) => {
                    if trace {
                        eprintln!("fault counters: {}", hw.borrow().fault_counters());
                    }
                    if let Some(log_path) = fault_log {
                        write_fault_log(&log_path, &hw.borrow_mut().take_event_log())?;
                    }
                }
            }
            Ok(())
        }
        "chaos" => {
            let (source, path) = read_source(rest)?;
            let program = compile(&source).map_err(|e| diagnose(&source, &path, &e))?;
            let seeds = flag_value(rest, "--seeds")?.unwrap_or(50);
            let trace = has_flag(rest, "--trace");
            let fault_log = flag_string(rest, "--fault-log")?;
            let max_ops = flag_value(rest, "--max-ops")?;
            let fuel = max_ops.unwrap_or(DEFAULT_FUEL);
            let check = |range: std::ops::Range<u64>| {
                check_non_interference_with_fuel(&program, range, fuel).map_err(|e| {
                    match (max_ops, &e) {
                        (Some(budget), e) if e.to_string().contains("step budget") => {
                            op_budget_diagnostic(budget)
                        }
                        _ => e.to_string(),
                    }
                })
            };
            if trace || fault_log.is_some() {
                // Per-seed loop: same seed set as the batched call, but each
                // seed is checked on its own so progress and outcomes can be
                // reported as they happen.
                let mut log = String::new();
                let mut first_failure = None;
                for s in 0..seeds {
                    let outcome = check(s..s + 1);
                    let interferes = outcome.is_err();
                    if let Err(e) = outcome {
                        first_failure.get_or_insert(e);
                    }
                    if fault_log.is_some() {
                        log.push_str(&format!("{{\"seed\":{s},\"interference\":{interferes}}}\n"));
                    }
                    if trace {
                        eprintln!(
                            "chaos: seed {s} ({}/{seeds}): {}",
                            s + 1,
                            if interferes { "INTERFERENCE" } else { "ok" }
                        );
                    }
                }
                if let Some(log_path) = &fault_log {
                    std::fs::write(log_path, &log).map_err(|e| format!("{log_path}: {e}"))?;
                    eprintln!("fault log: {} record(s) -> {log_path}", log.lines().count());
                }
                if let Some(failure) = first_failure {
                    return Err(failure);
                }
            } else {
                check(0..seeds)?;
            }
            println!("{path}: non-interference holds over {seeds} adversarial runs");
            Ok(())
        }
        "print" => {
            let (source, path) = read_source(rest)?;
            let program = enerj_lang::parser::parse(&source).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", pretty::program_to_string(&program));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: fenerjc <check|run|chaos|print> <file.fej> \
     [--level mild|medium|aggressive] [--seed N] [--seeds N] [--max-ops N] \
     [--trace] [--fault-log FILE]"
        .to_owned()
}

/// The watchdog/fuel diagnostic: same wording whichever mechanism fired.
fn op_budget_diagnostic(budget: u64) -> String {
    format!(
        "op budget exceeded: execution passed {budget} ops (see --max-ops); a \
             fault-corrupted loop bound is the usual cause"
    )
}

/// Flags that consume the following argument; their values must never be
/// mistaken for the source path.
const VALUE_FLAGS: [&str; 5] = ["--level", "--seed", "--seeds", "--fault-log", "--max-ops"];

fn read_source(rest: &[String]) -> Result<(String, String), String> {
    let mut skip_next = false;
    let mut path = None;
    for arg in rest {
        if skip_next {
            skip_next = false;
            continue;
        }
        if VALUE_FLAGS.contains(&arg.as_str()) {
            skip_next = true;
            continue;
        }
        if arg.starts_with("--") {
            continue;
        }
        path = Some(arg);
        break;
    }
    let path = path.ok_or_else(usage)?;
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Ok((source, path.clone()))
}

fn has_flag(rest: &[String], flag: &str) -> bool {
    rest.iter().any(|a| a == flag)
}

fn flag_value(rest: &[String], flag: &str) -> Result<Option<u64>, String> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let v = rest.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            v.parse().map(Some).map_err(|_| format!("{flag} needs an integer"))
        }
    }
}

fn flag_string(rest: &[String], flag: &str) -> Result<Option<String>, String> {
    match rest.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => {
            let v = rest.get(i + 1).ok_or_else(|| format!("{flag} needs a value"))?;
            Ok(Some(v.clone()))
        }
    }
}

/// Builds the fault-injected hardware when `--level` is given; `None` means
/// reliable execution.
fn parse_hardware(rest: &[String]) -> Result<Option<Rc<RefCell<Hardware>>>, String> {
    let level = match rest.iter().position(|a| a == "--level") {
        None => return Ok(None),
        Some(i) => rest.get(i + 1).ok_or("--level needs a value")?,
    };
    let level = match level.as_str() {
        "mild" => Level::Mild,
        "medium" => Level::Medium,
        "aggressive" => Level::Aggressive,
        other => return Err(format!("unknown level `{other}`")),
    };
    let seed = flag_value(rest, "--seed")?.unwrap_or(0);
    Ok(Some(Rc::new(RefCell::new(Hardware::new(HwConfig::for_level(level), seed)))))
}

/// Writes one NDJSON line per fault event, matching the campaign runner's
/// event-line vocabulary (minus the trial context, which a single run lacks).
fn write_fault_log(path: &str, events: &[enerj_hw::trace::FaultEvent]) -> Result<(), String> {
    let mut out = String::new();
    for e in events {
        out.push_str(&format!(
            "{{\"time\":{},\"unit\":\"{}\",\"width\":{},\"bits_flipped\":{}}}\n",
            e.time, e.kind, e.width, e.bits_flipped
        ));
    }
    std::fs::write(path, &out).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("fault log: {} event(s) -> {path}", events.len());
    Ok(())
}

/// Renders a compile error with line/column information.
fn diagnose(source: &str, path: &str, err: &enerj_lang::CompileError) -> String {
    let span = match err {
        enerj_lang::CompileError::Parse(e) => e.span,
        enerj_lang::CompileError::Type(e) => e.span,
    };
    let (line, col) = span.line_col(source);
    format!("{path}:{line}:{col}: {err}")
}
