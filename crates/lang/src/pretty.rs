//! Pretty-printing of FEnerJ programs back to concrete syntax.
//!
//! The printer produces text that re-parses to an equal AST (modulo node
//! ids and spans), which the property tests use as a round-trip check.

use crate::ast::{ClassDecl, Expr, ExprKind, MethodQual, Program};
use crate::types::{Qual, Type};
use std::fmt::Write as _;

/// Renders a whole program.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for class in &program.classes {
        class_to_string(class, &mut out);
    }
    out.push_str("main {\n    ");
    expr_to_string(&program.main, &mut out);
    out.push_str("\n}\n");
    out
}

/// Renders a single expression.
pub fn expr_to_display(expr: &Expr) -> String {
    let mut out = String::new();
    expr_to_string(expr, &mut out);
    out
}

fn type_to_string(ty: &Type) -> String {
    match &ty.base {
        crate::types::BaseType::Array(elem) => format!("{}[]", type_to_string(elem)),
        base if ty.qual == Qual::Precise => base.to_string(),
        base => format!("{} {base}", ty.qual),
    }
}

/// Renders a cast target. Unlike declarations, a cast is only recognized by
/// the parser when its qualifier is spelled out (`(precise C) e`), so the
/// qualifier is never omitted; array layers are peeled so the qualifier of
/// the innermost element type leads (`(approx int[]) e`, not the
/// unparseable `(precise approx int[]) e`).
fn cast_type_to_string(ty: &Type) -> String {
    let mut depth = 0;
    let mut cur = ty;
    while let crate::types::BaseType::Array(elem) = &cur.base {
        cur = elem;
        depth += 1;
    }
    format!("{} {}{}", cur.qual, cur.base, "[]".repeat(depth))
}

fn class_to_string(class: &ClassDecl, out: &mut String) {
    let _ = write!(out, "class {}", class.name);
    if let Some(sup) = &class.superclass {
        let _ = write!(out, " extends {sup}");
    }
    out.push_str(" {\n");
    for field in &class.fields {
        let _ = writeln!(out, "    {} {};", type_to_string(&field.ty), field.name);
    }
    for method in &class.methods {
        let _ = write!(out, "    {} {}(", type_to_string(&method.ret), method.name);
        for (i, (name, ty)) in method.params.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{} {name}", type_to_string(ty));
        }
        out.push(')');
        if method.qual == MethodQual::Approx {
            out.push_str(" approx");
        }
        out.push_str(" { ");
        expr_to_string(&method.body, out);
        out.push_str(" }\n");
    }
    out.push_str("}\n");
}

fn expr_to_string(expr: &Expr, out: &mut String) {
    match &expr.kind {
        ExprKind::Null => out.push_str("null"),
        ExprKind::IntLit(v) => {
            let _ = write!(out, "{v}");
        }
        ExprKind::FloatLit(v) => {
            if v.fract() == 0.0 && v.is_finite() {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::Var(name) => out.push_str(name),
        ExprKind::This => out.push_str("this"),
        ExprKind::New(ty) => {
            let _ = write!(out, "new {}()", type_to_string(ty));
        }
        ExprKind::NewArray(elem, len) => {
            let _ = write!(out, "new {}[", type_to_string(elem));
            expr_to_string(len, out);
            out.push(']');
        }
        ExprKind::Index(arr, idx) => {
            receiver(arr, out);
            out.push('[');
            expr_to_string(idx, out);
            out.push(']');
        }
        ExprKind::IndexSet(arr, idx, value) => {
            receiver(arr, out);
            out.push('[');
            expr_to_string(idx, out);
            out.push_str("] := ");
            paren(value, out);
        }
        ExprKind::Length(arr) => {
            receiver(arr, out);
            out.push_str(".length");
        }
        ExprKind::FieldGet(recv, field) => {
            receiver(recv, out);
            let _ = write!(out, ".{field}");
        }
        ExprKind::FieldSet(recv, field, value) => {
            receiver(recv, out);
            let _ = write!(out, ".{field} := ");
            paren(value, out);
        }
        ExprKind::Call(recv, name, args) => {
            receiver(recv, out);
            let _ = write!(out, ".{name}(");
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                paren(arg, out);
            }
            out.push(')');
        }
        ExprKind::Cast(ty, operand) => {
            let _ = write!(out, "({}) ", cast_type_to_string(ty));
            paren(operand, out);
        }
        ExprKind::Binary(op, lhs, rhs) => {
            paren(lhs, out);
            let _ = write!(out, " {op} ");
            paren(rhs, out);
        }
        ExprKind::If(cond, then, els) => {
            out.push_str("if (");
            expr_to_string(cond, out);
            out.push_str(") { ");
            expr_to_string(then, out);
            out.push_str(" } else { ");
            expr_to_string(els, out);
            out.push_str(" }");
        }
        ExprKind::Let(name, value, body) => {
            let _ = write!(out, "let {name} = ");
            paren(value, out);
            out.push_str(" in ");
            expr_to_string(body, out);
        }
        ExprKind::VarSet(name, value) => {
            let _ = write!(out, "{name} := ");
            paren(value, out);
        }
        ExprKind::While(cond, body) => {
            out.push_str("while (");
            expr_to_string(cond, out);
            out.push_str(") { ");
            expr_to_string(body, out);
            out.push_str(" }");
        }
        ExprKind::Seq(first, rest) => {
            paren(first, out);
            out.push_str("; ");
            expr_to_string(rest, out);
        }
        ExprKind::Endorse(inner) => {
            out.push_str("endorse(");
            expr_to_string(inner, out);
            out.push(')');
        }
    }
}

/// Prints compound expressions parenthesized so precedence is preserved.
fn paren(expr: &Expr, out: &mut String) {
    let needs = matches!(
        expr.kind,
        ExprKind::Binary(_, _, _)
            | ExprKind::If(_, _, _)
            | ExprKind::Let(_, _, _)
            | ExprKind::Seq(_, _)
            | ExprKind::Cast(_, _)
            | ExprKind::VarSet(_, _)
            | ExprKind::FieldSet(_, _, _)
            | ExprKind::IndexSet(_, _, _)
            | ExprKind::While(_, _)
    );
    if needs {
        out.push('(');
        expr_to_string(expr, out);
        out.push(')');
    } else {
        expr_to_string(expr, out);
    }
}

/// Prints a receiver (the `e` of `e.f`, `e.m(...)`, `e[...]`, `e.length`).
/// The grammar only admits postfix-level receivers, so anything parsed at a
/// looser precedence — including assignments, whose `:=` would otherwise
/// swallow the rest of the postfix chain — must be parenthesized.
fn receiver(expr: &Expr, out: &mut String) {
    let tight = matches!(
        expr.kind,
        ExprKind::Null
            | ExprKind::IntLit(_)
            | ExprKind::FloatLit(_)
            | ExprKind::Var(_)
            | ExprKind::This
            | ExprKind::New(_)
            | ExprKind::NewArray(_, _)
            | ExprKind::Index(_, _)
            | ExprKind::Length(_)
            | ExprKind::FieldGet(_, _)
            | ExprKind::Call(_, _, _)
            | ExprKind::Endorse(_)
    );
    if tight {
        expr_to_string(expr, out);
    } else {
        out.push('(');
        expr_to_string(expr, out);
        out.push(')');
    }
}

/// Structural equality of expressions ignoring node ids and spans.
pub fn expr_structurally_eq(a: &Expr, b: &Expr) -> bool {
    match (&a.kind, &b.kind) {
        (ExprKind::Null, ExprKind::Null) | (ExprKind::This, ExprKind::This) => true,
        (ExprKind::IntLit(x), ExprKind::IntLit(y)) => x == y,
        (ExprKind::FloatLit(x), ExprKind::FloatLit(y)) => x == y,
        (ExprKind::Var(x), ExprKind::Var(y)) => x == y,
        (ExprKind::New(x), ExprKind::New(y)) => x == y,
        (ExprKind::NewArray(t1, l1), ExprKind::NewArray(t2, l2)) => {
            t1 == t2 && expr_structurally_eq(l1, l2)
        }
        (ExprKind::Index(a1, i1), ExprKind::Index(a2, i2)) => {
            expr_structurally_eq(a1, a2) && expr_structurally_eq(i1, i2)
        }
        (ExprKind::IndexSet(a1, i1, v1), ExprKind::IndexSet(a2, i2, v2)) => {
            expr_structurally_eq(a1, a2)
                && expr_structurally_eq(i1, i2)
                && expr_structurally_eq(v1, v2)
        }
        (ExprKind::Length(a1), ExprKind::Length(a2)) => expr_structurally_eq(a1, a2),
        (ExprKind::FieldGet(r1, f1), ExprKind::FieldGet(r2, f2)) => {
            f1 == f2 && expr_structurally_eq(r1, r2)
        }
        (ExprKind::FieldSet(r1, f1, v1), ExprKind::FieldSet(r2, f2, v2)) => {
            f1 == f2 && expr_structurally_eq(r1, r2) && expr_structurally_eq(v1, v2)
        }
        (ExprKind::Call(r1, n1, a1), ExprKind::Call(r2, n2, a2)) => {
            n1 == n2
                && expr_structurally_eq(r1, r2)
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| expr_structurally_eq(x, y))
        }
        (ExprKind::Cast(t1, e1), ExprKind::Cast(t2, e2)) => {
            t1 == t2 && expr_structurally_eq(e1, e2)
        }
        (ExprKind::Binary(o1, l1, r1), ExprKind::Binary(o2, l2, r2)) => {
            o1 == o2 && expr_structurally_eq(l1, l2) && expr_structurally_eq(r1, r2)
        }
        (ExprKind::If(c1, t1, e1), ExprKind::If(c2, t2, e2)) => {
            expr_structurally_eq(c1, c2)
                && expr_structurally_eq(t1, t2)
                && expr_structurally_eq(e1, e2)
        }
        (ExprKind::Let(n1, v1, b1), ExprKind::Let(n2, v2, b2)) => {
            n1 == n2 && expr_structurally_eq(v1, v2) && expr_structurally_eq(b1, b2)
        }
        (ExprKind::VarSet(n1, v1), ExprKind::VarSet(n2, v2)) => {
            n1 == n2 && expr_structurally_eq(v1, v2)
        }
        (ExprKind::While(c1, b1), ExprKind::While(c2, b2)) => {
            expr_structurally_eq(c1, c2) && expr_structurally_eq(b1, b2)
        }
        (ExprKind::Seq(f1, r1), ExprKind::Seq(f2, r2)) => {
            expr_structurally_eq(f1, f2) && expr_structurally_eq(r1, r2)
        }
        (ExprKind::Endorse(e1), ExprKind::Endorse(e2)) => expr_structurally_eq(e1, e2),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    #[test]
    fn expr_roundtrips() {
        for src in [
            "1 + 2 * 3",
            "let x = 4 in x == 4",
            "new approx Pair()",
            "this.x := (1 + 2)",
            "endorse(a.val)",
            "if (x < 1) { 0 } else { p.m(1, 2.5) }",
            "(top C) o; null",
        ] {
            let original = parse_expr(src).unwrap();
            let printed = expr_to_display(&original);
            let reparsed = parse_expr(&printed)
                .unwrap_or_else(|e| panic!("reprint of {src:?} -> {printed:?} failed: {e}"));
            assert!(
                expr_structurally_eq(&original, &reparsed),
                "round-trip mismatch for {src:?}: printed {printed:?}"
            );
        }
    }

    #[test]
    fn program_roundtrips() {
        let src = "
            class Pair extends Object {
                context int x;
                approx float rate;
                context int getX() { this.x }
                float mean() approx { 2.0 }
            }
            main { new Pair().getX() }
        ";
        let original = parse(src).unwrap();
        let printed = program_to_string(&original);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{printed}\n{e}"));
        assert_eq!(original.classes.len(), reparsed.classes.len());
        assert!(expr_structurally_eq(&original.main, &reparsed.main));
        assert_eq!(original.classes[0].fields, {
            // Spans differ; compare names and types only.
            let f = &reparsed.classes[0].fields;
            original.classes[0]
                .fields
                .iter()
                .zip(f)
                .map(|(a, b)| {
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.ty, b.ty);
                    a.clone()
                })
                .collect::<Vec<_>>()
        });
    }
}
