//! The non-interference property (section 3.3), as an executable check.
//!
//! The paper proves that in endorsement-free FEnerJ programs, "changing
//! approximate values in the heap or runtime environment does not change the
//! precise parts of the heap or the result of the computation." This module
//! turns the theorem into a test harness: it runs a program once under the
//! reliable semantics and repeatedly under the *chaos* semantics — an
//! adversarial instantiation of the formal rule that any approximate value
//! may be replaced by any other value of its type — and verifies that every
//! precisely-typed observable agrees.
//!
//! The observables compared are the main expression's value (when its
//! static type is precise) and every precisely-typed primitive field of
//! every heap object, positionally matched (chaos does not change
//! allocation order because allocation is driven by precise control flow).

use crate::error::EvalError;
use crate::interp::{ExecMode, RunOutcome, Value};
use crate::typecheck::TypedProgram;
use crate::types::Qual;

/// Why a non-interference check could not be carried out or failed.
#[derive(Debug, Clone, PartialEq)]
pub enum NonInterferenceError {
    /// The program uses `endorse`, so the theorem does not apply.
    UsesEndorse,
    /// Evaluation failed (both semantics must converge for the comparison).
    Eval(String),
    /// A precise observable differed between reliable and chaos runs.
    Violation {
        /// Seed of the offending chaos run.
        seed: u64,
        /// Description of the differing observable.
        detail: String,
    },
}

impl std::fmt::Display for NonInterferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonInterferenceError::UsesEndorse => {
                write!(f, "program uses endorse; non-interference is not claimed")
            }
            NonInterferenceError::Eval(e) => write!(f, "evaluation failed: {e}"),
            NonInterferenceError::Violation { seed, detail } => {
                write!(f, "non-interference violated under chaos seed {seed}: {detail}")
            }
        }
    }
}

impl std::error::Error for NonInterferenceError {}

/// Checks non-interference for `program` over `seeds` adversarial runs.
///
/// # Errors
///
/// Returns [`NonInterferenceError::UsesEndorse`] for programs with
/// endorsements, [`NonInterferenceError::Eval`] if any run fails, and
/// [`NonInterferenceError::Violation`] if a precise observable differs.
pub fn check_non_interference(
    program: &TypedProgram,
    seeds: impl IntoIterator<Item = u64>,
) -> Result<(), NonInterferenceError> {
    check_non_interference_with_fuel(program, seeds, crate::interp::DEFAULT_FUEL)
}

/// [`check_non_interference`] with an explicit per-run step budget, so a
/// fault-corrupted (or simply divergent) program terminates with a
/// diagnostic instead of hanging the checker.
///
/// # Errors
///
/// As [`check_non_interference`]; a run that exhausts `fuel` surfaces as
/// [`NonInterferenceError::Eval`].
pub fn check_non_interference_with_fuel(
    program: &TypedProgram,
    seeds: impl IntoIterator<Item = u64>,
    fuel: u64,
) -> Result<(), NonInterferenceError> {
    if program.program.uses_endorse() {
        return Err(NonInterferenceError::UsesEndorse);
    }
    let reference = eval(program, ExecMode::Reliable, fuel)?;
    let main_is_precise = program.main_type().qual == Qual::Precise;
    for seed in seeds {
        let chaotic = eval(program, ExecMode::Chaos { seed }, fuel)?;
        if main_is_precise && !values_agree(&reference.value, &chaotic.value) {
            return Err(NonInterferenceError::Violation {
                seed,
                detail: format!(
                    "main result changed: {} vs {}",
                    reference.value.describe(),
                    chaotic.value.describe()
                ),
            });
        }
        compare_heaps(program, &reference, &chaotic, seed)?;
    }
    Ok(())
}

fn eval(
    program: &TypedProgram,
    mode: ExecMode,
    fuel: u64,
) -> Result<RunOutcome, NonInterferenceError> {
    crate::interp::run_with_fuel(program, mode, fuel)
        .map_err(|e: EvalError| NonInterferenceError::Eval(e.to_string()))
}

fn values_agree(a: &Value, b: &Value) -> bool {
    match (a, b) {
        // NaN-tolerant float equality: precise floats are bit-stable.
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

/// Compares the precise primitive fields of positionally-matched objects.
fn compare_heaps(
    program: &TypedProgram,
    reference: &RunOutcome,
    chaotic: &RunOutcome,
    seed: u64,
) -> Result<(), NonInterferenceError> {
    if reference.heap.len() != chaotic.heap.len() {
        return Err(NonInterferenceError::Violation {
            seed,
            detail: format!(
                "heap sizes differ: {} vs {}",
                reference.heap.len(),
                chaotic.heap.len()
            ),
        });
    }
    for (addr, entry) in reference.heap.iter().zip(&chaotic.heap).enumerate() {
        match entry {
            (crate::interp::HeapEntry::Object(r), crate::interp::HeapEntry::Object(c)) => {
                if r.class != c.class || r.qual != c.qual {
                    return Err(NonInterferenceError::Violation {
                        seed,
                        detail: format!("object {addr} identity differs"),
                    });
                }
                for (field, declared) in program.table.all_fields(&r.class) {
                    // A field's precision in this instance: context adapts
                    // to the instance qualifier.
                    let effective = match declared.qual {
                        Qual::Context => match r.qual {
                            crate::interp::RtQual::Approx => Qual::Approx,
                            crate::interp::RtQual::Precise => Qual::Precise,
                        },
                        q => q,
                    };
                    if effective != Qual::Precise || !declared.is_prim() {
                        continue;
                    }
                    let rv = r.fields.get(&field);
                    let cv = c.fields.get(&field);
                    let same = match (rv, cv) {
                        (Some(a), Some(b)) => values_agree(a, b),
                        (None, None) => true,
                        _ => false,
                    };
                    if !same {
                        return Err(NonInterferenceError::Violation {
                            seed,
                            detail: format!(
                                "precise field {}.{field} of object {addr} differs",
                                r.class
                            ),
                        });
                    }
                }
            }
            (crate::interp::HeapEntry::Array(r), crate::interp::HeapEntry::Array(c)) => {
                if r.values.len() != c.values.len() || r.elem_approx != c.elem_approx {
                    return Err(NonInterferenceError::Violation {
                        seed,
                        detail: format!("array {addr} shape differs"),
                    });
                }
                if r.elem_approx {
                    continue; // approximate elements make no promises
                }
                for (i, (a, b)) in r.values.iter().zip(&c.values).enumerate() {
                    if !values_agree(a, b) {
                        return Err(NonInterferenceError::Violation {
                            seed,
                            detail: format!("precise array element {addr}[{i}] differs"),
                        });
                    }
                }
            }
            _ => {
                return Err(NonInterferenceError::Violation {
                    seed,
                    detail: format!("heap entry {addr} kind differs"),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::typecheck::check;

    fn checked(src: &str) -> TypedProgram {
        check(parse(src).unwrap()).unwrap()
    }

    #[test]
    fn pure_precise_programs_trivially_interfere_not() {
        let tp = checked("main { 1 + 2 * 3 }");
        check_non_interference(&tp, 0..20).unwrap();
    }

    #[test]
    fn approximate_data_does_not_leak_into_precise_results() {
        // Approximate accumulation alongside precise accumulation: the
        // precise result must be identical no matter what the adversary
        // does to the approximate field.
        let src = "
            class W extends Object {
                approx float noise;
                int exact;
                int work(int n) {
                    if (n == 0) { this.exact }
                    else {
                        this.noise := this.noise + 0.5;
                        this.exact := this.exact + 2;
                        this.work(n - 1)
                    }
                }
            }
            main { new W().work(50) }
        ";
        let tp = checked(src);
        check_non_interference(&tp, 0..20).unwrap();
    }

    #[test]
    fn precise_heap_state_is_compared_too() {
        let src = "
            class S extends Object {
                int stored;
                approx int junk;
            }
            main {
                let s = new S() in
                s.stored := 7;
                s.junk := 3;
                0
            }
        ";
        let tp = checked(src);
        check_non_interference(&tp, 0..20).unwrap();
    }

    #[test]
    fn endorsing_programs_are_rejected() {
        let src = "
            class C extends Object { approx int a; }
            main { let c = new C() in endorse(c.a) }
        ";
        let tp = checked(src);
        assert_eq!(
            check_non_interference(&tp, 0..1).unwrap_err(),
            NonInterferenceError::UsesEndorse
        );
    }

    #[test]
    fn approximate_main_results_are_not_compared() {
        // A program whose main type is approximate makes no promise about
        // its value; the check must still pass (the heap has no precise
        // fields to violate).
        let src = "
            class C extends Object { approx int a; }
            main { let c = new C() in c.a := 5; c.a + 1 }
        ";
        let tp = checked(src);
        check_non_interference(&tp, 0..10).unwrap();
    }

    #[test]
    fn detects_a_hypothetical_violation() {
        // Sanity-check the harness itself: simulate a language bug by
        // comparing a program against a *different* chaos observable. We
        // build a program whose main is approximate, then forcibly claim it
        // precise by checking a modified twin. Instead of reaching into the
        // checker, we simply verify that chaos really does change
        // approximate results for this program.
        let src = "
            class C extends Object { approx int a; }
            main { let c = new C() in c.a := 5; c.a + 1 }
        ";
        let tp = checked(src);
        let reliable = crate::interp::run(&tp, ExecMode::Reliable).unwrap().value;
        let chaotic = crate::interp::run(&tp, ExecMode::Chaos { seed: 1 }).unwrap().value;
        assert_ne!(reliable, chaotic, "chaos must perturb approximate results");
    }
}
