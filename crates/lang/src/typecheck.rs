//! The FEnerJ precision type checker (section 3.1).
//!
//! Implements the typing rules of the paper's formal system: qualifier
//! subtyping (with the primitive-only `precise <: approx` axiom), context
//! adaptation at field and method boundaries, the prohibition on writing
//! through `lost`-qualified types, and the requirement that conditions have
//! type `precise int` — the rule that makes implicit flows impossible
//! (section 2.4).
//!
//! Checking produces a [`TypedProgram`]: the AST plus side tables giving
//! every expression's type and every operation's precision, which the
//! interpreter uses to decide which (possibly imprecise) functional unit a
//! binary operation executes on — including the bidirectional refinement of
//! section 2.3, where an operation whose result flows into an approximate
//! context is executed approximately even if both operands are precise.

use std::collections::HashMap;

use crate::ast::{Expr, ExprKind, NodeId, Program};
use crate::classtable::ClassTable;
use crate::error::{TypeError, TypeErrorKind};
use crate::types::{BaseType, Qual, Type};

/// A checked program: AST plus the checker's side tables.
#[derive(Debug, Clone)]
pub struct TypedProgram {
    /// The program.
    pub program: Program,
    /// The validated class table.
    pub table: ClassTable,
    /// The type of every expression node.
    pub types: HashMap<NodeId, Type>,
    /// For every `Binary` node, the qualifier its operation runs under:
    /// `Precise`, `Approx`, or `Context` (resolved against the enclosing
    /// instance at run time).
    pub op_prec: HashMap<NodeId, Qual>,
    /// For every `Call` node, the static qualifier of the receiver (drives
    /// the section 2.5.2 overload selection).
    pub call_recv_qual: HashMap<NodeId, Qual>,
    /// For every `FieldGet`/`FieldSet` node, the adapted qualifier of the
    /// accessed field (may be `Context`).
    pub field_qual: HashMap<NodeId, Qual>,
}

impl TypedProgram {
    /// The static type of the main expression.
    pub fn main_type(&self) -> &Type {
        &self.types[&self.program.main.id]
    }
}

/// Type-checks a parsed program.
///
/// # Errors
///
/// Returns the first [`TypeError`] found: an ill-formed class table, an
/// illegal approximate→precise flow, an approximate condition, a write
/// through `lost`, an unknown member, or an arity/type mismatch.
pub fn check(program: Program) -> Result<TypedProgram, TypeError> {
    let table = ClassTable::build(&program)?;
    let mut checker = Checker {
        table,
        types: HashMap::new(),
        op_prec: HashMap::new(),
        call_recv_qual: HashMap::new(),
        field_qual: HashMap::new(),
    };

    for class in &program.classes {
        for method in &class.methods {
            // The qualifier of `this` inside the body (section 2.5.2): a
            // body overloaded on receiver precision is only dispatched to
            // receivers of that precision, so `this` may assume it. A
            // method without an overloaded sibling serves every instance
            // and is checked generically, with `this : context C`.
            let has_sibling =
                class.methods.iter().any(|m| m.name == method.name && m.qual != method.qual);
            let this_qual = match (method.qual, has_sibling) {
                (crate::ast::MethodQual::Approx, _) => Qual::Approx,
                (crate::ast::MethodQual::Precise, true) => Qual::Precise,
                (crate::ast::MethodQual::Precise, false) => Qual::Context,
            };
            let mut env = Env::method(&class.name, this_qual, &method.params);
            let body_ty = checker.infer(&method.body, &mut env)?;
            // The body must produce the declared return type; the expected
            // type also drives the bidirectional refinement.
            checker.require_subtype(&body_ty, &method.ret, method.body.span)?;
            checker.bidirectional(&method.body, &method.ret);
        }
    }

    let mut env = Env::main();
    // No check that `main` avoids context types is needed: a context-typed
    // expression can only arise from `this`, `new context ...`, or member
    // access through a context-qualified receiver, and each of those is
    // rejected (or impossible, by induction on the receiver) outside a
    // class body.
    checker.infer(&program.main, &mut env)?;

    Ok(TypedProgram {
        program,
        table: checker.table,
        types: checker.types,
        op_prec: checker.op_prec,
        call_recv_qual: checker.call_recv_qual,
        field_qual: checker.field_qual,
    })
}

/// The static environment `sΓ`: local variables plus the current class.
struct Env {
    vars: Vec<(String, Type)>,
    current_class: Option<String>,
    this_qual: Qual,
}

impl Env {
    fn main() -> Env {
        Env { vars: Vec::new(), current_class: None, this_qual: Qual::Context }
    }

    fn method(class: &str, this_qual: Qual, params: &[(String, Type)]) -> Env {
        Env { vars: params.to_vec(), current_class: Some(class.to_owned()), this_qual }
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        self.vars.iter().rev().find(|(n, _)| n == name).map(|(_, t)| t)
    }
}

struct Checker {
    table: ClassTable,
    types: HashMap<NodeId, Type>,
    op_prec: HashMap<NodeId, Qual>,
    call_recv_qual: HashMap<NodeId, Qual>,
    field_qual: HashMap<NodeId, Qual>,
}

impl Checker {
    fn record(&mut self, e: &Expr, ty: Type) -> Type {
        self.types.insert(e.id, ty.clone());
        ty
    }

    /// Subtyping `T1 <: T2`: qualifier ordering plus subclassing; for
    /// primitives additionally `precise <: approx` (section 2.1); `null` is
    /// below every class and array type; arrays are invariant in their
    /// element type (standard soundness for mutable containers).
    fn is_subtype(&self, t1: &Type, t2: &Type) -> bool {
        match (&t1.base, &t2.base) {
            (BaseType::Null, BaseType::Class(_))
            | (BaseType::Null, BaseType::Array(_))
            | (BaseType::Null, BaseType::Null) => true,
            (b1, b2) if b1.is_prim() && b1 == b2 => prim_qual_sub(t1.qual, t2.qual),
            (BaseType::Class(c1), BaseType::Class(c2)) => {
                t1.qual.is_sub(t2.qual) && self.table.is_subclass(c1, c2)
            }
            (BaseType::Array(e1), BaseType::Array(e2)) => t1.qual.is_sub(t2.qual) && e1 == e2,
            _ => false,
        }
    }

    fn require_subtype(
        &self,
        t1: &Type,
        t2: &Type,
        span: crate::error::Span,
    ) -> Result<(), TypeError> {
        if self.is_subtype(t1, t2) {
            Ok(())
        } else {
            Err(TypeError::new(
                TypeErrorKind::NotASubtype,
                span,
                format!("`{t1}` is not a subtype of `{t2}`"),
            ))
        }
    }

    /// Least upper bound of two expression types, for joining `if` branches.
    fn lub(&self, t1: &Type, t2: &Type, span: crate::error::Span) -> Result<Type, TypeError> {
        match (&t1.base, &t2.base) {
            (b1, b2) if b1.is_prim() && b1 == b2 => {
                Ok(Type::new(t1.qual.lub_prim(t2.qual), b1.clone()))
            }
            (BaseType::Null, _) => Ok(t2.clone()),
            (_, BaseType::Null) => Ok(t1.clone()),
            (BaseType::Class(c1), BaseType::Class(c2)) => Ok(Type::new(
                t1.qual.lub(t2.qual),
                BaseType::Class(self.table.join_classes(c1, c2)),
            )),
            (BaseType::Array(e1), BaseType::Array(e2)) if e1 == e2 => {
                Ok(Type::new(t1.qual.lub(t2.qual), t1.base.clone()))
            }
            _ => Err(TypeError::new(
                TypeErrorKind::IncompatibleBranches,
                span,
                format!("branches have incompatible types `{t1}` and `{t2}`"),
            )),
        }
    }

    fn infer(&mut self, e: &Expr, env: &mut Env) -> Result<Type, TypeError> {
        let ty = match &e.kind {
            ExprKind::Null => Type::null(),
            ExprKind::IntLit(_) => Type::precise_int(),
            ExprKind::FloatLit(_) => Type::precise_float(),
            ExprKind::Var(name) => env.lookup(name).cloned().ok_or_else(|| {
                TypeError::new(
                    TypeErrorKind::UnknownVariable,
                    e.span,
                    format!("unknown variable `{name}`"),
                )
            })?,
            ExprKind::This => {
                let class = env.current_class.clone().ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::ThisOutsideClass,
                        e.span,
                        "`this` outside of a class body",
                    )
                })?;
                // `this` has @Context type in generic bodies (section
                // 3.1) and the overload's precision in overloaded bodies.
                Type::new(env.this_qual, BaseType::Class(class))
            }
            ExprKind::New(ty) => {
                let BaseType::Class(name) = &ty.base else {
                    return Err(TypeError::new(
                        TypeErrorKind::NewOfNonClass,
                        e.span,
                        "`new` requires a class type",
                    ));
                };
                if !self.table.is_class(name) {
                    return Err(TypeError::new(
                        TypeErrorKind::UnknownClass,
                        e.span,
                        format!("unknown class `{name}`"),
                    ));
                }
                match ty.qual {
                    Qual::Precise | Qual::Approx => {}
                    Qual::Context => {
                        if env.current_class.is_none() {
                            return Err(TypeError::new(
                                TypeErrorKind::ContextOutsideClass,
                                e.span,
                                "`new context` outside of a class body",
                            ));
                        }
                    }
                    q => {
                        return Err(TypeError::new(
                            TypeErrorKind::BadInstantiationQualifier,
                            e.span,
                            format!("cannot instantiate with qualifier `{q}`"),
                        ))
                    }
                }
                ty.clone()
            }
            ExprKind::NewArray(elem, len) => {
                match elem.qual {
                    Qual::Precise | Qual::Approx => {}
                    Qual::Context => {
                        if env.current_class.is_none() {
                            return Err(TypeError::new(
                                TypeErrorKind::ContextOutsideClass,
                                e.span,
                                "`new context T[...]` outside of a class body",
                            ));
                        }
                    }
                    q => {
                        return Err(TypeError::new(
                            TypeErrorKind::BadInstantiationQualifier,
                            e.span,
                            format!("cannot allocate array elements with qualifier `{q}`"),
                        ))
                    }
                }
                if let BaseType::Class(name) = &elem.base {
                    if !self.table.is_class(name) {
                        return Err(TypeError::new(
                            TypeErrorKind::UnknownClass,
                            e.span,
                            format!("unknown class `{name}`"),
                        ));
                    }
                }
                let lt = self.infer(len, env)?;
                if lt != Type::precise_int() {
                    return Err(TypeError::new(
                        TypeErrorKind::ImpreciseArrayLength,
                        len.span,
                        format!("array lengths must be `precise int`, got `{lt}`"),
                    ));
                }
                Type::new(Qual::Precise, BaseType::Array(Box::new(elem.clone())))
            }
            ExprKind::Index(arr, idx) => {
                let at = self.infer(arr, env)?;
                let BaseType::Array(elem) = &at.base else {
                    return Err(TypeError::new(
                        TypeErrorKind::NotAnArray,
                        arr.span,
                        format!("`{at}` is not an array"),
                    ));
                };
                let elem = (**elem).clone();
                let it = self.infer(idx, env)?;
                // "EnerJ prohibits approximate integers from being used as
                // array subscripts" (section 2.6).
                if it != Type::precise_int() {
                    return Err(TypeError::new(
                        TypeErrorKind::ImpreciseIndex,
                        idx.span,
                        format!(
                            "array indices must be `precise int`, got `{it}`; endorse it first"
                        ),
                    ));
                }
                self.field_qual.insert(e.id, elem.qual);
                elem
            }
            ExprKind::IndexSet(arr, idx, value) => {
                let at = self.infer(arr, env)?;
                let BaseType::Array(elem) = &at.base else {
                    return Err(TypeError::new(
                        TypeErrorKind::NotAnArray,
                        arr.span,
                        format!("`{at}` is not an array"),
                    ));
                };
                let elem = (**elem).clone();
                let it = self.infer(idx, env)?;
                if it != Type::precise_int() {
                    return Err(TypeError::new(
                        TypeErrorKind::ImpreciseIndex,
                        idx.span,
                        format!(
                            "array indices must be `precise int`, got `{it}`; endorse it first"
                        ),
                    ));
                }
                if elem.has_lost() {
                    return Err(TypeError::new(
                        TypeErrorKind::WriteThroughLost,
                        e.span,
                        "cannot write an array element whose adapted type lost precision information",
                    ));
                }
                let vt = self.infer(value, env)?;
                self.require_subtype(&vt, &elem, value.span)?;
                self.bidirectional(value, &elem);
                self.field_qual.insert(e.id, elem.qual);
                elem
            }
            ExprKind::Length(arr) => {
                let at = self.infer(arr, env)?;
                if !matches!(at.base, BaseType::Array(_)) {
                    return Err(TypeError::new(
                        TypeErrorKind::NotAnArray,
                        arr.span,
                        format!("`{at}` has no length; only arrays do"),
                    ));
                }
                // Lengths are always precise (section 2.6).
                Type::precise_int()
            }
            ExprKind::FieldGet(recv, field) => {
                let recv_ty = self.infer(recv, env)?;
                let (qual, class) = as_class(&recv_ty, recv.span)?;
                let ft = self.table.ftype(qual, &class, field).ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::UnknownField,
                        e.span,
                        format!("unknown field `{field}` on `{class}`"),
                    )
                })?;
                self.field_qual.insert(e.id, ft.qual);
                ft
            }
            ExprKind::FieldSet(recv, field, value) => {
                let recv_ty = self.infer(recv, env)?;
                let (qual, class) = as_class(&recv_ty, recv.span)?;
                let ft = self.table.ftype(qual, &class, field).ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::UnknownField,
                        e.span,
                        format!("unknown field `{field}` on `{class}`"),
                    )
                })?;
                if ft.has_lost() {
                    return Err(TypeError::new(
                        TypeErrorKind::WriteThroughLost,
                        e.span,
                        format!("cannot write field `{field}`: its adapted type lost precision information"),
                    ));
                }
                let vt = self.infer(value, env)?;
                self.require_subtype(&vt, &ft, value.span)?;
                self.bidirectional(value, &ft);
                self.field_qual.insert(e.id, ft.qual);
                ft
            }
            ExprKind::Call(recv, name, args) => {
                let recv_ty = self.infer(recv, env)?;
                let (qual, class) = as_class(&recv_ty, recv.span)?;
                let sig = self.table.msig(qual, &class, name).ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::UnknownMethod,
                        e.span,
                        format!("unknown method `{name}` on `{class}`"),
                    )
                })?;
                if args.len() != sig.params.len() {
                    return Err(TypeError::new(
                        TypeErrorKind::ArityMismatch,
                        e.span,
                        format!(
                            "`{name}` expects {} argument(s), got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                for (arg, pty) in args.iter().zip(&sig.params) {
                    if pty.has_lost() {
                        return Err(TypeError::new(
                            TypeErrorKind::LostParameter,
                            e.span,
                            format!("cannot call `{name}`: a parameter's adapted type lost precision information"),
                        ));
                    }
                    let at = self.infer(arg, env)?;
                    self.require_subtype(&at, pty, arg.span)?;
                    self.bidirectional(arg, pty);
                }
                self.call_recv_qual.insert(e.id, qual);
                sig.ret
            }
            ExprKind::Cast(target, operand) => {
                let ot = self.infer(operand, env)?;
                let BaseType::Class(tc) = &target.base else {
                    return Err(TypeError::new(
                        TypeErrorKind::CastTargetNotClass,
                        e.span,
                        "casts apply to class types",
                    ));
                };
                if !self.table.is_class(tc) {
                    return Err(TypeError::new(
                        TypeErrorKind::UnknownClass,
                        e.span,
                        format!("unknown class `{tc}`"),
                    ));
                }
                match &ot.base {
                    BaseType::Class(oc) => {
                        if !self.table.is_subclass(oc, tc) && !self.table.is_subclass(tc, oc) {
                            return Err(TypeError::new(
                                TypeErrorKind::UnrelatedCast,
                                e.span,
                                format!("classes `{oc}` and `{tc}` are unrelated"),
                            ));
                        }
                    }
                    BaseType::Null => {}
                    _ => {
                        return Err(TypeError::new(
                            TypeErrorKind::CastOfPrimitive,
                            e.span,
                            "cannot cast a primitive; use endorse",
                        ))
                    }
                }
                // Qualifier casts may only widen: endorsement is the sole
                // route from approx to precise.
                if !ot.qual.is_sub(target.qual) && ot.base != BaseType::Null {
                    return Err(TypeError::new(
                        TypeErrorKind::QualifierNarrowingCast,
                        e.span,
                        format!("cast cannot change qualifier `{}` to `{}`", ot.qual, target.qual),
                    ));
                }
                target.clone()
            }
            ExprKind::Binary(op, lhs, rhs) => {
                let lt = self.infer(lhs, env)?;
                let rt = self.infer(rhs, env)?;
                if !lt.is_prim() || !rt.is_prim() {
                    return Err(TypeError::new(
                        TypeErrorKind::NonPrimitiveOperands,
                        e.span,
                        format!(
                            "operator `{op}` requires primitive operands, got `{lt}` and `{rt}`"
                        ),
                    ));
                }
                for q in [lt.qual, rt.qual] {
                    if matches!(q, Qual::Top | Qual::Lost) {
                        return Err(TypeError::new(
                            TypeErrorKind::ComputeOnTopOrLost,
                            e.span,
                            format!("cannot compute on a `{q}`-qualified value; cast or endorse it first"),
                        ));
                    }
                }
                let qual = lt.qual.lub_prim(rt.qual);
                self.op_prec.insert(e.id, qual);
                // Binary numeric promotion, as in Java: int op float runs
                // in floating point.
                let promoted = if lt.base == BaseType::Float || rt.base == BaseType::Float {
                    BaseType::Float
                } else {
                    BaseType::Int
                };
                let base = if op.is_comparison() { BaseType::Int } else { promoted };
                Type::new(qual, base)
            }
            ExprKind::If(cond, then, els) => {
                let ct = self.infer(cond, env)?;
                // The condition must be a *precise* primitive (section 2.4):
                // approximate data may never decide control flow.
                if ct != Type::precise_int() {
                    return Err(TypeError::new(
                        TypeErrorKind::ImpreciseCondition,
                        cond.span,
                        format!(
                            "condition must have type `precise int`, got `{ct}`; \
                             wrap it in endorse(...) to accept the risk"
                        ),
                    ));
                }
                let tt = self.infer(then, env)?;
                let et = self.infer(els, env)?;
                self.lub(&tt, &et, e.span)?
            }
            ExprKind::Let(name, value, body) => {
                let vt = self.infer(value, env)?;
                if vt.qual == Qual::Lost {
                    return Err(TypeError::new(
                        TypeErrorKind::BindLost,
                        value.span,
                        "cannot bind a value whose type lost precision information",
                    ));
                }
                env.vars.push((name.clone(), vt));
                let bt = self.infer(body, env)?;
                env.vars.pop();
                bt
            }
            ExprKind::VarSet(name, value) => {
                let declared = env.lookup(name).cloned().ok_or_else(|| {
                    TypeError::new(
                        TypeErrorKind::UnknownVariable,
                        e.span,
                        format!("unknown variable `{name}`"),
                    )
                })?;
                let vt = self.infer(value, env)?;
                self.require_subtype(&vt, &declared, value.span)?;
                self.bidirectional(value, &declared);
                declared
            }
            ExprKind::While(cond, body) => {
                let ct = self.infer(cond, env)?;
                // Loop conditions are control flow: precise only
                // (section 2.4), exactly like `if`.
                if ct != Type::precise_int() {
                    return Err(TypeError::new(
                        TypeErrorKind::ImpreciseCondition,
                        cond.span,
                        format!(
                            "loop condition must have type `precise int`, got `{ct}`; \
                             wrap it in endorse(...) to accept the risk"
                        ),
                    ));
                }
                self.infer(body, env)?;
                Type::precise_int()
            }
            ExprKind::Seq(first, rest) => {
                self.infer(first, env)?;
                self.infer(rest, env)?
            }
            ExprKind::Endorse(inner) => {
                let it = self.infer(inner, env)?;
                if !it.is_prim() {
                    return Err(TypeError::new(
                        TypeErrorKind::EndorseOfNonPrimitive,
                        e.span,
                        "endorse applies to primitive types only",
                    ));
                }
                Type::new(Qual::Precise, it.base.clone())
            }
        };
        Ok(self.record(e, ty))
    }

    /// Bidirectional refinement (section 2.3): when an expression's value
    /// flows into an approximate context, its top-level arithmetic is
    /// re-tagged to run on the approximate unit even if both operands are
    /// precise. Applied at assignment right-hand sides, method arguments and
    /// return positions.
    fn bidirectional(&mut self, e: &Expr, expected: &Type) {
        if expected.qual != Qual::Approx {
            return;
        }
        if let ExprKind::Binary(_, _, _) = &e.kind {
            if let Some(q) = self.op_prec.get_mut(&e.id) {
                if *q == Qual::Precise {
                    *q = Qual::Approx;
                }
            }
        }
    }
}

fn prim_qual_sub(q1: Qual, q2: Qual) -> bool {
    q1.is_sub(q2) || q1 == Qual::Precise || (q1 == Qual::Context && q2 == Qual::Approx)
}

fn as_class(ty: &Type, span: crate::error::Span) -> Result<(Qual, String), TypeError> {
    match &ty.base {
        BaseType::Class(name) => Ok((ty.qual, name.clone())),
        BaseType::Null => {
            Err(TypeError::new(TypeErrorKind::NullReceiver, span, "receiver is statically null"))
        }
        _ => Err(TypeError::new(
            TypeErrorKind::NotAnObject,
            span,
            format!("`{ty}` is not an object type"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<TypedProgram, TypeError> {
        check(parse(src).expect("parse"))
    }

    fn main_ty(src: &str) -> Type {
        check_src(src).unwrap().main_type().clone()
    }

    #[test]
    fn literals_are_precise() {
        assert_eq!(main_ty("main { 42 }"), Type::precise_int());
        assert_eq!(main_ty("main { 4.5 }"), Type::precise_float());
    }

    #[test]
    fn let_propagates_types() {
        assert_eq!(main_ty("main { let x = 1 in x + x }"), Type::precise_int());
    }

    // The paper's core example: assigning approx to precise is illegal...
    #[test]
    fn approx_to_precise_flow_rejected() {
        let err = check_src(
            "class C extends Object {
                 approx int a;
                 int p;
             }
             main {
                 let c = new C() in
                 c.p := c.a
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("not a subtype"));
    }

    // ...but the reverse direction is subtyping...
    #[test]
    fn precise_to_approx_flow_allowed() {
        check_src(
            "class C extends Object {
                 approx int a;
                 int p;
             }
             main {
                 let c = new C() in
                 c.a := c.p
             }",
        )
        .unwrap();
    }

    // ...and endorse makes the illegal flow legal.
    #[test]
    fn endorse_permits_the_flow() {
        check_src(
            "class C extends Object {
                 approx int a;
                 int p;
             }
             main {
                 let c = new C() in
                 c.p := endorse(c.a)
             }",
        )
        .unwrap();
    }

    #[test]
    fn approximate_conditions_rejected() {
        // The paper's flag example (section 2.4).
        let err = check_src(
            "class C extends Object { approx int val; }
             main {
                 let c = new C() in
                 if (c.val == 5) { 1 } else { 0 }
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("precise int"));
    }

    #[test]
    fn endorsed_conditions_accepted() {
        check_src(
            "class C extends Object { approx int val; }
             main {
                 let c = new C() in
                 if (endorse(c.val == 5)) { 1 } else { 0 }
             }",
        )
        .unwrap();
    }

    #[test]
    fn comparison_of_approx_data_is_approx_int() {
        let tp = check_src(
            "class C extends Object { approx int val; }
             main { let c = new C() in c.val == 5 }",
        )
        .unwrap();
        assert_eq!(tp.main_type(), &Type::new(Qual::Approx, BaseType::Int));
    }

    #[test]
    fn context_fields_adapt_to_instance_qualifier() {
        // The paper's IntPair example (section 2.5.1).
        let src = "
            class IntPair extends Object {
                context int x;
                context int y;
                approx int numAdditions;
                context int getX() { this.x }
            }
            main {
                let a = new approx IntPair() in
                let p = new IntPair() in
                p.x := p.y
            }
        ";
        check_src(src).unwrap();
        // Writing an approximate instance's context field with precise data
        // is fine (precise <: approx)...
        check_src(
            "class IntPair extends Object { context int x; }
             main { let a = new approx IntPair() in a.x := 3 }",
        )
        .unwrap();
        // ...but its field cannot flow into a precise one.
        let err = check_src(
            "class IntPair extends Object { context int x; int p; }
             main { let a = new approx IntPair() in a.p := a.x }",
        )
        .unwrap_err();
        assert!(err.message.contains("not a subtype"));
    }

    #[test]
    fn context_write_through_top_receiver_rejected() {
        // FType adapts context to lost through a top receiver; writes
        // through lost are unsound and rejected (section 3.1).
        let err = check_src(
            "class C extends Object { context int x; }
             main {
                 let t = (top C) new C() in
                 t.x := 1
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("lost"));
    }

    #[test]
    fn reading_through_top_receiver_is_allowed() {
        // Reads of lost-typed fields are fine; the value can only flow on
        // into lost/top contexts.
        check_src(
            "class C extends Object { context int x; }
             main {
                 let t = (top C) new C() in
                 let v = endorse(t.x + 0) in 0
             }",
        )
        .unwrap_err(); // computing on lost is rejected...
        check_src(
            "class C extends Object { context int x; }
             main {
                 let t = (top C) new C() in
                 endorse(t.x)
             }",
        )
        .unwrap(); // ...but endorsing it is allowed.
    }

    #[test]
    fn qualifier_narrowing_cast_rejected() {
        let err = check_src(
            "class C extends Object {}
             main { (precise C) new approx C() }",
        )
        .unwrap_err();
        assert!(err.message.contains("qualifier"));
    }

    #[test]
    fn method_overloading_selects_by_receiver() {
        let src = "
            class FloatSet extends Object {
                float mean() { 1.0 }
                float mean() approx { 2.0 }
            }
            main { new approx FloatSet().mean() }
        ";
        let tp = check_src(src).unwrap();
        // The call's receiver qualifier is recorded for dispatch.
        let quals: Vec<_> = tp.call_recv_qual.values().collect();
        assert_eq!(quals, vec![&Qual::Approx]);
        // Return type of the approx overload through an approx receiver.
        assert_eq!(tp.main_type().base, BaseType::Float);
    }

    #[test]
    fn approx_receiver_makes_context_params_approx() {
        let src = "
            class Pair extends Object {
                context int x;
                int setX(context int v) { this.x := v; 0 }
            }
            class Holder extends Object { approx int a; }
            main {
                let p = new approx Pair() in
                let h = new Holder() in
                p.setX(h.a)
            }
        ";
        check_src(src).unwrap();
        // Through a precise receiver the same argument is rejected.
        let err = check_src(
            "class Pair extends Object {
                 context int x;
                 int setX(context int v) { this.x := v; 0 }
             }
             class Holder extends Object { approx int a; }
             main {
                 let p = new Pair() in
                 let h = new Holder() in
                 p.setX(h.a)
             }",
        )
        .unwrap_err();
        assert!(err.message.contains("not a subtype"));
    }

    #[test]
    fn branches_join_with_lub() {
        // precise int vs approx int joins at approx int.
        let tp = check_src(
            "class C extends Object { approx int a; }
             main {
                 let c = new C() in
                 if (1 < 2) { c.a } else { 3 }
             }",
        )
        .unwrap();
        assert_eq!(tp.main_type(), &Type::new(Qual::Approx, BaseType::Int));
    }

    #[test]
    fn class_branches_join_at_common_superclass() {
        let tp = check_src(
            "class A extends Object {}
             class B extends A {}
             class C extends A {}
             main { if (1 == 1) { new B() } else { new C() } }",
        )
        .unwrap();
        assert_eq!(tp.main_type().base, BaseType::Class("A".into()));
    }

    #[test]
    fn arithmetic_promotes_int_to_float() {
        // Binary numeric promotion, as in Java.
        let tp = check_src("main { 1 + 2.0 }").unwrap();
        assert_eq!(tp.main_type().base, BaseType::Float);
        assert!(check_src("main { 1.0 % 2.0 }").is_ok());
        // Objects are still not operands.
        assert!(check_src("class C extends Object {} main { new C() + 1 }").is_err());
    }

    #[test]
    fn bidirectional_refinement_marks_ops_approx() {
        // b + c with both precise, assigned into an approximate field:
        // the addition itself becomes approximate (section 2.3).
        let tp = check_src(
            "class C extends Object { approx int a; int b; int c; }
             main {
                 let c = new C() in
                 c.a := c.b + c.c
             }",
        )
        .unwrap();
        let approx_ops = tp.op_prec.values().filter(|q| **q == Qual::Approx).count();
        assert_eq!(approx_ops, 1, "the addition should be re-tagged approximate");
    }

    #[test]
    fn plain_precise_arithmetic_stays_precise() {
        let tp = check_src("main { 1 + 2 }").unwrap();
        assert_eq!(tp.op_prec.values().collect::<Vec<_>>(), vec![&Qual::Precise]);
    }

    #[test]
    fn unknown_names_are_reported() {
        assert!(check_src("main { x }").is_err());
        assert!(check_src("main { new Missing() }").is_err());
        assert!(check_src("class C extends Object {} main { new C().nope() }").is_err());
        assert!(check_src("class C extends Object {} main { new C().f }").is_err());
    }

    #[test]
    fn this_outside_class_rejected() {
        assert!(check_src("main { this }").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = check_src(
            "class C extends Object { int m(int x) { x } }
             main { new C().m() }",
        )
        .unwrap_err();
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn endorse_on_objects_rejected() {
        let err = check_src(
            "class C extends Object {}
             main { endorse(new C()); 0 }",
        )
        .unwrap_err();
        assert!(err.message.contains("primitive"));
    }
}
