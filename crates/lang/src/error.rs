//! Diagnostics for the FEnerJ front end and interpreter.

use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes the 1-based line and column of the span start in `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, c) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// An error produced while lexing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the error occurred.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `span`.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError { span, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The structural classification of a [`TypeError`].
///
/// Every rejection the class-table validator and the type checker can
/// produce has exactly one kind, so tools (the conformance fuzzer's
/// mutation oracle, diagnostic tests) can assert *which* rule fired
/// without string matching. The first block covers class-table
/// validation, the second expression checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TypeErrorKind {
    /// `class Object { ... }` — the root class cannot be redefined.
    ObjectRedefined,
    /// Two classes share a name.
    DuplicateClass,
    /// `extends` names a class that does not exist.
    UnknownSuperclass,
    /// The inheritance chain contains a cycle.
    CyclicInheritance,
    /// Two fields of one class share a name.
    DuplicateField,
    /// A field re-declares an inherited field's name.
    FieldShadowing,
    /// Two bodies of one class share a name and receiver precision.
    DuplicateMethod,
    /// An override changes the inherited signature.
    SignatureChangingOverride,
    /// An `approx` overload's shape differs from its precise sibling.
    MismatchedApproxOverload,
    /// A declaration spells the internal `lost` qualifier.
    LostInDeclaration,
    /// The general flow violation: `T1` is not a subtype of `T2`.
    NotASubtype,
    /// `if` branches have no common type.
    IncompatibleBranches,
    /// A variable is not in scope.
    UnknownVariable,
    /// `this` outside a class body.
    ThisOutsideClass,
    /// `new` of a non-class type (AST-level only; unparseable).
    NewOfNonClass,
    /// A type mentions an undeclared class.
    UnknownClass,
    /// `new context ...` outside a class body.
    ContextOutsideClass,
    /// `new top C()` or similar — only precise/approx/context instantiate.
    BadInstantiationQualifier,
    /// An array length that is not `precise int` (section 2.6).
    ImpreciseArrayLength,
    /// Indexing or `.length` on a non-array.
    NotAnArray,
    /// An array index that is not `precise int` (section 2.6).
    ImpreciseIndex,
    /// A write through a type that lost precision information.
    WriteThroughLost,
    /// No such field on the receiver's class.
    UnknownField,
    /// No such method on the receiver's class.
    UnknownMethod,
    /// A call with the wrong number of arguments.
    ArityMismatch,
    /// A call whose adapted parameter type lost precision information.
    LostParameter,
    /// A cast whose target is not a class type.
    CastTargetNotClass,
    /// A cast applied to a primitive operand (use `endorse`).
    CastOfPrimitive,
    /// A cast between unrelated classes.
    UnrelatedCast,
    /// A cast that would narrow the qualifier (only `endorse` may).
    QualifierNarrowingCast,
    /// A binary operator applied to non-primitive operands.
    NonPrimitiveOperands,
    /// Arithmetic on a `top`- or `lost`-qualified value.
    ComputeOnTopOrLost,
    /// An `if`/`while` condition that is not `precise int` (section 2.4).
    ImpreciseCondition,
    /// `let` binding a value whose type lost precision information.
    BindLost,
    /// Member access on a statically-`null` receiver.
    NullReceiver,
    /// Member access on a primitive receiver.
    NotAnObject,
    /// `endorse` applied to a non-primitive.
    EndorseOfNonPrimitive,
}

/// An error produced by the precision type checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// Where the error occurred.
    pub span: Span,
    /// Which rule rejected the program.
    pub kind: TypeErrorKind,
    /// Human-readable description.
    pub message: String,
}

impl TypeError {
    /// Creates a type error of `kind` at `span`.
    pub fn new(kind: TypeErrorKind, span: Span, message: impl Into<String>) -> Self {
        TypeError { span, kind, message: message.into() }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for TypeError {}

/// An error raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// Dereferenced `null`.
    NullDereference(Span),
    /// Precise integer division by zero (approximate division never traps).
    DivisionByZero(Span),
    /// A checked class cast failed at runtime.
    CastFailed(Span, String),
    /// An array was allocated with a negative length.
    BadArrayLength(Span, i64),
    /// An array access was out of bounds (always checked, section 2.6).
    IndexOutOfBounds(Span, i64, usize),
    /// The step budget was exhausted (runaway recursion).
    OutOfFuel,
    /// Internal invariant violation — indicates a checker bug.
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NullDereference(s) => {
                write!(f, "null dereference at byte {}", s.start)
            }
            EvalError::DivisionByZero(s) => {
                write!(f, "precise division by zero at byte {}", s.start)
            }
            EvalError::CastFailed(s, to) => {
                write!(f, "cast to {to} failed at byte {}", s.start)
            }
            EvalError::BadArrayLength(s, n) => {
                write!(f, "negative array length {n} at byte {}", s.start)
            }
            EvalError::IndexOutOfBounds(s, i, len) => {
                write!(f, "index {i} out of bounds (length {len}) at byte {}", s.start)
            }
            EvalError::OutOfFuel => write!(f, "evaluation exceeded its step budget"),
            EvalError::Internal(msg) => write!(f, "internal interpreter error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncde\nf";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(7, 8).line_col(src), (3, 1));
    }

    #[test]
    fn errors_display_nonempty() {
        assert!(!ParseError::new(Span::default(), "x").to_string().is_empty());
        let te = TypeError::new(TypeErrorKind::NotASubtype, Span::default(), "x");
        assert!(!te.to_string().is_empty());
        assert_eq!(te.kind, TypeErrorKind::NotASubtype);
        assert!(!EvalError::OutOfFuel.to_string().is_empty());
    }
}
