//! # enerj-lang: FEnerJ, the formal core of EnerJ
//!
//! This crate implements FEnerJ, the minimal language that *EnerJ:
//! Approximate Data Types for Safe and General Low-Power Computation*
//! (PLDI 2011) formalizes in section 3: a Featherweight-Java-style calculus
//! with precision qualifiers. It provides the full pipeline the paper's
//! pluggable checker provides for Java:
//!
//! * a [lexer](token) and a [`parser`] for the Figure 1 syntax
//!   (extended with `let` and `;` so realistic programs are writable);
//! * the [qualifier system](types): `precise`, `approx`, `top`, `context`
//!   and the internal `lost`, with the paper's subtyping and context
//!   adaptation rules;
//! * a [type checker](typecheck) enforcing the isolation guarantees —
//!   no approximate→precise flow without `endorse`, no approximate
//!   conditions, no writes through `lost`;
//! * a [big-step interpreter](interp) with reliable, fault-injecting
//!   (via [`enerj-hw`](enerj_hw)) and adversarial "chaos" semantics;
//! * an executable rendition of the paper's
//!   [non-interference theorem](noninterference) (section 3.3).
//!
//! ## Example
//!
//! ```
//! use enerj_lang::{compile, interp};
//!
//! let program = compile(
//!     "class C extends Object {
//!          approx int a;
//!          int p;
//!      }
//!      main {
//!          let c = new C() in
//!          c.a := 40;
//!          c.p := endorse(c.a + 2);
//!          c.p
//!      }",
//! )
//! .expect("well-typed");
//! let out = interp::run(&program, interp::ExecMode::Reliable).unwrap();
//! assert_eq!(out.value, interp::Value::Int(42));
//! ```
//!
//! The checker rejects the paper's canonical illegal flows:
//!
//! ```
//! use enerj_lang::compile;
//!
//! // Direct approximate-to-precise assignment (section 2.1).
//! let err = compile(
//!     "class C extends Object { approx int a; int p; }
//!      main { let c = new C() in c.p := c.a }",
//! )
//! .unwrap_err();
//! assert!(err.to_string().contains("not a subtype"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod classtable;
pub mod error;
pub mod interp;
pub mod noninterference;
pub mod parser;
pub mod pretty;
pub mod token;
pub mod typecheck;
pub mod types;

use std::fmt;

/// Any front-end failure: parsing or type checking.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical or syntactic failure.
    Parse(error::ParseError),
    /// Precision type checking failure.
    Type(error::TypeError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Type(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<error::ParseError> for CompileError {
    fn from(e: error::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

impl From<error::TypeError> for CompileError {
    fn from(e: error::TypeError) -> Self {
        CompileError::Type(e)
    }
}

/// Parses and type-checks FEnerJ source text.
///
/// # Errors
///
/// Returns the first parse or type error.
pub fn compile(source: &str) -> Result<typecheck::TypedProgram, CompileError> {
    let program = parser::parse(source)?;
    Ok(typecheck::check(program)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run, ExecMode, Value};

    #[test]
    fn compile_and_run_pipeline() {
        let tp = compile("main { let x = 3 in x * x + 1 }").unwrap();
        let out = run(&tp, ExecMode::Reliable).unwrap();
        assert_eq!(out.value, Value::Int(10));
    }

    #[test]
    fn errors_are_routed() {
        assert!(matches!(compile("main { 1 + }"), Err(CompileError::Parse(_))));
        assert!(matches!(compile("main { x }"), Err(CompileError::Type(_))));
    }
}
