//! Integration tests for the parallel trial-campaign subsystem: the
//! parallel runner must be bit-identical to the serial loop it replaced,
//! and a panicking trial must be contained instead of killing the
//! campaign.

use std::sync::Arc;

use enerj_apps::harness::{self, FAULT_SEED_BASE};
use enerj_apps::meta::AppMeta;
use enerj_apps::qos::{output_error, Output, QosMetric};
use enerj_apps::trials::{run_campaign, run_level_campaign, TrialSpec};
use enerj_apps::{all_apps, App};
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::stats::Stats;

fn app(name: &str) -> App {
    all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
}

/// The specs of the Figure 5 protocol for one app: `runs` seeds per level.
fn level_specs(app: &App, levels: &[Level], runs: u64) -> Vec<TrialSpec> {
    let reference = Arc::new(harness::reference(app).output);
    let mut specs = Vec::new();
    for level in levels {
        for i in 0..runs {
            specs.push(TrialSpec::scored(
                app,
                level.to_string(),
                HwConfig::for_level(*level),
                FAULT_SEED_BASE ^ i,
                Arc::clone(&reference),
            ));
        }
    }
    specs
}

/// The pre-campaign serial loop, hand-rolled: one `measure_with` +
/// `output_error` per spec, stats merged in order.
fn serial_baseline(specs: &[TrialSpec]) -> (Vec<f64>, Vec<Stats>, Stats) {
    let mut errors = Vec::new();
    let mut stats = Vec::new();
    let mut merged = Stats::new();
    for spec in specs {
        let m = harness::measure_with(&spec.app, spec.cfg, spec.seed);
        let err = match &spec.reference {
            Some(r) => output_error(spec.app.meta.metric, r, &m.output),
            None => 0.0,
        };
        errors.push(err);
        stats.push(m.stats);
        merged.merge(&m.stats);
    }
    (errors, stats, merged)
}

#[test]
fn parallel_campaign_is_bit_identical_to_the_serial_loop() {
    for name in ["FFT", "MonteCarlo", "jMonkeyEngine"] {
        let app = app(name);
        let specs = level_specs(&app, &[Level::Mild, Level::Aggressive], 3);
        let (serial_errors, serial_stats, serial_merged) = serial_baseline(&specs);
        for threads in [1, 4] {
            let report = run_campaign(&specs, threads);
            assert_eq!(report.trials.len(), specs.len(), "{name}");
            for (t, (se, ss)) in report.trials.iter().zip(serial_errors.iter().zip(&serial_stats)) {
                assert_eq!(
                    t.error.to_bits(),
                    se.to_bits(),
                    "{name}: trial {} error differs at {threads} threads",
                    t.index
                );
                assert_eq!(
                    t.stats, *ss,
                    "{name}: trial {} stats differ at {threads} threads",
                    t.index
                );
            }
            assert_eq!(
                report.merged_stats, serial_merged,
                "{name}: merged stats differ at {threads} threads"
            );
        }
    }
}

/// The SciMark kernels now run their inner loops on the batched
/// whole-slice API (see DESIGN.md "Batched kernels"); a campaign over them
/// must stay a deterministic function of `(config, seed, program)` — the
/// same trial-by-trial bits at every thread count and with fault telemetry
/// on or off, energy quanta included.
#[test]
fn batched_app_campaigns_are_bit_identical_across_threads_and_telemetry() {
    use enerj_apps::trials::{run_campaign_with, CampaignOptions};
    let mut specs = Vec::new();
    for name in ["FFT", "SOR", "LU"] {
        specs.extend(level_specs(&app(name), &[Level::Mild, Level::Aggressive], 2));
    }
    let baseline = run_campaign(&specs, 1);
    for threads in [1, 2, 4, 8] {
        for log_events in [false, true] {
            let report = run_campaign_with(
                &specs,
                &CampaignOptions { threads, log_events, ..CampaignOptions::default() },
            );
            assert_eq!(report.trials.len(), baseline.trials.len());
            for (t, b) in report.trials.iter().zip(&baseline.trials) {
                let what = format!(
                    "{}/{} trial {} at {threads} threads, telemetry {log_events}",
                    t.app, t.label, t.index
                );
                assert_eq!(t.error.to_bits(), b.error.to_bits(), "{what}: error");
                assert_eq!(t.stats, b.stats, "{what}: stats");
                assert_eq!(t.energy_quanta, b.energy_quanta, "{what}: quanta");
                assert_eq!(t.fault_counts, b.fault_counts, "{what}: fault counts");
            }
            assert_eq!(report.merged_stats, baseline.merged_stats);
            assert_eq!(report.energy_quanta_totals(), baseline.energy_quanta_totals());
        }
    }
}

#[test]
fn level_campaign_matches_per_level_serial_means() {
    let apps = [app("SOR"), app("MonteCarlo")];
    let report = run_level_campaign(&apps, &Level::ALL, 2, 4);
    for a in &apps {
        let reference = harness::reference(a).output;
        for level in Level::ALL {
            // The pre-campaign serial protocol, summed in run order.
            let mut total = 0.0;
            for i in 0..2u64 {
                let m = harness::approximate(a, level, FAULT_SEED_BASE ^ i);
                total += output_error(a.meta.metric, &reference, &m.output);
            }
            let serial = total / 2.0;
            let parallel = report.mean_error_for(a.meta.name, &level.to_string());
            assert_eq!(serial.to_bits(), parallel.to_bits(), "{} at {level}", a.meta.name);
        }
    }
}

fn panicking_run() -> Output {
    panic!("endorsed index perturbed out of bounds");
}

fn panicking_app() -> App {
    App {
        meta: AppMeta {
            name: "Panicker",
            description: "test-only app whose every run crashes",
            metric: QosMetric::MeanEntryDiff,
            source: "",
        },
        run: panicking_run,
        check: enerj_apps::no_check,
    }
}

#[test]
fn panicking_trial_is_contained_and_scored_worst_case() {
    let good = app("MonteCarlo");
    let reference = Arc::new(harness::reference(&good).output);
    let bad_reference = Arc::new(Output::Values(vec![0.0]));
    let mut specs = vec![
        TrialSpec::scored(
            &good,
            "Medium",
            HwConfig::for_level(Level::Medium),
            FAULT_SEED_BASE,
            Arc::clone(&reference),
        ),
        TrialSpec::scored(
            &panicking_app(),
            "Medium",
            HwConfig::for_level(Level::Medium),
            FAULT_SEED_BASE ^ 1,
            Arc::clone(&bad_reference),
        ),
        TrialSpec::scored(
            &good,
            "Medium",
            HwConfig::for_level(Level::Medium),
            FAULT_SEED_BASE ^ 2,
            Arc::clone(&reference),
        ),
    ];
    // The campaign must complete at every thread count, serial included.
    for threads in [1, 3] {
        let report = run_campaign(&specs, threads);
        assert_eq!(report.trials.len(), 3);
        assert_eq!(report.panic_count(), 1);
        let crashed = &report.trials[1];
        assert!(crashed.panicked());
        assert_eq!(crashed.error, 1.0, "crash scores worst-case QoS");
        assert_eq!(crashed.app, "Panicker");
        assert!(
            crashed.panic.as_deref().unwrap().contains("out of bounds"),
            "panic message recorded: {:?}",
            crashed.panic
        );
        // Crashed trials claim no savings and contribute no stats.
        assert_eq!(crashed.energy.total, 1.0);
        assert_eq!(crashed.stats, Stats::new());
        let good_stats = {
            let mut merged = Stats::new();
            merged.merge(&report.trials[0].stats);
            merged.merge(&report.trials[2].stats);
            merged
        };
        assert_eq!(report.merged_stats, good_stats);
        // The healthy trials are unaffected by their crashed neighbor.
        assert!(!report.trials[0].panicked());
        assert!(!report.trials[2].panicked());
        // JSON report records the panic.
        let json = report.to_json();
        assert!(json.contains("\"panics\":1"));
        assert!(json.contains("out of bounds"));
    }
    // Also contained when the panicking trial is last (a worker's final
    // pull) and when every trial panics.
    specs.rotate_left(1);
    let report = run_campaign(&specs, 2);
    assert_eq!(report.panic_count(), 1);
    let all_bad: Vec<TrialSpec> = (0..4)
        .map(|i| {
            TrialSpec::scored(
                &panicking_app(),
                "Medium",
                HwConfig::for_level(Level::Medium),
                FAULT_SEED_BASE ^ i,
                Arc::clone(&bad_reference),
            )
        })
        .collect();
    let report = run_campaign(&all_bad, 2);
    assert_eq!(report.panic_count(), 4);
    assert_eq!(report.mean_error(), 1.0);
    assert_eq!(report.merged_stats, Stats::new());
}

#[test]
fn mean_output_error_vs_survives_a_panicking_app() {
    // The ported harness entry point inherits the campaign's isolation: a
    // run that panics scores 1.0 instead of aborting the measurement.
    let bad = panicking_app();
    let reference = Output::Values(vec![0.0]);
    let err = harness::mean_output_error_vs(&bad, &reference, Level::Medium, 3);
    assert_eq!(err, 1.0);
}
