//! Deeper numerical validation of the benchmark ports, plus crash-freedom
//! under fault injection — the paper's annotation goal was that programs
//! "never fail catastrophically"; these tests enforce it for every app at
//! every level across many seeds.

use enerj_apps::qos::Output;
use enerj_apps::{all_apps, harness, workload};
use enerj_core::Runtime;
use enerj_hw::config::{HwConfig, Level, StrategyMask};

fn exact_rt() -> Runtime {
    Runtime::with_config(HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE), 0)
}

/// Parseval's theorem on the masked FFT: time-domain and frequency-domain
/// energies agree, so the transform is a real FFT, not a lookalike.
#[test]
fn fft_satisfies_parseval() {
    let rt = exact_rt();
    let Output::Values(spec) = rt.run(enerj_apps::scimark::fft::run) else {
        panic!("fft outputs values")
    };
    let n = enerj_apps::scimark::fft::N;
    let signal = workload::complex_signal(n);
    let (re, im) = (&signal.0, &signal.1);
    let time_energy: f64 = re.iter().zip(im.iter()).map(|(r, i)| r * r + i * i).sum();
    let freq_energy: f64 =
        (0..n).map(|k| spec[k] * spec[k] + spec[n + k] * spec[n + k]).sum::<f64>() / n as f64;
    assert!(
        (time_energy - freq_energy).abs() / time_energy < 1e-9,
        "Parseval violated: {time_energy} vs {freq_energy}"
    );
}

/// The SOR sweep is a contraction on this boundary problem: total heat
/// decreases monotonically toward the cold boundary.
#[test]
fn sor_dissipates_toward_the_cold_boundary() {
    let rt = exact_rt();
    let Output::Values(out) = rt.run(enerj_apps::scimark::sor::run) else {
        panic!("sor outputs values")
    };
    let initial: f64 = workload::sor_grid(enerj_apps::scimark::sor::N).iter().sum();
    let residual: f64 = out.iter().sum();
    assert!(residual < initial, "heat must flow out: {residual} vs {initial}");
    assert!(residual > 0.0);
}

/// LU validation: reconstruct a permuted copy of A from the packed
/// factors by forward substitution on unit vectors, then compare row sums
/// (a permutation-invariant functional of the matrix).
#[test]
fn lu_factors_preserve_row_sum_multiset() {
    let rt = exact_rt();
    let n = enerj_apps::scimark::lu::N;
    let Output::Values(lu) = rt.run(enerj_apps::scimark::lu::run) else {
        panic!("lu outputs values")
    };
    // Compute L·U (the row-permuted A) and collect its row sums.
    let mut reconstructed_sums: Vec<f64> = (0..n)
        .map(|r| {
            (0..n)
                .map(|c| {
                    let mut acc = 0.0;
                    for k in 0..n {
                        let l = if r > k {
                            lu[r * n + k]
                        } else if r == k {
                            1.0
                        } else {
                            0.0
                        };
                        let u = if k <= c { lu[k * n + c] } else { 0.0 };
                        acc += l * u;
                    }
                    acc
                })
                .sum()
        })
        .collect();
    let mut original_sums: Vec<f64> =
        (0..n).map(|r| workload::lu_matrix(n)[r * n..(r + 1) * n].iter().sum()).collect();
    reconstructed_sums.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    original_sums.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    for (a, b) in reconstructed_sums.iter().zip(&original_sums) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

/// A blank image must not decode to anything — the precise checksum phase
/// fails closed even when the approximate phase produces garbage.
#[test]
fn zxing_never_decodes_a_blank_image() {
    // Run the real decoder against a uniform image by driving the module
    // API through a fresh runtime and a white input.
    let rt = exact_rt();
    let out = rt.run(|| {
        // Reuse the benchmark path: a white image has no finder patterns.
        // The public entry point renders the true barcode, so instead this
        // test goes through the approximate pipeline indirectly: flood the
        // reference output shape with an impossible decode and verify the
        // binary metric sees it.
        enerj_apps::zxing::run()
    });
    // The clean benchmark decodes; this anchors the fail-closed tests in
    // the module itself (corrupted checksum / missing finder).
    assert_eq!(out, Output::Text(Some(enerj_apps::zxing::MESSAGE.to_owned())));
}

/// Raytracer pixels are physical intensities under masked execution.
#[test]
fn raytracer_pixels_are_bounded_when_masked() {
    let rt = exact_rt();
    let Output::Values(img) = rt.run(enerj_apps::raytracer::run) else {
        panic!("raytracer outputs values")
    };
    assert!(img.iter().all(|&v| (0.0..=1.2).contains(&v)), "intensities bounded");
}

/// The crash-freedom guarantee: every app, every level, many seeds — the
/// run must complete and produce a structurally well-formed output.
/// (The paper: "we attempted to annotate the programs in a way that never
/// causes them to crash ... each benchmark produces an output on every
/// run.")
#[test]
fn no_app_ever_crashes_under_fault_injection() {
    for app in all_apps() {
        let reference = harness::reference(&app).output;
        for level in Level::ALL {
            for seed in 0..8 {
                let m = harness::approximate(&app, level, 1000 + seed);
                match (&reference, &m.output) {
                    (Output::Values(r), Output::Values(o)) => {
                        assert_eq!(r.len(), o.len(), "{} at {level}", app.meta.name)
                    }
                    (Output::Decisions(r), Output::Decisions(o)) => {
                        assert_eq!(r.len(), o.len(), "{} at {level}", app.meta.name)
                    }
                    (Output::Text(_), Output::Text(_)) => {}
                    (r, o) => panic!("{}: shape changed: {r} vs {o}", app.meta.name),
                }
            }
        }
    }
}

/// Energy accounting is identical across seeds for apps whose control
/// flow never consults approximate data (fixed work), and nearly so for
/// the rest (endorsed conditions can reroute a few operations).
#[test]
fn energy_is_seed_stable() {
    let apps = all_apps();
    for name in ["FFT", "SOR", "SparseMatMult"] {
        let app = apps.iter().find(|a| a.meta.name == name).expect("registered");
        let a = harness::approximate(app, Level::Medium, 1).energy.total;
        let b = harness::approximate(app, Level::Medium, 2).energy.total;
        assert!(
            (a - b).abs() < 1e-9,
            "{name}: fixed-work energy varies with the fault seed: {a} vs {b}"
        );
    }
    for name in ["Raytracer", "MonteCarlo", "LU", "jMonkeyEngine"] {
        let app = apps.iter().find(|a| a.meta.name == name).expect("registered");
        let a = harness::approximate(app, Level::Medium, 1).energy.total;
        let b = harness::approximate(app, Level::Medium, 2).energy.total;
        assert!(
            (a - b).abs() < 0.01,
            "{name}: energy drifted more than endorsed branching explains: {a} vs {b}"
        );
    }
}
