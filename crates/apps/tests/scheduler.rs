//! Integration and property tests for the online significance-aware
//! scheduler: controller decisions must be a pure function of
//! `(spec index, drained-prefix state)` — bit-identical campaigns at any
//! thread count, chunk size, and telemetry setting — the budget verdict
//! must be honest, raising the budget must never lower aggregate QoS on
//! the same seeds, and the edge cases (zero budget, slack budget,
//! single-trial campaigns, recovery spend spikes) must all hold.

use std::sync::{Arc, OnceLock};

use enerj_apps::recovery::Policy;
use enerj_apps::scheduler::{
    profile_workload, run_scheduled, run_scheduled_streamed, AppProfile, SchedLevel, SchedOutcome,
    SchedulerConfig, Workload,
};
use enerj_apps::trials::{
    run_campaign_with, CampaignOptions, CampaignReport, TrialResult, VecSink,
};
use enerj_apps::{all_apps, App};
use enerj_hw::energy::QuantaMeter;
use enerj_hw::quanta::EnergyQuanta;
use proptest::prelude::*;

fn apps(names: &[&str]) -> Vec<App> {
    names
        .iter()
        .map(|n| all_apps().into_iter().find(|a| a.meta.name == *n).expect("registered"))
        .collect()
}

/// Everything the matrix tests share, computed once: a mixed workload, its
/// tuner-stream profiles, the exact all-Precise metered cost, and the
/// serial scheduled baseline at the headline 60% budget.
struct Fixture {
    workload: Workload,
    profiles: Vec<AppProfile>,
    precise_cost: EnergyQuanta,
    budget: EnergyQuanta,
    baseline: (CampaignReport, SchedOutcome),
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        // Three apps, eight runs each: 24 trials, epoch length 3 — enough
        // epochs for the controller to adapt mid-campaign.
        let workload = Workload::new(apps(&["FFT", "MonteCarlo", "SOR"]), 8);
        let opts = CampaignOptions::with_threads(2);
        let profiles = profile_workload(&workload, QuantaMeter::Sram, 2, &opts);
        let precise = run_campaign_with(&workload.static_specs(SchedLevel::Precise), &opts);
        let precise_cost = QuantaMeter::Sram.spent(&precise.energy_quanta_totals());
        let budget = EnergyQuanta::new(precise_cost.get() * 60 / 100);
        let baseline = run_scheduled(
            &workload,
            &profiles,
            &SchedulerConfig::new(budget),
            &CampaignOptions::with_threads(1),
        );
        Fixture { workload, profiles, precise_cost, budget, baseline }
    })
}

/// Budget as a percentage of the fixture's exact all-Precise metered cost.
fn pct_budget(pct: u128) -> EnergyQuanta {
    EnergyQuanta::new(fixture().precise_cost.get() * pct / 100)
}

/// Asserts two scheduled runs are bit-identical: every per-trial field
/// including the controller's level assignment, and every outcome
/// aggregate.
fn assert_identical(
    base_trials: &[TrialResult],
    base: &SchedOutcome,
    trials: &[TrialResult],
    outcome: &SchedOutcome,
    what: &str,
) {
    assert_eq!(trials.len(), base_trials.len(), "{what}: trial count");
    for (s, b) in trials.iter().zip(base_trials) {
        let where_ = format!("{what}: trial {}", b.index);
        assert_eq!(s.index, b.index, "{where_}: index");
        assert_eq!(s.seed, b.seed, "{where_}: seed");
        assert_eq!(s.scheduled_level, b.scheduled_level, "{where_}: scheduled level");
        assert_eq!(s.label, b.label, "{where_}: label");
        assert_eq!(s.error.to_bits(), b.error.to_bits(), "{where_}: error");
        assert_eq!(s.stats, b.stats, "{where_}: stats");
        assert_eq!(s.energy_quanta, b.energy_quanta, "{where_}: quanta");
        assert_eq!(s.fault_counts, b.fault_counts, "{where_}: fault counts");
        assert_eq!(s.panic, b.panic, "{where_}: panic");
        assert_eq!(s.attempts, b.attempts, "{where_}: attempts");
        assert_eq!(s.recovered_at_level, b.recovered_at_level, "{where_}: recovery rung");
    }
    assert_eq!(outcome.spent, base.spent, "{what}: metered spend");
    assert_eq!(outcome.budget_met, base.budget_met, "{what}: budget verdict");
    assert_eq!(outcome.level_counts, base.level_counts, "{what}: level census");
    assert_eq!(outcome.implausible, base.implausible, "{what}: implausible count");
    assert_eq!(
        outcome.summary.mean_error.to_bits(),
        base.summary.mean_error.to_bits(),
        "{what}: mean error"
    );
    assert_eq!(outcome.summary.merged_stats, base.summary.merged_stats, "{what}: merged stats");
    assert_eq!(outcome.summary.energy_quanta, base.summary.energy_quanta, "{what}: quanta totals");
}

/// The headline determinism property: scheduled campaigns are
/// bit-identical at any thread count × chunk size × telemetry setting.
#[test]
fn scheduled_campaign_is_bit_identical_across_threads_chunks_and_telemetry() {
    let fx = fixture();
    let (base_report, base_outcome) = &fx.baseline;
    let cfg = SchedulerConfig::new(fx.budget);
    for threads in [1usize, 2, 4, 8] {
        for chunk in [1usize, 3, 64] {
            for log_events in [false, true] {
                let opts =
                    CampaignOptions { threads, chunk, log_events, ..CampaignOptions::default() };
                let mut sink = VecSink::default();
                let outcome =
                    run_scheduled_streamed(&fx.workload, &fx.profiles, &cfg, &opts, &mut sink)
                        .expect("the in-memory sink cannot fail");
                let what = format!("{threads} threads, chunk {chunk}, telemetry {log_events}");
                assert_identical(&base_report.trials, base_outcome, &sink.trials, &outcome, &what);
            }
        }
    }
}

/// The headline budget property at the acceptance point: 60% of the exact
/// all-Precise metered cost is held, and the campaign actually uses the
/// ladder (neither all-Precise nor a degenerate all-Aggressive collapse).
#[test]
fn sixty_percent_budget_is_met_with_a_mixed_assignment() {
    let fx = fixture();
    let (report, outcome) = &fx.baseline;
    assert!(outcome.budget_met, "spent {} of budget {}", outcome.spent, outcome.budget);
    assert!(outcome.spent <= fx.budget);
    assert_eq!(report.budget_quanta, Some(fx.budget));
    assert_eq!(report.budget_met, Some(true));
    assert_eq!(report.trials.len(), fx.workload.len(), "campaign ran to completion");
    let census: [u64; 4] = outcome.level_counts.iter().fold([0; 4], |mut acc, c| {
        for (a, n) in acc.iter_mut().zip(c) {
            *a += n;
        }
        acc
    });
    assert!(census.iter().skip(1).any(|&n| n > 0), "something was degraded: {census:?}");
    assert!(outcome.qos() > 0.5, "aggregate QoS collapsed: {}", outcome.qos());
    for t in &report.trials {
        let name = t.scheduled_level.as_deref().expect("every scheduled trial carries its rung");
        assert!(SchedLevel::from_name(name).is_some(), "unknown rung {name:?}");
        assert_eq!(t.label, name, "the rung is the trial's label");
    }
}

/// Monotonicity: on the same seeds, raising the budget never lowers
/// aggregate QoS; and the budget invariant holds at every point of the
/// ladder. Deterministic campaigns make this a fixed, repeatable sweep.
#[test]
fn raising_the_budget_never_lowers_qos() {
    let fx = fixture();
    let opts = CampaignOptions::with_threads(2);
    let mut last_qos: Option<f64> = None;
    for pct in [0u128, 25, 50, 75, 100, 120] {
        let budget = pct_budget(pct);
        let (report, outcome) =
            run_scheduled(&fx.workload, &fx.profiles, &SchedulerConfig::new(budget), &opts);
        assert_eq!(report.trials.len(), fx.workload.len(), "{pct}%: completes");
        assert_eq!(
            outcome.budget_met,
            outcome.spent <= budget,
            "{pct}%: verdict is exactly the invariant"
        );
        let qos = outcome.qos();
        if let Some(prev) = last_qos {
            assert!(qos >= prev, "{pct}%: QoS {qos} fell below the previous rung's {prev}");
        }
        last_qos = Some(qos);
    }
}

/// Zero budget: everything is degraded to Aggressive, and the campaign
/// still runs to completion with an honest (false) verdict.
#[test]
fn zero_budget_degrades_everything_and_completes() {
    let fx = fixture();
    let (report, outcome) = run_scheduled(
        &fx.workload,
        &fx.profiles,
        &SchedulerConfig::new(EnergyQuanta::ZERO),
        &CampaignOptions::with_threads(4),
    );
    assert_eq!(report.trials.len(), fx.workload.len(), "zero budget still completes");
    assert!(!outcome.budget_met, "nothing fits in a zero budget");
    for (a, census) in outcome.level_counts.iter().enumerate() {
        assert_eq!(census[0] + census[1] + census[2], 0, "app {a}: nothing above Aggressive");
        assert_eq!(census[3], fx.workload.runs, "app {a}: every trial at Aggressive");
    }
    for t in &report.trials {
        assert_eq!(t.scheduled_level.as_deref(), Some("Aggressive"));
    }
}

/// A budget above the all-Precise cost: the scheduler never degrades, and
/// the precise rung reproduces every reference bit-for-bit (zero error).
#[test]
fn slack_budget_never_degrades() {
    let fx = fixture();
    let (report, outcome) = run_scheduled(
        &fx.workload,
        &fx.profiles,
        &SchedulerConfig::new(pct_budget(120)),
        &CampaignOptions::with_threads(4),
    );
    assert!(outcome.budget_met);
    for (a, census) in outcome.level_counts.iter().enumerate() {
        assert_eq!(census[0], fx.workload.runs, "app {a}: every trial Precise");
    }
    assert_eq!(outcome.summary.mean_error, 0.0, "the precise rung is exact");
    assert_eq!(outcome.summary.panics, 0);
    assert!(report.trials.iter().all(|t| t.scheduled_level.as_deref() == Some("Precise")));
}

/// Single-trial campaigns: the controller's epoch machinery degenerates
/// cleanly to one epoch of one trial at both budget extremes.
#[test]
fn single_trial_campaigns_schedule_sanely() {
    let workload = Workload::new(apps(&["MonteCarlo"]), 1);
    let opts = CampaignOptions::with_threads(2);
    let profiles = profile_workload(&workload, QuantaMeter::Sram, 1, &opts);

    let (report, outcome) =
        run_scheduled(&workload, &profiles, &SchedulerConfig::new(EnergyQuanta::ZERO), &opts);
    assert_eq!(report.trials.len(), 1);
    assert_eq!(report.trials[0].scheduled_level.as_deref(), Some("Aggressive"));
    assert!(!outcome.budget_met);
    assert_eq!(outcome.epoch_len, 1);

    let (report, outcome) = run_scheduled(
        &workload,
        &profiles,
        &SchedulerConfig::new(EnergyQuanta::new(u128::MAX / 2)),
        &opts,
    );
    assert_eq!(report.trials[0].scheduled_level.as_deref(), Some("Precise"));
    assert_eq!(report.trials[0].error, 0.0);
    assert!(outcome.budget_met);
}

/// Recovery inside a scheduled campaign: the PR 5 ladder still rescues
/// individual QoS failures, its spend spikes (a degraded trial accepted at
/// the Precise rung costs near-baseline) flow into the controller's
/// observed costs, and the whole thing stays bit-identical across thread
/// counts.
#[test]
fn recovery_spend_spikes_stay_deterministic_and_on_budget() {
    // MonteCarlo under heavy degradation fails its tightened plausibility
    // check often enough to exercise the ladder.
    let workload = Workload::new(apps(&["MonteCarlo", "FFT"]), 8);
    let opts = CampaignOptions::with_threads(1);
    let profiles = profile_workload(&workload, QuantaMeter::Sram, 2, &opts);
    let precise = run_campaign_with(&workload.static_specs(SchedLevel::Precise), &opts);
    let budget =
        EnergyQuanta::new(QuantaMeter::Sram.spent(&precise.energy_quanta_totals()).get() / 2);
    let cfg = SchedulerConfig {
        budget,
        meter: QuantaMeter::Sram,
        epoch: 0,
        recovery: Some(Policy::standard()),
    };
    let (base_report, base_outcome) = {
        let mut sink = VecSink::default();
        let outcome = run_scheduled_streamed(&workload, &profiles, &cfg, &opts, &mut sink)
            .expect("the in-memory sink cannot fail");
        (sink.trials, outcome)
    };
    assert_eq!(base_report.len(), workload.len(), "recovery campaign completes");
    assert_eq!(
        base_outcome.budget_met,
        base_outcome.spent <= budget,
        "the verdict stays honest under retry spend"
    );
    for threads in [2usize, 4] {
        let opts = CampaignOptions::with_threads(threads);
        let mut sink = VecSink::default();
        let outcome = run_scheduled_streamed(&workload, &profiles, &cfg, &opts, &mut sink)
            .expect("the in-memory sink cannot fail");
        assert_identical(
            &base_report,
            &base_outcome,
            &sink.trials,
            &outcome,
            &format!("recovery, {threads} threads"),
        );
    }
}

/// The scheduler accepts a total-energy budget too: the meter is generic,
/// and the DRAM-dominated total still leaves headroom for the verdict
/// machinery to work (Table 2's DRAM savings are small, so the feasible
/// floor is high — the reason the headline meters SRAM).
#[test]
fn total_meter_schedules_against_total_quanta() {
    let fx = fixture();
    let opts = CampaignOptions::with_threads(2);
    let profiles = profile_workload(&fx.workload, QuantaMeter::Total, 2, &opts);
    let precise = run_campaign_with(&fx.workload.static_specs(SchedLevel::Precise), &opts);
    let total_cost = QuantaMeter::Total.spent(&precise.energy_quanta_totals());
    let budget = EnergyQuanta::new(total_cost.get() * 90 / 100);
    let cfg = SchedulerConfig { budget, meter: QuantaMeter::Total, epoch: 0, recovery: None };
    let (report, outcome) = run_scheduled(&fx.workload, &profiles, &cfg, &opts);
    assert_eq!(report.trials.len(), fx.workload.len());
    assert_eq!(outcome.meter, QuantaMeter::Total);
    assert_eq!(outcome.budget_met, outcome.spent <= budget);
    assert!(outcome.budget_met, "90% of total cost is feasible (floor ≈ 80.5%)");
}

/// An all-Precise reference for the scalar-estimator path: with generous
/// budget the MonteCarlo outputs all cluster at the reference π estimate,
/// and nothing is flagged implausible.
#[test]
fn precise_scalar_outputs_are_never_flagged() {
    let workload = Workload::new(apps(&["MonteCarlo"]), 12);
    let opts = CampaignOptions::with_threads(2);
    let profiles = profile_workload(&workload, QuantaMeter::Sram, 1, &opts);
    let (_, outcome) = run_scheduled(
        &workload,
        &profiles,
        &SchedulerConfig::new(EnergyQuanta::new(u128::MAX / 2)),
        &opts,
    );
    assert_eq!(outcome.implausible, 0, "reference outputs are plausible by definition");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized corner of the determinism matrix: any (threads, chunk)
    /// pair reproduces the serial baseline bit-for-bit.
    #[test]
    fn random_thread_chunk_pairs_match_the_serial_baseline(
        threads in 1usize..9,
        chunk in 0usize..65,
    ) {
        let fx = fixture();
        let (base_report, base_outcome) = &fx.baseline;
        let opts = CampaignOptions { threads, chunk, ..CampaignOptions::default() };
        let mut sink = VecSink::default();
        let outcome = run_scheduled_streamed(
            &fx.workload,
            &fx.profiles,
            &SchedulerConfig::new(fx.budget),
            &opts,
            &mut sink,
        ).expect("the in-memory sink cannot fail");
        assert_identical(
            &base_report.trials,
            base_outcome,
            &sink.trials,
            &outcome,
            &format!("{threads} threads, chunk {chunk}"),
        );
    }

    /// The budget invariant as a property: for any budget, the verdict is
    /// exactly `spent <= budget` and the campaign always completes.
    #[test]
    fn budget_verdict_is_exactly_the_invariant(pct in 0u64..131) {
        let fx = fixture();
        let budget = pct_budget(u128::from(pct));
        let (report, outcome) = run_scheduled(
            &fx.workload,
            &fx.profiles,
            &SchedulerConfig::new(budget),
            &CampaignOptions::with_threads(3),
        );
        prop_assert_eq!(report.trials.len(), fx.workload.len());
        prop_assert_eq!(outcome.budget_met, outcome.spent <= budget);
        prop_assert_eq!(report.budget_quanta, Some(budget));
        prop_assert_eq!(report.budget_met, Some(outcome.budget_met));
    }
}

/// `Arc` references in the workload are shared, not re-measured: building
/// the same workload twice yields bit-identical references (determinism of
/// the profiling substrate itself).
#[test]
fn workload_references_are_deterministic() {
    let a = Workload::new(apps(&["FFT", "MonteCarlo"]), 1);
    let b = Workload::new(apps(&["FFT", "MonteCarlo"]), 1);
    for (x, y) in a.references.iter().zip(&b.references) {
        assert_eq!(Arc::as_ref(x), Arc::as_ref(y));
    }
}
