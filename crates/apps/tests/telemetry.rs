//! Integration tests for the fault-telemetry layer: telemetry must never
//! change campaign outcomes, the `enerj-campaign/5` serialization must stay
//! byte-stable (golden files), and the evaluation, tuner and recovery-retry
//! seed spaces must be provably pairwise disjoint.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use enerj_apps::harness::{self, FAULT_SEED_BASE, TUNER_SEED_BASE};
use enerj_apps::trials::{
    run_campaign_with, CampaignOptions, CampaignReport, TrialResult, TrialSpec,
};
use enerj_apps::{all_apps, App};
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
use enerj_hw::quanta::EnergyQuanta;
use enerj_hw::stats::Stats;
use enerj_hw::trace::{FaultEvent, FaultKind};
use enerj_hw::FaultCounters;
use proptest::prelude::*;

fn app(name: &str) -> App {
    all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
}

fn aggressive_specs(names: &[&str], runs: u64) -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    for name in names {
        let app = app(name);
        let reference = Arc::new(harness::reference(&app).output);
        for i in 0..runs {
            specs.push(TrialSpec::scored(
                &app,
                "Aggressive".to_owned(),
                HwConfig::for_level(Level::Aggressive),
                FAULT_SEED_BASE ^ i,
                Arc::clone(&reference),
            ));
        }
    }
    specs
}

#[test]
fn telemetry_on_is_bit_identical_to_telemetry_off() {
    let specs = aggressive_specs(&["FFT", "MonteCarlo"], 3);
    let off = run_campaign_with(
        &specs,
        &CampaignOptions { threads: 2, log_events: false, ..CampaignOptions::default() },
    );
    let on = run_campaign_with(
        &specs,
        &CampaignOptions { threads: 2, log_events: true, ..CampaignOptions::default() },
    );
    assert_eq!(off.trials.len(), on.trials.len());
    for (a, b) in off.trials.iter().zip(&on.trials) {
        assert_eq!(a.error.to_bits(), b.error.to_bits(), "trial {} error", a.index);
        assert_eq!(a.stats, b.stats, "trial {} stats", a.index);
        assert_eq!(a.energy.total.to_bits(), b.energy.total.to_bits(), "trial {}", a.index);
        assert_eq!(a.fault_counts, b.fault_counts, "trial {} counters", a.index);
        // The log is the only difference: absent when off, and when on it
        // accounts for exactly the faults the counters saw.
        assert!(a.events.is_empty());
        assert_eq!(b.events.len() as u64, b.fault_counts.total_injections());
        let bits: u64 = b.events.iter().map(|e| u64::from(e.bits_flipped)).sum();
        assert_eq!(bits, b.fault_counts.total_bits_flipped());
    }
    assert_eq!(off.merged_stats, on.merged_stats);
    assert_eq!(off.fault_totals(), on.fault_totals());
    assert!(on.fault_totals().total_injections() > 0, "aggressive trials inject faults");
}

/// A fully synthetic report with fixed durations, exercising every branch
/// of the serializer (panicked trial, escaped strings, per-kind counters).
fn synthetic_report() -> CampaignReport {
    let mut stats = Stats::new();
    stats.int_approx_ops = 10;
    stats.int_precise_ops = 20;
    stats.fp_approx_ops = 7;
    stats.sram_approx_quanta = EnergyQuanta::new(12_000_000);
    stats.sram_precise_quanta = EnergyQuanta::new(2_000_000);
    stats.faults_injected = 4;

    let mut counts = FaultCounters::new();
    counts.record(FaultKind::SramReadUpset, 1);
    counts.record(FaultKind::IntTiming, 2);
    counts.record(FaultKind::IntTiming, 3);

    let healthy = TrialResult {
        index: 0,
        app: "FFT",
        label: "Aggressive".to_owned(),
        seed: 42,
        error: 0.125,
        output: None,
        stats,
        energy: EnergyBreakdown { instructions: 0.8, sram: 0.9, dram: 0.85, total: 0.84 },
        wall: Duration::from_micros(500_000),
        panic: None,
        fault_counts: counts,
        events: vec![
            FaultEvent { kind: FaultKind::SramReadUpset, time: 0.5, width: 64, bits_flipped: 1 },
            FaultEvent { kind: FaultKind::IntTiming, time: 1.25, width: 32, bits_flipped: 2 },
        ],
        attempts: 2,
        recovered_at_level: Some("Precise".to_owned()),
        scheduled_level: Some("Mild".to_owned()),
        failure_causes: vec!["qos: error 0.5000 > threshold 0.1".to_owned()],
        recovery_energy_overhead: 0.84,
        recovery_energy_overhead_quanta: EnergyQuanta::new(1_234_500),
        energy_quanta: EnergyQuantaBreakdown {
            instructions: EnergyQuanta::new(8_000_000),
            baseline_instructions: EnergyQuanta::new(10_000_000),
            sram: EnergyQuanta::new(126_000_000_000),
            baseline_sram: EnergyQuanta::new(140_000_000_000),
            dram: EnergyQuanta::ZERO,
            baseline_dram: EnergyQuanta::ZERO,
            total: EnergyQuanta::new(126_008_000_000),
            baseline_total: EnergyQuanta::new(140_010_000_000),
        },
    };
    let crashed = TrialResult {
        index: 1,
        app: "Panicker",
        label: "Medium".to_owned(),
        seed: 43,
        error: 1.0,
        output: None,
        stats: Stats::new(),
        energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
        wall: Duration::from_micros(1_000),
        panic: Some("index \"7\" out of bounds\n".to_owned()),
        fault_counts: FaultCounters::new(),
        events: Vec::new(),
        attempts: 1,
        recovered_at_level: None,
        scheduled_level: None,
        failure_causes: vec!["panic: index \"7\" out of bounds\n".to_owned()],
        recovery_energy_overhead: 0.0,
        recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
        energy_quanta: EnergyQuantaBreakdown::ZERO,
    };
    CampaignReport {
        merged_stats: healthy.stats,
        trials: vec![healthy, crashed],
        wall: Duration::from_micros(1_250_000),
        threads: 3,
        budget_quanta: Some(EnergyQuanta::new(130_000_000_000)),
        budget_met: Some(true),
    }
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compares `actual` to the committed golden file; set `BLESS_GOLDEN=1` to
/// rewrite the golden after an intentional schema change.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{}: {e}; run with BLESS_GOLDEN=1 to create", path.display()));
    assert_eq!(
        actual, expected,
        "{name} drifted from the committed golden; if the schema change is \
         intentional, bump the schema tag, document it in DESIGN.md and \
         re-bless with BLESS_GOLDEN=1"
    );
}

#[test]
fn campaign_report_json_matches_the_v5_golden() {
    let json = synthetic_report().to_json();
    assert!(json.starts_with("{\"schema\":\"enerj-campaign/5\""));
    assert!(json.contains("\"budget_quanta\":130000000000"));
    assert!(json.contains("\"budget_met\":true"));
    assert!(json.contains("\"scheduled_level\":\"Mild\""));
    assert!(json.contains("\"scheduled_level\":null"));
    check_golden("campaign_v5.json", &(json + "\n"));
}

#[test]
fn fault_log_ndjson_matches_the_v2_golden() {
    check_golden("fault_log_v2.ndjson", &synthetic_report().fault_log_ndjson());
}

#[test]
fn seed_bases_partition_the_seed_space() {
    // The top two bits identify the stream: evaluation seeds have `00`,
    // tuner seeds `10`, recovery-retry seeds `01` — see
    // `harness::TUNER_SEED_BASE` and `recovery::RETRY_SEED_BASE`.
    assert_eq!(FAULT_SEED_BASE >> 62, 0b00);
    assert_eq!(TUNER_SEED_BASE >> 62, 0b10);
    assert_eq!(enerj_apps::recovery::RETRY_SEED_BASE >> 62, 0b01);
    assert_eq!(TUNER_SEED_BASE & !(1 << 63), FAULT_SEED_BASE);
}

proptest! {
    /// No evaluation seed ever equals a tuner seed, for any (trial, run)
    /// index pair either campaign could plausibly use.
    #[test]
    fn tuner_and_evaluation_seeds_never_collide(
        i in 0u64..(1 << 63),
        r in 0u64..(1 << 63),
    ) {
        prop_assert_ne!(FAULT_SEED_BASE ^ i, TUNER_SEED_BASE ^ r);
    }

    /// Recovery-retry seeds never collide with the evaluation or tuner
    /// streams: retries always carry the top-bit pattern `01`, which no
    /// plausible evaluation index (below 2^62) or tuner index can produce.
    /// A retry therefore never replays a fault sequence any scored or
    /// profiling run has seen.
    #[test]
    fn retry_seeds_never_collide_with_other_streams(
        trial in 0u64..(1 << 62),
        attempt in 1u32..8,
        i in 0u64..(1 << 62),
        r in 0u64..(1 << 62),
    ) {
        let retry = enerj_apps::recovery::retry_seed(FAULT_SEED_BASE ^ trial, attempt);
        prop_assert_eq!(retry >> 62, 0b01);
        prop_assert_ne!(retry, FAULT_SEED_BASE ^ i);
        prop_assert_ne!(retry, TUNER_SEED_BASE ^ r);
    }
}
