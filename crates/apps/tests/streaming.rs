//! Integration tests for the streaming campaign engine: a lazily-sourced,
//! sink-streamed campaign must be bit-identical to the in-memory runner —
//! trial by trial and in every aggregate — for any thread count, chunk
//! size, sink, and telemetry setting, recovery ladders included. The
//! engine is a throughput optimization; it is allowed to change nothing
//! else.

use std::io;
use std::sync::Arc;
use std::time::Duration;

use enerj_apps::harness::{self, FAULT_SEED_BASE};
use enerj_apps::recovery::{chaos_config, Policy};
use enerj_apps::trials::{
    run_campaign_streamed, run_campaign_with, trial_json, CampaignOptions, CampaignReport,
    CampaignSummary, NdjsonSink, SpecFn, TrialResult, TrialSink, TrialSpec, VecSink,
};
use enerj_apps::{all_apps, App};
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::quanta::EnergyQuanta;
use proptest::prelude::*;

fn app(name: &str) -> App {
    all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
}

/// A small mixed campaign: two apps, two fault levels, an odd trial count
/// so no chunk size divides it evenly.
fn mixed_specs() -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    for name in ["FFT", "MonteCarlo"] {
        let app = app(name);
        let reference = Arc::new(harness::reference(&app).output);
        for level in [Level::Mild, Level::Aggressive] {
            for i in 0..3u64 {
                specs.push(TrialSpec::scored(
                    &app,
                    level.to_string(),
                    HwConfig::for_level(level),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                ));
            }
        }
    }
    specs.truncate(11);
    specs
}

/// Asserts the streamed run reproduced the in-memory report exactly:
/// every per-trial bit and every aggregate.
fn assert_matches_report(
    report: &CampaignReport,
    streamed: &[enerj_apps::trials::TrialResult],
    summary: &CampaignSummary,
    what: &str,
) {
    assert_eq!(streamed.len(), report.trials.len(), "{what}: trial count");
    for (s, b) in streamed.iter().zip(&report.trials) {
        let where_ = format!("{what}: trial {}", b.index);
        assert_eq!(s.index, b.index, "{where_}: index");
        assert_eq!(s.seed, b.seed, "{where_}: seed");
        assert_eq!(s.label, b.label, "{where_}: label");
        assert_eq!(s.error.to_bits(), b.error.to_bits(), "{where_}: error");
        assert_eq!(s.stats, b.stats, "{where_}: stats");
        assert_eq!(s.energy_quanta, b.energy_quanta, "{where_}: quanta");
        assert_eq!(s.fault_counts, b.fault_counts, "{where_}: fault counts");
        assert_eq!(s.panic, b.panic, "{where_}: panic");
        assert_eq!(s.attempts, b.attempts, "{where_}: attempts");
        assert_eq!(s.recovered_at_level, b.recovered_at_level, "{where_}: recovery rung");
        assert_eq!(
            s.recovery_energy_overhead_quanta, b.recovery_energy_overhead_quanta,
            "{where_}: recovery overhead"
        );
    }
    assert_eq!(summary.trials, report.trials.len(), "{what}: summary count");
    assert_eq!(
        summary.mean_error.to_bits(),
        report.mean_error().to_bits(),
        "{what}: summary mean error"
    );
    assert_eq!(summary.panics, report.panic_count(), "{what}: summary panics");
    assert_eq!(summary.recovered, report.recovered_count(), "{what}: summary recovered");
    assert_eq!(summary.merged_stats, report.merged_stats, "{what}: summary stats");
    assert_eq!(summary.energy_quanta, report.energy_quanta_totals(), "{what}: summary quanta");
    assert_eq!(summary.fault_totals, report.fault_totals(), "{what}: summary faults");
    assert_eq!(
        summary.recovery_energy_overhead_quanta,
        report.recovery_energy_overhead(),
        "{what}: summary overhead"
    );
    assert!(
        summary.peak_buffered <= summary.buffer_capacity,
        "{what}: window {}/{} leaked past its bound",
        summary.peak_buffered,
        summary.buffer_capacity
    );
}

#[test]
fn streamed_campaign_is_bit_identical_to_in_memory_runner() {
    let specs = mixed_specs();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    for threads in [1usize, 2, 4, 8] {
        for chunk in [1usize, 16, 256] {
            for log_events in [false, true] {
                let source = SpecFn::new(specs.len(), |i| specs[i].clone());
                let opts =
                    CampaignOptions { threads, chunk, log_events, ..CampaignOptions::default() };
                let mut sink = VecSink::default();
                let summary = run_campaign_streamed(&source, &opts, &mut sink)
                    .expect("the in-memory sink cannot fail");
                let what = format!("{threads} threads, chunk {chunk}, telemetry {log_events}");
                assert_matches_report(&baseline, &sink.trials, &summary, &what);
            }
        }
    }
}

/// Recovery campaigns exercise the whole ladder inside a worker — retry
/// seeds, escalation, overhead quanta — and must stream identically too.
#[test]
fn streamed_recovery_campaign_is_bit_identical() {
    let app = app("MonteCarlo");
    let reference = Arc::new(harness::reference(&app).output);
    let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
    let specs: Vec<TrialSpec> = (0..5u64)
        .map(|i| {
            TrialSpec::scored(
                &app,
                "chaos",
                chaos_config(50.0),
                FAULT_SEED_BASE ^ i,
                Arc::clone(&reference),
            )
            .with_recovery(policy.clone())
        })
        .collect();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    assert!(baseline.recovered_count() > 0, "threshold 0 under chaos must escalate");
    for threads in [1usize, 4] {
        for chunk in [1usize, 256] {
            let source = SpecFn::new(specs.len(), |i| specs[i].clone());
            let opts = CampaignOptions { threads, chunk, ..CampaignOptions::default() };
            let mut sink = VecSink::default();
            let summary = run_campaign_streamed(&source, &opts, &mut sink)
                .expect("the in-memory sink cannot fail");
            let what = format!("recovery at {threads} threads, chunk {chunk}");
            assert_matches_report(&baseline, &sink.trials, &summary, &what);
        }
    }
}

/// Blanks the one field of a trial's JSON line that is not a function of
/// its spec: the wall-clock measurement.
fn mask_wall(line: &str) -> String {
    let start = line.find("\"wall_seconds\":").expect("trial JSON carries wall_seconds");
    let rest = &line[start..];
    let end = start + rest.find(',').expect("wall_seconds is not the last field");
    format!("{}\"wall_seconds\":W{}", &line[..start], &line[end..])
}

/// The NDJSON sink must receive exactly the serialization the in-memory
/// report would produce for each trial, in index order.
#[test]
fn ndjson_sink_emits_trial_json_in_index_order() {
    let specs = mixed_specs();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    let source = SpecFn::new(specs.len(), |i| specs[i].clone());
    let opts = CampaignOptions { threads: 4, chunk: 2, ..CampaignOptions::default() };
    let mut sink = NdjsonSink::new(Vec::<u8>::new());
    let summary =
        run_campaign_streamed(&source, &opts, &mut sink).expect("Vec<u8> writes cannot fail");
    let text = String::from_utf8(sink.into_inner()).expect("NDJSON is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), baseline.trials.len());
    assert_eq!(summary.trials, baseline.trials.len());
    for (line, trial) in lines.iter().zip(&baseline.trials) {
        assert_eq!(mask_wall(line), mask_wall(&trial_json(trial)), "trial {}", trial.index);
    }
}

/// Deadline truncation lands exactly on a chunk boundary, flies the
/// `deadline_exceeded` flag, and the committed prefix is bit-identical to
/// the same prefix of an undeadlined run — a deadline changes how *many*
/// chunks run, never what any trial computes.
#[test]
fn deadline_truncates_at_a_chunk_boundary_bit_identically() {
    let specs = mixed_specs();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    let chunk = 4usize;

    // spec(0) stalls well past the deadline. The deadline is checked at
    // claim time and claimed chunks always run to completion, so exactly
    // the first chunk commits — deterministically, however slow the box.
    let source = SpecFn::new(specs.len(), |i| {
        if i == 0 {
            std::thread::sleep(Duration::from_millis(300));
        }
        specs[i].clone()
    });
    let opts = CampaignOptions {
        threads: 1,
        chunk,
        deadline: Some(Duration::from_millis(100)),
        ..CampaignOptions::default()
    };
    let mut sink = VecSink::default();
    let summary =
        run_campaign_streamed(&source, &opts, &mut sink).expect("the in-memory sink cannot fail");
    assert!(summary.deadline_exceeded, "the stalled first chunk must overrun the deadline");
    assert_eq!(sink.trials.len(), chunk, "truncation lands on a chunk boundary");
    assert_eq!(summary.trials, chunk);
    for (s, b) in sink.trials.iter().zip(&baseline.trials) {
        assert_eq!(s.index, b.index, "prefix order");
        assert_eq!(s.error.to_bits(), b.error.to_bits(), "trial {}: error", b.index);
        assert_eq!(s.energy_quanta, b.energy_quanta, "trial {}: quanta", b.index);
        assert_eq!(s.stats, b.stats, "trial {}: stats", b.index);
    }

    // An already-expired deadline truncates before the first claim.
    let source = SpecFn::new(specs.len(), |i| specs[i].clone());
    let opts = CampaignOptions {
        threads: 1,
        chunk,
        deadline: Some(Duration::ZERO),
        ..CampaignOptions::default()
    };
    let mut sink = VecSink::default();
    let summary =
        run_campaign_streamed(&source, &opts, &mut sink).expect("the in-memory sink cannot fail");
    assert!(summary.deadline_exceeded);
    assert_eq!(sink.trials.len(), 0, "no chunk may be claimed after expiry");

    // A deadline with hours of slack changes nothing at all.
    let source = SpecFn::new(specs.len(), |i| specs[i].clone());
    let opts = CampaignOptions {
        threads: 2,
        chunk,
        deadline: Some(Duration::from_secs(3600)),
        ..CampaignOptions::default()
    };
    let mut sink = VecSink::default();
    let summary =
        run_campaign_streamed(&source, &opts, &mut sink).expect("the in-memory sink cannot fail");
    assert!(!summary.deadline_exceeded);
    assert_matches_report(&baseline, &sink.trials, &summary, "slack deadline");
}

/// A worker that dies mid-chunk (a panicking [`SpecFn`] — a harness bug,
/// not an app fault; app panics are contained per trial) must poison the
/// reorder window so the campaign panics promptly. Before the poison flag
/// existed this deadlocked: the other workers blocked forever in `push`,
/// waiting for window slots the dead worker would never fill.
#[test]
fn dying_worker_poisons_the_reorder_window_instead_of_hanging() {
    let specs = mixed_specs();
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        // 64 trials, chunk 1, 4 workers: the window holds 8, so with
        // index 5 never delivered the survivors *will* block at index 13
        // and beyond — the exact shape that used to hang.
        let source = SpecFn::new(64, |i| {
            assert!(i != 5, "synthetic SpecSource failure");
            specs[i % specs.len()].clone()
        });
        let opts = CampaignOptions { threads: 4, chunk: 1, ..CampaignOptions::default() };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut sink = VecSink::default();
            let _ = run_campaign_streamed(&source, &opts, &mut sink);
        }));
        let _ = tx.send(outcome.is_err());
    });
    let panicked = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("campaign hung: the reorder window was never poisoned");
    assert!(panicked, "a dying worker must propagate as a campaign panic, not a clean return");
}

/// A sink that can fail on `accept` (after `fail_accept_at` successes) or
/// on the final `flush`.
struct FailingSink {
    accepted: usize,
    fail_accept_at: Option<usize>,
    fail_flush: bool,
}

impl TrialSink for FailingSink {
    fn accept(&mut self, _trial: TrialResult) -> io::Result<()> {
        if Some(self.accepted) == self.fail_accept_at {
            return Err(io::Error::other("disk full"));
        }
        self.accepted += 1;
        Ok(())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.fail_flush {
            return Err(io::Error::other("flush failed"));
        }
        Ok(())
    }
}

/// Sink failures — on a mid-campaign `accept` or on the final `flush` —
/// surface as the campaign's `io::Result` on both the serial and the
/// parallel path. The engine never swallows a sink error, and an accept
/// error stops deliveries without stopping the campaign.
#[test]
fn sink_errors_surface_as_the_campaign_result() {
    let specs = mixed_specs();
    for threads in [1usize, 4] {
        let opts = CampaignOptions { threads, chunk: 2, ..CampaignOptions::default() };

        let source = SpecFn::new(specs.len(), |i| specs[i].clone());
        let mut sink = FailingSink { accepted: 0, fail_accept_at: Some(3), fail_flush: false };
        let err = run_campaign_streamed(&source, &opts, &mut sink)
            .expect_err("accept failure must surface");
        assert_eq!(err.to_string(), "disk full", "{threads} threads");
        assert_eq!(sink.accepted, 3, "{threads} threads: the first failure stops deliveries");

        let source = SpecFn::new(specs.len(), |i| specs[i].clone());
        let mut sink = FailingSink { accepted: 0, fail_accept_at: None, fail_flush: true };
        let err = run_campaign_streamed(&source, &opts, &mut sink)
            .expect_err("flush failure must surface");
        assert_eq!(err.to_string(), "flush failed", "{threads} threads");
        assert_eq!(
            sink.accepted,
            specs.len(),
            "{threads} threads: every trial was delivered before the flush failed"
        );
    }
}

/// A writer that buffers fine but cannot flush — the tail-loss shape
/// `NdjsonSink::flush` exists to catch.
struct FlushlessWriter(Vec<u8>);

impl io::Write for FlushlessWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Err(io::Error::other("device gone at flush"))
    }
}

/// [`NdjsonSink`] forwards its writer's flush failure as the campaign
/// result: a buffered stream that cannot flush its tail fails loudly
/// instead of reporting success over silently truncated output.
#[test]
fn ndjson_sink_flush_failure_fails_the_campaign() {
    let specs = mixed_specs();
    let source = SpecFn::new(specs.len(), |i| specs[i].clone());
    let opts = CampaignOptions { threads: 2, chunk: 2, ..CampaignOptions::default() };
    let mut sink = NdjsonSink::new(FlushlessWriter(Vec::new()));
    let err =
        run_campaign_streamed(&source, &opts, &mut sink).expect_err("flush error must surface");
    assert_eq!(err.to_string(), "device gone at flush");
    // Every line was still written before the flush failed.
    let text = String::from_utf8(sink.into_inner().0).expect("NDJSON is UTF-8");
    assert_eq!(text.lines().count(), specs.len());
}

/// Splits `0..len` into the chunked claim order `workers` round-robin
/// workers would produce, then folds each worker's subtotal first — the
/// per-worker reduction shape — and finally merges worker subtotals in a
/// seed-shuffled order.
fn chunked_shuffled_sum(
    values: &[u128],
    chunk: usize,
    workers: usize,
    mut seed: u64,
) -> EnergyQuanta {
    let mut per_worker = vec![EnergyQuanta::ZERO; workers];
    for (c, slice) in values.chunks(chunk).enumerate() {
        for &v in slice {
            per_worker[c % workers] += EnergyQuanta::new(v);
        }
    }
    // Fisher–Yates on the worker subtotals with a tiny LCG: the merge
    // order the condvar wakeups happen to produce is arbitrary.
    for i in (1..per_worker.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        per_worker.swap(i, j);
    }
    let mut total = EnergyQuanta::ZERO;
    for sub in per_worker {
        total += sub;
    }
    total
}

proptest! {
    /// Energy quanta totals are order-independent by construction: any
    /// per-worker chunked reduction, merged in any order, equals the
    /// strict index-order fold the drain point performs. (This is the
    /// property that lets the engine fold totals at the drain without
    /// waiting for stragglers; the f64 error mean is order-sensitive and
    /// is therefore *only* ever folded in index order.)
    #[test]
    fn shuffled_per_worker_quanta_reduction_matches_index_order(
        raw in prop::collection::vec(any::<u64>(), 1..80),
        chunk in 1usize..20,
        workers in 1usize..9,
        seed: u64,
    ) {
        let values: Vec<u128> = raw.iter().map(|&v| u128::from(v)).collect();
        let mut index_order = EnergyQuanta::ZERO;
        for &v in &values {
            index_order += EnergyQuanta::new(v);
        }
        let shuffled = chunked_shuffled_sum(&values, chunk, workers, seed);
        prop_assert_eq!(index_order, shuffled);
    }
}
