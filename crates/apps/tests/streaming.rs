//! Integration tests for the streaming campaign engine: a lazily-sourced,
//! sink-streamed campaign must be bit-identical to the in-memory runner —
//! trial by trial and in every aggregate — for any thread count, chunk
//! size, sink, and telemetry setting, recovery ladders included. The
//! engine is a throughput optimization; it is allowed to change nothing
//! else.

use std::sync::Arc;

use enerj_apps::harness::{self, FAULT_SEED_BASE};
use enerj_apps::recovery::{chaos_config, Policy};
use enerj_apps::trials::{
    run_campaign_streamed, run_campaign_with, trial_json, CampaignOptions, CampaignReport,
    CampaignSummary, NdjsonSink, SpecFn, TrialSpec, VecSink,
};
use enerj_apps::{all_apps, App};
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::quanta::EnergyQuanta;
use proptest::prelude::*;

fn app(name: &str) -> App {
    all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
}

/// A small mixed campaign: two apps, two fault levels, an odd trial count
/// so no chunk size divides it evenly.
fn mixed_specs() -> Vec<TrialSpec> {
    let mut specs = Vec::new();
    for name in ["FFT", "MonteCarlo"] {
        let app = app(name);
        let reference = Arc::new(harness::reference(&app).output);
        for level in [Level::Mild, Level::Aggressive] {
            for i in 0..3u64 {
                specs.push(TrialSpec::scored(
                    &app,
                    level.to_string(),
                    HwConfig::for_level(level),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                ));
            }
        }
    }
    specs.truncate(11);
    specs
}

/// Asserts the streamed run reproduced the in-memory report exactly:
/// every per-trial bit and every aggregate.
fn assert_matches_report(
    report: &CampaignReport,
    streamed: &[enerj_apps::trials::TrialResult],
    summary: &CampaignSummary,
    what: &str,
) {
    assert_eq!(streamed.len(), report.trials.len(), "{what}: trial count");
    for (s, b) in streamed.iter().zip(&report.trials) {
        let where_ = format!("{what}: trial {}", b.index);
        assert_eq!(s.index, b.index, "{where_}: index");
        assert_eq!(s.seed, b.seed, "{where_}: seed");
        assert_eq!(s.label, b.label, "{where_}: label");
        assert_eq!(s.error.to_bits(), b.error.to_bits(), "{where_}: error");
        assert_eq!(s.stats, b.stats, "{where_}: stats");
        assert_eq!(s.energy_quanta, b.energy_quanta, "{where_}: quanta");
        assert_eq!(s.fault_counts, b.fault_counts, "{where_}: fault counts");
        assert_eq!(s.panic, b.panic, "{where_}: panic");
        assert_eq!(s.attempts, b.attempts, "{where_}: attempts");
        assert_eq!(s.recovered_at_level, b.recovered_at_level, "{where_}: recovery rung");
        assert_eq!(
            s.recovery_energy_overhead_quanta, b.recovery_energy_overhead_quanta,
            "{where_}: recovery overhead"
        );
    }
    assert_eq!(summary.trials, report.trials.len(), "{what}: summary count");
    assert_eq!(
        summary.mean_error.to_bits(),
        report.mean_error().to_bits(),
        "{what}: summary mean error"
    );
    assert_eq!(summary.panics, report.panic_count(), "{what}: summary panics");
    assert_eq!(summary.recovered, report.recovered_count(), "{what}: summary recovered");
    assert_eq!(summary.merged_stats, report.merged_stats, "{what}: summary stats");
    assert_eq!(summary.energy_quanta, report.energy_quanta_totals(), "{what}: summary quanta");
    assert_eq!(summary.fault_totals, report.fault_totals(), "{what}: summary faults");
    assert_eq!(
        summary.recovery_energy_overhead_quanta,
        report.recovery_energy_overhead(),
        "{what}: summary overhead"
    );
    assert!(
        summary.peak_buffered <= summary.buffer_capacity,
        "{what}: window {}/{} leaked past its bound",
        summary.peak_buffered,
        summary.buffer_capacity
    );
}

#[test]
fn streamed_campaign_is_bit_identical_to_in_memory_runner() {
    let specs = mixed_specs();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    for threads in [1usize, 2, 4, 8] {
        for chunk in [1usize, 16, 256] {
            for log_events in [false, true] {
                let source = SpecFn::new(specs.len(), |i| specs[i].clone());
                let opts =
                    CampaignOptions { threads, chunk, log_events, ..CampaignOptions::default() };
                let mut sink = VecSink::default();
                let summary = run_campaign_streamed(&source, &opts, &mut sink)
                    .expect("the in-memory sink cannot fail");
                let what = format!("{threads} threads, chunk {chunk}, telemetry {log_events}");
                assert_matches_report(&baseline, &sink.trials, &summary, &what);
            }
        }
    }
}

/// Recovery campaigns exercise the whole ladder inside a worker — retry
/// seeds, escalation, overhead quanta — and must stream identically too.
#[test]
fn streamed_recovery_campaign_is_bit_identical() {
    let app = app("MonteCarlo");
    let reference = Arc::new(harness::reference(&app).output);
    let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
    let specs: Vec<TrialSpec> = (0..5u64)
        .map(|i| {
            TrialSpec::scored(
                &app,
                "chaos",
                chaos_config(50.0),
                FAULT_SEED_BASE ^ i,
                Arc::clone(&reference),
            )
            .with_recovery(policy.clone())
        })
        .collect();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    assert!(baseline.recovered_count() > 0, "threshold 0 under chaos must escalate");
    for threads in [1usize, 4] {
        for chunk in [1usize, 256] {
            let source = SpecFn::new(specs.len(), |i| specs[i].clone());
            let opts = CampaignOptions { threads, chunk, ..CampaignOptions::default() };
            let mut sink = VecSink::default();
            let summary = run_campaign_streamed(&source, &opts, &mut sink)
                .expect("the in-memory sink cannot fail");
            let what = format!("recovery at {threads} threads, chunk {chunk}");
            assert_matches_report(&baseline, &sink.trials, &summary, &what);
        }
    }
}

/// Blanks the one field of a trial's JSON line that is not a function of
/// its spec: the wall-clock measurement.
fn mask_wall(line: &str) -> String {
    let start = line.find("\"wall_seconds\":").expect("trial JSON carries wall_seconds");
    let rest = &line[start..];
    let end = start + rest.find(',').expect("wall_seconds is not the last field");
    format!("{}\"wall_seconds\":W{}", &line[..start], &line[end..])
}

/// The NDJSON sink must receive exactly the serialization the in-memory
/// report would produce for each trial, in index order.
#[test]
fn ndjson_sink_emits_trial_json_in_index_order() {
    let specs = mixed_specs();
    let baseline = run_campaign_with(&specs, &CampaignOptions::with_threads(1));
    let source = SpecFn::new(specs.len(), |i| specs[i].clone());
    let opts = CampaignOptions { threads: 4, chunk: 2, ..CampaignOptions::default() };
    let mut sink = NdjsonSink::new(Vec::<u8>::new());
    let summary =
        run_campaign_streamed(&source, &opts, &mut sink).expect("Vec<u8> writes cannot fail");
    let text = String::from_utf8(sink.into_inner()).expect("NDJSON is UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), baseline.trials.len());
    assert_eq!(summary.trials, baseline.trials.len());
    for (line, trial) in lines.iter().zip(&baseline.trials) {
        assert_eq!(mask_wall(line), mask_wall(&trial_json(trial)), "trial {}", trial.index);
    }
}

/// Splits `0..len` into the chunked claim order `workers` round-robin
/// workers would produce, then folds each worker's subtotal first — the
/// per-worker reduction shape — and finally merges worker subtotals in a
/// seed-shuffled order.
fn chunked_shuffled_sum(
    values: &[u128],
    chunk: usize,
    workers: usize,
    mut seed: u64,
) -> EnergyQuanta {
    let mut per_worker = vec![EnergyQuanta::ZERO; workers];
    for (c, slice) in values.chunks(chunk).enumerate() {
        for &v in slice {
            per_worker[c % workers] += EnergyQuanta::new(v);
        }
    }
    // Fisher–Yates on the worker subtotals with a tiny LCG: the merge
    // order the condvar wakeups happen to produce is arbitrary.
    for i in (1..per_worker.len()).rev() {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        per_worker.swap(i, j);
    }
    let mut total = EnergyQuanta::ZERO;
    for sub in per_worker {
        total += sub;
    }
    total
}

proptest! {
    /// Energy quanta totals are order-independent by construction: any
    /// per-worker chunked reduction, merged in any order, equals the
    /// strict index-order fold the drain point performs. (This is the
    /// property that lets the engine fold totals at the drain without
    /// waiting for stragglers; the f64 error mean is order-sensitive and
    /// is therefore *only* ever folded in index order.)
    #[test]
    fn shuffled_per_worker_quanta_reduction_matches_index_order(
        raw in prop::collection::vec(any::<u64>(), 1..80),
        chunk in 1usize..20,
        workers in 1usize..9,
        seed: u64,
    ) {
        let values: Vec<u128> = raw.iter().map(|&v| u128::from(v)).collect();
        let mut index_order = EnergyQuanta::ZERO;
        for &v in &values {
            index_order += EnergyQuanta::new(v);
        }
        let shuffled = chunked_shuffled_sum(&values, chunk, workers, seed);
        prop_assert_eq!(index_order, shuffled);
    }
}
