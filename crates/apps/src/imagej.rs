//! ImageJ substitute: raster flood fill, ported to EnerJ-RS.
//!
//! The paper's ImageJ workload is a flood-fill operation, chosen as
//! "representative of error-resilient algorithms with primarily integer
//! rather than floating point data", and annotated *extremely aggressively*:
//! "even pixel coordinates are marked as approximate", which the existing
//! bounds-checking makes survivable. This port mirrors that: pixel values
//! *and* the coordinate arithmetic on the work list are approximate
//! (`Approx<i32>`), with coordinates endorsed and clamped at the moment
//! they index the image — indices themselves must be precise
//! (section 2.6) — and a precise visited bitmap guaranteeing termination.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::{endorse, Approx, ApproxVec};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("imagej.rs");

/// Image side length.
pub const SIDE: usize = 64;
/// Fill tolerance around the seed tone.
pub const TOLERANCE: i32 = 32;
/// The tone written into filled pixels.
pub const FILL: i32 = 255;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "ImageJ",
        description: "raster flood fill (64x64, approximate coordinates)",
        metric: QosMetric::MeanPixelDiff { full_scale: 255.0 },
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns the filled image.
pub fn run() -> Output {
    let input = workload::segmented_image(SIDE, SIDE);
    let mut image: ApproxVec<i32> = ApproxVec::from_slice(&input);
    flood_fill(&mut image, SIDE / 2, SIDE / 2);
    Output::Values(image.endorse_to_vec().iter().map(|&v| f64::from(v)).collect())
}

/// Recovery sanity check (see [`App::check`](crate::App)): pixels are 8-bit
/// intensities, so a value outside `[0, 255]` is a corrupted word that the
/// coordinate-clamping endorsements did not catch.
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::in_range(0.0, 255.0))
}

/// Endorses an approximate coordinate and clamps it into bounds — the
/// "intelligent handling" an endorsement certifies (section 2.2).
fn to_index(coord: Approx<i32>) -> usize {
    endorse(coord).clamp(0, SIDE as i32 - 1) as usize
}

/// Flood fill from (sx, sy): every 4-connected pixel within `TOLERANCE` of
/// the seed tone is painted `FILL`. The work list carries *approximate*
/// coordinates; the visited bitmap is precise so the fill always
/// terminates, and out-of-bounds coordinates are clamped rather than
/// trapping — the resilience change the paper made to ZXing's transform is
/// applied here to the fill.
fn flood_fill(image: &mut ApproxVec<i32>, sx: usize, sy: usize) {
    let seed_tone = image.get(sy * SIDE + sx);
    let mut visited = vec![false; SIDE * SIDE];
    let mut work: Vec<(Approx<i32>, Approx<i32>)> =
        vec![(Approx::new(sx as i32), Approx::new(sy as i32))];

    while let Some((ax, ay)) = work.pop() {
        let x = to_index(ax);
        let y = to_index(ay);
        if visited[y * SIDE + x] {
            continue;
        }
        visited[y * SIDE + x] = true;

        let tone = image.get(y * SIDE + x);
        let diff = tone - seed_tone;
        let inside = endorse(diff.lt_approx(TOLERANCE)) && endorse(diff.gt_approx(-TOLERANCE));
        if !inside {
            continue;
        }
        image.set(y * SIDE + x, Approx::new(FILL));

        // Neighbour coordinates computed with approximate arithmetic.
        let (px, py) = (Approx::new(x as i32), Approx::new(y as i32));
        work.push((px + 1, py));
        work.push((px - 1, py));
        work.push((px, py + 1));
        work.push((px, py - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_fill_paints_the_inner_region() {
        let rt = exact();
        let Output::Values(img) = rt.run(run) else { panic!() };
        // The generator puts tone ~200 in the inner rectangle; the seed is
        // its center, so the whole inner rectangle is painted.
        let inner = |x: usize, y: usize| {
            x > SIDE * 3 / 8 && x < SIDE * 5 / 8 && y > SIDE * 3 / 8 && y < SIDE * 5 / 8
        };
        for y in 0..SIDE {
            for x in 0..SIDE {
                let v = img[y * SIDE + x];
                if inner(x, y) {
                    assert_eq!(v, f64::from(FILL), "pixel ({x},{y}) should be filled");
                } else if x < SIDE / 8 {
                    assert!(v < 100.0, "outer pixel ({x},{y}) untouched, got {v}");
                }
            }
        }
    }

    #[test]
    fn fill_respects_tone_boundaries() {
        let rt = exact();
        let Output::Values(img) = rt.run(run) else { panic!() };
        let input = workload::segmented_image(SIDE, SIDE);
        // The mid rectangle (tone ~120) borders the inner region but lies
        // outside the tolerance band around tone ~200.
        let midpoint = (SIDE * 5 / 16, SIDE / 2);
        let idx = midpoint.1 * SIDE + midpoint.0;
        assert_eq!(img[idx], f64::from(input[idx]), "mid region must not be filled");
    }

    #[test]
    fn workload_is_integer_dominated() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert_eq!(s.fp_proportion(), 0.0, "flood fill is all-integer");
        assert!(
            s.approx_op_fraction(enerj_hw::OpKind::Int) > 0.5,
            "coordinate arithmetic is approximate"
        );
    }

    #[test]
    fn termination_under_full_fault_injection() {
        // Even with aggressive faults corrupting coordinates and tones,
        // the precise visited bitmap bounds the work list: the fill always
        // terminates and never panics.
        for seed in 0..5 {
            let rt = Runtime::new(Level::Aggressive, seed);
            let Output::Values(img) = rt.run(run) else { panic!() };
            assert_eq!(img.len(), SIDE * SIDE);
        }
    }
}
