//! `@Approximable` classes from the paper's annotation war stories
//! (section 6.3), rendered with the mode-parameter pattern of
//! [`enerj_core::context`].
//!
//! * The jMonkeyEngine port "uses a `Vector3f` class for much of its
//!   computation, which we marked as approximable. In this setting,
//!   approximate vector declarations (`@Approx Vector3f v`) are
//!   syntactically identical to approximate primitive-value declarations."
//!   [`Vector3<M>`] is that class: `Vector3<ApproxMode>` computes on the
//!   imprecise FPU, `Vector3<PreciseMode>` on the reliable one — same
//!   source text for both.
//!
//! * "ZXing contains `BitArray` and `BitMatrix` classes that are thin
//!   wrappers over binary data. ... The `BitArray` approximable class
//!   contains a method `isRange` that takes two indices and determines
//!   whether all the bits between the two indices are set. We implemented
//!   an approximate version of the method that checks only some of the
//!   bits in the range by skipping some loop iterations." [`BitVector<M>`]
//!   reproduces exactly that: the `ApproxMode` implementation of
//!   [`RangeCheck::is_range`] samples every other bit.

use std::marker::PhantomData;

use enerj_core::context::{ApproxMode, Ctx, Mode, PreciseMode};
use enerj_core::{endorse, endorse_ctx, Approx, Precise};

/// An approximable 3-component vector (the paper's `Vector3f`).
///
/// The qualifier parameter `M` plays the role of the instance qualifier:
/// `Vector3<ApproxMode>` is `@Approx Vector3f`, `Vector3<PreciseMode>` is
/// the precise instance of the same class.
#[derive(Debug, Clone, Copy)]
pub struct Vector3<M: Mode> {
    /// X component (context-qualified: follows the instance).
    pub x: Ctx<f32, M>,
    /// Y component.
    pub y: Ctx<f32, M>,
    /// Z component.
    pub z: Ctx<f32, M>,
}

impl<M: Mode> Vector3<M> {
    /// Builds a vector from precise components (subtyping lets precise
    /// data flow into either instantiation).
    pub fn new(x: f32, y: f32, z: f32) -> Self {
        Vector3 { x: Ctx::new(x), y: Ctx::new(y), z: Ctx::new(z) }
    }

    /// Component-wise subtraction. (Named like jMonkeyEngine's
    /// `Vector3f.subtract`; implementing `std::ops::Sub` for every mode
    /// would shadow the same behaviour with more machinery.)
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, o: Self) -> Self {
        Vector3 { x: self.x - o.x, y: self.y - o.y, z: self.z - o.z }
    }

    /// Dot product, in the instance's precision.
    pub fn dot(self, o: Self) -> Ctx<f32, M> {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product, in the instance's precision.
    pub fn cross(self, o: Self) -> Self {
        Vector3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }
}

impl Vector3<PreciseMode> {
    /// Squared length; precise instances project without endorsement.
    pub fn length_squared(self) -> f32 {
        self.dot(self).into_precise()
    }
}

impl Vector3<ApproxMode> {
    /// Squared length as approximate data; needs an endorsement to leave.
    pub fn length_squared(self) -> Approx<f32> {
        self.dot(self).to_approx()
    }
}

/// An approximable bit vector (the paper's ZXing `BitArray`).
#[derive(Debug, Clone)]
pub struct BitVector<M: Mode> {
    bits: Vec<bool>,
    _mode: PhantomData<M>,
}

impl<M: Mode> BitVector<M> {
    /// Builds from a slice of bits.
    pub fn from_bits(bits: &[bool]) -> Self {
        BitVector { bits: bits.to_vec(), _mode: PhantomData }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range (indices are precise, section 2.6).
    pub fn set(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }
}

/// Algorithmic approximation (section 2.5.2): the `isRange` query, with an
/// `_APPROX` overload selected by the receiver's mode.
pub trait RangeCheck {
    /// Whether every bit in `lo..hi` is set — possibly checked
    /// approximately, per the receiver's precision.
    fn is_range(&self, lo: usize, hi: usize) -> bool;
}

impl RangeCheck for BitVector<PreciseMode> {
    fn is_range(&self, lo: usize, hi: usize) -> bool {
        let mut ok = Precise::new(1i32);
        for i in lo..hi.min(self.bits.len()) {
            // Multiply by the bit: one counted precise op per examined bit,
            // mirroring the approximate overload's op pattern.
            ok *= i32::from(self.bits[i]);
        }
        ok == 1
    }
}

impl RangeCheck for BitVector<ApproxMode> {
    /// The paper's approximate implementation: "checks only some of the
    /// bits in the range by skipping some loop iterations."
    fn is_range(&self, lo: usize, hi: usize) -> bool {
        let mut ok = Approx::new(1i32);
        let mut i = lo;
        while i < hi.min(self.bits.len()) {
            if !self.bits[i] {
                ok *= 0;
            }
            i += 2; // skip every other bit
        }
        endorse(ok.eq_approx(1))
    }
}

/// Ray–triangle intersection over approximable vectors (Möller–Trumbore),
/// precision-polymorphic: the same source serves both instantiations, the
/// paper's "single annotation makes an instance use both approximate data
/// and approximate code".
pub fn ray_hits_triangle<M: Mode>(
    origin: Vector3<M>,
    dir: Vector3<M>,
    v0: Vector3<M>,
    v1: Vector3<M>,
    v2: Vector3<M>,
) -> bool
where
    BoolOf<M>: DecideWith<M>,
{
    let e1 = v1.sub(v0);
    let e2 = v2.sub(v0);
    let p = dir.cross(e2);
    let det = e1.dot(p);
    if BoolOf::<M>::lt(det, 1e-8) && BoolOf::<M>::gt(det, -1e-8) {
        return false;
    }
    let inv_det = Ctx::<f32, M>::new(1.0) / det;
    let t_vec = origin.sub(v0);
    let u = t_vec.dot(p) * inv_det;
    if BoolOf::<M>::lt(u, 0.0) || BoolOf::<M>::gt(u, 1.0) {
        return false;
    }
    let q = t_vec.cross(e1);
    let v = dir.dot(q) * inv_det;
    if BoolOf::<M>::lt(v, 0.0) || BoolOf::<M>::gt(u + v, 1.0) {
        return false;
    }
    BoolOf::<M>::gt(e2.dot(q) * inv_det, 0.0)
}

/// Helper carrying the per-mode decision strategy for context values:
/// precise instances branch directly, approximate instances endorse.
pub struct BoolOf<M: Mode>(PhantomData<M>);

/// Decisions over `Ctx<f32, M>` values: the one place where control flow
/// touches the data, so the one place the two instantiations differ.
pub trait DecideWith<M: Mode> {
    /// `x < bound`, decided per the mode's rules.
    fn lt(x: Ctx<f32, M>, bound: f32) -> bool;
    /// `x > bound`, decided per the mode's rules.
    fn gt(x: Ctx<f32, M>, bound: f32) -> bool;
}

impl DecideWith<PreciseMode> for BoolOf<PreciseMode> {
    fn lt(x: Ctx<f32, PreciseMode>, bound: f32) -> bool {
        x.into_precise() < bound
    }
    fn gt(x: Ctx<f32, PreciseMode>, bound: f32) -> bool {
        x.into_precise() > bound
    }
}

impl DecideWith<ApproxMode> for BoolOf<ApproxMode> {
    fn lt(x: Ctx<f32, ApproxMode>, bound: f32) -> bool {
        endorse(x.to_approx().lt_approx(bound))
    }
    fn gt(x: Ctx<f32, ApproxMode>, bound: f32) -> bool {
        endorse(x.to_approx().gt_approx(bound))
    }
}

/// Convenience: endorse an approximate vector's components.
pub fn endorse_vector(v: Vector3<ApproxMode>) -> (f32, f32, f32) {
    (endorse_ctx(v.x), endorse_ctx(v.y), endorse_ctx(v.z))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact_rt() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn vector_ops_route_by_mode() {
        let rt = exact_rt();
        rt.run(|| {
            let a = Vector3::<ApproxMode>::new(1.0, 0.0, 0.0);
            let b = Vector3::<ApproxMode>::new(0.0, 1.0, 0.0);
            let c = a.cross(b);
            let (x, y, z) = endorse_vector(c);
            assert_eq!((x, y, z), (0.0, 0.0, 1.0));

            let p = Vector3::<PreciseMode>::new(3.0, 4.0, 0.0);
            assert_eq!(p.length_squared(), 25.0);
        });
        let s = rt.stats();
        assert!(s.fp_approx_ops > 0, "approx instance used the imprecise FPU");
        assert!(s.fp_precise_ops > 0, "precise instance used the reliable FPU");
    }

    #[test]
    fn intersection_agrees_across_modes_when_masked() {
        let rt = exact_rt();
        rt.run(|| {
            let cases = crate::workload::triangle_cases(100);
            for c in cases.iter() {
                let approx = ray_hits_triangle(
                    Vector3::<ApproxMode>::new(c[0], c[1], c[2]),
                    Vector3::new(c[3], c[4], c[5]),
                    Vector3::new(c[6], c[7], c[8]),
                    Vector3::new(c[9], c[10], c[11]),
                    Vector3::new(c[12], c[13], c[14]),
                );
                let precise = ray_hits_triangle(
                    Vector3::<PreciseMode>::new(c[0], c[1], c[2]),
                    Vector3::new(c[3], c[4], c[5]),
                    Vector3::new(c[6], c[7], c[8]),
                    Vector3::new(c[9], c[10], c[11]),
                    Vector3::new(c[12], c[13], c[14]),
                );
                assert_eq!(approx, precise);
            }
        });
    }

    #[test]
    fn bitvector_is_range_overloads() {
        let rt = exact_rt();
        rt.run(|| {
            let mut bits = vec![true; 32];
            bits[20] = false;
            let precise = BitVector::<PreciseMode>::from_bits(&bits);
            let approx = BitVector::<ApproxMode>::from_bits(&bits);
            // Precise: finds the hole.
            assert!(!precise.is_range(0, 32));
            assert!(precise.is_range(0, 20));
            // Approximate: checks even indices only, so a hole at an odd
            // offset from `lo` is invisible — cheaper, best effort.
            assert!(!approx.is_range(0, 32), "bit 20 is on the sampled grid");
            assert!(approx.is_range(21, 32), "skips the hole's parity");
            assert!(approx.is_range(0, 20));
        });
    }

    #[test]
    fn approx_is_range_does_less_work() {
        let rt = exact_rt();
        let bits = vec![true; 1000];
        rt.run(|| {
            let v = BitVector::<ApproxMode>::from_bits(&bits);
            assert!(v.is_range(0, 1000));
        });
        let approx_ops = rt.stats().int_approx_ops;
        let rt2 = exact_rt();
        rt2.run(|| {
            let v = BitVector::<PreciseMode>::from_bits(&bits);
            assert!(v.is_range(0, 1000));
        });
        let precise_ops = rt2.stats().int_precise_ops;
        assert!(
            approx_ops * 2 <= precise_ops + 10,
            "approx {approx_ops} vs precise {precise_ops}: should halve the work"
        );
    }
}
