//! Reference-free health monitoring: a canary kernel for online tuning.
//!
//! The paper's closing suggestion for section 6.2 contrasts *offline
//! profiling* (see [`crate::tuner`]) with *online monitoring "as in
//! Green"*. Green needs the application's own QoS signal; a cheaper
//! reference-free alternative is a **canary**: a tiny computation with a
//! known exact answer, executed on the approximate hardware alongside the
//! real workload. The canary's observed error estimates the substrate's
//! current unreliability without touching application outputs.
//!
//! [`canary_error`] runs one probe under the ambient runtime;
//! [`recommend_level`] calibrates — it probes each Table 2 level and
//! returns the most aggressive one whose mean canary error stays within a
//! tolerance, no application reference output required.

use enerj_core::{endorse, Approx, Runtime};
use enerj_hw::config::{HwConfig, Level};

/// Number of terms in the canary dot product.
const TERMS: usize = 96;

/// The canary kernel's exact answer, computed precisely.
fn expected() -> f64 {
    (0..TERMS).map(|i| ((i % 7) as f64 + 0.5) * ((i % 5) as f64 - 2.0)).sum()
}

/// Runs one canary probe on the ambient runtime: a fixed dot product in
/// approximate arithmetic, compared against its known answer. Returns the
/// relative error, clamped to `[0, 1]` with NaN counting as 1.
pub fn canary_error() -> f64 {
    let mut acc = Approx::new(0.0f64);
    for i in 0..TERMS {
        let a = (i % 7) as f64 + 0.5;
        let b = (i % 5) as f64 - 2.0;
        acc += Approx::new(a) * b;
    }
    let got = endorse(acc);
    let want = expected();
    if !got.is_finite() {
        return 1.0;
    }
    ((got - want).abs() / want.abs().max(1.0)).min(1.0)
}

/// Probes each level `probes` times and returns the most aggressive level
/// whose mean canary error is at most `tolerance`; `None` if even Mild
/// fails (run precisely).
///
/// # Panics
///
/// Panics if `probes` is zero or `tolerance` is negative.
pub fn recommend_level(tolerance: f64, probes: u64, seed: u64) -> Option<Level> {
    assert!(probes > 0, "at least one probe required");
    assert!(tolerance >= 0.0, "tolerance must be non-negative");
    for level in Level::ALL.iter().rev() {
        let mut total = 0.0;
        for p in 0..probes {
            let rt = Runtime::with_config(HwConfig::for_level(*level), seed ^ (p + 1));
            total += rt.run(canary_error);
        }
        if total / probes as f64 <= tolerance {
            return Some(*level);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_hw::config::StrategyMask;

    #[test]
    fn canary_is_exact_on_masked_hardware() {
        let cfg = HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE);
        let rt = Runtime::with_config(cfg, 0);
        assert_eq!(rt.run(canary_error), 0.0);
    }

    #[test]
    fn canary_error_grows_with_aggressiveness_on_average() {
        let mean = |level: Level| {
            (0..20)
                .map(|s| Runtime::with_config(HwConfig::for_level(level), s).run(canary_error))
                .sum::<f64>()
                / 20.0
        };
        let mild = mean(Level::Mild);
        let aggressive = mean(Level::Aggressive);
        assert!(mild <= aggressive, "mild {mild} vs aggressive {aggressive}");
        assert!(mild < 0.05, "mild canaries are almost always healthy");
    }

    #[test]
    fn recommendation_is_monotone_in_tolerance() {
        let rank = |l: Option<Level>| match l {
            None => 0,
            Some(Level::Mild) => 1,
            Some(Level::Medium) => 2,
            Some(Level::Aggressive) => 3,
        };
        let tight = recommend_level(1e-6, 5, 7);
        let loose = recommend_level(0.5, 5, 7);
        assert!(rank(tight) <= rank(loose));
        // A tolerance of 1.0 admits anything.
        assert_eq!(recommend_level(1.0, 3, 7), Some(Level::Aggressive));
    }

    #[test]
    fn canary_runs_without_a_runtime_too() {
        // Portability: without a substrate the canary is trivially healthy.
        assert_eq!(canary_error(), 0.0);
    }
}
