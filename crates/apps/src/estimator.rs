//! Reference-free plausibility estimation for scalar outputs.
//!
//! The matrix-shaped apps are caught by their structural `check()`
//! functions (non-finite values, out-of-range pixels), but MonteCarlo and
//! jMonkeyEngine reduce to *single bounded scalars* that stay superficially
//! plausible under corruption — the EXPERIMENTS.md gap: their checkers were
//! blind to everything but NaN. Two complementary signals close it:
//!
//! * **Static plausibility bands** wired directly into the apps'
//!   [`check`](crate::App::check) functions (a π estimate outside
//!   `[2.6, 3.7]` is not a π estimate; a decision fraction outside
//!   `[0.05, 0.95]` is not a plausible scene) — stateless, so the recovery
//!   ladder can use them on any single run.
//! * **A running robust z-score** ([`RunningMad`]): the median absolute
//!   deviation over a window of *recent accepted outputs*, which adapts to
//!   where the campaign's outputs actually cluster and flags values that
//!   sit implausibly far outside that cluster. It is stateful, so it lives
//!   at a campaign's in-order drain point (the online scheduler's
//!   controller), never inside the stateless `check` fn — state in `check`
//!   would break the bit-identical-at-any-thread-count guarantee.
//!
//! Scoring uses the standard robust estimate `z = |x − median| /
//! (1.4826 · MAD)`, with an absolute deviation floor so a window of
//! near-identical values does not flag ordinary jitter as corruption.
//! Everything here is deterministic: same pushes in the same order, same
//! verdicts, on any thread count.

use std::collections::VecDeque;

/// Scale factor that makes the MAD a consistent estimator of the standard
/// deviation for normally distributed data.
pub const MAD_TO_SIGMA: f64 = 1.4826;

/// A windowed median-absolute-deviation plausibility estimator for scalar
/// outputs.
///
/// Push each *accepted* scalar with [`push`](Self::push); ask whether a new
/// value is plausible with [`is_plausible`](Self::is_plausible) (or get the
/// robust z-score from [`score`](Self::score)). Until
/// [`min_samples`](Self::min_samples) values have been pushed the estimator
/// abstains: every finite value is plausible, `score` returns `None`.
/// Non-finite values are never plausible, regardless of state.
#[derive(Debug, Clone)]
pub struct RunningMad {
    window: VecDeque<f64>,
    capacity: usize,
    min_samples: usize,
    threshold: f64,
    floor: f64,
}

impl RunningMad {
    /// An estimator with the default tuning: robust z threshold 8.0 (very
    /// conservative — a legitimate output spread never gets close), at
    /// least 8 samples before any verdict, and deviation floor `floor`
    /// (the absolute deviation considered ordinary jitter at this scalar's
    /// scale, e.g. `0.02` for a π estimate).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `floor` is not a positive finite
    /// value.
    pub fn new(capacity: usize, floor: f64) -> Self {
        Self::with(capacity, 8, 8.0, floor)
    }

    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero, `min_samples` is zero, or `threshold`
    /// or `floor` is not a positive finite value.
    pub fn with(capacity: usize, min_samples: usize, threshold: f64, floor: f64) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        assert!(min_samples > 0, "min_samples must be positive");
        assert!(threshold.is_finite() && threshold > 0.0, "threshold must be positive");
        assert!(floor.is_finite() && floor > 0.0, "deviation floor must be positive");
        RunningMad {
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_samples,
            threshold,
            floor,
        }
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The number of samples required before the estimator issues verdicts.
    pub fn min_samples(&self) -> usize {
        self.min_samples
    }

    /// Adds an accepted scalar to the window, evicting the oldest when
    /// full. Non-finite values are ignored — they are corruption, not
    /// evidence of where outputs cluster.
    pub fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// The robust z-score of `x` against the window: `|x − median| /
    /// max(1.4826 · MAD, floor)`. `None` while the window holds fewer than
    /// [`min_samples`](Self::min_samples) values, or when `x` is not
    /// finite (callers should treat non-finite as implausible outright).
    pub fn score(&self, x: f64) -> Option<f64> {
        if !x.is_finite() || self.window.len() < self.min_samples {
            return None;
        }
        let med = self.median();
        let mut deviations: Vec<f64> = self.window.iter().map(|v| (v - med).abs()).collect();
        let mad = median_of(&mut deviations);
        let sigma = (MAD_TO_SIGMA * mad).max(self.floor);
        Some((x - med).abs() / sigma)
    }

    /// Whether `x` is a plausible next output: finite, and — once the
    /// window is warm — within [`threshold`](Self::with) robust standard
    /// deviations of the recent median.
    pub fn is_plausible(&self, x: f64) -> bool {
        if !x.is_finite() {
            return false;
        }
        match self.score(x) {
            None => true, // abstain until warm
            Some(z) => z <= self.threshold,
        }
    }

    fn median(&self) -> f64 {
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        median_of(&mut sorted)
    }
}

/// Median of a non-empty slice of finite values (averaging the middle pair
/// for even lengths). Sorts in place.
fn median_of(values: &mut [f64]) -> f64 {
    debug_assert!(!values.is_empty());
    values.sort_by(|a, b| a.partial_cmp(b).expect("window holds only finite values"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

#[cfg(test)]
// The fixtures below are *simulated MonteCarlo π estimates* — near-π
// literals are the point, not a sloppy spelling of `f64::consts::PI`.
#[allow(clippy::approx_constant)]
mod tests {
    use super::*;

    /// A plausible π-estimate stream: the kind of jitter MonteCarlo's
    /// accepted outputs actually show.
    fn warm_pi_estimator() -> RunningMad {
        let mut est = RunningMad::new(32, 0.02);
        for x in [3.1389, 3.1471, 3.1402, 3.1433, 3.1415, 3.1398, 3.1447, 3.1421, 3.1409, 3.1436] {
            est.push(x);
        }
        est
    }

    #[test]
    fn known_corrupted_scalars_are_flagged() {
        let est = warm_pi_estimator();
        // Values a fault-corrupted accumulator actually produces: sign
        // flips, doublings, garbage magnitudes — all far outside the
        // cluster of accepted outputs.
        for corrupted in [0.0, -3.14, 6.28, 1.0, 2.0, 100.0, 1e10, -1e10] {
            assert!(!est.is_plausible(corrupted), "{corrupted} should be implausible");
            assert!(est.score(corrupted).expect("warm window") > 8.0, "{corrupted}");
        }
        for garbage in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(!est.is_plausible(garbage));
            assert_eq!(est.score(garbage), None);
        }
    }

    #[test]
    fn plausible_neighbours_pass() {
        let est = warm_pi_estimator();
        for fine in [3.1415, 3.13, 3.15, 3.1002, 3.19] {
            assert!(est.is_plausible(fine), "{fine} is ordinary MonteCarlo jitter");
        }
    }

    #[test]
    fn abstains_until_min_samples() {
        let mut est = RunningMad::new(32, 0.02);
        for i in 0..7 {
            est.push(3.14 + i as f64 * 1e-3);
            // One sample short of the default min of 8: no verdicts yet.
            assert_eq!(est.score(100.0), None);
            assert!(est.is_plausible(100.0), "abstaining accepts finite values");
            assert!(!est.is_plausible(f64::NAN), "non-finite never passes");
        }
        est.push(3.1485);
        assert_eq!(est.len(), 8);
        assert!(!est.is_plausible(100.0), "warm estimator flags the outlier");
    }

    #[test]
    fn deviation_floor_tolerates_identical_windows() {
        // All-identical window: MAD is 0; without the floor every nonequal
        // value would be infinitely implausible.
        let mut est = RunningMad::new(16, 0.02);
        for _ in 0..16 {
            est.push(0.5);
        }
        assert!(est.is_plausible(0.5));
        assert!(est.is_plausible(0.52), "within one floor of the median");
        assert!(!est.is_plausible(0.9), "far outside the floor band");
    }

    #[test]
    fn window_evicts_oldest_and_ignores_nonfinite_pushes() {
        let mut est = RunningMad::with(4, 2, 8.0, 0.02);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            est.push(x);
        }
        assert_eq!(est.len(), 4, "capacity bounds the window");
        est.push(f64::NAN);
        est.push(f64::INFINITY);
        assert_eq!(est.len(), 4, "non-finite values never enter the window");
    }

    #[test]
    fn verdicts_are_deterministic() {
        let a = warm_pi_estimator();
        let b = warm_pi_estimator();
        for x in [3.14, 0.0, 2.9, 3.3, 1e6] {
            assert_eq!(a.score(x).map(f64::to_bits), b.score(x).map(f64::to_bits));
        }
    }

    #[test]
    #[should_panic(expected = "window capacity")]
    fn zero_capacity_rejected() {
        let _ = RunningMad::new(0, 0.02);
    }

    #[test]
    #[should_panic(expected = "deviation floor")]
    fn bad_floor_rejected() {
        let _ = RunningMad::new(8, 0.0);
    }
}
