//! Deterministic workload generation.
//!
//! Every benchmark's input is produced from a fixed seed so that the
//! reference (precise) output is identical across runs; the 20 runs of
//! Figure 5 vary only the fault-injection seed of the simulated hardware.
//!
//! Generators return [`Arc`]-shared values and consult a per-thread
//! [`Scratch`] cache when one is installed (see [`install`]): a campaign
//! worker that runs the same app thousands of times generates each input
//! once and reuses the buffer for every subsequent trial. Generation is a
//! pure function of the (seed, shape) key, so a cached input is exactly the
//! value a fresh generation would produce — caching can never perturb a
//! trial. Input generation is plain host computation (no simulated ops), so
//! the cache changes wall-clock cost only, never simulated statistics.

use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fixed input seed shared by all benchmarks.
pub const INPUT_SEED: u64 = 0xE7E2_2011;

/// A CSR sparse system: `(row_ptr, col_idx, values, x)`.
pub type SparseSystem = (Vec<usize>, Vec<usize>, Vec<f64>, Vec<f64>);

/// A complex signal as parallel `(re, im)` vectors.
pub type ComplexSignal = (Vec<f64>, Vec<f64>);

/// A seeded RNG for input generation.
pub fn input_rng(salt: u64) -> StdRng {
    StdRng::seed_from_u64(INPUT_SEED ^ salt)
}

/// Per-thread cache of generated workload inputs, keyed by shape. Owned by
/// a campaign worker's [`Workspace`](crate::harness::Workspace) and made
/// active for the duration of a measurement via [`install`].
#[derive(Debug, Default)]
pub struct Scratch {
    signals: HashMap<usize, Arc<ComplexSignal>>,
    grids: HashMap<usize, Arc<Vec<f64>>>,
    sparse: HashMap<(usize, usize), Arc<SparseSystem>>,
    lu: HashMap<usize, Arc<Vec<f64>>>,
    triangles: HashMap<usize, Arc<Vec<[f32; 15]>>>,
    images: HashMap<(usize, usize), Arc<Vec<i32>>>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

/// Makes `scratch` the thread's active workload cache until the returned
/// guard drops, then moves it (with anything generated meanwhile) back.
/// Nested installs stack: the inner guard restores the outer cache.
pub fn install(scratch: &mut Scratch) -> ActiveScratch<'_> {
    let prev = ACTIVE.with(|a| a.borrow_mut().replace(std::mem::take(scratch)));
    ActiveScratch { home: scratch, prev }
}

/// Guard of an [`install`]ed scratch cache; restores on drop (panic-safe).
#[derive(Debug)]
pub struct ActiveScratch<'a> {
    home: &'a mut Scratch,
    prev: Option<Scratch>,
}

impl Drop for ActiveScratch<'_> {
    fn drop(&mut self) {
        let mine = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), self.prev.take()));
        if let Some(s) = mine {
            *self.home = s;
        }
    }
}

/// Cache-or-generate: hits the active scratch when one is installed,
/// otherwise generates fresh. The generator runs outside the cache borrow,
/// so a generator may itself call other workload functions.
fn cached<K: Hash + Eq + Copy, V>(
    key: K,
    table: impl Fn(&mut Scratch) -> &mut HashMap<K, Arc<V>>,
    generate: impl FnOnce() -> V,
) -> Arc<V> {
    let hit = ACTIVE.with(|a| a.borrow_mut().as_mut().and_then(|s| table(s).get(&key).cloned()));
    if let Some(v) = hit {
        return v;
    }
    let v = Arc::new(generate());
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            table(s).insert(key, Arc::clone(&v));
        }
    });
    v
}

/// A complex signal of length `n` with components in `[-1, 1]`:
/// a few sinusoids plus noise, a typical FFT test input.
pub fn complex_signal(n: usize) -> Arc<ComplexSignal> {
    cached(
        n,
        |s| &mut s.signals,
        || {
            let mut rng = input_rng(1);
            let mut re = Vec::with_capacity(n);
            let mut im = Vec::with_capacity(n);
            for i in 0..n {
                let t = i as f64 / n as f64;
                let s = 0.45 * (2.0 * std::f64::consts::PI * 5.0 * t).sin()
                    + 0.30 * (2.0 * std::f64::consts::PI * 17.0 * t).cos()
                    + 0.10 * (rng.gen::<f64>() - 0.5);
                re.push(s);
                im.push(0.05 * (rng.gen::<f64>() - 0.5));
            }
            (re, im)
        },
    )
}

/// A grid with a hot interior region and cold boundary, for SOR.
pub fn sor_grid(n: usize) -> Arc<Vec<f64>> {
    cached(
        n,
        |s| &mut s.grids,
        || {
            let mut rng = input_rng(2);
            let mut g = vec![0.0; n * n];
            for (i, cell) in g.iter_mut().enumerate() {
                let (r, c) = (i / n, i % n);
                if r > 0 && r < n - 1 && c > 0 && c < n - 1 {
                    *cell = rng.gen::<f64>();
                }
            }
            g
        },
    )
}

/// A sparse matrix in CSR form with `n` rows and roughly `nz_per_row`
/// nonzeros per row, values in `[-1, 1]`, plus a dense vector.
pub fn sparse_system(n: usize, nz_per_row: usize) -> Arc<SparseSystem> {
    cached(
        (n, nz_per_row),
        |s| &mut s.sparse,
        || {
            let mut rng = input_rng(3);
            let mut row_ptr = Vec::with_capacity(n + 1);
            let mut col_idx = Vec::new();
            let mut values = Vec::new();
            row_ptr.push(0);
            for _ in 0..n {
                let mut cols: Vec<usize> = (0..nz_per_row).map(|_| rng.gen_range(0..n)).collect();
                cols.sort_unstable();
                cols.dedup();
                for c in cols {
                    col_idx.push(c);
                    values.push(rng.gen::<f64>() * 2.0 - 1.0);
                }
                row_ptr.push(col_idx.len());
            }
            let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 2.0 - 1.0).collect();
            (row_ptr, col_idx, values, x)
        },
    )
}

/// A well-conditioned dense matrix for LU: random entries with a boosted
/// diagonal so pivots stay healthy.
pub fn lu_matrix(n: usize) -> Arc<Vec<f64>> {
    cached(
        n,
        |s| &mut s.lu,
        || {
            let mut rng = input_rng(4);
            let mut a = vec![0.0; n * n];
            for r in 0..n {
                for c in 0..n {
                    a[r * n + c] = rng.gen::<f64>() * 2.0 - 1.0;
                }
                a[r * n + r] += n as f64 * 0.5;
            }
            a
        },
    )
}

/// Random ray–triangle test cases: each is (origin, direction, v0, v1, v2),
/// flattened to 15 floats. Roughly half the rays hit their triangle.
pub fn triangle_cases(count: usize) -> Arc<Vec<[f32; 15]>> {
    cached(
        count,
        |s| &mut s.triangles,
        || {
            let mut rng = input_rng(5);
            (0..count)
                .map(|_| {
                    let mut case = [0f32; 15];
                    // Triangle in the z = 2 plane, near the origin.
                    let cx = rng.gen::<f32>() * 2.0 - 1.0;
                    let cy = rng.gen::<f32>() * 2.0 - 1.0;
                    let verts = [(cx - 0.5, cy - 0.3), (cx + 0.5, cy - 0.3), (cx, cy + 0.6)];
                    for (i, (x, y)) in verts.iter().enumerate() {
                        case[6 + i * 3] = *x;
                        case[6 + i * 3 + 1] = *y;
                        case[6 + i * 3 + 2] = 2.0;
                    }
                    // Ray from z = 0 toward a random point near the triangle.
                    case[0] = rng.gen::<f32>() * 0.4 - 0.2;
                    case[1] = rng.gen::<f32>() * 0.4 - 0.2;
                    case[2] = 0.0;
                    let tx = cx + rng.gen::<f32>() * 1.6 - 0.8;
                    let ty = cy + rng.gen::<f32>() * 1.6 - 0.8;
                    case[3] = tx - case[0];
                    case[4] = ty - case[1];
                    case[5] = 2.0;
                    case
                })
                .collect()
        },
    )
}

/// A grayscale image with a few flat regions for flood filling, values in
/// `0..=255`.
pub fn segmented_image(w: usize, h: usize) -> Arc<Vec<i32>> {
    cached(
        (w, h),
        |s| &mut s.images,
        || {
            let mut rng = input_rng(6);
            let mut img = vec![0i32; w * h];
            // Three nested rectangles of distinct tone plus speckle noise.
            for y in 0..h {
                for x in 0..w {
                    let v = if x > w / 4 && x < 3 * w / 4 && y > h / 4 && y < 3 * h / 4 {
                        if x > w * 3 / 8 && x < w * 5 / 8 && y > h * 3 / 8 && y < h * 5 / 8 {
                            200
                        } else {
                            120
                        }
                    } else {
                        40
                    };
                    let noise: i32 = rng.gen_range(-6..=6);
                    img[y * w + x] = (v + noise).clamp(0, 255);
                }
            }
            img
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(complex_signal(64), complex_signal(64));
        assert_eq!(sor_grid(16), sor_grid(16));
        assert_eq!(lu_matrix(8), lu_matrix(8));
        assert_eq!(segmented_image(16, 16), segmented_image(16, 16));
    }

    #[test]
    fn scratch_cache_returns_the_generated_values() {
        // Fresh generation (no scratch installed) is the ground truth.
        let fresh_signal = complex_signal(64);
        let fresh_sparse = sparse_system(50, 3);
        let mut scratch = Scratch::default();
        {
            let _active = install(&mut scratch);
            // First call populates; second call must hit the same buffer.
            let a = complex_signal(64);
            let b = complex_signal(64);
            assert!(Arc::ptr_eq(&a, &b), "second call must reuse the cached buffer");
            assert_eq!(a, fresh_signal, "cached input equals fresh generation");
            assert_eq!(sparse_system(50, 3), fresh_sparse);
        }
        // The guard moved the populated cache back into `scratch`; a
        // re-install serves the very same buffers.
        let first = {
            let _active = install(&mut scratch);
            complex_signal(64)
        };
        let second = {
            let _active = install(&mut scratch);
            complex_signal(64)
        };
        assert!(Arc::ptr_eq(&first, &second), "cache survives across installs");
    }

    #[test]
    fn nested_installs_restore_the_outer_cache() {
        let mut outer = Scratch::default();
        let mut inner = Scratch::default();
        let outer_buf = {
            let _o = install(&mut outer);
            let buf = sor_grid(8);
            {
                let _i = install(&mut inner);
                // The inner cache starts cold: this populates `inner`.
                let _ = sor_grid(8);
            }
            // Back on the outer cache: same buffer as before the nesting.
            let again = sor_grid(8);
            assert!(Arc::ptr_eq(&buf, &again));
            buf
        };
        assert!(!Arc::ptr_eq(&outer_buf, &{
            let _i = install(&mut inner);
            sor_grid(8)
        }));
    }

    #[test]
    fn signal_is_bounded() {
        let sig = complex_signal(256);
        let (re, im) = (&sig.0, &sig.1);
        assert!(re.iter().chain(im.iter()).all(|v| v.abs() <= 1.0));
        assert_eq!(re.len(), 256);
    }

    #[test]
    fn sor_grid_has_cold_boundary() {
        let n = 16;
        let g = sor_grid(n);
        for i in 0..n {
            assert_eq!(g[i], 0.0); // top row
            assert_eq!(g[(n - 1) * n + i], 0.0); // bottom row
            assert_eq!(g[i * n], 0.0); // left column
            assert_eq!(g[i * n + n - 1], 0.0); // right column
        }
    }

    #[test]
    fn csr_structure_is_consistent() {
        let sys = sparse_system(100, 5);
        let (row_ptr, col_idx, values, x) = (&sys.0, &sys.1, &sys.2, &sys.3);
        assert_eq!(row_ptr.len(), 101);
        assert_eq!(col_idx.len(), values.len());
        assert_eq!(*row_ptr.last().unwrap(), col_idx.len());
        assert_eq!(x.len(), 100);
        assert!(col_idx.iter().all(|&c| c < 100));
        assert!(row_ptr.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn lu_matrix_is_diagonally_boosted() {
        let n = 16;
        let a = lu_matrix(n);
        for r in 0..n {
            assert!(a[r * n + r].abs() > 1.0);
        }
    }

    #[test]
    fn triangle_cases_have_mixed_outcomes() {
        // Reference Möller–Trumbore on the generated cases should produce
        // both hits and misses.
        let cases = triangle_cases(200);
        let mut hits = 0;
        for c in cases.iter() {
            if reference_hit(c) {
                hits += 1;
            }
        }
        assert!(hits > 20 && hits < 180, "hits = {hits}");
    }

    /// Plain-float Möller–Trumbore used to sanity-check the generator.
    fn reference_hit(c: &[f32; 15]) -> bool {
        let o = [c[0], c[1], c[2]];
        let d = [c[3], c[4], c[5]];
        let v0 = [c[6], c[7], c[8]];
        let v1 = [c[9], c[10], c[11]];
        let v2 = [c[12], c[13], c[14]];
        let e1 = sub(v1, v0);
        let e2 = sub(v2, v0);
        let p = cross(d, e2);
        let det = dot(e1, p);
        if det.abs() < 1e-8 {
            return false;
        }
        let inv = 1.0 / det;
        let t = sub(o, v0);
        let u = dot(t, p) * inv;
        if !(0.0..=1.0).contains(&u) {
            return false;
        }
        let q = cross(t, e1);
        let v = dot(d, q) * inv;
        v >= 0.0 && u + v <= 1.0 && dot(e2, q) * inv > 0.0
    }

    fn sub(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
        [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
    }

    fn dot(a: [f32; 3], b: [f32; 3]) -> f32 {
        a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
    }

    fn cross(a: [f32; 3], b: [f32; 3]) -> [f32; 3] {
        [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
    }
}
