//! Application-specific quality-of-service metrics (section 6, Table 3).
//!
//! Output error ranges from 0 (identical to the precise run) to 1
//! (meaningless output). For numeric outputs the error is the mean
//! entry-wise difference, with each entry's contribution capped at 1 and
//! NaN entries contributing 1, exactly as the paper specifies. Non-numeric
//! outputs (ZXing's decoded string) score 0 when correct and 1 otherwise;
//! jMonkeyEngine's boolean decisions score the fraction of incorrect
//! decisions normalized to 0.5 (random guessing ⇒ error 1).

use std::fmt;

/// A benchmark's output, in one of the three shapes the suite produces.
#[derive(Debug, Clone, PartialEq)]
pub enum Output {
    /// A list of numbers (matrices, images, spectra, scalars).
    Values(Vec<f64>),
    /// A decoded string (ZXing); `None` when decoding failed outright.
    Text(Option<String>),
    /// A list of boolean decisions (collision detection).
    Decisions(Vec<bool>),
}

impl fmt::Display for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Output::Values(v) => write!(f, "{} values", v.len()),
            Output::Text(Some(s)) => write!(f, "text {s:?}"),
            Output::Text(None) => write!(f, "decode failure"),
            Output::Decisions(d) => write!(f, "{} decisions", d.len()),
        }
    }
}

/// The QoS metric an application uses (Table 3, third column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QosMetric {
    /// Mean entry-wise difference (FFT, SOR, LU).
    MeanEntryDiff,
    /// Normalized difference of a scalar result (MonteCarlo).
    NormalizedDiff,
    /// Mean normalized entry-wise difference (SparseMatMult).
    MeanNormalizedDiff,
    /// Mean pixel difference against full scale (ImageJ, Raytracer).
    MeanPixelDiff {
        /// Full-scale pixel value (e.g. 255 for 8-bit images).
        full_scale: f64,
    },
    /// 1 if incorrect, 0 if correct (ZXing).
    BinaryCorrect,
    /// Fraction of correct decisions normalized to 0.5 (jMonkeyEngine).
    DecisionFraction,
}

impl fmt::Display for QosMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QosMetric::MeanEntryDiff => "mean entry difference",
            QosMetric::NormalizedDiff => "normalized difference",
            QosMetric::MeanNormalizedDiff => "mean normalized difference",
            QosMetric::MeanPixelDiff { .. } => "mean pixel difference",
            QosMetric::BinaryCorrect => "1 if incorrect, 0 if correct",
            QosMetric::DecisionFraction => "fraction of correct decisions (norm. 0.5)",
        };
        f.write_str(s)
    }
}

/// Computes the output error in `[0, 1]` of `observed` against `reference`.
///
/// A fault-injected run can corrupt control flow badly enough to change
/// the *shape* of its output — a different variant, or a `Values` list of
/// a different length. Following the paper's reading that a crashed or
/// structurally wrong run delivers worst-case quality, any such mismatch
/// scores error 1.0 (logged in debug builds, since for a reference-vs-
/// reference comparison it would indicate a harness bug).
///
/// The result is guaranteed to be a number in `[0, 1]`: per-entry scoring
/// already maps NaN entries to 1, and as defense in depth the final score
/// is clamped, with NaN mapped to worst-case 1.0 — one pathological
/// observed output (fp-timing faults can manufacture any bit pattern,
/// including NaN and ±∞) must degrade *that trial*, never poison a whole
/// campaign's mean with NaN.
///
/// # Panics
///
/// Panics only if `metric` does not apply to the shape of `reference`
/// itself — the reference comes from the precise run, so that really is a
/// harness bug.
pub fn output_error(metric: QosMetric, reference: &Output, observed: &Output) -> f64 {
    let raw = raw_output_error(metric, reference, observed);
    if raw.is_nan() {
        1.0
    } else {
        raw.clamp(0.0, 1.0)
    }
}

fn raw_output_error(metric: QosMetric, reference: &Output, observed: &Output) -> f64 {
    match (metric, reference) {
        (QosMetric::MeanEntryDiff, Output::Values(r)) => match observed {
            Output::Values(o) if o.len() == r.len() => mean_over(r, o, capped_abs_diff),
            other => shape_mismatch(metric, reference, other),
        },
        (QosMetric::NormalizedDiff | QosMetric::MeanNormalizedDiff, Output::Values(r)) => {
            match observed {
                Output::Values(o) if o.len() == r.len() => mean_over(r, o, normalized_diff),
                other => shape_mismatch(metric, reference, other),
            }
        }
        (QosMetric::MeanPixelDiff { full_scale }, Output::Values(r)) => match observed {
            Output::Values(o) if o.len() == r.len() => mean_over(r, o, |a, b| {
                if b.is_nan() {
                    1.0
                } else {
                    ((a - b).abs() / full_scale).min(1.0)
                }
            }),
            other => shape_mismatch(metric, reference, other),
        },
        (QosMetric::BinaryCorrect, Output::Text(r)) => match observed {
            Output::Text(o) => {
                if r == o {
                    0.0
                } else {
                    1.0
                }
            }
            other => shape_mismatch(metric, reference, other),
        },
        (QosMetric::DecisionFraction, Output::Decisions(r)) => match observed {
            Output::Decisions(o) if o.len() == r.len() => {
                if r.is_empty() {
                    return 0.0;
                }
                let correct = r.iter().zip(o).filter(|(a, b)| a == b).count();
                let frac = correct as f64 / r.len() as f64;
                // Random guessing gets ~0.5 of boolean decisions right; an
                // error of 1 means "no better than guessing".
                ((1.0 - frac) / 0.5).clamp(0.0, 1.0)
            }
            other => shape_mismatch(metric, reference, other),
        },
        (m, r) => panic!("metric {m:?} does not apply to reference output {r}"),
    }
}

/// Worst-case score for an observed output whose shape does not match the
/// reference. Logged in debug builds: legitimate for a fault-injected run,
/// a harness bug anywhere else.
fn shape_mismatch(metric: QosMetric, reference: &Output, observed: &Output) -> f64 {
    #[cfg(debug_assertions)]
    eprintln!(
        "qos: shape mismatch under {metric:?}: reference {reference} vs observed {observed}; \
         scoring worst-case error 1.0"
    );
    #[cfg(not(debug_assertions))]
    let _ = (metric, reference, observed);
    1.0
}

/// |a − b| capped at 1; NaN counts as fully wrong (the paper: "if an entry
/// in the output is NaN, that entry contributes an error of 1").
fn capped_abs_diff(a: f64, b: f64) -> f64 {
    if b.is_nan() || a.is_nan() {
        1.0
    } else {
        (a - b).abs().min(1.0)
    }
}

/// |a − b| / max(|a|, ε), capped at 1.
fn normalized_diff(a: f64, b: f64) -> f64 {
    if b.is_nan() || a.is_nan() {
        return 1.0;
    }
    let denom = a.abs().max(1e-9);
    ((a - b).abs() / denom).min(1.0)
}

/// Checks every entry of a `Values` output against a core
/// [`Guard`](enerj_core::Guard); the shared body of the per-app checker
/// hooks (see [`App::check`](crate::App)). Non-`Values` outputs are
/// rejected (the caller's app produces `Values`, so a different variant
/// means the run corrupted its own control flow).
pub fn check_values(output: &Output, guard: &impl enerj_core::Guard<f64>) -> Result<(), String> {
    match output {
        Output::Values(v) => {
            for (i, x) in v.iter().enumerate() {
                if !guard.admit(x) {
                    return Err(format!("entry {i} = {x} fails '{}'", guard.describe()));
                }
            }
            Ok(())
        }
        other => Err(format!("expected numeric output, got {other}")),
    }
}

fn mean_over(r: &[f64], o: &[f64], f: impl Fn(f64, f64) -> f64) -> f64 {
    // Callers route length mismatches through `shape_mismatch` first.
    debug_assert_eq!(r.len(), o.len(), "output lengths must match");
    if r.is_empty() {
        return 0.0;
    }
    r.iter().zip(o).map(|(&a, &b)| f(a, b)).sum::<f64>() / r.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_outputs_have_zero_error() {
        let v = Output::Values(vec![1.0, 2.0, 3.0]);
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &v, &v), 0.0);
        let t = Output::Text(Some("hello".into()));
        assert_eq!(output_error(QosMetric::BinaryCorrect, &t, &t), 0.0);
        let d = Output::Decisions(vec![true, false]);
        assert_eq!(output_error(QosMetric::DecisionFraction, &d, &d), 0.0);
    }

    #[test]
    fn mean_entry_diff_caps_each_entry() {
        let r = Output::Values(vec![0.0, 0.0]);
        let o = Output::Values(vec![100.0, 0.0]);
        // One entry off by 100 (capped to 1), one exact: mean 0.5.
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &r, &o), 0.5);
    }

    #[test]
    fn nan_entries_contribute_one() {
        let r = Output::Values(vec![1.0, 1.0]);
        let o = Output::Values(vec![f64::NAN, 1.0]);
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &r, &o), 0.5);
        assert_eq!(output_error(QosMetric::MeanNormalizedDiff, &r, &o), 0.5);
    }

    #[test]
    fn normalized_diff_scales_by_reference() {
        let r = Output::Values(vec![100.0]);
        let o = Output::Values(vec![99.0]);
        assert!((output_error(QosMetric::NormalizedDiff, &r, &o) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn pixel_diff_uses_full_scale() {
        let r = Output::Values(vec![255.0, 0.0]);
        let o = Output::Values(vec![0.0, 0.0]);
        let e = output_error(QosMetric::MeanPixelDiff { full_scale: 255.0 }, &r, &o);
        assert_eq!(e, 0.5);
    }

    #[test]
    fn binary_correct_is_all_or_nothing() {
        let r = Output::Text(Some("CODE-123".into()));
        let wrong = Output::Text(Some("CODE-124".into()));
        let failed = Output::Text(None);
        assert_eq!(output_error(QosMetric::BinaryCorrect, &r, &wrong), 1.0);
        assert_eq!(output_error(QosMetric::BinaryCorrect, &r, &failed), 1.0);
    }

    #[test]
    fn decision_fraction_normalizes_to_half() {
        let r = Output::Decisions(vec![true; 100]);
        let mut half_wrong = vec![true; 100];
        for d in half_wrong.iter_mut().take(50) {
            *d = false;
        }
        let o = Output::Decisions(half_wrong);
        // 50% correct = random guessing = error 1.
        assert_eq!(output_error(QosMetric::DecisionFraction, &r, &o), 1.0);
        let mostly = Output::Decisions(
            (0..100).map(|i| i >= 10).collect(), // 90% correct
        );
        let e = output_error(QosMetric::DecisionFraction, &r, &mostly);
        assert!((e - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_outputs_are_zero_error() {
        let v = Output::Values(vec![]);
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &v, &v), 0.0);
        let d = Output::Decisions(vec![]);
        assert_eq!(output_error(QosMetric::DecisionFraction, &d, &d), 0.0);
    }

    #[test]
    fn mismatched_values_lengths_score_worst_case() {
        let r = Output::Values(vec![1.0]);
        let o = Output::Values(vec![1.0, 2.0]);
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &r, &o), 1.0);
        assert_eq!(output_error(QosMetric::MeanNormalizedDiff, &r, &o), 1.0);
        assert_eq!(output_error(QosMetric::MeanPixelDiff { full_scale: 255.0 }, &r, &o), 1.0);
    }

    #[test]
    fn values_vs_text_scores_worst_case() {
        let r = Output::Values(vec![1.0, 2.0]);
        let o = Output::Text(Some("garbage".into()));
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &r, &o), 1.0);
    }

    #[test]
    fn decisions_length_mismatch_scores_worst_case() {
        let r = Output::Decisions(vec![true, false, true]);
        let o = Output::Decisions(vec![true]);
        assert_eq!(output_error(QosMetric::DecisionFraction, &r, &o), 1.0);
        let t = Output::Text(None);
        assert_eq!(output_error(QosMetric::DecisionFraction, &r, &t), 1.0);
    }

    #[test]
    fn text_metric_vs_values_scores_worst_case() {
        let r = Output::Text(Some("CODE-123".into()));
        let o = Output::Values(vec![67.0, 79.0]);
        assert_eq!(output_error(QosMetric::BinaryCorrect, &r, &o), 1.0);
    }

    #[test]
    fn adversarial_observed_outputs_never_score_nan() {
        // fp-timing faults can manufacture any bit pattern; whatever the
        // observed output contains, the trial's error must stay a number in
        // [0, 1] instead of poisoning campaign means with NaN.
        let adversarial = [
            vec![f64::NAN, f64::NAN],
            vec![f64::INFINITY, 1.0],
            vec![f64::NEG_INFINITY, f64::INFINITY],
            vec![f64::MAX, f64::MIN],
            vec![0.0, -0.0],
        ];
        let metrics = [
            QosMetric::MeanEntryDiff,
            QosMetric::NormalizedDiff,
            QosMetric::MeanNormalizedDiff,
            QosMetric::MeanPixelDiff { full_scale: 255.0 },
        ];
        for observed in &adversarial {
            for reference in &adversarial {
                for metric in metrics {
                    let e = output_error(
                        metric,
                        &Output::Values(reference.clone()),
                        &Output::Values(observed.clone()),
                    );
                    assert!(
                        !e.is_nan() && (0.0..=1.0).contains(&e),
                        "{metric:?} on {reference:?} vs {observed:?} scored {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn infinite_reference_and_observed_clamp_to_worst_case() {
        // (inf - inf).abs() is NaN; the per-entry cap and the final clamp
        // must turn that into 1.0, not propagate it.
        let r = Output::Values(vec![f64::INFINITY]);
        let o = Output::Values(vec![f64::INFINITY]);
        assert_eq!(output_error(QosMetric::MeanEntryDiff, &r, &o), 1.0);
    }

    #[test]
    fn check_values_reports_first_offender() {
        use enerj_core::{finite, in_range, Guard};
        let good = Output::Values(vec![0.1, 0.9]);
        assert_eq!(check_values(&good, &finite()), Ok(()));
        let bad = Output::Values(vec![0.1, f64::NAN, f64::INFINITY]);
        let err = check_values(&bad, &finite()).unwrap_err();
        assert!(err.contains("entry 1"), "{err}");
        let out_of_range = Output::Values(vec![5.0]);
        let err = check_values(&out_of_range, &in_range(0.0, 1.0)).unwrap_err();
        assert!(err.contains("in [0.0, 1.0]"), "{err}");
        let guard = finite().and(in_range(0.0, 1.0));
        assert!(check_values(&Output::Text(None), &guard).is_err(), "wrong variant rejected");
    }

    #[test]
    #[should_panic(expected = "does not apply to reference output")]
    fn metric_reference_mismatch_is_a_harness_bug() {
        // The reference comes from the precise run, so a metric that cannot
        // score the reference's shape is a harness bug, not degradation.
        let r = Output::Text(Some("CODE-123".into()));
        let o = Output::Text(Some("CODE-123".into()));
        let _ = output_error(QosMetric::MeanEntryDiff, &r, &o);
    }
}
