//! SciMark2 SOR (Jacobi successive over-relaxation), ported to EnerJ-RS.
//!
//! The grid lives in approximate DRAM and every stencil update is
//! approximate; the sweep structure (row/column loops, boundary handling)
//! is precise.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::batch::{zip, BatchOp};
use enerj_core::{Approx, ApproxBuf, ApproxVec};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("sor.rs");

/// Grid side length.
pub const N: usize = 32;
/// Relaxation sweeps.
pub const ITERATIONS: usize = 10;
/// Over-relaxation factor.
pub const OMEGA: f64 = 1.25;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "SOR",
        description: "SciMark2 successive over-relaxation (32x32, 10 sweeps)",
        metric: QosMetric::MeanEntryDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns the relaxed grid.
pub fn run() -> Output {
    let init = workload::sor_grid(N);
    let mut grid: ApproxVec<f64> = ApproxVec::from_slice(&init);
    relax(&mut grid, ITERATIONS);
    Output::Values(grid.endorse_to_vec())
}

/// Recovery sanity check (see [`App::check`](crate::App)): relaxation is a
/// contraction, so a non-finite grid entry can only come from a fault.
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::finite())
}

/// Gauss–Seidel-style in-place sweeps with the standard SciMark update:
/// `g[i][j] = ω/4 (up + down + left + right) + (1-ω) g[i][j]`.
///
/// The vertical neighbour sum and the row loads/stores run on the batched
/// whole-slice API; the west-to-east combine stays scalar because each
/// cell reads its freshly updated left neighbour. The per-element addition
/// order — `((up + down) + left) + right` — is exactly the scalar loop's.
fn relax(grid: &mut ApproxVec<f64>, sweeps: usize) {
    let om4 = Approx::new(OMEGA * 0.25);
    let keep = Approx::new(1.0 - OMEGA);
    for _ in 0..sweeps {
        for r in 1..N - 1 {
            let up = ApproxBuf::load(grid, (r - 1) * N + 1, N - 2);
            let down = ApproxBuf::load(grid, (r + 1) * N + 1, N - 2);
            let vert = zip(BatchOp::Add, &up, &down);
            // The whole old row, boundaries included: `left` at column 1
            // and `right`/`center` everywhere come from here.
            let row_old = ApproxBuf::load(grid, r * N, N);
            let mut new_row = Vec::with_capacity(N - 2);
            let mut left = row_old.get(0);
            for c in 1..N - 1 {
                let neighbours = vert.get(c - 1) + left + row_old.get(c + 1);
                let val = neighbours * om4 + row_old.get(c) * keep;
                new_row.push(val);
                left = val;
            }
            ApproxBuf::from_fn(N - 2, |k| new_row[k]).store(grid, r * N + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_run_matches_plain_sor() {
        let rt = exact();
        let Output::Values(ours) = rt.run(run) else { panic!() };
        // Plain-float reference.
        let mut g = workload::sor_grid(N).as_ref().clone();
        let om4 = OMEGA * 0.25;
        let keep = 1.0 - OMEGA;
        for _ in 0..ITERATIONS {
            for r in 1..N - 1 {
                for c in 1..N - 1 {
                    let i = r * N + c;
                    g[i] = om4 * (g[i - N] + g[i + N] + g[i - 1] + g[i + 1]) + keep * g[i];
                }
            }
        }
        for (a, b) in ours.iter().zip(&g) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn boundary_stays_cold() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        for i in 0..N {
            assert_eq!(v[i], 0.0);
            assert_eq!(v[(N - 1) * N + i], 0.0);
        }
    }

    #[test]
    fn interior_smooths_toward_neighbour_means() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        // After 20 sweeps the interior variance drops well below the
        // initial uniform-noise variance (~1/12).
        let interior: Vec<f64> = (1..N - 1)
            .flat_map(|r| (1..N - 1).map(move |c| (r, c)))
            .map(|(r, c)| v[r * N + c])
            .collect();
        let mean = interior.iter().sum::<f64>() / interior.len() as f64;
        let var =
            interior.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / interior.len() as f64;
        assert!(var < 0.05, "variance {var}");
    }

    #[test]
    fn storage_is_dominated_by_approximate_dram() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.approx_storage_fraction(enerj_hw::MemKind::Dram) > 0.9);
    }
}
