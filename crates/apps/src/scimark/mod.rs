//! The SciMark2 kernels of the paper's evaluation (Table 3): FFT, SOR,
//! MonteCarlo, SparseMatMult and LU, each ported to the EnerJ programming
//! model with approximate data arrays, approximate arithmetic, and precise
//! control flow.

pub mod fft;
pub mod lu;
pub mod montecarlo;
pub mod sor;
pub mod sparse;
