//! SciMark2 SparseMatMult (CSR sparse matrix–vector product), ported to
//! EnerJ-RS.
//!
//! Matrix values and both vectors are approximate heap data; the CSR index
//! structure (`row_ptr`, `col_idx`) is precise — corrupting it would cause
//! out-of-bounds accesses, exactly the failure class the type system is
//! designed to prevent (array indices must be precise, section 2.6).

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::{Approx, ApproxVec, Precise, PreciseVec};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("sparse.rs");

/// Matrix dimension.
pub const N: usize = 500;
/// Target nonzeros per row.
pub const NZ_PER_ROW: usize = 5;
/// Repeated products.
pub const REPS: usize = 1;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "SparseMatMult",
        description: "SciMark2 sparse matrix-vector multiply (CSR, n=500)",
        metric: QosMetric::MeanNormalizedDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns `y = A^REPS · x`
/// normalized per product step.
pub fn run() -> Output {
    let sys = workload::sparse_system(N, NZ_PER_ROW);
    let (row_ptr, col_idx, vals, x0) = (&sys.0, &sys.1, &sys.2, &sys.3);
    // Index structure in precise DRAM.
    let mut rows: PreciseVec<i64> =
        PreciseVec::from_slice(&row_ptr.iter().map(|&v| v as i64).collect::<Vec<_>>());
    let mut cols: PreciseVec<i64> =
        PreciseVec::from_slice(&col_idx.iter().map(|&v| v as i64).collect::<Vec<_>>());
    // Numeric payload in approximate DRAM.
    let mut a: ApproxVec<f64> = ApproxVec::from_slice(vals);
    let mut x: ApproxVec<f64> = ApproxVec::from_slice(x0);
    let mut y: ApproxVec<f64> = ApproxVec::new(N);

    for _ in 0..REPS {
        for r in 0..N {
            let lo = rows.get(r) as usize;
            let hi = rows.get(r + 1) as usize;
            let mut acc = Approx::new(0.0f64);
            let mut k = Precise::new(lo as i64);
            while k < hi as i64 {
                let kk = k.get() as usize;
                let c = cols.get(kk) as usize;
                acc += a.get(kk) * x.get(c);
                k += 1;
            }
            y.set(r, acc);
        }
        std::mem::swap(&mut x, &mut y);
    }
    Output::Values(x.endorse_to_vec())
}

/// Recovery sanity check (see [`App::check`](crate::App)): every entry of
/// the product vector must be finite.
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::finite())
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    /// Plain-float reference product.
    fn reference() -> Vec<f64> {
        let sys = workload::sparse_system(N, NZ_PER_ROW);
        let (row_ptr, col_idx, vals) = (&sys.0, &sys.1, &sys.2);
        let mut x = sys.3.clone();
        for _ in 0..REPS {
            let mut y = vec![0.0f64; N];
            for r in 0..N {
                for k in row_ptr[r]..row_ptr[r + 1] {
                    y[r] += vals[k] * x[col_idx[k]];
                }
            }
            x = y;
        }
        x
    }

    #[test]
    fn masked_run_matches_plain_product() {
        let rt = exact();
        let Output::Values(ours) = rt.run(run) else { panic!() };
        let expected = reference();
        for (a, b) in ours.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn output_is_nontrivial() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        assert_eq!(v.len(), N);
        assert!(v.iter().any(|e| e.abs() > 1e-6));
    }

    #[test]
    fn dram_holds_both_precise_indices_and_approx_values() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(!s.dram_approx_quanta.is_zero());
        assert!(!s.dram_precise_quanta.is_zero());
        let frac = s.approx_storage_fraction(enerj_hw::MemKind::Dram);
        // Values are f64 and indices i64 with comparable counts: the
        // approximate share sits in the middle of the range.
        assert!(frac > 0.2 && frac < 0.8, "frac = {frac}");
    }
}
