//! SciMark2 FFT, ported to EnerJ-RS.
//!
//! A radix-2 Cooley–Tukey transform over approximate heap arrays. The
//! annotation follows the paper's approach to SciMark: the signal data and
//! every butterfly operation are approximate; loop structure, bit-reversal
//! indices and twiddle-angle bookkeeping stay precise (indices must be —
//! section 2.6).

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::batch::{zip, BatchOp};
use enerj_core::{Approx, ApproxBuf, ApproxVec, Precise};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("fft.rs");

/// Transform length.
pub const N: usize = 256;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "FFT",
        description: "SciMark2 fast Fourier transform (radix-2, n=256)",
        metric: QosMetric::MeanEntryDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime and returns the spectrum
/// (real parts then imaginary parts).
pub fn run() -> Output {
    let signal = workload::complex_signal(N);
    let mut re: ApproxVec<f64> = ApproxVec::from_slice(&signal.0);
    let mut im: ApproxVec<f64> = ApproxVec::from_slice(&signal.1);
    fft_in_place(&mut re, &mut im);
    let mut out = re.endorse_to_vec();
    out.extend(im.endorse_to_vec());
    Output::Values(out)
}

/// Recovery sanity check (see [`App::check`](crate::App)): a fault that
/// reaches a high-order exponent bit turns the whole spectrum into
/// infinities; every entry must stay finite.
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::finite())
}

/// Below this block half-width the per-batch setup (buffer staging, slice
/// loads of a handful of elements) costs more than it amortizes; the early
/// stages run the identical per-element butterfly instead.
const BATCH_MIN_HALF: usize = 16;

/// In-place decimation-in-time FFT on approximate arrays, with the
/// butterflies of each block executed on the batched whole-slice API once
/// blocks are wide enough to amortize a batch (early small-block stages
/// run the same butterfly per element — identical per-element float
/// operation order, so the two paths agree exactly under a masked
/// runtime).
///
/// Every block of a stage uses the same twiddle factors (the per-block
/// recurrence restarts at 1), so the table is computed once per stage and
/// staged in approximate registers; it feeds only approximate data.
fn fft_in_place(re: &mut ApproxVec<f64>, im: &mut ApproxVec<f64>) {
    let n = re.len();
    bit_reverse_permute(re, im);

    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (w_step_re, w_step_im) = (ang.cos(), ang.sin());
        let mut tws_re = Vec::with_capacity(half);
        let mut tws_im = Vec::with_capacity(half);
        let mut w_re = Approx::new(1.0f64);
        let mut w_im = Approx::new(0.0f64);
        for _ in 0..half {
            tws_re.push(w_re);
            tws_im.push(w_im);
            let next_re = w_re * w_step_re - w_im * w_step_im;
            w_im = w_re * w_step_im + w_im * w_step_re;
            w_re = next_re;
        }

        if half < BATCH_MIN_HALF {
            let mut start = 0;
            while start < n {
                for k in 0..half {
                    let (i, j) = (start + k, start + k + half);
                    let (w_re, w_im) = (tws_re[k], tws_im[k]);
                    let (br, bi) = (re.get(j), im.get(j));
                    let t_re = br * w_re - bi * w_im;
                    let t_im = br * w_im + bi * w_re;
                    let (ar, ai) = (re.get(i), im.get(i));
                    re.set(i, ar + t_re);
                    im.set(i, ai + t_im);
                    re.set(j, ar - t_re);
                    im.set(j, ai - t_im);
                }
                start += len;
            }
            len <<= 1;
            continue;
        }

        let tw_re = ApproxBuf::from_fn(half, |k| tws_re[k]);
        let tw_im = ApproxBuf::from_fn(half, |k| tws_im[k]);
        let mut start = 0;
        while start < n {
            // One butterfly batch per block: both halves are contiguous.
            let a_re = ApproxBuf::load(re, start, half);
            let a_im = ApproxBuf::load(im, start, half);
            let b_re = ApproxBuf::load(re, start + half, half);
            let b_im = ApproxBuf::load(im, start + half, half);
            let t_re = zip(
                BatchOp::Sub,
                &zip(BatchOp::Mul, &b_re, &tw_re),
                &zip(BatchOp::Mul, &b_im, &tw_im),
            );
            let t_im = zip(
                BatchOp::Add,
                &zip(BatchOp::Mul, &b_re, &tw_im),
                &zip(BatchOp::Mul, &b_im, &tw_re),
            );
            zip(BatchOp::Add, &a_re, &t_re).store(re, start);
            zip(BatchOp::Add, &a_im, &t_im).store(im, start);
            zip(BatchOp::Sub, &a_re, &t_re).store(re, start + half);
            zip(BatchOp::Sub, &a_im, &t_im).store(im, start + half);
            start += len;
        }
        len <<= 1;
    }
}

/// Bit-reversal permutation on the batched whole-slice API: each array is
/// staged with one bulk DRAM read, permuted in registers (free moves), and
/// written back with one bulk store — versus the scalar path's four
/// scattered reads and four writes per swapped pair. Index arithmetic is
/// precise integer work and is instrumented as such, unchanged.
fn bit_reverse_permute(re: &mut ApproxVec<f64>, im: &mut ApproxVec<f64>) {
    let n = re.len();
    let bits = n.trailing_zeros();
    let mut rb = ApproxBuf::load(re, 0, n);
    let mut ib = ApproxBuf::load(im, 0, n);
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if j > i {
            let (ri, ii) = (rb.get(i), ib.get(i));
            rb.set(i, rb.get(j));
            ib.set(i, ib.get(j));
            rb.set(j, ri);
            ib.set(j, ii);
        }
    }
    rb.store(re, 0);
    ib.store(im, 0);
}

/// Reverses the low `bits` bits of `i`, counting the integer work.
fn reverse_bits(i: usize, bits: u32) -> usize {
    let mut v = Precise::new(i as i64);
    let mut out = Precise::new(0i64);
    for _ in 0..bits {
        out = out * 2 + v % 2;
        v /= 2;
    }
    out.get() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_run_matches_plain_fft() {
        let rt = exact();
        let Output::Values(ours) = rt.run(run) else { panic!() };
        // Reference: straightforward DFT on plain floats.
        let signal = workload::complex_signal(N);
        let (re, im) = (&signal.0, &signal.1);
        for k in [0usize, 1, 5, 17, 128] {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for t in 0..N {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / N as f64;
                sr += re[t] * ang.cos() - im[t] * ang.sin();
                si += re[t] * ang.sin() + im[t] * ang.cos();
            }
            assert!((ours[k] - sr).abs() < 1e-6, "bin {k} real: {} vs {}", ours[k], sr);
            assert!((ours[N + k] - si).abs() < 1e-6, "bin {k} imag");
        }
    }

    #[test]
    fn spectrum_peaks_at_signal_frequencies() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        let mag = |k: usize| (v[k] * v[k] + v[N + k] * v[N + k]).sqrt();
        // The generator injects tones at bins 5 and 17.
        assert!(mag(5) > 10.0 * mag(3));
        assert!(mag(17) > 10.0 * mag(3));
    }

    #[test]
    fn run_is_fp_dominated_with_some_int_work() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.fp_approx_ops > 5_000);
        assert!(s.int_precise_ops > 1_000, "bit reversal counts int work");
        assert!(s.approx_op_fraction(enerj_hw::OpKind::Fp) > 0.99);
    }

    #[test]
    fn reverse_bits_is_an_involution() {
        let rt = exact();
        rt.run(|| {
            for i in 0..64usize {
                assert_eq!(reverse_bits(reverse_bits(i, 6), 6), i);
            }
        });
    }
}
