//! SciMark2 FFT, ported to EnerJ-RS.
//!
//! A radix-2 Cooley–Tukey transform over approximate heap arrays. The
//! annotation follows the paper's approach to SciMark: the signal data and
//! every butterfly operation are approximate; loop structure, bit-reversal
//! indices and twiddle-angle bookkeeping stay precise (indices must be —
//! section 2.6).

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::{Approx, ApproxVec, Precise};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("fft.rs");

/// Transform length.
pub const N: usize = 256;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "FFT",
        description: "SciMark2 fast Fourier transform (radix-2, n=256)",
        metric: QosMetric::MeanEntryDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime and returns the spectrum
/// (real parts then imaginary parts).
pub fn run() -> Output {
    let (re_in, im_in) = workload::complex_signal(N);
    let mut re: ApproxVec<f64> = ApproxVec::from_slice(&re_in);
    let mut im: ApproxVec<f64> = ApproxVec::from_slice(&im_in);
    fft_in_place(&mut re, &mut im);
    let mut out = re.endorse_to_vec();
    out.extend(im.endorse_to_vec());
    Output::Values(out)
}

/// Recovery sanity check (see [`App::check`](crate::App)): a fault that
/// reaches a high-order exponent bit turns the whole spectrum into
/// infinities; every entry must stay finite.
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::finite())
}

/// In-place decimation-in-time FFT on approximate arrays.
fn fft_in_place(re: &mut ApproxVec<f64>, im: &mut ApproxVec<f64>) {
    let n = re.len();
    bit_reverse_permute(re, im);

    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let (w_step_re, w_step_im) = (ang.cos(), ang.sin());
        let mut start = 0;
        while start < n {
            // Twiddle recurrence kept in approximate registers: it feeds
            // only approximate data.
            let mut w_re = Approx::new(1.0f64);
            let mut w_im = Approx::new(0.0f64);
            for k in 0..len / 2 {
                let i = start + k;
                let j = i + len / 2;
                let (a_re, a_im) = (re.get(i), im.get(i));
                let (b_re, b_im) = (re.get(j), im.get(j));
                let t_re = b_re * w_re - b_im * w_im;
                let t_im = b_re * w_im + b_im * w_re;
                re.set(i, a_re + t_re);
                im.set(i, a_im + t_im);
                re.set(j, a_re - t_re);
                im.set(j, a_im - t_im);
                let next_re = w_re * w_step_re - w_im * w_step_im;
                w_im = w_re * w_step_im + w_im * w_step_re;
                w_re = next_re;
            }
            start += len;
        }
        len <<= 1;
    }
}

/// Bit-reversal permutation; index arithmetic is precise integer work and
/// is instrumented as such.
fn bit_reverse_permute(re: &mut ApproxVec<f64>, im: &mut ApproxVec<f64>) {
    let n = re.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = reverse_bits(i, bits);
        if j > i {
            let (ri, ii) = (re.get(i), im.get(i));
            let (rj, ij) = (re.get(j), im.get(j));
            re.set(i, rj);
            im.set(i, ij);
            re.set(j, ri);
            im.set(j, ii);
        }
    }
}

/// Reverses the low `bits` bits of `i`, counting the integer work.
fn reverse_bits(i: usize, bits: u32) -> usize {
    let mut v = Precise::new(i as i64);
    let mut out = Precise::new(0i64);
    for _ in 0..bits {
        out = out * 2 + v % 2;
        v /= 2;
    }
    out.get() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_run_matches_plain_fft() {
        let rt = exact();
        let Output::Values(ours) = rt.run(run) else { panic!() };
        // Reference: straightforward DFT on plain floats.
        let (re, im) = workload::complex_signal(N);
        for k in [0usize, 1, 5, 17, 128] {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for t in 0..N {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / N as f64;
                sr += re[t] * ang.cos() - im[t] * ang.sin();
                si += re[t] * ang.sin() + im[t] * ang.cos();
            }
            assert!((ours[k] - sr).abs() < 1e-6, "bin {k} real: {} vs {}", ours[k], sr);
            assert!((ours[N + k] - si).abs() < 1e-6, "bin {k} imag");
        }
    }

    #[test]
    fn spectrum_peaks_at_signal_frequencies() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        let mag = |k: usize| (v[k] * v[k] + v[N + k] * v[N + k]).sqrt();
        // The generator injects tones at bins 5 and 17.
        assert!(mag(5) > 10.0 * mag(3));
        assert!(mag(17) > 10.0 * mag(3));
    }

    #[test]
    fn run_is_fp_dominated_with_some_int_work() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.fp_approx_ops > 5_000);
        assert!(s.int_precise_ops > 1_000, "bit reversal counts int work");
        assert!(s.approx_op_fraction(enerj_hw::OpKind::Fp) > 0.99);
    }

    #[test]
    fn reverse_bits_is_an_involution() {
        let rt = exact();
        rt.run(|| {
            for i in 0..64usize {
                assert_eq!(reverse_bits(reverse_bits(i, 6), 6), i);
            }
        });
    }
}
