//! SciMark2 MonteCarlo (π estimation), ported to EnerJ-RS.
//!
//! The LCG random stream and the hit counter are precise — corrupting the
//! sample count would bias the estimate structurally — while the sample
//! coordinates and the distance computation are approximate, with a single
//! endorsement at the inside-the-circle test (the paper's idiom for
//! approximate conditions, section 2.4). All principal data lives in local
//! variables, which is why this benchmark shows almost no approximate DRAM
//! in Figure 3.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use enerj_core::{endorse, Approx, Precise};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("montecarlo.rs");

/// Number of samples.
pub const SAMPLES: usize = 8_192;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "MonteCarlo",
        description: "SciMark2 Monte Carlo pi estimation (8192 samples)",
        metric: QosMetric::NormalizedDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns the π estimate.
pub fn run() -> Output {
    // A 31-bit LCG (glibc constants), kept precise.
    let mut seed = Precise::new(113_355i64);
    let a = 1_103_515_245i64;
    let c = 12_345i64;
    let m = 1i64 << 31;
    let mut hits = Precise::new(0i64);
    for _ in 0..SAMPLES {
        seed = (seed * a + c) % m;
        let x = Approx::new(seed.get() as f64 / m as f64);
        seed = (seed * a + c) % m;
        let y = Approx::new(seed.get() as f64 / m as f64);
        let dist = x * x + y * y;
        if endorse(dist.le_approx(1.0)) {
            hits += 1;
        }
    }
    let pi = Precise::new(4.0f64) * (hits.get() as f64 / SAMPLES as f64);
    Output::Values(vec![pi.get()])
}

/// The plausibility band a π estimate must land in to pass [`check`].
///
/// 8192 samples put the honest estimate within a few hundredths of π; a
/// value outside this band is not a π estimate, even though the raw
/// formula `4 * hits/samples` could produce anything in `[0, 4]`. The
/// reference output sits comfortably inside (asserted by a pinned test),
/// so tightening the band from the structural `[0, 4]` cannot reject a
/// correct run — it only catches corrupted-but-formerly-plausible
/// scalars, the gap EXPERIMENTS.md documents for this app.
pub const PI_BAND: (f64, f64) = (2.6, 3.7);

/// Recovery sanity check (see [`App::check`](crate::App)): the estimate
/// must be finite and inside the [`PI_BAND`] plausibility band.
pub fn check(output: &Output) -> Result<(), String> {
    use enerj_core::Guard;
    crate::qos::check_values(
        output,
        &enerj_core::finite().and(enerj_core::in_range(PI_BAND.0, PI_BAND.1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn estimate_is_near_pi() {
        let rt = exact();
        let Output::Values(v) = rt.run(run) else { panic!() };
        assert!((v[0] - std::f64::consts::PI).abs() < 0.06, "pi = {}", v[0]);
    }

    #[test]
    fn estimate_is_deterministic_under_masked_runtime() {
        let a = exact().run(run);
        let b = exact().run(run);
        assert_eq!(a, b);
    }

    #[test]
    fn principal_data_stays_off_the_heap() {
        // The paper singles out MonteCarlo (and jMonkeyEngine) as keeping
        // data in locals: approximate DRAM should be (near) zero.
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.dram_approx_quanta.is_zero());
        assert!(!s.sram_approx_quanta.is_zero());
    }

    #[test]
    fn check_accepts_the_reference_and_rejects_corrupted_scalars() {
        let rt = exact();
        let reference = rt.run(run);
        assert_eq!(check(&reference), Ok(()), "the reference estimate must pass its own check");
        // Corrupted-but-formerly-plausible scalars: all inside the old
        // structural [0, 4] band, all visibly not π estimates.
        for corrupted in [0.0, 0.5, 1.0, 2.0, 2.5, 3.8, 4.0] {
            assert!(check(&Output::Values(vec![corrupted])).is_err(), "{corrupted}");
        }
        assert!(check(&Output::Values(vec![f64::NAN])).is_err());
        assert!(check(&Output::Values(vec![f64::NAN; 3])).is_err());
        #[allow(clippy::approx_constant)] // a sign-flipped pi estimate, deliberately
        let negated = -3.14;
        assert!(check(&Output::Values(vec![negated])).is_err());
        assert!(check(&Output::Values(vec![1e10])).is_err());
    }

    #[test]
    fn mixes_integer_and_fp_work() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.int_precise_ops > 10_000, "LCG is precise integer work");
        assert!(s.fp_approx_ops > 10_000, "distance math is approximate FP");
    }
}
