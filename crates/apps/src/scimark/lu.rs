//! SciMark2 LU factorization with partial pivoting, ported to EnerJ-RS.
//!
//! The matrix is approximate heap data and all elimination arithmetic is
//! approximate. Pivot *selection* compares approximate magnitudes, so each
//! comparison is explicitly endorsed — a wrong pivot choice degrades
//! accuracy but never memory safety, since the pivot index itself is kept
//! precise and bounds-checked.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::batch::{scalar, zip, BatchOp};
use enerj_core::{endorse, Approx, ApproxBuf, ApproxVec, Precise};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("lu.rs");

/// Matrix dimension.
pub const N: usize = 32;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "LU",
        description: "SciMark2 LU factorization with partial pivoting (32x32)",
        metric: QosMetric::MeanEntryDiff,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns the packed LU
/// factors (unit-lower-triangular L below the diagonal, U on and above).
pub fn run() -> Output {
    let a0 = workload::lu_matrix(N);
    let mut a: ApproxVec<f64> = ApproxVec::from_slice(&a0);
    factorize(&mut a);
    Output::Values(a.endorse_to_vec())
}

/// Recovery sanity check (see [`App::check`](crate::App)): every entry of
/// the factored matrix must be finite (a corrupted pivot division is the
/// classic way this kernel explodes).
pub fn check(output: &Output) -> Result<(), String> {
    crate::qos::check_values(output, &enerj_core::finite())
}

fn factorize(a: &mut ApproxVec<f64>) {
    for k in 0..N {
        // Partial pivoting: find the row with the largest |a[r][k]|.
        let mut pivot_row = k;
        let mut best = abs_approx(a.get(k * N + k));
        for r in k + 1..N {
            let cand = abs_approx(a.get(r * N + k));
            if endorse(cand.gt_approx(best)) {
                best = cand;
                pivot_row = r;
            }
        }
        if pivot_row != k {
            for c in 0..N {
                let tmp = a.get(k * N + c);
                let other = a.get(pivot_row * N + c);
                a.set(k * N + c, other);
                a.set(pivot_row * N + c, tmp);
            }
        }
        // Eliminate below the pivot. The trailing-row update is one
        // batched axpy per row: `row[c] -= factor * pivot_row[c]`, with
        // the same per-element operations as the scalar loop. The factor
        // address arithmetic stays precise integer work and is counted.
        let pivot = a.get(k * N + k);
        let width = N - 1 - k;
        for r in k + 1..N {
            let row = Precise::new(r as i64) * N as i64;
            let factor = a.get((row + k as i64).get() as usize) / pivot;
            a.set((row + k as i64).get() as usize, factor);
            if width == 0 {
                continue;
            }
            let rrow = ApproxBuf::load(a, r * N + k + 1, width);
            let krow = ApproxBuf::load(a, k * N + k + 1, width);
            let scaled = scalar(BatchOp::Mul, &krow, factor);
            zip(BatchOp::Sub, &rrow, &scaled).store(a, r * N + k + 1);
        }
    }
}

/// |x| on approximate data: an approximate comparison (endorsed) selecting
/// between x and −x.
fn abs_approx(x: Approx<f64>) -> Approx<f64> {
    if endorse(x.lt_approx(0.0)) {
        -x
    } else {
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_run_matches_plain_lu() {
        let rt = exact();
        let Output::Values(ours) = rt.run(run) else { panic!() };
        // Plain-float reference with identical pivoting logic.
        let mut a = workload::lu_matrix(N).as_ref().clone();
        for k in 0..N {
            let mut pr = k;
            let mut best = a[k * N + k].abs();
            for r in k + 1..N {
                if a[r * N + k].abs() > best {
                    best = a[r * N + k].abs();
                    pr = r;
                }
            }
            if pr != k {
                for c in 0..N {
                    a.swap(k * N + c, pr * N + c);
                }
            }
            let pivot = a[k * N + k];
            for r in k + 1..N {
                let f = a[r * N + k] / pivot;
                a[r * N + k] = f;
                for c in k + 1..N {
                    a[r * N + c] -= f * a[k * N + c];
                }
            }
        }
        for (x, y) in ours.iter().zip(&a) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn lu_reconstructs_the_matrix() {
        let rt = exact();
        let Output::Values(lu) = rt.run(run) else { panic!() };
        // Build P·A by replaying pivots is overkill; instead verify that
        // L·U has the same determinant magnitude as A (product of pivots).
        let mut det_u = 1.0f64;
        for k in 0..N {
            det_u *= lu[k * N + k];
        }
        // Reference determinant via the plain factorization above.
        assert!(det_u.is_finite() && det_u.abs() > 1.0, "det = {det_u}");
    }

    #[test]
    fn pivot_search_endorses_comparisons() {
        // Statically, this module contains endorsements (Table 3 reports
        // them); dynamically, pivoting must run approximate FP comparisons.
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.fp_approx_ops > 1_000);
        let stats = meta().annotation_stats();
        assert!(stats.endorsements >= 2, "endorsements = {}", stats.endorsements);
    }
}
