//! jMonkeyEngine substitute: batched ray–triangle intersection, ported to
//! EnerJ-RS.
//!
//! The paper's jMonkeyEngine workload "consists of many 3D triangle
//! intersection problems, an algorithm frequently used for collision
//! detection in games", annotated so aggressively that "every float
//! declaration was replaced indiscriminately with an @Approx float". This
//! port does the same: the entire Möller–Trumbore computation runs on
//! approximate `f32`s held in locals (hence almost no approximate DRAM,
//! matching Figure 3), with endorsements only at the final hit/miss
//! decisions. Quality of service is the fraction of correct boolean
//! decisions, normalized so that random guessing scores an error of 1.

use crate::approximable::{ray_hits_triangle, Vector3};
use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use crate::workload;
use enerj_core::context::ApproxMode;
use enerj_core::Precise;

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("jmonkey.rs");

/// Number of ray–triangle test cases.
pub const CASES: usize = 400;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "jMonkeyEngine",
        description: "ray-triangle intersection batch (Moller-Trumbore, 400 cases)",
        metric: QosMetric::DecisionFraction,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns the hit/miss
/// decision for each case.
pub fn run() -> Output {
    let cases = workload::triangle_cases(CASES);
    let mut processed = Precise::new(0i64);
    let decisions = cases
        .iter()
        .map(|c| {
            processed += 1;
            intersects(c)
        })
        .collect();
    debug_assert_eq!(processed.get(), CASES as i64);
    Output::Decisions(decisions)
}

/// The plausibility band the hit fraction must land in to pass [`check`].
///
/// The generated case mix intersects a middling fraction of the time (the
/// reference sits well inside `(0.1, 0.9)`, asserted by a pinned test); a
/// batch deciding almost everything one way is the signature of a
/// corrupted early-out comparison stuck on one branch — a failure the
/// length check alone can never see.
pub const HIT_FRACTION_BAND: (f64, f64) = (0.05, 0.95);

/// Recovery sanity check (see [`App::check`](crate::App)): the batch size
/// is precise, so anything but exactly [`CASES`] decisions means the run
/// corrupted its own control flow; and the hit fraction must land in the
/// [`HIT_FRACTION_BAND`] plausibility band.
pub fn check(output: &Output) -> Result<(), String> {
    match output {
        Output::Decisions(d) if d.len() != CASES => {
            Err(format!("expected {CASES} decisions, got {}", d.len()))
        }
        Output::Decisions(d) => {
            let hits = d.iter().filter(|&&b| b).count() as f64 / CASES as f64;
            if hits < HIT_FRACTION_BAND.0 || hits > HIT_FRACTION_BAND.1 {
                Err(format!("implausible hit fraction {hits:.3}"))
            } else {
                Ok(())
            }
        }
        other => Err(format!("expected decisions, got {other}")),
    }
}

/// Möller–Trumbore over `@Approx Vector3f` values — the paper's own
/// annotation for this engine: the `Vector3f` class is `@Approximable`
/// and every instance in the collision kernel is declared approximate.
/// Each early-out comparison endorses an approximate condition
/// (section 2.4), inside [`ray_hits_triangle`].
fn intersects(case: &[f32; 15]) -> bool {
    // `@Approx Vector3f` declarations, as in the paper's port.
    let origin: Vector3<ApproxMode> = Vector3::new(case[0], case[1], case[2]);
    let dir: Vector3<ApproxMode> = Vector3::new(case[3], case[4], case[5]);
    let v0: Vector3<ApproxMode> = Vector3::new(case[6], case[7], case[8]);
    let v1: Vector3<ApproxMode> = Vector3::new(case[9], case[10], case[11]);
    let v2: Vector3<ApproxMode> = Vector3::new(case[12], case[13], case[14]);
    ray_hits_triangle(origin, dir, v0, v1, v2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn masked_run_produces_mixed_decisions() {
        let rt = exact();
        let Output::Decisions(d) = rt.run(run) else { panic!() };
        assert_eq!(d.len(), CASES);
        let hits = d.iter().filter(|&&b| b).count();
        assert!(hits > CASES / 10 && hits < CASES * 9 / 10, "hits = {hits}");
    }

    #[test]
    fn masked_decisions_match_plain_float_reference() {
        let rt = exact();
        let Output::Decisions(ours) = rt.run(run) else { panic!() };
        let cases = workload::triangle_cases(CASES);
        for (i, case) in cases.iter().enumerate() {
            assert_eq!(ours[i], plain_intersects(case), "case {i}");
        }
    }

    #[test]
    fn work_is_almost_entirely_approximate_fp() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.approx_op_fraction(enerj_hw::OpKind::Fp) > 0.99);
        assert!(s.dram_approx_quanta.is_zero(), "all data lives in locals");
    }

    #[test]
    fn check_accepts_the_reference_and_rejects_degenerate_batches() {
        let rt = exact();
        let reference = rt.run(run);
        assert_eq!(check(&reference), Ok(()), "the reference decisions must pass their own check");
        // Right length, degenerate content: a comparison stuck on one
        // branch decides everything the same way.
        assert!(check(&Output::Decisions(vec![true; CASES])).is_err());
        assert!(check(&Output::Decisions(vec![false; CASES])).is_err());
        // Wrong length is still structural corruption.
        assert!(check(&Output::Decisions(vec![true; CASES - 1])).is_err());
        // A mixed batch inside the band passes.
        let mixed: Vec<bool> = (0..CASES).map(|i| i % 3 == 0).collect();
        assert_eq!(check(&Output::Decisions(mixed)), Ok(()));
    }

    #[test]
    fn known_direct_hit_and_clear_miss() {
        let rt = exact();
        rt.run(|| {
            // Triangle straight ahead, ray through its centroid.
            let hit: [f32; 15] =
                [0.0, 0.0, 0.0, 0.0, 0.0, 1.0, -1.0, -1.0, 2.0, 1.0, -1.0, 2.0, 0.0, 1.0, 2.0];
            assert!(intersects(&hit));
            // Same triangle, ray pointing away.
            let miss: [f32; 15] =
                [0.0, 0.0, 0.0, 0.0, 0.0, -1.0, -1.0, -1.0, 2.0, 1.0, -1.0, 2.0, 0.0, 1.0, 2.0];
            assert!(!intersects(&miss));
        });
    }

    /// Plain-float reference implementation.
    fn plain_intersects(c: &[f32; 15]) -> bool {
        let sub = |a: [f32; 3], b: [f32; 3]| [a[0] - b[0], a[1] - b[1], a[2] - b[2]];
        let dot = |a: [f32; 3], b: [f32; 3]| a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
        let cross = |a: [f32; 3], b: [f32; 3]| {
            [a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2], a[0] * b[1] - a[1] * b[0]]
        };
        let o = [c[0], c[1], c[2]];
        let d = [c[3], c[4], c[5]];
        let v0 = [c[6], c[7], c[8]];
        let e1 = sub([c[9], c[10], c[11]], v0);
        let e2 = sub([c[12], c[13], c[14]], v0);
        let p = cross(d, e2);
        let det = dot(e1, p);
        if det > -1e-8 && det < 1e-8 {
            return false;
        }
        let inv = 1.0 / det;
        let t = sub(o, v0);
        let u = dot(t, p) * inv;
        if !(0.0..=1.0).contains(&u) {
            return false;
        }
        let q = cross(t, e1);
        let v = dot(d, q) * inv;
        if v < 0.0 || u + v > 1.0 {
            return false;
        }
        dot(e2, q) * inv > 0.0
    }
}
