//! QoS-guarded recovery: watchdogs, checked results and precision-escalation
//! retries.
//!
//! The paper's protocol accepts whatever a fault-injected run produces —
//! a crashed run scores worst-case error and that is the end of it.
//! Significance-aware runtimes instead *check* each result and re-execute
//! failed work at higher precision, paying the recovery energy honestly.
//! This module is that quality-control layer for trial campaigns:
//!
//! 1. Every attempt runs under a watchdog
//!    ([`Runtime::run_guarded`](enerj_core::Runtime::run_guarded)), so a
//!    fault-corrupted loop terminates deterministically instead of hanging
//!    a worker thread.
//! 2. A completed attempt must pass the app's reference-free sanity check
//!    ([`App::check`](crate::App)) and, when the trial has a reference and
//!    the policy a threshold, a QoS estimate ([`output_error`]).
//! 3. A failed attempt is re-executed down the [`Policy`] ladder —
//!    typically Aggressive → Mild → Precise — with a fresh, provably
//!    disjoint retry seed per attempt. The Precise rung runs the reference
//!    configuration and therefore *cannot* miss: it is the guaranteed
//!    backstop that bounds degradation.
//!
//! Accounting is honest: the recovered trial's statistics, fault counters
//! and normalized energy are the *sums over every attempt*, including the
//! partial work of attempts that tripped the watchdog or panicked — so a
//! recovered trial can cost more than the precise baseline, and the
//! reported energy savings never hide the price of recovery. The
//! ladder-walk is a pure function of the trial's spec, so recovery-enabled
//! campaigns stay bit-identical at any thread count.

use std::fmt;

use crate::harness::FAULT_SEED_BASE;
use crate::qos::{output_error, Output};
use crate::App;
use enerj_core::{Degraded, Runtime};
use enerj_hw::config::{HwConfig, Level, StrategyMask};
use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
use enerj_hw::quanta::EnergyQuanta;
use enerj_hw::stats::Stats;
use enerj_hw::trace::FaultEvent;
use enerj_hw::FaultCounters;

/// Base pattern for *recovery retry* seeds: bit 63 clear, bit 62 set.
///
/// The three seed streams partition the top two bits: evaluation seeds
/// (`FAULT_SEED_BASE ^ i`, indices below `2^62`) have both clear, tuner
/// seeds ([`TUNER_SEED_BASE`](crate::harness::TUNER_SEED_BASE)) have bit 63
/// set, and every retry seed has exactly bit 62 set. A retry therefore
/// never replays a fault sequence that any evaluation or profiling run has
/// seen or will see — pinned by a property test.
pub const RETRY_SEED_BASE: u64 = FAULT_SEED_BASE | (1 << 62);

/// The retry seed for attempt `attempt` (1-based: the initial attempt uses
/// the trial's own seed) of a trial seeded with `trial_seed`.
///
/// A SplitMix64-style mix decorrelates retries of neighbouring trials, and
/// the top two bits are then forced to the retry pattern (bit 63 clear,
/// bit 62 set), keeping the stream disjoint from the evaluation and tuner
/// streams by construction.
pub fn retry_seed(trial_seed: u64, attempt: u32) -> u64 {
    let mut z = trial_seed ^ (u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // Force bits 63..62 to the retry stream's `01` pattern.
    (z & !(1 << 63)) | (1 << 62)
}

/// One rung of the precision-escalation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rung {
    /// Re-run under full fault injection at a Table 2 level.
    Level(Level),
    /// Re-run at the reference configuration (Medium parameters, every
    /// strategy masked off). Its output *is* the reference output, so this
    /// rung always passes every check — the guaranteed backstop.
    Precise,
}

impl Rung {
    /// The hardware configuration this rung runs under.
    pub fn config(self) -> HwConfig {
        match self {
            Rung::Level(level) => HwConfig::for_level(level),
            Rung::Precise => HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE),
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::Level(level) => write!(f, "{level}"),
            Rung::Precise => f.write_str("Precise"),
        }
    }
}

/// Why one attempt was rejected. Serialized (via `Display`) into
/// [`TrialResult::failure_causes`](crate::trials::TrialResult) so crash
/// triage and `faultscope` breakdowns need no re-run.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureCause {
    /// The attempt panicked (message truncated by
    /// [`enerj_core::panic_message`]).
    Panic(String),
    /// The watchdog terminated the attempt.
    OpBudgetExceeded {
        /// Op-ticks elapsed when the watchdog tripped.
        op_ticks: u64,
        /// The armed budget.
        budget: u64,
    },
    /// The app's reference-free sanity check rejected the output.
    CheckFailed(String),
    /// The QoS estimate against the reference exceeded the threshold.
    QosExceeded {
        /// The estimated output error.
        error: f64,
        /// The policy's threshold.
        threshold: f64,
    },
}

impl FailureCause {
    /// The stable cause category (`panic`, `op-budget`, `check`, `qos`) —
    /// the vocabulary `faultscope --causes` aggregates over.
    pub fn category(&self) -> &'static str {
        match self {
            FailureCause::Panic(_) => "panic",
            FailureCause::OpBudgetExceeded { .. } => "op-budget",
            FailureCause::CheckFailed(_) => "check",
            FailureCause::QosExceeded { .. } => "qos",
        }
    }
}

impl fmt::Display for FailureCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureCause::Panic(msg) => write!(f, "panic: {msg}"),
            FailureCause::OpBudgetExceeded { op_ticks, budget } => {
                write!(f, "op-budget: {op_ticks} ticks, budget {budget}")
            }
            FailureCause::CheckFailed(msg) => write!(f, "check: {msg}"),
            FailureCause::QosExceeded { error, threshold } => {
                write!(f, "qos: error {error:.4} > threshold {threshold}")
            }
        }
    }
}

/// How failed trials are retried.
#[derive(Debug, Clone, PartialEq)]
pub struct Policy {
    /// Escalation rungs tried in order after the initial attempt fails.
    /// Empty means "detect failures, never retry" (useful for telemetry).
    pub ladder: Vec<Rung>,
    /// Per-attempt op-tick budget for the watchdog; `None` runs unguarded
    /// (panics are still contained).
    pub max_ops: Option<u64>,
    /// Retry when the output error against the trial's reference exceeds
    /// this. Ignored for trials without a reference.
    pub qos_threshold: Option<f64>,
}

impl Policy {
    /// Default per-attempt op budget: far above any suite app's full run
    /// (the largest, FFT, completes in under 2 M op-ticks), so only a
    /// genuinely runaway loop trips it.
    pub const DEFAULT_MAX_OPS: u64 = 50_000_000;

    /// The standard ladder: retry once at Mild, then fall back to Precise.
    /// QoS threshold 0.1 (the "acceptable degradation" line used by the
    /// recovery bench), watchdog at [`Policy::DEFAULT_MAX_OPS`].
    pub fn standard() -> Self {
        Policy {
            ladder: vec![Rung::Level(Level::Mild), Rung::Precise],
            max_ops: Some(Policy::DEFAULT_MAX_OPS),
            qos_threshold: Some(0.1),
        }
    }
}

/// The Aggressive configuration with fault probabilities scaled by
/// `amplify` (saturating at probability 0.5 per event) — the *chaos*
/// substrate the recovery bench uses to generate enough failures to
/// measure recovery behaviour. `amplify = 1.0` is plain Aggressive.
pub fn chaos_config(amplify: f64) -> HwConfig {
    assert!(amplify >= 1.0 && amplify.is_finite(), "amplification must be >= 1, got {amplify}");
    let mut cfg = HwConfig::for_level(Level::Aggressive);
    let p = &mut cfg.params;
    p.sram_read_upset_prob = (p.sram_read_upset_prob * amplify).min(0.5);
    p.sram_write_failure_prob = (p.sram_write_failure_prob * amplify).min(0.5);
    p.timing_error_prob = (p.timing_error_prob * amplify).min(0.5);
    p.dram_flip_per_second *= amplify;
    cfg
}

/// Everything one recovered trial produced, summed over its attempts.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// The final attempt's output, if it completed (a trial whose last
    /// rung still panicked or tripped the watchdog has none).
    pub output: Option<Output>,
    /// Output error of the final attempt (worst-case 1.0 when it did not
    /// complete; 0.0 for trials without a reference).
    pub error: f64,
    /// Statistics merged over every attempt, including partial work.
    pub stats: Stats,
    /// Normalized energy summed over every attempt — may exceed 1.0; the
    /// price of recovery is charged, not hidden.
    pub energy: EnergyBreakdown,
    /// Exact integer energy summed over every attempt. Quanta addition is
    /// associative, so this total is independent of attempt interleaving
    /// and merge order.
    pub energy_quanta: EnergyQuantaBreakdown,
    /// Fault counters merged over every attempt.
    pub fault_counts: FaultCounters,
    /// Fault events of every attempt, in attempt order (empty unless the
    /// campaign logs events).
    pub events: Vec<FaultEvent>,
    /// Attempts executed (1 = no retry was needed).
    pub attempts: u32,
    /// The rung that produced the accepted output, when recovery was
    /// needed and succeeded (`None` if the initial attempt passed, or if
    /// every rung failed).
    pub recovered_at: Option<Rung>,
    /// Why each failed attempt was rejected, in attempt order.
    pub failure_causes: Vec<FailureCause>,
    /// Energy spent on attempts that did not produce the accepted output:
    /// `energy.total` minus the final attempt's total.
    pub recovery_energy_overhead: f64,
    /// The same overhead in exact quanta: `energy_quanta.total` minus the
    /// accepted attempt's quanta total. The accounting identity
    /// `accepted + overhead == energy_quanta.total` holds *exactly*, which
    /// the f64 twin cannot promise.
    pub recovery_energy_overhead_quanta: EnergyQuanta,
}

impl Recovered {
    /// Whether the accepted output came from a retry rung.
    pub fn recovered(&self) -> bool {
        self.recovered_at.is_some()
    }
}

/// One attempt: run, guard, check, estimate.
struct Attempt {
    output: Option<Output>,
    error: f64,
    energy_total: f64,
    energy_quanta_total: EnergyQuanta,
    failure: Option<FailureCause>,
}

fn run_attempt(
    app: &App,
    cfg: HwConfig,
    seed: u64,
    policy: &Policy,
    reference: Option<&Output>,
    log_events: bool,
    acc: &mut Recovered,
) -> Attempt {
    let rt = Runtime::with_config(cfg, seed);
    if log_events {
        rt.enable_fault_log();
    }
    let outcome = rt.run_guarded(policy.max_ops.unwrap_or(u64::MAX), app.run);
    // Charge the attempt whether or not it completed: a watchdog trip or a
    // panic still executed (and must pay for) its partial work.
    let energy = rt.energy();
    let energy_quanta = rt.energy_quanta();
    acc.stats.merge(&rt.stats());
    acc.energy.instructions += energy.instructions;
    acc.energy.sram += energy.sram;
    acc.energy.dram += energy.dram;
    acc.energy.total += energy.total;
    acc.energy_quanta.merge(&energy_quanta);
    acc.fault_counts.merge(&rt.fault_counters());
    acc.events.extend(rt.take_fault_events());
    acc.attempts += 1;

    let (output, error, failure) = match outcome {
        Ok(output) => {
            if let Err(msg) = (app.check)(&output) {
                (Some(output), 1.0, Some(FailureCause::CheckFailed(msg)))
            } else {
                let error = match reference {
                    Some(reference) => output_error(app.meta.metric, reference, &output),
                    None => 0.0,
                };
                let failure = match (policy.qos_threshold, reference) {
                    (Some(threshold), Some(_)) if error > threshold => {
                        Some(FailureCause::QosExceeded { error, threshold })
                    }
                    _ => None,
                };
                (Some(output), error, failure)
            }
        }
        Err(Degraded::OpBudgetExceeded { op_ticks, budget }) => {
            (None, 1.0, Some(FailureCause::OpBudgetExceeded { op_ticks, budget }))
        }
        Err(Degraded::Panicked(msg)) => (None, 1.0, Some(FailureCause::Panic(msg))),
    };
    Attempt {
        output,
        error,
        energy_total: energy.total,
        energy_quanta_total: energy_quanta.total,
        failure,
    }
}

/// Runs one trial under `policy`: the initial attempt at `cfg`/`seed`,
/// then — on a panic, watchdog trip, failed check or QoS breach — one
/// attempt per ladder rung with retry seeds from [`retry_seed`], stopping
/// at the first attempt that passes. Deterministic: the outcome is a pure
/// function of the arguments.
pub fn run_with_recovery(
    app: &App,
    cfg: HwConfig,
    seed: u64,
    policy: &Policy,
    reference: Option<&Output>,
    log_events: bool,
) -> Recovered {
    run_with_recovery_in(
        app,
        cfg,
        seed,
        policy,
        reference,
        log_events,
        &mut crate::harness::Workspace::new(),
    )
}

/// [`run_with_recovery`] with an explicit per-worker
/// [`Workspace`](crate::harness::Workspace): every attempt of the ladder
/// draws its input buffers from the same scratch cache, so a recovered
/// trial regenerates nothing. Bit-identical to the workspace-free path.
#[allow(clippy::too_many_arguments)]
pub fn run_with_recovery_in(
    app: &App,
    cfg: HwConfig,
    seed: u64,
    policy: &Policy,
    reference: Option<&Output>,
    log_events: bool,
    ws: &mut crate::harness::Workspace,
) -> Recovered {
    let _scratch = ws.activate();
    let mut acc = Recovered {
        output: None,
        error: 1.0,
        stats: Stats::new(),
        energy: EnergyBreakdown { instructions: 0.0, sram: 0.0, dram: 0.0, total: 0.0 },
        energy_quanta: EnergyQuantaBreakdown::ZERO,
        fault_counts: FaultCounters::new(),
        events: Vec::new(),
        attempts: 0,
        recovered_at: None,
        failure_causes: Vec::new(),
        recovery_energy_overhead: 0.0,
        recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
    };

    let mut attempt = run_attempt(app, cfg, seed, policy, reference, log_events, &mut acc);
    if attempt.failure.is_some() {
        for (k, rung) in policy.ladder.iter().enumerate() {
            acc.failure_causes.push(attempt.failure.take().expect("looping on a failure"));
            attempt = run_attempt(
                app,
                rung.config(),
                retry_seed(seed, k as u32 + 1),
                policy,
                reference,
                log_events,
                &mut acc,
            );
            if attempt.failure.is_none() {
                acc.recovered_at = Some(*rung);
                break;
            }
        }
        if let Some(cause) = attempt.failure.take() {
            // Every rung failed: the trial degrades to worst case, with
            // the full cause chain on record.
            acc.failure_causes.push(cause);
            acc.output = None;
            acc.error = 1.0;
            // No attempt was accepted, so no energy is attributable to
            // *recovery* — the whole cost is the trial's energy itself.
            acc.recovery_energy_overhead = 0.0;
            acc.recovery_energy_overhead_quanta = EnergyQuanta::ZERO;
            return acc;
        }
    }
    acc.error = attempt.error;
    acc.output = attempt.output;
    acc.recovery_energy_overhead = acc.energy.total - attempt.energy_total;
    // Exact: `accepted + overhead == total` round-trips in u128.
    acc.recovery_energy_overhead_quanta = acc.energy_quanta.total - attempt.energy_quanta_total;
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{self, TUNER_SEED_BASE};
    use crate::{all_apps, no_check};

    fn app(name: &str) -> App {
        all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
    }

    /// A test app whose loop bound is an endorsed approximate value: under
    /// the `looping` chaos config below it reliably runs away, which is
    /// the failure mode precise loop bounds make rare in the real suite.
    fn runaway_app() -> App {
        fn run() -> Output {
            use enerj_core::{endorse, Approx};
            // Under fault injection the endorsed bound can be enormous.
            let bound = endorse(Approx::new(1000i64) * 1);
            let mut acc = Approx::new(0.0f64);
            let mut i = 0i64;
            while i < bound {
                acc += 1.0;
                i += 1;
            }
            Output::Values(vec![endorse(acc)])
        }
        App { meta: crate::scimark::montecarlo::meta(), run, check: no_check }
    }

    #[test]
    fn retry_seeds_carry_the_stream_pattern() {
        for trial_seed in [0u64, FAULT_SEED_BASE, FAULT_SEED_BASE ^ 12345, u64::MAX >> 2] {
            for attempt in 1..5u32 {
                let s = retry_seed(trial_seed, attempt);
                assert_eq!(s >> 62, 0b01, "retry seed {s:#x} must have bits 63..62 = 01");
                assert_ne!(s, TUNER_SEED_BASE);
            }
        }
        assert_ne!(retry_seed(7, 1), retry_seed(7, 2), "attempts get distinct seeds");
        assert_ne!(retry_seed(7, 1), retry_seed(8, 1), "trials get distinct seeds");
        assert_eq!(retry_seed(7, 1), retry_seed(7, 1), "derivation is pure");
    }

    #[test]
    fn precise_rung_reproduces_the_reference() {
        for a in all_apps().iter().take(3) {
            let reference = harness::reference(a).output;
            let m = harness::measure_with(a, Rung::Precise.config(), retry_seed(3, 2));
            assert_eq!(m.output, reference, "{}", a.meta.name);
        }
    }

    #[test]
    fn clean_trials_pass_through_without_retry() {
        let mc = app("MonteCarlo");
        let reference = harness::reference(&mc).output;
        let out = run_with_recovery(
            &mc,
            HwConfig::for_level(Level::Mild),
            FAULT_SEED_BASE,
            &Policy::standard(),
            Some(&reference),
            false,
        );
        assert_eq!(out.attempts, 1);
        assert!(!out.recovered());
        assert!(out.failure_causes.is_empty());
        assert_eq!(out.recovery_energy_overhead, 0.0);
        assert_eq!(out.recovery_energy_overhead_quanta, EnergyQuanta::ZERO);
        assert!(out.error <= 0.1);
        // Identical accounting to an unrecovered measurement — exact on the
        // integer quanta, not just on the f64 projection.
        let m = harness::measure_with(&mc, HwConfig::for_level(Level::Mild), FAULT_SEED_BASE);
        assert_eq!(out.stats, m.stats);
        assert_eq!(out.energy.total, m.energy.total);
        assert_eq!(out.energy_quanta, m.energy_quanta);
    }

    #[test]
    fn qos_breach_escalates_and_charges_the_retries() {
        let mc = app("MonteCarlo");
        let reference = harness::reference(&mc).output;
        // Zero threshold: any nonzero error forces the ladder; the Precise
        // rung reproduces the reference, so error 0.0 is guaranteed.
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let chaos = chaos_config(50.0);
        let out = run_with_recovery(&mc, chaos, FAULT_SEED_BASE, &policy, Some(&reference), false);
        if out.recovered_at == Some(Rung::Precise) {
            assert_eq!(out.error, 0.0);
        }
        assert!(out.recovered(), "threshold 0 under chaos must escalate: {out:?}");
        assert!(out.attempts >= 2);
        assert_eq!(out.failure_causes.len() as u32, out.attempts - 1);
        assert!(out.recovery_energy_overhead > 0.0, "failed attempts cost energy");
        assert!(out.recovery_energy_overhead_quanta > EnergyQuanta::ZERO);
        let m = harness::measure_with(&mc, chaos, FAULT_SEED_BASE);
        assert!(out.energy.total > m.energy.total, "retry energy is added, not hidden");
        assert!(out.energy_quanta.total > m.energy_quanta.total);
    }

    #[test]
    fn watchdog_contains_runaway_loops_and_precise_rung_recovers() {
        let app = runaway_app();
        // Find a chaos seed whose corrupted bound trips a tight budget.
        let policy =
            Policy { ladder: vec![Rung::Precise], max_ops: Some(20_000), qos_threshold: None };
        let mut tripped = false;
        for i in 0..40u64 {
            let out = run_with_recovery(
                &app,
                chaos_config(1000.0),
                FAULT_SEED_BASE ^ i,
                &policy,
                None,
                false,
            );
            if let Some(FailureCause::OpBudgetExceeded { op_ticks, budget }) =
                out.failure_causes.first()
            {
                tripped = true;
                assert!(*op_ticks >= *budget);
                assert_eq!(out.recovered_at, Some(Rung::Precise));
                assert!(out.output.is_some(), "backstop produced an output");
                assert_eq!(out.attempts, 2);
                break;
            }
        }
        assert!(tripped, "1000x-amplified chaos never corrupted the endorsed bound");
    }

    #[test]
    fn recovery_outcomes_are_deterministic() {
        let sor = app("SOR");
        let reference = harness::reference(&sor).output;
        let policy = Policy { qos_threshold: Some(0.01), ..Policy::standard() };
        let go = || {
            let out = run_with_recovery(
                &sor,
                chaos_config(25.0),
                FAULT_SEED_BASE ^ 3,
                &policy,
                Some(&reference),
                false,
            );
            (
                out.error.to_bits(),
                out.attempts,
                out.recovered_at,
                out.energy.total.to_bits(),
                out.stats,
                format!("{:?}", out.failure_causes),
            )
        };
        assert_eq!(go(), go());
    }

    #[test]
    fn chaos_config_amplifies_and_saturates() {
        let base = HwConfig::for_level(Level::Aggressive);
        let amp = chaos_config(20.0);
        assert_eq!(amp.params.timing_error_prob, base.params.timing_error_prob * 20.0);
        let sat = chaos_config(1e9);
        assert_eq!(sat.params.timing_error_prob, 0.5);
        assert_eq!(sat.params.sram_read_upset_prob, 0.5);
        assert_eq!(chaos_config(1.0).params, base.params);
    }

    #[test]
    fn failure_causes_render_their_categories() {
        let causes = [
            FailureCause::Panic("boom".into()),
            FailureCause::OpBudgetExceeded { op_ticks: 10, budget: 5 },
            FailureCause::CheckFailed("entry 0 = NaN".into()),
            FailureCause::QosExceeded { error: 0.5, threshold: 0.1 },
        ];
        let rendered: Vec<String> = causes.iter().map(|c| c.to_string()).collect();
        assert_eq!(rendered[0], "panic: boom");
        assert_eq!(rendered[1], "op-budget: 10 ticks, budget 5");
        assert_eq!(rendered[2], "check: entry 0 = NaN");
        assert_eq!(rendered[3], "qos: error 0.5000 > threshold 0.1");
        for (c, want) in causes.iter().zip(["panic", "op-budget", "check", "qos"]) {
            assert_eq!(c.category(), want);
        }
    }
}
