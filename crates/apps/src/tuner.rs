//! Offline QoS profiling (section 6.2's closing suggestion).
//!
//! The paper observes that applications' "sensitivity to error varies
//! greatly for the Medium and Aggressive configurations", suggesting that
//! "an approximate execution substrate for EnerJ could benefit from tuning
//! to the characteristics of each application, either offline via
//! profiling or online via continuous QoS measurement as in Green."
//!
//! [`tune`] implements the offline variant: profile an application at each
//! Table 2 level over a handful of fault seeds, and select the most
//! aggressive level whose mean output error stays within a programmer-
//! specified budget. The result pairs the chosen level with the energy it
//! buys, making the accuracy-for-energy trade explicit.

use std::sync::Arc;

use crate::harness;
use crate::trials::{
    default_threads, run_campaign_with, CampaignOptions, CampaignReport, TrialSpec,
};
use crate::App;
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::energy::EnergyQuantaBreakdown;

/// Outcome of profiling one application against an error budget.
#[derive(Debug, Clone)]
pub struct TuningResult {
    /// The most aggressive admissible level; `None` when even Mild
    /// violates the budget (run precisely).
    pub chosen: Option<Level>,
    /// Mean output error at each of Mild/Medium/Aggressive.
    pub errors: [f64; 3],
    /// Normalized energy at each level (baseline = 1.0).
    pub energy: [f64; 3],
    /// Exact integer energy at each level — `energy` is its f64
    /// projection. Budget comparisons on these are `==`-exact and immune
    /// to summation order.
    pub energy_quanta: [EnergyQuantaBreakdown; 3],
}

impl TuningResult {
    /// The energy of the chosen configuration (1.0 when running precisely).
    pub fn chosen_energy(&self) -> f64 {
        match self.chosen {
            None => 1.0,
            Some(level) => {
                let i = Level::ALL.iter().position(|l| *l == level).expect("known level");
                self.energy[i]
            }
        }
    }

    /// The exact energy quanta of the chosen configuration (`None` when
    /// running precisely — a precise run has no profiled breakdown here).
    pub fn chosen_energy_quanta(&self) -> Option<EnergyQuantaBreakdown> {
        self.chosen.map(|level| {
            let i = Level::ALL.iter().position(|l| *l == level).expect("known level");
            self.energy_quanta[i]
        })
    }

    /// The profiled error of the chosen configuration (0 when precise).
    pub fn chosen_error(&self) -> f64 {
        match self.chosen {
            None => 0.0,
            Some(level) => {
                let i = Level::ALL.iter().position(|l| *l == level).expect("known level");
                self.errors[i]
            }
        }
    }
}

/// Profiles `app` over `runs` fault seeds per level and picks the most
/// aggressive level with mean error at most `error_budget`.
///
/// # Panics
///
/// Panics if `error_budget` is negative or `runs` is zero.
pub fn tune(app: &App, error_budget: f64, runs: u64) -> TuningResult {
    tune_with_threads(app, error_budget, runs, default_threads())
}

/// [`tune`] with an explicit worker-thread count for the profiling
/// campaign. The result is bit-identical for any thread count: seeds are
/// fixed per `(level, run)` and errors are averaged in run order.
///
/// # Panics
///
/// Panics if `error_budget` is negative or `runs` is zero.
pub fn tune_with_threads(app: &App, error_budget: f64, runs: u64, threads: usize) -> TuningResult {
    tune_campaign(app, error_budget, runs, &CampaignOptions::with_threads(threads)).0
}

/// [`tune`] with full [`CampaignOptions`], also returning the profiling
/// campaign's report (for telemetry export and JSON capture).
///
/// Profiling seeds are `TUNER_SEED_BASE ^ r` — a stream provably disjoint
/// from the evaluation seeds `FAULT_SEED_BASE ^ i` (the bases differ in
/// bit 63, which XOR with any index below `2^63` preserves), so the chosen
/// level is validated on fault sequences it was *not* profiled on.
///
/// # Panics
///
/// Panics if `error_budget` is negative or `runs` is zero.
pub fn tune_campaign(
    app: &App,
    error_budget: f64,
    runs: u64,
    opts: &CampaignOptions,
) -> (TuningResult, CampaignReport) {
    assert!(error_budget >= 0.0, "error budget must be non-negative");
    assert!(runs > 0, "profiling needs at least one run");
    let reference = Arc::new(harness::reference(app).output);
    let specs: Vec<TrialSpec> = Level::ALL
        .iter()
        .flat_map(|level| {
            let reference = Arc::clone(&reference);
            (0..runs).map(move |r| {
                TrialSpec::scored(
                    app,
                    level.to_string(),
                    HwConfig::for_level(*level),
                    harness::TUNER_SEED_BASE ^ r,
                    Arc::clone(&reference),
                )
            })
        })
        .collect();
    let report = run_campaign_with(&specs, opts);
    let mut errors = [0.0f64; 3];
    let mut energy = [1.0f64; 3];
    let mut energy_quanta = [EnergyQuantaBreakdown::ZERO; 3];
    for (i, level) in Level::ALL.iter().enumerate() {
        let label = level.to_string();
        errors[i] = report.mean_error_for(app.meta.name, &label);
        // Energy depends only on annotation fractions, not on injected
        // faults; keep the serial loop's last-run value.
        if let Some(last) = report.trials_for(app.meta.name, &label).last() {
            energy[i] = last.energy.total;
            energy_quanta[i] = last.energy_quanta;
        }
    }
    let chosen = Level::ALL
        .iter()
        .enumerate()
        .rev()
        .find(|(i, _)| errors[*i] <= error_budget)
        .map(|(_, l)| *l);
    (TuningResult { chosen, errors, energy, energy_quanta }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn app(name: &str) -> App {
        all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
    }

    #[test]
    fn robust_apps_tune_to_aggressive() {
        // MonteCarlo barely degrades at any level (Figure 5): a 5% budget
        // admits the most aggressive configuration.
        let r = tune(&app("MonteCarlo"), 0.05, 3);
        assert_eq!(r.chosen, Some(Level::Aggressive));
        assert!(r.chosen_energy() < 0.95);
    }

    #[test]
    fn fragile_apps_tune_conservatively() {
        // SOR loses significant fidelity at Medium (Figure 5): a 10%
        // budget never admits Medium or Aggressive. Mild errors are
        // heavy-tailed (a rare random-value FP fault can dominate a small
        // profiling sample), so profile with 10 runs for a stable mean;
        // even then the tuner may legitimately fall back to precise.
        let r = tune(&app("SOR"), 0.10, 10);
        assert!(
            matches!(r.chosen, None | Some(Level::Mild)),
            "fragile app must not tune past Mild, chose {:?}",
            r.chosen
        );
        assert_eq!(r.chosen, Some(Level::Mild));
    }

    #[test]
    fn zero_budget_can_force_precise_execution() {
        // With a literally-zero budget, any measured error disqualifies a
        // level; FFT almost always shows some error at Medium+.
        let r = tune(&app("FFT"), 0.0, 3);
        assert!(r.chosen.is_none() || r.chosen == Some(Level::Mild));
        if r.chosen.is_none() {
            assert_eq!(r.chosen_energy(), 1.0);
            assert_eq!(r.chosen_error(), 0.0);
            assert_eq!(r.chosen_energy_quanta(), None);
        }
    }

    #[test]
    fn errors_reported_per_level_are_monotone_enough() {
        let r = tune(&app("LU"), 1.0, 3);
        assert_eq!(r.chosen, Some(Level::Aggressive), "budget 1.0 admits everything");
        assert!(r.errors[0] <= r.errors[2] + 1e-9);
        assert!(r.energy[0] >= r.energy[2]);
        // The quanta are the exact source of the normalized numbers: each
        // level's scaled total stays at or below its own baseline, and the
        // chosen level's breakdown is returned verbatim (==-comparable).
        for q in &r.energy_quanta {
            assert!(q.total <= q.baseline_total);
        }
        assert_eq!(r.chosen_energy_quanta(), Some(r.energy_quanta[2]));
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn zero_runs_rejected() {
        let _ = tune(&app("MonteCarlo"), 0.1, 0);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let a = app("FFT");
        let serial = tune_with_threads(&a, 0.05, 3, 1);
        let parallel = tune_with_threads(&a, 0.05, 3, 4);
        assert_eq!(serial.chosen, parallel.chosen);
        for i in 0..3 {
            assert_eq!(serial.errors[i].to_bits(), parallel.errors[i].to_bits());
            assert_eq!(serial.energy[i].to_bits(), parallel.energy[i].to_bits());
            assert_eq!(serial.energy_quanta[i], parallel.energy_quanta[i]);
        }
    }
}
