//! Online significance-aware scheduling: hold a per-campaign energy budget
//! live, degrade the least significant work first.
//!
//! EnerJ's qualifiers are static and the offline [`tuner`](crate::tuner)
//! picks one level per whole app; this module is the runtime counterpart
//! (after Vassiliadis et al., arXiv:1412.5150): a deterministic feedback
//! controller that runs *inside* a streaming campaign, watches live quanta
//! spend, and assigns each upcoming trial a precision level —
//! [`SchedLevel::Precise`] through [`SchedLevel::Aggressive`] — so a fixed
//! [`EnergyQuanta`] budget is met while aggregate QoS is maximized. Each
//! epoch the controller floors every app at the least aggressive *uniform*
//! rung that fits the remaining budget — the best static single-level
//! schedule available — then spends the slack promoting the *most
//! significant* work back towards Precise first: the app whose estimated
//! error reduction per extra metered quantum is highest, per a
//! significance table seeded from tuner-stream profiles
//! ([`profile_workload`]) and updated online from the per-level error and
//! spend actually observed at the drain point. Equivalently, when the
//! budget tightens the least significant work is degraded first.
//!
//! # Determinism
//!
//! Decisions are a pure function of `(spec index, drained-prefix state)`,
//! so scheduled campaigns stay bit-identical at any thread count and chunk
//! size — the guarantee every prior engine change has carried. Concretely:
//!
//! * The campaign is partitioned into fixed *epochs* of
//!   [`epoch_len`](Controller::epoch_len) trials; the epoch length depends
//!   only on campaign length (never on threads or chunk size).
//! * The level table for epoch `e` is computed from a controller snapshot
//!   **frozen at exactly the first `(e − 1) · E` drained trials** — not
//!   "whatever has drained by now", which would race. The
//!   [`SchedulerSink`] folds each trial into the controller at the
//!   engine's in-order drain point and publishes the next table the moment
//!   the prefix reaches the boundary.
//! * [`ScheduledSource::spec`]`(i)` blocks until epoch `e(i)`'s table is
//!   published, i.e. until trials `0 .. (e−1)·E` have drained. It only
//!   ever waits on indices strictly below `i`, which the engine guarantees
//!   are already claimed — so the wait cannot deadlock, and the one-epoch
//!   lag keeps a 2·E-trial pipelining window open. The serial path never
//!   waits at all.
//!
//! The scheduler's seed use keeps the established partition: evaluation
//! trials run on `FAULT_SEED_BASE ^ run` (bits 63..62 = `00`), profiling
//! on `TUNER_SEED_BASE ^ run` (`10`), and any recovery retries on the
//! `RETRY_SEED_BASE` stream (`01`) — the three streams are provably
//! disjoint, so scheduling decisions are informed only by fault sequences
//! the scored trials never replay.
//!
//! # Failure signals
//!
//! Scheduled trials may carry the PR 5 escalation ladder
//! ([`SchedulerConfig::recovery`]) to rescue individual QoS failures. For
//! the scalar-output apps (MonteCarlo, jMonkeyEngine) the controller
//! additionally keeps a reference-free [`RunningMad`] plausibility
//! estimator over recent accepted outputs: a drained output the estimator
//! flags is treated as worst-case (error 1.0) in the significance table,
//! so visibly corrupted scalars push their app towards higher precision
//! even when no reference is available.

use std::borrow::Cow;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

use crate::estimator::RunningMad;
use crate::harness::{self, FAULT_SEED_BASE, TUNER_SEED_BASE};
use crate::qos::Output;
use crate::recovery;
use crate::trials::{
    run_campaign_from, run_campaign_streamed, CampaignOptions, CampaignReport, CampaignSummary,
    SpecFn, SpecSource, TrialResult, TrialSink, TrialSpec, VecSink,
};
use crate::App;
use enerj_hw::config::{HwConfig, Level};
use enerj_hw::energy::QuantaMeter;
use enerj_hw::quanta::EnergyQuanta;

/// The scheduler's precision ladder: the three Table 2 levels plus a true
/// precise rung.
///
/// `Precise` runs under [`HwConfig::precise`] — zero faults *and* zero
/// claimed savings — so it reproduces the reference output bit-for-bit and
/// is charged exactly the baseline cost. (The recovery ladder's `Precise`
/// rung differs: it silences faults but still books the level's savings.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SchedLevel {
    /// Full precision, full cost, zero error.
    Precise,
    /// Table 2 "Mild".
    Mild,
    /// Table 2 "Medium".
    Medium,
    /// Table 2 "Aggressive".
    Aggressive,
}

impl SchedLevel {
    /// All rungs, in degradation order (index order of every per-level
    /// array in this module).
    pub const ALL: [SchedLevel; 4] =
        [SchedLevel::Precise, SchedLevel::Mild, SchedLevel::Medium, SchedLevel::Aggressive];

    /// This rung's position in [`ALL`](Self::ALL).
    pub fn index(self) -> usize {
        match self {
            SchedLevel::Precise => 0,
            SchedLevel::Mild => 1,
            SchedLevel::Medium => 2,
            SchedLevel::Aggressive => 3,
        }
    }

    /// The hardware configuration this rung runs under.
    pub fn config(self) -> HwConfig {
        match self {
            SchedLevel::Precise => HwConfig::precise(),
            SchedLevel::Mild => HwConfig::for_level(Level::Mild),
            SchedLevel::Medium => HwConfig::for_level(Level::Medium),
            SchedLevel::Aggressive => HwConfig::for_level(Level::Aggressive),
        }
    }

    /// Stable display name (the `scheduled_level` vocabulary of the `/5`
    /// report schema).
    pub fn name(self) -> &'static str {
        match self {
            SchedLevel::Precise => "Precise",
            SchedLevel::Mild => "Mild",
            SchedLevel::Medium => "Medium",
            SchedLevel::Aggressive => "Aggressive",
        }
    }

    /// Parses a [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<SchedLevel> {
        SchedLevel::ALL.into_iter().find(|l| l.name() == s)
    }
}

impl fmt::Display for SchedLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A mixed scheduling workload: `runs` evaluation trials per app,
/// interleaved round-robin (trial `i` runs app `i % apps`, run `i / apps`)
/// so every epoch sees every app and the controller always has work to
/// degrade.
pub struct Workload {
    /// The applications, in trial round-robin order.
    pub apps: Vec<App>,
    /// Fault-free reference outputs, one per app.
    pub references: Vec<Arc<Output>>,
    /// Evaluation runs per app (seeds `FAULT_SEED_BASE ^ run`).
    pub runs: u64,
}

impl Workload {
    /// Builds the workload, collecting each app's fault-free reference.
    ///
    /// # Panics
    ///
    /// Panics if `apps` is empty or a reference run panics.
    pub fn new(apps: Vec<App>, runs: u64) -> Self {
        assert!(!apps.is_empty(), "a workload needs at least one app");
        let references = apps.iter().map(|app| Arc::new(harness::reference(app).output)).collect();
        Workload { apps, references, runs }
    }

    /// Total trials in the campaign.
    pub fn len(&self) -> usize {
        self.apps.len() * self.runs as usize
    }

    /// Whether the workload has no trials.
    pub fn is_empty(&self) -> bool {
        self.runs == 0
    }

    /// The app index of trial `index` (round-robin).
    pub fn app_index(&self, index: usize) -> usize {
        index % self.apps.len()
    }

    /// The per-app run number of trial `index`.
    pub fn run_index(&self, index: usize) -> u64 {
        (index / self.apps.len()) as u64
    }

    /// The evaluation seed of trial `index`.
    pub fn seed(&self, index: usize) -> u64 {
        FAULT_SEED_BASE ^ self.run_index(index)
    }

    /// The same workload as a static single-level campaign (the baseline
    /// the scheduler must beat): identical apps, seeds and order, every
    /// trial pinned to `level`, no scheduling.
    pub fn static_specs(&self, level: SchedLevel) -> Vec<TrialSpec> {
        (0..self.len())
            .map(|i| {
                let a = self.app_index(i);
                TrialSpec::scored(
                    &self.apps[a],
                    level.name(),
                    level.config(),
                    self.seed(i),
                    Arc::clone(&self.references[a]),
                )
            })
            .collect()
    }
}

/// Per-app significance seed: estimated per-trial output error and metered
/// cost at each [`SchedLevel`], from a profiling campaign on the tuner's
/// disjoint seed stream.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Mean output error per rung (index order of [`SchedLevel::ALL`]).
    pub error: [f64; 4],
    /// Mean metered per-trial cost per rung.
    pub cost: [EnergyQuanta; 4],
}

/// Profiles every app of `workload` at every rung: `runs` trials per
/// `(app, rung)` on seeds `TUNER_SEED_BASE ^ run` — a stream provably
/// disjoint from the evaluation seeds, so the significance table is seeded
/// on fault sequences the scored campaign never replays. Bit-identical for
/// any thread count.
///
/// # Panics
///
/// Panics if `runs` is zero.
pub fn profile_workload(
    workload: &Workload,
    meter: QuantaMeter,
    runs: u64,
    opts: &CampaignOptions,
) -> Vec<AppProfile> {
    assert!(runs > 0, "profiling needs at least one run per (app, rung)");
    let napps = workload.apps.len();
    let per_level = runs as usize;
    let per_app = SchedLevel::ALL.len() * per_level;
    let source = SpecFn::new(napps * per_app, |i| {
        let (a, rem) = (i / per_app, i % per_app);
        let (l, r) = (rem / per_level, rem % per_level);
        let level = SchedLevel::ALL[l];
        TrialSpec::scored(
            &workload.apps[a],
            level.name(),
            level.config(),
            TUNER_SEED_BASE ^ r as u64,
            Arc::clone(&workload.references[a]),
        )
    });
    let report = run_campaign_from(&source, opts);
    let mut profiles = Vec::with_capacity(napps);
    for a in 0..napps {
        let mut error = [0.0f64; 4];
        let mut cost = [EnergyQuanta::ZERO; 4];
        for (l, level) in SchedLevel::ALL.iter().enumerate() {
            let mut err_sum = 0.0;
            let mut cost_sum = EnergyQuanta::ZERO;
            let mut n = 0u128;
            for t in report.trials_for(workload.apps[a].meta.name, level.name()) {
                err_sum += t.error;
                cost_sum += meter.spent(&t.energy_quanta);
                n += 1;
            }
            assert_eq!(n, per_level as u128, "profiling campaign must cover every (app, rung)");
            error[l] = err_sum / n as f64;
            cost[l] = EnergyQuanta::new(cost_sum.get() / n);
        }
        profiles.push(AppProfile { error, cost });
    }
    profiles
}

/// How to schedule a campaign: the budget, what it meters, and the knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The per-campaign energy budget, in metered quanta.
    pub budget: EnergyQuanta,
    /// Which component of the exact energy breakdown the budget meters.
    pub meter: QuantaMeter,
    /// Trials per controller epoch (`0` = auto: `(len / 8).clamp(1, 64)`).
    /// A pure function of campaign length — never of threads or chunk — so
    /// epoch boundaries are identical for every execution of the campaign.
    pub epoch: usize,
    /// Optional per-trial recovery policy: the PR 5 escalation ladder still
    /// rescues individual QoS failures inside a scheduled campaign.
    pub recovery: Option<recovery::Policy>,
}

impl SchedulerConfig {
    /// A scheduler holding `budget` quanta on the default (SRAM) meter.
    pub fn new(budget: EnergyQuanta) -> Self {
        SchedulerConfig { budget, meter: QuantaMeter::Sram, epoch: 0, recovery: None }
    }
}

/// Per-(app, rung) online observation cell of the significance table.
#[derive(Debug, Clone, Copy, Default)]
struct LevelObs {
    /// Drained trials scheduled at this rung (including panicked ones).
    trials: u64,
    /// Error sum over those trials; implausible scalar outputs and panics
    /// fold in as worst-case 1.0.
    error_sum: f64,
    /// Metered spend sum over the non-panicked trials (a crashed run's
    /// zeroed quanta would poison the cost estimate).
    cost_trials: u64,
    cost_sum: EnergyQuanta,
}

/// Controller state mutated at the drain point, guarded by one mutex.
struct CtrlState {
    /// Trials drained so far (the frozen-prefix cursor).
    drained: usize,
    /// Exact metered spend over the drained prefix.
    spent: EnergyQuanta,
    /// Published level tables, one per epoch: `tables[e][app]` is the
    /// rung index every epoch-`e` trial of `app` runs at.
    tables: Vec<Vec<u8>>,
    /// The online significance table.
    obs: Vec<[LevelObs; 4]>,
    /// Reference-free plausibility estimators for scalar-output apps.
    mads: Vec<Option<RunningMad>>,
    /// Drained outputs the estimator flagged as implausible.
    implausible: u64,
}

/// The deterministic feedback controller. Shared (by reference) between
/// the [`ScheduledSource`] that asks for levels at claim time and the
/// [`SchedulerSink`] that feeds observations back at the drain point.
pub struct Controller {
    len: usize,
    napps: usize,
    epoch: usize,
    budget: EnergyQuanta,
    meter: QuantaMeter,
    recovery: Option<recovery::Policy>,
    app_names: Vec<&'static str>,
    profiles: Vec<AppProfile>,
    state: Mutex<CtrlState>,
    published: Condvar,
}

/// The absolute jitter band (in the scalar's own units) the plausibility
/// estimator always tolerates, per scalar-output app.
fn scalar_floor(app: &str) -> Option<f64> {
    match app {
        // A π estimate from 8192 samples jitters by ~0.02.
        "MonteCarlo" => Some(0.02),
        // A decision fraction over 400 cases jitters by a few percent.
        "jMonkeyEngine" => Some(0.05),
        _ => None,
    }
}

/// The single bounded scalar an output reduces to, for plausibility
/// scoring: the value itself for one-element vectors, the acceptance
/// fraction for decision outputs.
fn output_scalar(output: &Output) -> Option<f64> {
    match output {
        Output::Values(v) if v.len() == 1 => Some(v[0]),
        Output::Decisions(d) if !d.is_empty() => {
            Some(d.iter().filter(|&&b| b).count() as f64 / d.len() as f64)
        }
        _ => None,
    }
}

impl Controller {
    /// Builds the controller and publishes the tables for epochs 0 and 1
    /// (both depend on the empty drained prefix: seed profiles only).
    pub fn new(workload: &Workload, profiles: &[AppProfile], cfg: &SchedulerConfig) -> Self {
        let napps = workload.apps.len();
        assert_eq!(profiles.len(), napps, "one profile per app");
        let len = workload.len();
        let epoch = if cfg.epoch != 0 { cfg.epoch } else { (len / 8).clamp(1, 64) };
        let mads = workload
            .apps
            .iter()
            .map(|app| scalar_floor(app.meta.name).map(|floor| RunningMad::new(32, floor)))
            .collect();
        let ctrl = Controller {
            len,
            napps,
            epoch,
            budget: cfg.budget,
            meter: cfg.meter,
            recovery: cfg.recovery.clone(),
            app_names: workload.apps.iter().map(|a| a.meta.name).collect(),
            profiles: profiles.to_vec(),
            state: Mutex::new(CtrlState {
                drained: 0,
                spent: EnergyQuanta::ZERO,
                tables: Vec::new(),
                obs: vec![[LevelObs::default(); 4]; napps],
                mads,
                implausible: 0,
            }),
            published: Condvar::new(),
        };
        {
            let mut st = ctrl.state.lock().expect("unpoisoned controller");
            ctrl.publish_ready(&mut st);
        }
        ctrl
    }

    /// Trials per epoch (after auto-resolution).
    pub fn epoch_len(&self) -> usize {
        self.epoch
    }

    /// Number of epochs in the campaign.
    pub fn epochs(&self) -> usize {
        self.len.div_ceil(self.epoch)
    }

    /// The rung assigned to trial `index`, blocking until its epoch's
    /// table is published (i.e. until the first `(e − 1) · E` trials have
    /// drained — always indices strictly below `index`).
    pub fn level_for(&self, index: usize) -> SchedLevel {
        debug_assert!(index < self.len);
        let e = index / self.epoch;
        let mut st = self.state.lock().expect("unpoisoned controller");
        while st.tables.len() <= e {
            st = self.published.wait(st).expect("unpoisoned controller");
        }
        SchedLevel::ALL[st.tables[e][index % self.napps] as usize]
    }

    /// Whether trial outputs of app `a` should be kept for the scalar
    /// plausibility estimator.
    fn keeps_output(&self, a: usize) -> bool {
        scalar_floor(self.app_names[a]).is_some()
    }

    /// Folds one drained trial into the controller — called by the
    /// [`SchedulerSink`] in strict index order — and publishes any epoch
    /// tables whose observation prefix just completed.
    pub fn observe(&self, t: &TrialResult) {
        let mut st = self.state.lock().expect("unpoisoned controller");
        debug_assert_eq!(t.index, st.drained, "observations arrive in index order");
        let a = self
            .app_names
            .iter()
            .position(|n| *n == t.app)
            .expect("drained trial belongs to the workload");
        let lv = t
            .scheduled_level
            .as_deref()
            .and_then(SchedLevel::from_name)
            .expect("scheduled trials carry their assigned rung")
            .index();
        // Reference-free plausibility: a flagged scalar output counts as
        // worst-case error in the significance table, and never enters the
        // estimator's window.
        let mut observed_error = t.error;
        if let (Some(mad), Some(output)) = (st.mads[a].as_mut(), t.output.as_ref()) {
            if let Some(x) = output_scalar(output) {
                if mad.is_plausible(x) {
                    mad.push(x);
                } else {
                    observed_error = 1.0;
                    st.implausible += 1;
                }
            }
        }
        if t.panicked() {
            observed_error = 1.0;
        }
        let cell = &mut st.obs[a][lv];
        cell.trials += 1;
        cell.error_sum += observed_error;
        if !t.panicked() {
            cell.cost_trials += 1;
            cell.cost_sum += self.meter.spent(&t.energy_quanta);
        }
        st.drained += 1;
        st.spent = st.spent.saturating_add(self.meter.spent(&t.energy_quanta));
        self.publish_ready(&mut st);
        self.published.notify_all();
    }

    /// Publishes every epoch table whose observation prefix —
    /// `(e − 1) · E` drained trials — is complete.
    fn publish_ready(&self, st: &mut CtrlState) {
        let total = self.epochs();
        while st.tables.len() < total {
            let e = st.tables.len();
            let need = e.saturating_sub(1) * self.epoch;
            if st.drained < need {
                break;
            }
            let table = self.decide(st, e);
            st.tables.push(table);
        }
    }

    /// Estimated per-trial metered cost of app `a` at rung `lv`: the
    /// online mean when observed, the profile seed otherwise.
    fn est_cost(&self, st: &CtrlState, a: usize, lv: usize) -> EnergyQuanta {
        let cell = &st.obs[a][lv];
        if cell.cost_trials > 0 {
            EnergyQuanta::new(cell.cost_sum.get() / u128::from(cell.cost_trials))
        } else {
            self.profiles[a].cost[lv]
        }
    }

    /// Estimated per-trial output error of app `a` at rung `lv`.
    fn est_error(&self, st: &CtrlState, a: usize, lv: usize) -> f64 {
        let cell = &st.obs[a][lv];
        if cell.trials > 0 {
            cell.error_sum / cell.trials as f64
        } else {
            self.profiles[a].error[lv]
        }
    }

    /// Count of trials in `[lo, hi)` that belong to app `a` under the
    /// round-robin layout.
    fn app_trials_in(&self, lo: usize, hi: usize, a: usize) -> u64 {
        if hi <= lo {
            return 0;
        }
        // Trials with index ≡ a (mod napps) in [lo, hi).
        let first = lo + (a + self.napps - lo % self.napps) % self.napps;
        if first >= hi {
            0
        } else {
            ((hi - 1 - first) / self.napps + 1) as u64
        }
    }

    /// Projected metered spend of an assignment over the receding horizon:
    /// the in-flight spend plus each app's estimated per-trial cost at its
    /// assigned rung, times its remaining trial count.
    fn projected(
        &self,
        st: &CtrlState,
        fixed: EnergyQuanta,
        levels: &[u8],
        future: &[u64],
    ) -> EnergyQuanta {
        let mut total = fixed;
        for a in 0..self.napps {
            let per = self.est_cost(st, a, levels[a] as usize);
            total =
                total.saturating_add(EnergyQuanta::new(per.get().saturating_mul(future[a].into())));
        }
        total
    }

    /// The decision for epoch `e`, from a snapshot frozen at exactly
    /// `(e − 1) · E` drained trials. Two phases:
    ///
    /// 1. **Floor** — find the least aggressive *uniform* rung whose
    ///    projected spend fits the remaining budget (all-Aggressive best
    ///    effort when none does). This is the static baseline the
    ///    scheduler must never estimate below: the schedule starts where a
    ///    whole-campaign single-level assignment would land.
    /// 2. **Upgrade** — spend the slack the floor leaves, repeatedly
    ///    promoting the app one rung where the estimated error reduction
    ///    per extra metered quantum is highest (the most significant work
    ///    is restored first), as long as the projection still fits. The
    ///    budget is per-campaign and unspent quanta buy nothing, so even
    ///    zero-estimated-benefit promotions toward Precise are taken —
    ///    less aggressive rungs never raise true error.
    ///
    /// Ties resolve to the lowest app index; every input is part of the
    /// frozen snapshot, so the decision is a pure function of
    /// `(e, snapshot)`.
    fn decide(&self, st: &CtrlState, e: usize) -> Vec<u8> {
        let remaining = self.budget.saturating_sub(st.spent);
        let boundary = e * self.epoch; // first index this table governs
        debug_assert!(boundary < self.len);
        // In-flight spend: trials assigned by already-published tables but
        // not yet drained (at most the previous epoch).
        let mut fixed = EnergyQuanta::ZERO;
        for i in st.drained..boundary {
            let a = i % self.napps;
            let lv = st.tables[i / self.epoch][a] as usize;
            fixed = fixed.saturating_add(self.est_cost(st, a, lv));
        }
        // Per-app trial counts from this epoch to the end — the receding
        // horizon the chosen assignment is projected over.
        let future: Vec<u64> =
            (0..self.napps).map(|a| self.app_trials_in(boundary, self.len, a)).collect();
        // Phase 1: the uniform floor.
        let last = (SchedLevel::ALL.len() - 1) as u8;
        let mut levels = vec![last; self.napps];
        for rung in 0..=last {
            let uniform = vec![rung; self.napps];
            if self.projected(st, fixed, &uniform, &future) <= remaining {
                levels = uniform;
                break;
            }
        }
        // Phase 2: greedy upgrades out of the slack.
        loop {
            let mut best: Option<(f64, usize)> = None;
            for a in 0..self.napps {
                let cur = levels[a] as usize;
                if cur == 0 || future[a] == 0 {
                    continue;
                }
                let extra = self.est_cost(st, a, cur - 1).saturating_sub(self.est_cost(st, a, cur));
                let total_extra = extra.get().saturating_mul(future[a].into());
                let mut trial = levels.clone();
                trial[a] -= 1;
                if self.projected(st, fixed, &trial, &future) > remaining {
                    continue; // this promotion no longer fits
                }
                let gain = (self.est_error(st, a, cur) - self.est_error(st, a, cur - 1)).max(0.0);
                let value = if total_extra == 0 {
                    f64::INFINITY // a free promotion is always taken first
                } else {
                    gain * future[a] as f64 / total_extra as f64
                };
                if best.is_none_or(|(b, _)| value > b) {
                    best = Some((value, a));
                }
            }
            match best {
                Some((_, a)) => levels[a] -= 1,
                None => break, // no promotion fits: the slack is spent
            }
        }
        levels
    }
}

/// The claim-time hook: a [`SpecSource`] whose specs are rewritten by
/// controller state. Trial `i` is generated with the rung the controller
/// assigned its epoch, carrying the assignment in
/// [`TrialSpec::scheduled_level`] (and the recovery ladder, when
/// configured). Blocks inside [`spec`](SpecSource::spec) until the epoch's
/// table is published — see the module docs for why this cannot deadlock
/// under chunked work stealing.
pub struct ScheduledSource<'a> {
    workload: &'a Workload,
    controller: &'a Controller,
}

impl<'a> ScheduledSource<'a> {
    /// Pairs a workload with its controller.
    pub fn new(workload: &'a Workload, controller: &'a Controller) -> Self {
        assert_eq!(workload.len(), controller.len, "controller built for this workload");
        ScheduledSource { workload, controller }
    }
}

impl SpecSource for ScheduledSource<'_> {
    fn len(&self) -> usize {
        self.workload.len()
    }

    fn spec(&self, index: usize) -> Cow<'_, TrialSpec> {
        let a = self.workload.app_index(index);
        let level = self.controller.level_for(index);
        let mut spec = TrialSpec::scored(
            &self.workload.apps[a],
            level.name(),
            level.config(),
            self.workload.seed(index),
            Arc::clone(&self.workload.references[a]),
        );
        spec.scheduled_level = Some(level.name().to_owned());
        spec.keep_output = self.controller.keeps_output(a);
        if let Some(policy) = &self.controller.recovery {
            spec = spec.with_recovery(policy.clone());
        }
        Cow::Owned(spec)
    }
}

/// The drain-point hook: wraps any [`TrialSink`], feeding every trial to
/// the controller (in the engine's strict index order) before forwarding
/// it downstream.
pub struct SchedulerSink<'a> {
    inner: &'a mut dyn TrialSink,
    controller: &'a Controller,
}

impl<'a> SchedulerSink<'a> {
    /// Wraps `inner`, observing into `controller`.
    pub fn new(inner: &'a mut dyn TrialSink, controller: &'a Controller) -> Self {
        SchedulerSink { inner, controller }
    }
}

impl TrialSink for SchedulerSink<'_> {
    fn accept(&mut self, trial: TrialResult) -> std::io::Result<()> {
        self.controller.observe(&trial);
        self.inner.accept(trial)
    }
}

/// The outcome of a scheduled campaign: the engine summary plus the
/// controller's budget verdict and level assignment census.
#[derive(Debug, Clone)]
pub struct SchedOutcome {
    /// The streaming engine's aggregate summary.
    pub summary: CampaignSummary,
    /// The budget held.
    pub budget: EnergyQuanta,
    /// What the budget metered.
    pub meter: QuantaMeter,
    /// Exact metered spend over the whole campaign.
    pub spent: EnergyQuanta,
    /// `spent <= budget`.
    pub budget_met: bool,
    /// Per-app scheduled-trial counts per rung (index order of
    /// [`SchedLevel::ALL`]).
    pub level_counts: Vec<[u64; 4]>,
    /// Drained scalar outputs the plausibility estimator flagged.
    pub implausible: u64,
    /// Controller epoch length used.
    pub epoch_len: usize,
}

impl SchedOutcome {
    /// Aggregate QoS: `1 − mean output error`.
    pub fn qos(&self) -> f64 {
        1.0 - self.summary.mean_error
    }
}

/// Runs `workload` under the scheduler, streaming drained trials to
/// `sink`.
///
/// # Errors
///
/// Returns the first error the sink reported (the campaign still runs to
/// completion, like [`run_campaign_streamed`]).
pub fn run_scheduled_streamed(
    workload: &Workload,
    profiles: &[AppProfile],
    cfg: &SchedulerConfig,
    opts: &CampaignOptions,
    sink: &mut dyn TrialSink,
) -> std::io::Result<SchedOutcome> {
    let controller = Controller::new(workload, profiles, cfg);
    let source = ScheduledSource::new(workload, &controller);
    let mut sched_sink = SchedulerSink::new(sink, &controller);
    let summary = run_campaign_streamed(&source, opts, &mut sched_sink)?;
    let st = controller.state.into_inner().expect("unpoisoned controller");
    debug_assert_eq!(st.drained, workload.len());
    let level_counts = st.obs.iter().map(|cells| [0, 1, 2, 3].map(|l| cells[l].trials)).collect();
    Ok(SchedOutcome {
        budget: cfg.budget,
        meter: cfg.meter,
        spent: st.spent,
        budget_met: st.spent <= cfg.budget,
        level_counts,
        implausible: st.implausible,
        epoch_len: controller.epoch,
        summary,
    })
}

/// [`run_scheduled_streamed`] collecting every trial in memory, returning
/// the full [`CampaignReport`] (with the `/5` budget fields set) alongside
/// the outcome.
pub fn run_scheduled(
    workload: &Workload,
    profiles: &[AppProfile],
    cfg: &SchedulerConfig,
    opts: &CampaignOptions,
) -> (CampaignReport, SchedOutcome) {
    let mut sink = VecSink::default();
    let outcome = run_scheduled_streamed(workload, profiles, cfg, opts, &mut sink)
        .expect("the in-memory sink cannot fail");
    let report = CampaignReport {
        trials: sink.trials,
        merged_stats: outcome.summary.merged_stats,
        wall: outcome.summary.wall,
        threads: outcome.summary.threads,
        budget_quanta: Some(outcome.budget),
        budget_met: Some(outcome.budget_met),
    };
    (report, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn small_workload() -> Workload {
        let apps: Vec<App> = all_apps()
            .into_iter()
            .filter(|a| matches!(a.meta.name, "FFT" | "MonteCarlo" | "SOR"))
            .collect();
        Workload::new(apps, 6)
    }

    fn profiles_for(w: &Workload) -> Vec<AppProfile> {
        profile_workload(w, QuantaMeter::Sram, 2, &CampaignOptions::with_threads(2))
    }

    #[test]
    fn round_robin_layout_counts_are_exact() {
        let w = small_workload();
        let profiles = profiles_for(&w);
        let cfg = SchedulerConfig::new(EnergyQuanta::new(u128::MAX / 2));
        let ctrl = Controller::new(&w, &profiles, &cfg);
        for lo in 0..w.len() {
            for hi in lo..=w.len() {
                for a in 0..w.apps.len() {
                    let expected = (lo..hi).filter(|i| i % w.apps.len() == a).count() as u64;
                    assert_eq!(ctrl.app_trials_in(lo, hi, a), expected, "[{lo}, {hi}) app {a}");
                }
            }
        }
    }

    #[test]
    fn sched_level_names_round_trip() {
        for level in SchedLevel::ALL {
            assert_eq!(SchedLevel::from_name(level.name()), Some(level));
            assert_eq!(SchedLevel::ALL[level.index()], level);
        }
        assert_eq!(SchedLevel::from_name("Chaos"), None);
    }

    #[test]
    fn precise_rung_reproduces_reference_at_baseline_cost() {
        let mc = all_apps().into_iter().find(|a| a.meta.name == "MonteCarlo").unwrap();
        let reference = harness::reference(&mc);
        let precise = harness::measure_with(&mc, SchedLevel::Precise.config(), 1234);
        assert_eq!(precise.output, reference.output, "precise rung is bit-exact");
        let q = precise.energy_quanta;
        assert_eq!(q.total, q.baseline_total, "precise rung charges the full baseline");
        assert_eq!(q.sram, q.baseline_sram);
    }

    #[test]
    fn profiles_order_costs_by_aggressiveness() {
        let w = small_workload();
        for p in profiles_for(&w) {
            // Precise charges the baseline; every Table 2 rung saves SRAM
            // energy, monotonically in aggressiveness.
            assert!(p.cost[0] > p.cost[1], "Precise must cost more than Mild: {p:?}");
            assert!(p.cost[1] > p.cost[2], "{p:?}");
            assert!(p.cost[2] > p.cost[3], "{p:?}");
            assert_eq!(p.error[0], 0.0, "the precise rung has zero error");
        }
    }

    #[test]
    #[allow(clippy::approx_constant)] // the literal is a simulated pi estimate
    fn output_scalar_reduces_the_two_scalar_shapes() {
        assert_eq!(output_scalar(&Output::Values(vec![3.14])), Some(3.14));
        assert_eq!(output_scalar(&Output::Values(vec![1.0, 2.0])), None);
        assert_eq!(output_scalar(&Output::Decisions(vec![true, false, true, true])), Some(0.75));
        assert_eq!(output_scalar(&Output::Text(Some("x".into()))), None);
        assert!(scalar_floor("MonteCarlo").is_some());
        assert!(scalar_floor("jMonkeyEngine").is_some());
        assert!(scalar_floor("FFT").is_none());
    }
}
