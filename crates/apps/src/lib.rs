//! # enerj-apps: the EnerJ benchmark suite
//!
//! Rust ports of the applications evaluated in *EnerJ: Approximate Data
//! Types for Safe and General Low-Power Computation* (PLDI 2011),
//! section 6 / Table 3:
//!
//! * the five SciMark2 kernels — [`scimark::fft`], [`scimark::sor`],
//!   [`scimark::montecarlo`], [`scimark::sparse`], [`scimark::lu`];
//! * [`zxing`] — a QR-style 2-D barcode decoder (substitute for the ZXing
//!   library);
//! * [`jmonkey`] — batched ray–triangle intersection (substitute for the
//!   jMonkeyEngine collision workload);
//! * [`imagej`] — raster flood fill with approximate pixel coordinates;
//! * [`raytracer`] — a small ray-plane/sphere renderer.
//!
//! Every port is written once, in the EnerJ programming model
//! ([`enerj-core`](enerj_core)): approximate data and arithmetic where the
//! paper's annotations put them, explicit endorsements at
//! approximate→precise boundaries. The *reference* output is the same code
//! run with every fault strategy masked off, which is exactly the paper's
//! "precise execution" of an annotated program; the [`harness`] module
//! packages both runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximable;
pub mod canary;
pub mod estimator;
pub mod imagej;
pub mod jmonkey;
pub mod meta;
pub mod qos;
pub mod raytracer;
pub mod recovery;
pub mod scheduler;
pub mod scimark;
pub mod trials;
pub mod tuner;
pub mod workload;
pub mod zxing;

use meta::AppMeta;
use qos::Output;

/// One registered benchmark: metadata plus its entry point.
///
/// The entry point must be called under an installed
/// [`Runtime`](enerj_core::Runtime); use [`harness`] for the standard
/// reference/approximate protocol.
#[derive(Clone)]
pub struct App {
    /// Table 3 metadata.
    pub meta: AppMeta,
    /// The benchmark body.
    pub run: fn() -> Output,
    /// Cheap, reference-free sanity check of an output — the application's
    /// "handle the imprecision intelligently" knowledge, hoisted to where
    /// the recovery layer ([`recovery`]) can act on it. Must accept the
    /// reference output (pinned by a test); [`no_check`] accepts anything.
    pub check: fn(&Output) -> Result<(), String>,
}

/// A checker that accepts any output — for apps (or tests) without a
/// meaningful reference-free sanity condition.
pub fn no_check(_output: &Output) -> Result<(), String> {
    Ok(())
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App").field("name", &self.meta.name).finish()
    }
}

/// All nine benchmarks, in the paper's Table 3 order.
pub fn all_apps() -> Vec<App> {
    vec![
        App { meta: scimark::fft::meta(), run: scimark::fft::run, check: scimark::fft::check },
        App { meta: scimark::sor::meta(), run: scimark::sor::run, check: scimark::sor::check },
        App {
            meta: scimark::montecarlo::meta(),
            run: scimark::montecarlo::run,
            check: scimark::montecarlo::check,
        },
        App {
            meta: scimark::sparse::meta(),
            run: scimark::sparse::run,
            check: scimark::sparse::check,
        },
        App { meta: scimark::lu::meta(), run: scimark::lu::run, check: scimark::lu::check },
        App { meta: zxing::meta(), run: zxing::run, check: zxing::check },
        App { meta: jmonkey::meta(), run: jmonkey::run, check: jmonkey::check },
        App { meta: imagej::meta(), run: imagej::run, check: imagej::check },
        App { meta: raytracer::meta(), run: raytracer::run, check: raytracer::check },
    ]
}

/// The standard measurement protocol used by every table and figure.
pub mod harness {
    use super::App;
    use crate::qos::Output;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};
    use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
    use enerj_hw::stats::Stats;
    use enerj_hw::trace::FaultEvent;
    use enerj_hw::FaultCounters;
    use std::sync::Arc;

    pub use crate::trials;

    /// Base seed for *evaluation* fault-injection runs (XORed with the run
    /// index). Bit 63 is clear.
    pub const FAULT_SEED_BASE: u64 = 0x5A17_2011;

    /// Base seed for *tuner profiling* runs (XORed with the run index).
    ///
    /// Bit 63 is set, and `FAULT_SEED_BASE` has bit 63 clear, so
    /// `TUNER_SEED_BASE ^ r` and `FAULT_SEED_BASE ^ i` differ in bit 63 for
    /// every pair of indices below `2^63`: the profiling seed set is
    /// provably disjoint from the evaluation seed set, and tuned levels
    /// cannot overfit the exact fault sequences they are later scored on.
    pub const TUNER_SEED_BASE: u64 = FAULT_SEED_BASE | (1 << 63);

    /// Result of one simulated run.
    #[derive(Debug, Clone)]
    pub struct Measurement {
        /// The benchmark's output.
        pub output: Output,
        /// Operation and storage statistics.
        pub stats: Stats,
        /// Normalized energy under the run's Table 2 parameters.
        pub energy: EnergyBreakdown,
        /// Exact integer energy (scaled and baseline quanta per component);
        /// the normalized breakdown is its f64 projection.
        pub energy_quanta: EnergyQuantaBreakdown,
        /// Per-kind fault counters (always collected).
        pub fault_counts: FaultCounters,
        /// Structured fault events (empty unless the run was measured with
        /// the fault log enabled).
        pub events: Vec<FaultEvent>,
    }

    /// Runs the app with all fault strategies masked off: the precise
    /// reference execution (and the source of the Figure 3 fractions,
    /// which depend only on the annotation, not on injected faults).
    pub fn reference(app: &App) -> Measurement {
        let cfg = HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE);
        measure_with(app, cfg, 0)
    }

    /// Runs the app under full fault injection at `level` with `seed`.
    pub fn approximate(app: &App, level: Level, seed: u64) -> Measurement {
        measure_with(app, HwConfig::for_level(level), seed)
    }

    /// Runs the app under an arbitrary hardware configuration.
    pub fn measure_with(app: &App, cfg: HwConfig, seed: u64) -> Measurement {
        measure_with_telemetry(app, cfg, seed, false)
    }

    /// Reusable per-worker measurement state: the workload scratch cache
    /// ([`workload::Scratch`](crate::workload::Scratch)) that lets apps
    /// reuse generated input buffers across trials instead of allocating
    /// fresh ones every run. A campaign worker owns one `Workspace` for its
    /// whole lifetime and threads it through [`measure_in`]; caching is a
    /// pure wall-clock optimization and never changes a measurement (input
    /// generation is deterministic and unsimulated).
    #[derive(Debug, Default)]
    pub struct Workspace {
        scratch: crate::workload::Scratch,
    }

    impl Workspace {
        /// An empty workspace; buffers populate lazily on first use.
        pub fn new() -> Self {
            Workspace::default()
        }

        /// Makes this workspace's scratch cache active on the current
        /// thread until the guard drops. Used by the measurement entry
        /// points; exposed so the recovery runner can keep one installation
        /// alive across a whole retry ladder.
        pub fn activate(&mut self) -> crate::workload::ActiveScratch<'_> {
            crate::workload::install(&mut self.scratch)
        }
    }

    /// [`measure_with`], optionally collecting the structured fault log.
    ///
    /// Neither the always-on counters nor the log touch the fault PRNG, so
    /// output, statistics and energy are bit-identical either way.
    ///
    /// Allocates a throwaway [`Workspace`]; hot campaign loops should hold
    /// one per worker and call [`measure_in`] instead.
    pub fn measure_with_telemetry(
        app: &App,
        cfg: HwConfig,
        seed: u64,
        log_events: bool,
    ) -> Measurement {
        measure_in(app, cfg, seed, log_events, &mut Workspace::new())
    }

    /// [`measure_with_telemetry`] with an explicit per-worker [`Workspace`]:
    /// the app's input buffers come from (and are returned to) `ws`'s
    /// scratch cache. Bit-identical to the workspace-free path — caching
    /// only skips regeneration of deterministic inputs.
    pub fn measure_in(
        app: &App,
        cfg: HwConfig,
        seed: u64,
        log_events: bool,
        ws: &mut Workspace,
    ) -> Measurement {
        let _scratch = ws.activate();
        let rt = Runtime::with_config(cfg, seed);
        if log_events {
            rt.enable_fault_log();
        }
        let output = rt.run(app.run);
        Measurement {
            output,
            stats: rt.stats(),
            energy: rt.energy(),
            energy_quanta: rt.energy_quanta(),
            fault_counts: rt.fault_counters(),
            events: rt.take_fault_events(),
        }
    }

    /// Mean output error over `runs` fault-injection runs at `level`
    /// (the Figure 5 protocol: the paper uses 20 runs), given a
    /// precomputed reference output.
    ///
    /// `runs == 0` means "no fault-injection evidence", which scores a
    /// mean error of 0.0 rather than dividing by zero and producing NaN.
    ///
    /// The runs go through the streaming campaign engine
    /// ([`trials::run_campaign_streamed`]) with the machine's available
    /// parallelism: specs are generated lazily per index, results are
    /// discarded after aggregation ([`trials::NullSink`]), so memory stays
    /// O(threads × chunk) no matter how many runs are requested. Seeds
    /// (`FAULT_SEED_BASE ^ i`) and summation order are those of the
    /// original serial loop, so the result is bit-identical regardless of
    /// thread count, and a run that panics under fault injection scores
    /// error 1.0 instead of aborting the measurement.
    pub fn mean_output_error_vs(app: &App, reference: &Output, level: Level, runs: u64) -> f64 {
        if runs == 0 {
            return 0.0;
        }
        let reference = Arc::new(reference.clone());
        let cfg = HwConfig::for_level(level);
        let source = trials::SpecFn::new(runs as usize, |i| {
            trials::TrialSpec::scored(
                app,
                level.to_string(),
                cfg,
                FAULT_SEED_BASE ^ i as u64,
                Arc::clone(&reference),
            )
        });
        let opts = trials::CampaignOptions::with_threads(trials::default_threads());
        let summary = trials::run_campaign_streamed(&source, &opts, &mut trials::NullSink)
            .expect("the null sink cannot fail");
        summary.mean_error
    }

    /// Mean output error over `runs` fault-injection runs at `level`,
    /// computing the reference internally.
    pub fn mean_output_error(app: &App, level: Level, runs: u64) -> f64 {
        let reference = reference(app).output;
        mean_output_error_vs(app, &reference, level, runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_hw::config::Level;

    #[test]
    fn registry_has_nine_apps_in_table3_order() {
        let apps = all_apps();
        let names: Vec<&str> = apps.iter().map(|a| a.meta.name).collect();
        assert_eq!(
            names,
            [
                "FFT",
                "SOR",
                "MonteCarlo",
                "SparseMatMult",
                "LU",
                "ZXing",
                "jMonkeyEngine",
                "ImageJ",
                "Raytracer"
            ]
        );
    }

    #[test]
    fn every_app_produces_a_stable_reference_output() {
        for app in all_apps() {
            let m = harness::reference(&app);
            let m2 = harness::reference(&app);
            assert_eq!(m.output, m2.output, "{} reference unstable", app.meta.name);
        }
    }

    #[test]
    fn every_checker_accepts_its_reference_output() {
        // The Precise rung of the recovery ladder re-runs at the reference
        // configuration, so a checker that rejects the reference output
        // would make a trial structurally unrecoverable.
        for app in all_apps() {
            let m = harness::reference(&app);
            assert_eq!((app.check)(&m.output), Ok(()), "{}", app.meta.name);
        }
    }

    #[test]
    fn checkers_reject_obvious_garbage() {
        for app in all_apps() {
            let garbage = qos::Output::Values(vec![f64::NAN; 3]);
            assert!(
                (app.check)(&garbage).is_err(),
                "{}: NaN garbage passed its checker",
                app.meta.name
            );
        }
        assert_eq!(no_check(&qos::Output::Text(None)), Ok(()));
    }

    #[test]
    fn mild_runs_have_tiny_output_error() {
        for app in all_apps() {
            let reference = harness::reference(&app).output;
            let m = harness::approximate(&app, Level::Mild, 1);
            let err = qos::output_error(app.meta.metric, &reference, &m.output);
            assert!(err < 0.2, "{}: mild error {err} unexpectedly high", app.meta.name);
        }
    }

    #[test]
    fn zero_runs_mean_error_is_zero_not_nan() {
        let apps = all_apps();
        let app = &apps[0];
        let reference = harness::reference(app).output;
        let err = harness::mean_output_error_vs(app, &reference, Level::Medium, 0);
        assert_eq!(err, 0.0);
    }

    #[test]
    fn annotation_stats_are_sane() {
        for app in all_apps() {
            let s = app.meta.annotation_stats();
            assert!(s.loc > 20, "{}: loc {}", app.meta.name, s.loc);
            assert!(s.total_decls > 5, "{}: decls {}", app.meta.name, s.total_decls);
            assert!(s.annotated_decls > 0, "{}: no annotations found", app.meta.name);
            assert!(s.annotated_decls <= s.total_decls, "{}: annotated > total", app.meta.name);
        }
    }
}
