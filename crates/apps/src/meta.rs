//! Benchmark metadata and annotation-density measurement (Table 3).
//!
//! The paper reports, for each ported application, the lines of code, the
//! proportion of floating-point operations, the number of declarations, the
//! fraction annotated, and the endorsement count. For this reproduction the
//! numbers describe *our Rust ports*: each application module embeds its own
//! source text with `include_str!` and the counters below measure it —
//! a `let`/field/parameter binding is a declaration; a declaration whose
//! line mentions an `Approx`/`ApproxVec`/`Ctx` type is annotated; each
//! `endorse(`/`endorse_ctx(` call site is an endorsement.

use crate::qos::QosMetric;

/// Static description of one ported application.
#[derive(Debug, Clone)]
pub struct AppMeta {
    /// Benchmark name as it appears in Table 3.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The QoS metric used in Figure 5.
    pub metric: QosMetric,
    /// The module's own source text (for annotation counting).
    pub source: &'static str,
}

/// Annotation-density numbers measured from a port's source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnotationStats {
    /// Non-blank, non-comment lines of code.
    pub loc: usize,
    /// Declarations: `let` bindings, struct fields and `fn` parameters.
    pub total_decls: usize,
    /// Declarations mentioning an approximate type.
    pub annotated_decls: usize,
    /// `endorse(` / `endorse_ctx(` call sites.
    pub endorsements: usize,
}

impl AnnotationStats {
    /// Percentage of declarations that carry an approximation annotation.
    pub fn annotated_percent(&self) -> f64 {
        if self.total_decls == 0 {
            0.0
        } else {
            100.0 * self.annotated_decls as f64 / self.total_decls as f64
        }
    }
}

impl AppMeta {
    /// Measures annotation density over the embedded source.
    pub fn annotation_stats(&self) -> AnnotationStats {
        measure(self.source)
    }
}

/// Counts lines, declarations, annotations and endorsements in Rust source.
pub fn measure(source: &str) -> AnnotationStats {
    let mut loc = 0;
    let mut total_decls = 0;
    let mut annotated_decls = 0;
    let mut endorsements = 0;
    let mut in_tests = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            // Table 3 describes application code, not its test suite.
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with("//") {
            continue;
        }
        loc += 1;
        endorsements += trimmed.matches("endorse(").count();
        endorsements += trimmed.matches("endorse_ctx(").count();
        let decls = count_decls(trimmed);
        total_decls += decls;
        if decls > 0 && mentions_approx(trimmed) {
            annotated_decls += decls;
        }
    }
    AnnotationStats { loc, total_decls, annotated_decls, endorsements }
}

fn count_decls(line: &str) -> usize {
    let mut n = line.matches("let ").count();
    // Parameters and fields: `name: Type` pairs outside of `let`.
    if !line.contains("let ") {
        n += line.matches(": ").count();
    }
    n
}

fn mentions_approx(line: &str) -> bool {
    line.contains("Approx") || line.contains("Ctx<")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_simple_source() {
        let src = "
// a comment

fn demo(x: f64) {
    let a = Approx::new(x);
    let b = a + 1.0;
    let p = endorse(b);
    let q = p;
}
";
        let s = measure(src);
        assert_eq!(s.loc, 6);
        assert_eq!(s.total_decls, 5); // 4 lets + 1 param
        assert_eq!(s.annotated_decls, 1);
        assert_eq!(s.endorsements, 1);
        assert!((s.annotated_percent() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn test_modules_are_excluded() {
        let src = "
let a = 1;
#[cfg(test)]
mod tests {
    let b = Approx::new(2);
}
";
        let s = measure(src);
        assert_eq!(s.total_decls, 1);
        assert_eq!(s.annotated_decls, 0);
    }

    #[test]
    fn empty_source_is_all_zero() {
        let s = measure("");
        assert_eq!(
            s,
            AnnotationStats { loc: 0, total_decls: 0, annotated_decls: 0, endorsements: 0 }
        );
        assert_eq!(s.annotated_percent(), 0.0);
    }
}
