//! Raytracer, ported to EnerJ-RS.
//!
//! The paper's Raytracer workload "executes ray plane intersection on a
//! simple scene", is heavily floating-point (Table 3: 68.4% FP), and was
//! annotated almost mechanically — approximate floats everywhere. The port
//! renders a small image of a checkered ground plane and one sphere: every
//! intersection and shading computation is approximate `f32`; only the
//! image dimensions, loop counters and the checker-parity decision (an
//! endorsed comparison) are precise. Quality of service is the mean pixel
//! difference against the precise rendering.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use enerj_core::{endorse, Approx, ApproxVec, Precise};

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("raytracer.rs");

/// Image side length in pixels.
pub const SIDE: usize = 32;

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "Raytracer",
        description: "ray-plane/sphere renderer (32x32, checkered floor)",
        metric: QosMetric::MeanPixelDiff { full_scale: 1.0 },
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; returns pixel intensities
/// in `[0, 1]`, row-major.
pub fn run() -> Output {
    let mut image: ApproxVec<f64> = ApproxVec::new(SIDE * SIDE);
    for y in 0..SIDE {
        for x in 0..SIDE {
            let shade = trace_pixel(x, y);
            let idx = Precise::new(y as i64) * SIDE as i64 + x as i64;
            image.set(idx.get() as usize, shade);
        }
    }
    Output::Values(image.endorse_to_vec())
}

/// Recovery sanity check (see [`App::check`](crate::App)): shades are
/// normalized intensities; anything non-finite or far outside `[0, 1]` is
/// fault damage. The range is padded because approximate shading arithmetic
/// may legitimately wander slightly past the nominal scale.
pub fn check(output: &Output) -> Result<(), String> {
    use enerj_core::Guard;
    crate::qos::check_values(output, &enerj_core::finite().and(enerj_core::in_range(-1.0, 2.0)))
}

/// Traces the primary ray through pixel (x, y).
fn trace_pixel(x: usize, y: usize) -> Approx<f64> {
    // Camera at the origin looking down -z; film plane at z = -1.
    let half = SIDE as f32 / 2.0;
    let dx = Approx::new((x as f32 - half + 0.5) / half);
    let dy = Approx::new((half - y as f32 - 0.5) / half);
    let dz = Approx::new(-1.0f32);

    // Sphere at (0, 0.1, -3), radius 0.8.
    let shade = intersect_sphere(dx, dy, dz);
    if endorse(shade.ge_approx(0.0f32)) {
        return widen(shade);
    }

    // Ground plane y = -1: t = -(oy + 1) / dy with the ray origin at 0.
    if endorse(dy.lt_approx(-1e-6f32)) {
        let t = Approx::new(-1.0f32) / dy;
        let px = dx * t;
        let pz = dz * t;
        // Checker parity wants integers: endorse the (approximate) floor
        // coordinates — a wrong parity shows as a misplaced checker tile.
        // Clamp before conversion: a corrupted coordinate must not be
        // allowed to overflow the parity arithmetic.
        let cx = endorse(px * 0.5f32).clamp(-1e6, 1e6).floor() as i64;
        let cz = endorse(pz * 0.5f32).clamp(-1e6, 1e6).floor() as i64;
        let base: f32 = if (cx + cz).rem_euclid(2) == 0 { 0.85 } else { 0.25 };
        // Distance haze.
        let haze = Approx::new(1.0f32) / (Approx::new(1.0f32) + t * 0.08f32);
        return widen(Approx::new(base) * haze);
    }

    // Sky gradient.
    widen(Approx::new(0.4f32) + dy * 0.3f32)
}

/// Intersects the primary ray with the scene sphere; returns the diffuse
/// shade, or -1 when the ray misses.
fn intersect_sphere(dx: Approx<f32>, dy: Approx<f32>, dz: Approx<f32>) -> Approx<f32> {
    let (cx, cy, cz) = (0.0f32, 0.1f32, -3.0f32);
    let r2 = 0.64f32;
    // Solve |t·d − c|² = r² with the origin at zero:
    // t²(d·d) − 2t(d·c) + c·c − r² = 0.
    let a = dx * dx + dy * dy + dz * dz;
    let b = (dx * cx + dy * cy + dz * cz) * -2.0f32;
    let c = Approx::new(cx * cx + cy * cy + cz * cz - r2);
    let disc = b * b - Approx::new(4.0f32) * a * c;
    if !endorse(disc.gt_approx(0.0f32)) {
        return Approx::new(-1.0f32);
    }
    let sqrt_disc = Approx::new(endorse(disc).max(0.0).sqrt());
    let t = (-b - sqrt_disc) / (a * 2.0f32);
    if !endorse(t.gt_approx(0.0f32)) {
        return Approx::new(-1.0f32);
    }
    // Diffuse shading against a light direction from above-left.
    let (hx, hy, hz) = (dx * t, dy * t, dz * t);
    let nx = (hx - cx) * 1.25f32;
    let ny = (hy - cy) * 1.25f32;
    let nz = (hz - cz) * 1.25f32;
    let (lx, ly, lz) = (-0.5f32, 0.8f32, 0.3f32);
    let lambert = nx * lx + ny * ly + nz * lz;
    let clamped = if endorse(lambert.lt_approx(0.0f32)) { Approx::new(0.0f32) } else { lambert };
    clamped * 0.8f32 + 0.15f32
}

/// Widens an approximate `f32` shade to the `f64` the image stores.
fn widen(x: Approx<f32>) -> Approx<f64> {
    Approx::new(f64::from(endorse(x)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn image_has_sphere_floor_and_sky() {
        let rt = exact();
        let Output::Values(img) = rt.run(run) else { panic!() };
        assert_eq!(img.len(), SIDE * SIDE);
        // Center pixels hit the sphere (lit, mid-to-bright tones).
        let center = img[(SIDE / 2) * SIDE + SIDE / 2];
        assert!(center > 0.1, "sphere shade = {center}");
        // Bottom rows hit the floor: both light and dark checker tiles.
        let bottom: Vec<f64> = img[(SIDE - 2) * SIDE..(SIDE - 1) * SIDE].to_vec();
        let has_light = bottom.iter().any(|&v| v > 0.6);
        let has_dark = bottom.iter().any(|&v| v < 0.4);
        assert!(has_light && has_dark, "checker pattern missing: {bottom:?}");
        // Top rows are sky.
        assert!(img[SIDE / 2] > 0.4);
    }

    #[test]
    fn rendering_is_deterministic_when_masked() {
        let a = exact().run(run);
        let b = exact().run(run);
        assert_eq!(a, b);
    }

    #[test]
    fn workload_is_fp_heavy() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.fp_proportion() > 0.9, "fp proportion = {}", s.fp_proportion());
        assert!(s.approx_op_fraction(enerj_hw::OpKind::Fp) > 0.95);
    }

    #[test]
    fn aggressive_noise_degrades_gracefully() {
        // Under full aggressive approximation the image may be noisy but
        // must still be produced in full and mostly finite.
        let rt = Runtime::new(Level::Aggressive, 3);
        let Output::Values(img) = rt.run(run) else { panic!() };
        assert_eq!(img.len(), SIDE * SIDE);
        let finite = img.iter().filter(|v| v.is_finite()).count();
        assert!(finite > img.len() / 2);
    }
}
