//! ZXing substitute: a QR-style 2-D barcode decoder, ported to EnerJ-RS.
//!
//! The paper ports the ZXing smartphone bar-code library and observes two
//! things this reduced port must reproduce: the *image-processing phase*
//! (thresholding, module sampling) tolerates approximation, while the
//! *checksum/assembly phase* is precise; and because "ZXing's control flow
//! frequently depends on whether a particular pixel is black", the port
//! needs far more endorsements than any other benchmark (Table 3: 247).
//!
//! The substitute encodes a short message into a 21×21 module grid with
//! QR-style finder patterns in three corners, renders it to a noisy,
//! unevenly-lit grayscale image, and decodes it back: approximate global
//! thresholding, endorsed per-module black/white decisions, finder-pattern
//! verification, then a precise checksum check. Output error is binary —
//! the decode is either correct or it is not.

use crate::meta::AppMeta;
use crate::qos::{Output, QosMetric};
use enerj_core::{endorse, Approx, ApproxVec, Precise};
use rand::Rng;

/// This module's own source text, measured for Table 3.
pub const SOURCE: &str = include_str!("zxing.rs");

/// Modules per side (QR version 1).
pub const MODULES: usize = 21;
/// Pixels per module.
pub const SCALE: usize = 4;
/// Image side in pixels.
pub const IMG: usize = MODULES * SCALE;

/// The payload carried by the generated barcode.
pub const MESSAGE: &str = "ENERJ-PLDI11";

/// Table 3 metadata.
pub fn meta() -> AppMeta {
    AppMeta {
        name: "ZXing",
        description: "QR-style 2-D barcode decoder (21x21 modules)",
        metric: QosMetric::BinaryCorrect,
        source: SOURCE,
    }
}

/// Runs the benchmark under the ambient runtime; decodes the generated
/// barcode image.
pub fn run() -> Output {
    let image = render(&encode(MESSAGE));
    Output::Text(decode(&image))
}

/// Recovery sanity check (see [`App::check`](crate::App)): the decode must
/// produce *some* non-empty payload. This is exactly the check a real
/// barcode pipeline gets for free — a failed decode is observable without a
/// reference.
pub fn check(output: &Output) -> Result<(), String> {
    match output {
        Output::Text(Some(s)) if !s.is_empty() => Ok(()),
        Output::Text(Some(_)) => Err("decoded payload is empty".to_owned()),
        Output::Text(None) => Err("decode failed".to_owned()),
        other => Err(format!("expected text output, got {other}")),
    }
}

// ---- encoding & rendering: the (precise) world that produces the input ----

/// Whether module (r, c) belongs to a finder pattern zone (including the
/// one-module separator).
fn in_finder_zone(r: usize, c: usize) -> bool {
    (r < 8 && !(8..MODULES - 8).contains(&c)) || (r >= MODULES - 8 && c < 8)
}

/// The expected color of finder-pattern module (r, c), given the zone's
/// top-left corner: a 7×7 ring-in-ring (separator modules are white).
fn finder_color(r: usize, c: usize) -> bool {
    if r >= 7 || c >= 7 {
        return false; // separator
    }
    let ring = r.min(c).min(6 - r).min(6 - c);
    ring != 1 && ring != 5 // black outer ring, white ring, black core
}

/// The full module grid for payload bit stream `bits`; `true` is black.
fn module_grid(bits: &[bool]) -> Vec<bool> {
    let mut grid = vec![false; MODULES * MODULES];
    let mut index = 0;
    for r in 0..MODULES {
        for c in 0..MODULES {
            grid[r * MODULES + c] = if r < 8 && c < 8 {
                finder_color(r, c)
            } else if r < 8 && c >= MODULES - 8 {
                // Column MODULES-8 is the separator (white).
                c >= MODULES - 7 && finder_color(r, c - (MODULES - 7))
            } else if r >= MODULES - 8 && c < 8 {
                r >= MODULES - 7 && finder_color(r - (MODULES - 7), c)
            } else {
                // Payload modules, row-major over non-finder cells.
                let bit = if index < bits.len() {
                    bits[index]
                } else {
                    (index % 2) == 0 // deterministic padding
                };
                index += 1;
                bit
            };
        }
    }
    grid
}

/// Encodes the message into payload bits: bytes MSB-first plus an XOR
/// checksum byte.
fn encode(message: &str) -> Vec<bool> {
    let mut bytes: Vec<u8> = message.bytes().collect();
    let checksum = bytes.iter().fold(0u8, |a, b| a ^ b);
    bytes.push(checksum);
    bytes.iter().flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect()
}

/// Renders the module grid to a noisy grayscale image with an illumination
/// gradient — the physical world the decoder must cope with.
fn render(bits: &[bool]) -> Vec<i32> {
    let mut rng = crate::workload::input_rng(7);
    let grid = module_grid(bits);
    let mut img = vec![0i32; IMG * IMG];
    for y in 0..IMG {
        for x in 0..IMG {
            let black = grid[(y / SCALE) * MODULES + x / SCALE];
            let base = if black { 25 } else { 230 };
            let gradient = (x as i32 * 18) / IMG as i32;
            let noise: i32 = rng.gen_range(-8..=8);
            img[y * IMG + x] = (base + gradient + noise).clamp(0, 255);
        }
    }
    img
}

// ---- decoding: the approximate application ----

/// Decodes the barcode image; `None` on any integrity failure.
fn decode(raw: &[i32]) -> Option<String> {
    // Pixels are 8-bit samples: storing them at their natural width keeps
    // any storage fault bounded to the 0..=255 domain.
    let bytes: Vec<u8> = raw.iter().map(|&v| v.clamp(0, 255) as u8).collect();
    let mut pixels: ApproxVec<u8> = ApproxVec::from_slice(&bytes);

    // Phase 1 (approximate): global threshold = mean intensity.
    let mut total = Approx::new(0i32);
    let mut i = 0;
    while i < pixels.len() {
        total += pixels.get(i).widen_i32();
        i += SCALE; // sample every SCALE-th pixel
    }
    let samples = (pixels.len() / SCALE) as i32;
    let threshold = total / samples;

    // Phase 2 (approximate, heavily endorsed): sample module centers.
    let mut modules = vec![false; MODULES * MODULES];
    for (r, row) in modules.chunks_mut(MODULES).enumerate() {
        for (c, out) in row.iter_mut().enumerate() {
            let y = r * SCALE + SCALE / 2;
            let x = c * SCALE + SCALE / 2;
            let px = pixels.get(y * IMG + x).widen_i32();
            // Black iff darker than the (approximate) threshold.
            *out = endorse(px.lt_approx(threshold));
        }
    }

    // Phase 3 (precise): verify the finder patterns.
    let mut mismatches = Precise::new(0i64);
    for r in 0..7 {
        for c in 0..7 {
            let expected = finder_color(r, c);
            if modules[r * MODULES + c] != expected {
                mismatches += 1;
            }
            if modules[r * MODULES + (c + MODULES - 7)] != expected {
                mismatches += 1;
            }
            if modules[(r + MODULES - 7) * MODULES + c] != expected {
                mismatches += 1;
            }
        }
    }
    if mismatches.get() > 8 {
        return None; // not a barcode we trust
    }

    // Phase 4 (precise): extract the payload and check the checksum.
    let mut bits = Vec::new();
    for r in 0..MODULES {
        for c in 0..MODULES {
            if !in_finder_zone(r, c) {
                bits.push(modules[r * MODULES + c]);
            }
        }
    }
    let n_bytes = MESSAGE.len() + 1;
    let mut bytes = Vec::with_capacity(n_bytes);
    for chunk in bits.chunks(8).take(n_bytes) {
        let mut b = 0u8;
        for &bit in chunk {
            b = (b << 1) | u8::from(bit);
        }
        bytes.push(b);
    }
    let (payload, check) = bytes.split_at(n_bytes - 1);
    let expected = payload.iter().fold(0u8, |a, b| a ^ b);
    if check != [expected] {
        return None;
    }
    String::from_utf8(payload.to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use enerj_core::Runtime;
    use enerj_hw::config::{HwConfig, Level, StrategyMask};

    fn exact() -> Runtime {
        Runtime::with_config(
            HwConfig::for_level(Level::Aggressive).with_mask(StrategyMask::NONE),
            0,
        )
    }

    #[test]
    fn clean_decode_recovers_the_message() {
        let rt = exact();
        let out = rt.run(run);
        assert_eq!(out, Output::Text(Some(MESSAGE.to_owned())));
    }

    #[test]
    fn encode_roundtrips_through_modules() {
        let bits = encode(MESSAGE);
        let grid = module_grid(&bits);
        // Every payload bit must be recoverable from the module map.
        let mut index = 0;
        for r in 0..MODULES {
            for c in 0..MODULES {
                if in_finder_zone(r, c) {
                    continue;
                }
                if index < bits.len() {
                    assert_eq!(grid[r * MODULES + c], bits[index]);
                }
                index += 1;
            }
        }
        assert!(index >= bits.len(), "payload must fit the grid");
    }

    #[test]
    fn finder_pattern_is_ring_in_ring() {
        assert!(finder_color(0, 0)); // outer ring black
        assert!(!finder_color(1, 1)); // white ring
        assert!(finder_color(3, 3)); // core black
        assert!(!finder_color(1, 3));
        assert!(finder_color(0, 6));
    }

    #[test]
    fn corrupted_checksum_fails_closed() {
        let mut bits = encode(MESSAGE);
        let flip = bits.len() - 3; // inside the checksum byte
        bits[flip] = !bits[flip];
        let img = render(&bits);
        let rt = exact();
        let out = rt.run(|| decode(&img));
        assert_eq!(out, None, "bad checksum must not decode");
    }

    #[test]
    fn missing_finder_fails_closed() {
        // Whiteout the top-left finder zone.
        let bits = encode(MESSAGE);
        let mut img = render(&bits);
        for y in 0..7 * SCALE {
            for x in 0..7 * SCALE {
                img[y * IMG + x] = 240;
            }
        }
        let rt = exact();
        let out = rt.run(|| decode(&img));
        assert_eq!(out, None);
    }

    #[test]
    fn decoding_is_integer_dominated_with_many_endorsements() {
        let rt = exact();
        let _ = rt.run(run);
        let s = rt.stats();
        assert!(s.fp_proportion() < 0.1, "barcode decoding is integer work");
        let ann = meta().annotation_stats();
        assert!(ann.endorsements >= 1);
        // Dynamically, each module sample endorses one comparison.
        assert!(s.int_approx_ops >= (MODULES * MODULES) as u64);
    }
}
