//! Parallel, crash-isolated trial campaigns.
//!
//! Every figure in the paper's evaluation is a *campaign*: a batch of
//! independent simulated runs, each fully determined by an application, a
//! hardware configuration and a fault seed. This module runs such batches
//! across worker threads ([`run_campaign`]) with two guarantees the naive
//! serial loops could not give:
//!
//! * **Determinism.** Each trial's seed is fixed up front in its
//!   [`TrialSpec`], every trial builds its own [`Runtime`](enerj_core::Runtime)
//!   (fault PRNG state is per-run, never shared), and aggregation happens
//!   in trial-index order after all workers finish. Results are therefore
//!   bit-identical for any thread count, including the serial path.
//! * **Crash isolation.** A fault-injected run can panic — an endorsed
//!   index goes out of bounds, a corrupted loop bound overflows. The paper
//!   treats a crashed run as producing worst-case output, so each trial
//!   body runs under [`catch_unwind`]; a panic scores output error 1.0,
//!   contributes nothing to the merged statistics, and is recorded in the
//!   trial's [`panic`](TrialResult::panic) field instead of killing the
//!   campaign.
//!
//! A spec may also carry a [`recovery::Policy`]: the trial then runs under
//! the watchdog/check/retry protocol of the [`recovery`](crate::recovery)
//! module, its energy and statistics summed over every attempt, with the
//! attempt count, escalation outcome and failure causes recorded on the
//! [`TrialResult`]. Recovery uses per-trial fixed retry seeds, so
//! recovery-enabled campaigns keep the bit-identical-at-any-thread-count
//! guarantee.
//!
//! Campaigns run on a *streaming throughput engine* built for
//! million-trial scale:
//!
//! * **Lazy specs.** A campaign's trials come from a [`SpecSource`] — an
//!   indexed generator ([`SpecFn`]) or a plain slice — so protocol-level
//!   campaigns ([`run_level_campaign`], the tuner) never materialize a
//!   spec vector; spec memory is O(1) per worker.
//! * **Chunked work stealing.** Workers claim contiguous blocks of trial
//!   indices with one atomic op per chunk ([`CampaignOptions::chunk`],
//!   default auto) instead of one per trial.
//! * **Bounded-memory result streaming.** Completed [`TrialResult`]s pass
//!   through a reorder buffer that drains them *in index order* to a
//!   pluggable [`TrialSink`] — an in-memory vector for compatibility
//!   ([`run_campaign`]), an NDJSON writer ([`NdjsonSink`]) or nothing at
//!   all ([`NullSink`]) for campaign-scale runs — so peak result memory is
//!   O(threads × chunk) instead of O(trials). Aggregates accumulate at the
//!   drain point, in index order, which keeps every total bit-identical to
//!   the serial loop; exact integer [`EnergyQuanta`] totals would be
//!   order-independent anyway.
//! * **Per-worker scratch reuse.** Each worker owns a
//!   [`harness::Workspace`] threaded through the measurement, so apps stop
//!   allocating fresh input buffers every trial.
//!
//! The resulting [`CampaignReport`] carries per-trial errors, merged
//! [`Stats`], per-trial [`EnergyBreakdown`]s and exact
//! [`EnergyQuantaBreakdown`]s, per-trial fault telemetry
//! ([`FaultCounters`], plus opt-in structured [`FaultEvent`] logs) and
//! wall-clock times, and serializes to JSON (`schema: "enerj-campaign/5"`)
//! for the bench binaries' `results/BENCH_*.json` reports. The fault log
//! exports as NDJSON via [`CampaignReport::write_fault_log`]. Campaigns run
//! through [`CampaignOptions`] can also report live progress (trials done,
//! panics, ETA) on stderr; progress updates are batched per chunk so the
//! meter never contends in the trial hot path.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::harness::{self, FAULT_SEED_BASE};
use crate::qos::{output_error, Output};
use crate::recovery;
use crate::App;
use enerj_hw::config::{HwConfig, Level, StrategyMask};
use enerj_hw::energy::{EnergyBreakdown, EnergyQuantaBreakdown};
use enerj_hw::quanta::EnergyQuanta;
use enerj_hw::stats::Stats;
use enerj_hw::trace::FaultEvent;
use enerj_hw::FaultCounters;

/// One fully determined trial: an app, a hardware configuration, a seed.
#[derive(Clone)]
pub struct TrialSpec {
    /// The application to run.
    pub app: App,
    /// Free-form grouping label (typically the level or strategy name).
    pub label: String,
    /// Hardware configuration for this run.
    pub cfg: HwConfig,
    /// Fault seed (the serial loops use `FAULT_SEED_BASE ^ i`).
    pub seed: u64,
    /// Reference output to score against; `None` records error 0.0 and is
    /// how reference-collection campaigns are expressed.
    pub reference: Option<Arc<Output>>,
    /// Keep the trial's output in the result (reference campaigns need it;
    /// large fault campaigns usually don't).
    pub keep_output: bool,
    /// When set, the trial runs under QoS-guarded recovery: watchdog,
    /// reference-free output check, QoS threshold, and the policy's
    /// precision-escalation ladder on failure (see [`recovery`]).
    pub recovery: Option<recovery::Policy>,
    /// The precision level an online scheduler assigned this trial, when
    /// the spec was rewritten at claim time (see
    /// [`scheduler`](crate::scheduler)); copied verbatim onto the
    /// [`TrialResult`] and into the `/5` report. `None` for statically
    /// configured campaigns.
    pub scheduled_level: Option<String>,
}

impl TrialSpec {
    /// A fault-injection trial scored against `reference`.
    pub fn scored(
        app: &App,
        label: impl Into<String>,
        cfg: HwConfig,
        seed: u64,
        reference: Arc<Output>,
    ) -> Self {
        TrialSpec {
            app: app.clone(),
            label: label.into(),
            cfg,
            seed,
            reference: Some(reference),
            keep_output: false,
            recovery: None,
            scheduled_level: None,
        }
    }

    /// A reference (fault-free) trial that keeps its output.
    pub fn reference(app: &App) -> Self {
        TrialSpec {
            app: app.clone(),
            label: "reference".to_owned(),
            cfg: HwConfig::for_level(Level::Medium).with_mask(StrategyMask::NONE),
            seed: 0,
            reference: None,
            keep_output: true,
            recovery: None,
            scheduled_level: None,
        }
    }

    /// Runs this trial under `policy`'s recovery protocol.
    pub fn with_recovery(mut self, policy: recovery::Policy) -> Self {
        self.recovery = Some(policy);
        self
    }
}

/// Outcome of one trial.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Position in the campaign's spec list (aggregation order).
    pub index: usize,
    /// Application name.
    pub app: &'static str,
    /// The spec's grouping label.
    pub label: String,
    /// The fault seed used.
    pub seed: u64,
    /// Output error in `[0, 1]` against the spec's reference (0.0 when the
    /// spec had none; 1.0 when the trial panicked).
    pub error: f64,
    /// The trial's output, when the spec asked to keep it.
    pub output: Option<Output>,
    /// Operation and storage statistics (zeroed for panicked trials).
    pub stats: Stats,
    /// Normalized energy (pinned to the precise baseline, 1.0, for
    /// panicked trials — a crashed run saves nothing we can claim).
    pub energy: EnergyBreakdown,
    /// Exact integer energy (zeroed for panicked trials, matching their
    /// zeroed [`stats`](Self::stats)): scaled and baseline quanta per
    /// component. Campaign totals built from this field are bit-identical
    /// for any merge order or thread count.
    pub energy_quanta: EnergyQuantaBreakdown,
    /// Wall-clock time of this trial.
    pub wall: Duration,
    /// The panic payload, when the trial crashed.
    pub panic: Option<String>,
    /// Per-kind fault counters (zeroed for panicked trials, whose machine
    /// state is unrecoverable).
    pub fault_counts: FaultCounters,
    /// Structured fault events, when the campaign ran with
    /// [`CampaignOptions::log_events`] (empty otherwise, and for panicked
    /// trials).
    pub events: Vec<FaultEvent>,
    /// Executions this trial took: 1 without recovery (or when the first
    /// attempt passed), one extra per escalation rung tried.
    pub attempts: u32,
    /// The ladder rung whose output was accepted, when recovery was needed
    /// and succeeded (`None` for unrecovered or never-failed trials).
    pub recovered_at_level: Option<String>,
    /// Why each failed attempt was rejected, in attempt order (rendered
    /// [`recovery::FailureCause`]s; for plain trials, the panic cause when
    /// the trial crashed).
    pub failure_causes: Vec<String>,
    /// Energy charged to attempts whose output was *not* accepted — the
    /// price of recovery, already included in [`energy`](Self::energy).
    pub recovery_energy_overhead: f64,
    /// The same overhead in exact quanta, already included in
    /// [`energy_quanta`](Self::energy_quanta): the accounting identity
    /// `accepted-attempt energy + overhead == energy_quanta.total` holds
    /// exactly.
    pub recovery_energy_overhead_quanta: EnergyQuanta,
    /// The precision level the online scheduler assigned this trial
    /// (`None` for statically configured campaigns): copied from
    /// [`TrialSpec::scheduled_level`], preserved even when the trial
    /// panicked.
    pub scheduled_level: Option<String>,
}

impl TrialResult {
    /// Whether the trial crashed (and was scored worst-case). For
    /// recovery-enabled trials this means the *final* attempt panicked;
    /// a panic the ladder recovered from is in
    /// [`failure_causes`](Self::failure_causes) instead.
    pub fn panicked(&self) -> bool {
        self.panic.is_some()
    }

    /// Whether the accepted output came from an escalation rung.
    pub fn recovered(&self) -> bool {
        self.recovered_at_level.is_some()
    }
}

/// The aggregated outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-trial results, in spec order.
    pub trials: Vec<TrialResult>,
    /// Statistics of all non-panicked trials, merged in trial order.
    pub merged_stats: Stats,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// The per-campaign energy budget an online scheduler held, in metered
    /// quanta (`None` for unscheduled campaigns).
    pub budget_quanta: Option<EnergyQuanta>,
    /// Whether the metered spend ended at or under
    /// [`budget_quanta`](Self::budget_quanta) (`None` for unscheduled
    /// campaigns).
    pub budget_met: Option<bool>,
}

impl CampaignReport {
    /// Mean output error over all trials, summed in trial-index order
    /// (bit-identical to the serial loop). Empty campaigns score 0.0.
    pub fn mean_error(&self) -> f64 {
        mean_in_order(self.trials.iter())
    }

    /// Mean output error over the trials of one `(app, label)` group,
    /// summed in trial-index order. Empty groups score 0.0.
    pub fn mean_error_for(&self, app: &str, label: &str) -> f64 {
        mean_in_order(self.trials.iter().filter(|t| t.app == app && t.label == label))
    }

    /// The trials of one `(app, label)` group, in trial-index order.
    pub fn trials_for<'a>(
        &'a self,
        app: &'a str,
        label: &'a str,
    ) -> impl Iterator<Item = &'a TrialResult> {
        self.trials.iter().filter(move |t| t.app == app && t.label == label)
    }

    /// Number of trials that panicked.
    pub fn panic_count(&self) -> usize {
        self.trials.iter().filter(|t| t.panicked()).count()
    }

    /// Number of trials whose accepted output came from an escalation rung.
    pub fn recovered_count(&self) -> usize {
        self.trials.iter().filter(|t| t.recovered()).count()
    }

    /// Total energy charged to rejected attempts across the campaign, in
    /// exact quanta. Pure integer summation: the total is independent of
    /// trial iteration order (the old f64 sum was not).
    pub fn recovery_energy_overhead(&self) -> EnergyQuanta {
        self.trials.iter().map(|t| t.recovery_energy_overhead_quanta).sum()
    }

    /// Exact energy totals over every trial, merged in trial-index order —
    /// though with quanta any order gives bit-identical results.
    pub fn energy_quanta_totals(&self) -> EnergyQuantaBreakdown {
        let mut totals = EnergyQuantaBreakdown::ZERO;
        for t in &self.trials {
            totals.merge(&t.energy_quanta);
        }
        totals
    }

    /// Per-kind fault counters merged over all trials.
    pub fn fault_totals(&self) -> FaultCounters {
        let mut totals = FaultCounters::new();
        for t in &self.trials {
            totals.merge(&t.fault_counts);
        }
        totals
    }

    /// Serializes the report as a JSON object (`schema: "enerj-campaign/5"`,
    /// which adds the scheduler vocabulary — per-trial `scheduled_level`,
    /// campaign `budget_quanta`/`budget_met` — on top of `/4`'s exact
    /// integer quanta; the `/1`–`/4` schemas are superseded — see
    /// DESIGN.md).
    ///
    /// All `*_quanta` values are raw integers (no exponent notation), so a
    /// byte-level comparison of those fields across reports is an exact
    /// comparison of the underlying `u128` totals.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 256 * self.trials.len());
        out.push_str("{\"schema\":\"enerj-campaign/5\"");
        out.push_str(&format!(",\"threads\":{}", self.threads));
        out.push_str(&format!(",\"wall_seconds\":{:.6}", self.wall.as_secs_f64()));
        out.push_str(&format!(",\"mean_error\":{}", json_f64(self.mean_error())));
        out.push_str(&format!(",\"panics\":{}", self.panic_count()));
        out.push_str(&format!(",\"recovered\":{}", self.recovered_count()));
        out.push_str(&format!(
            ",\"budget_quanta\":{}",
            match self.budget_quanta {
                Some(q) => q.to_string(),
                None => "null".to_owned(),
            }
        ));
        out.push_str(&format!(
            ",\"budget_met\":{}",
            match self.budget_met {
                Some(met) => met.to_string(),
                None => "null".to_owned(),
            }
        ));
        out.push_str(&format!(
            ",\"recovery_energy_overhead_quanta\":{}",
            self.recovery_energy_overhead()
        ));
        out.push_str(",\"energy_quanta\":");
        out.push_str(&energy_quanta_json(&self.energy_quanta_totals()));
        out.push_str(",\"merged_stats\":");
        out.push_str(&stats_json(&self.merged_stats));
        out.push_str(",\"fault_totals\":");
        out.push_str(&counters_json(&self.fault_totals()));
        out.push_str(",\"trials\":[");
        for (i, t) in self.trials.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&trial_json(t));
        }
        out.push_str("]}");
        out
    }

    /// Writes [`to_json`](Self::to_json) (plus a trailing newline) to `path`,
    /// creating parent directories as needed.
    pub fn write_json(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Serializes the collected fault events as NDJSON: one object per
    /// injected fault, in trial-index then injection order. Empty unless
    /// the campaign ran with [`CampaignOptions::log_events`].
    pub fn fault_log_ndjson(&self) -> String {
        let mut out = String::new();
        for t in &self.trials {
            for e in &t.events {
                out.push_str(&format!(
                    "{{\"trial\":{},\"app\":{},\"label\":{},\"seed\":{},\"time\":{},\
                     \"unit\":{},\"width\":{},\"bits_flipped\":{}}}\n",
                    t.index,
                    json_string(t.app),
                    json_string(&t.label),
                    t.seed,
                    json_f64(e.time),
                    json_string(&e.kind.to_string()),
                    e.width,
                    e.bits_flipped,
                ));
            }
        }
        out
    }

    /// Writes [`fault_log_ndjson`](Self::fault_log_ndjson) to `path`,
    /// creating parent directories as needed.
    pub fn write_fault_log(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.fault_log_ndjson())
    }
}

/// One trial as a JSON object — the element type of the report's `trials`
/// array and the line format of [`NdjsonSink`] (one object per line, so a
/// streamed campaign's output is the report's trial array, un-bracketed).
pub fn trial_json(t: &TrialResult) -> String {
    let causes: Vec<String> = t.failure_causes.iter().map(|c| json_string(c)).collect();
    format!(
        "{{\"index\":{},\"app\":{},\"label\":{},\"seed\":{},\"error\":{},\
         \"wall_seconds\":{:.6},\"panic\":{},\"attempts\":{},\
         \"recovered_at_level\":{},\"scheduled_level\":{},\
         \"failure_causes\":[{}],\
         \"recovery_energy_overhead\":{},\
         \"recovery_energy_overhead_quanta\":{},\"stats\":{},\
         \"energy\":{},\"energy_quanta\":{},\"fault_counts\":{}}}",
        t.index,
        json_string(t.app),
        json_string(&t.label),
        t.seed,
        json_f64(t.error),
        t.wall.as_secs_f64(),
        match &t.panic {
            Some(msg) => json_string(msg),
            None => "null".to_owned(),
        },
        t.attempts,
        match &t.recovered_at_level {
            Some(level) => json_string(level),
            None => "null".to_owned(),
        },
        match &t.scheduled_level {
            Some(level) => json_string(level),
            None => "null".to_owned(),
        },
        causes.join(","),
        json_f64(t.recovery_energy_overhead),
        t.recovery_energy_overhead_quanta,
        stats_json(&t.stats),
        energy_json(&t.energy),
        energy_quanta_json(&t.energy_quanta),
        counters_json(&t.fault_counts),
    )
}

fn mean_in_order<'a>(trials: impl Iterator<Item = &'a TrialResult>) -> f64 {
    let mut total = 0.0;
    let mut n = 0u64;
    for t in trials {
        total += t.error;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON has no NaN/Infinity literals; clamp them to the error scale's ends.
fn json_f64(x: f64) -> String {
    if x.is_nan() {
        "1.0".to_owned()
    } else if x.is_infinite() {
        if x > 0.0 {
            "1e308".to_owned()
        } else {
            "-1e308".to_owned()
        }
    } else {
        format!("{x}")
    }
}

fn stats_json(s: &Stats) -> String {
    format!(
        "{{\"int_approx_ops\":{},\"int_precise_ops\":{},\"fp_approx_ops\":{},\
         \"fp_precise_ops\":{},\"sram_approx_quanta\":{},\
         \"sram_precise_quanta\":{},\"dram_approx_quanta\":{},\
         \"dram_precise_quanta\":{},\"faults_injected\":{}}}",
        s.int_approx_ops,
        s.int_precise_ops,
        s.fp_approx_ops,
        s.fp_precise_ops,
        s.sram_approx_quanta,
        s.sram_precise_quanta,
        s.dram_approx_quanta,
        s.dram_precise_quanta,
        s.faults_injected,
    )
}

fn energy_quanta_json(q: &EnergyQuantaBreakdown) -> String {
    format!(
        "{{\"instructions\":{},\"baseline_instructions\":{},\"sram\":{},\
         \"baseline_sram\":{},\"dram\":{},\"baseline_dram\":{},\"total\":{},\
         \"baseline_total\":{}}}",
        q.instructions,
        q.baseline_instructions,
        q.sram,
        q.baseline_sram,
        q.dram,
        q.baseline_dram,
        q.total,
        q.baseline_total,
    )
}

fn energy_json(e: &EnergyBreakdown) -> String {
    format!(
        "{{\"instructions\":{},\"sram\":{},\"dram\":{},\"total\":{}}}",
        json_f64(e.instructions),
        json_f64(e.sram),
        json_f64(e.dram),
        json_f64(e.total),
    )
}

fn counters_json(c: &FaultCounters) -> String {
    let mut out = String::from("{");
    for (i, (kind, kc)) in c.per_kind().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{kind}\":{{\"injections\":{},\"bits_flipped\":{}}}",
            kc.injections, kc.bits_flipped
        ));
    }
    out.push('}');
    out
}

/// The default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// How to run a campaign: worker count, chunking, telemetry switches.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads (`0` means [`default_threads`]).
    pub threads: usize,
    /// Collect the structured fault log on every trial (the per-kind
    /// counters are always collected). Never changes trial outcomes.
    pub log_events: bool,
    /// Print live progress (trials done, panics, ETA) on stderr.
    pub progress: bool,
    /// Trial indices a worker claims per work-stealing grab (`0` = auto:
    /// sized so each worker claims ~8 chunks, clamped to `1..=64`). Purely
    /// a throughput/memory knob — every trial is a pure function of its
    /// spec, so chunking can never change outcomes or aggregates.
    pub chunk: usize,
    /// Optional wall-clock deadline, measured from campaign start and
    /// checked at chunk *claim* time only. A campaign that runs out of time
    /// truncates at a chunk boundary: every claimed chunk still runs to
    /// completion and drains in index order, trials past the last claimed
    /// chunk never run at all, and the summary reports an explicit
    /// [`deadline_exceeded`](CampaignSummary::deadline_exceeded) verdict.
    /// The trials that *did* run are bit-identical to the same-length
    /// prefix of an undeadlined campaign — only how many chunks ran
    /// depends on the clock, never any trial's outcome.
    pub deadline: Option<Duration>,
}

impl CampaignOptions {
    /// Options with an explicit thread count and telemetry off.
    pub fn with_threads(threads: usize) -> Self {
        CampaignOptions { threads, ..CampaignOptions::default() }
    }
}

/// Live progress meter shared across workers, updated once per *chunk* so
/// the shared counters never contend in the per-trial hot path. Printing
/// is throttled to ~20 updates per campaign and never touches trial state.
struct Progress {
    enabled: bool,
    total: usize,
    every: usize,
    done: AtomicUsize,
    panics: AtomicUsize,
    start: Instant,
}

impl Progress {
    fn new(total: usize, enabled: bool, start: Instant) -> Self {
        Progress {
            enabled,
            total,
            every: (total / 20).max(1),
            done: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            start,
        }
    }

    /// Records a finished chunk of `done_now` trials, `panics_now` of which
    /// panicked. With progress disabled this is a branch and nothing else.
    fn tick_chunk(&self, done_now: usize, panics_now: usize) {
        if !self.enabled || done_now == 0 {
            return;
        }
        if panics_now > 0 {
            self.panics.fetch_add(panics_now, Ordering::Relaxed);
        }
        let done = self.done.fetch_add(done_now, Ordering::Relaxed) + done_now;
        let before = done - done_now;
        // Print when the chunk crossed a reporting boundary (or finished).
        if done / self.every == before / self.every && done != self.total {
            return;
        }
        let elapsed = self.start.elapsed().as_secs_f64();
        let eta = if done == 0 { 0.0 } else { elapsed / done as f64 * (self.total - done) as f64 };
        eprintln!(
            "campaign: {done}/{} trials, {} panic(s), ETA {eta:.1}s",
            self.total,
            self.panics.load(Ordering::Relaxed),
        );
    }
}

/// Runs one trial, catching panics from fault-corrupted executions.
/// Recovery-enabled specs go through [`run_recovered_trial`] instead.
/// `ws` is the worker's reusable scratch workspace.
fn run_trial(
    index: usize,
    spec: &TrialSpec,
    log_events: bool,
    ws: &mut harness::Workspace,
) -> TrialResult {
    if let Some(policy) = &spec.recovery {
        return run_recovered_trial(index, spec, policy, log_events, ws);
    }
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let m = harness::measure_in(&spec.app, spec.cfg, spec.seed, log_events, ws);
        let error = match &spec.reference {
            Some(reference) => output_error(spec.app.meta.metric, reference, &m.output),
            None => 0.0,
        };
        (m, error)
    }));
    let wall = start.elapsed();
    match outcome {
        Ok((m, error)) => TrialResult {
            index,
            app: spec.app.meta.name,
            label: spec.label.clone(),
            seed: spec.seed,
            error,
            output: spec.keep_output.then_some(m.output),
            stats: m.stats,
            energy: m.energy,
            energy_quanta: m.energy_quanta,
            wall,
            panic: None,
            fault_counts: m.fault_counts,
            events: m.events,
            attempts: 1,
            recovered_at_level: None,
            failure_causes: Vec::new(),
            recovery_energy_overhead: 0.0,
            recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
            scheduled_level: spec.scheduled_level.clone(),
        },
        Err(payload) => {
            let msg = enerj_core::panic_message(payload.as_ref());
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                // The paper's protocol: a crashed run delivers worst-case
                // quality and claims no savings over the precise baseline.
                error: 1.0,
                output: None,
                stats: Stats::new(),
                energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
                energy_quanta: EnergyQuantaBreakdown::ZERO,
                wall,
                failure_causes: vec![format!("panic: {msg}")],
                panic: Some(msg),
                fault_counts: FaultCounters::new(),
                events: Vec::new(),
                attempts: 1,
                recovered_at_level: None,
                recovery_energy_overhead: 0.0,
                recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
                scheduled_level: spec.scheduled_level.clone(),
            }
        }
    }
}

/// Runs one trial under its spec's recovery policy. The recovery runner
/// already contains app panics and watchdog trips per attempt; the outer
/// `catch_unwind` only guards against harness bugs (a panicking checker or
/// QoS metric), scored like a plain crashed trial.
fn run_recovered_trial(
    index: usize,
    spec: &TrialSpec,
    policy: &recovery::Policy,
    log_events: bool,
    ws: &mut harness::Workspace,
) -> TrialResult {
    let start = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        recovery::run_with_recovery_in(
            &spec.app,
            spec.cfg,
            spec.seed,
            policy,
            spec.reference.as_deref(),
            log_events,
            ws,
        )
    }));
    let wall = start.elapsed();
    match outcome {
        Ok(r) => {
            // An unrecovered trial whose last attempt panicked keeps the
            // plain-trial contract: `panic` is set. Failures the ladder
            // recovered from live in `failure_causes` only.
            let panic = match (r.output.is_none(), r.failure_causes.last()) {
                (true, Some(recovery::FailureCause::Panic(msg))) => Some(msg.clone()),
                _ => None,
            };
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                error: r.error,
                output: if spec.keep_output { r.output } else { None },
                stats: r.stats,
                energy: r.energy,
                energy_quanta: r.energy_quanta,
                wall,
                panic,
                fault_counts: r.fault_counts,
                events: r.events,
                attempts: r.attempts,
                recovered_at_level: r.recovered_at.map(|rung| rung.to_string()),
                failure_causes: r.failure_causes.iter().map(|c| c.to_string()).collect(),
                recovery_energy_overhead: r.recovery_energy_overhead,
                recovery_energy_overhead_quanta: r.recovery_energy_overhead_quanta,
                scheduled_level: spec.scheduled_level.clone(),
            }
        }
        Err(payload) => {
            let msg = enerj_core::panic_message(payload.as_ref());
            TrialResult {
                index,
                app: spec.app.meta.name,
                label: spec.label.clone(),
                seed: spec.seed,
                error: 1.0,
                output: None,
                stats: Stats::new(),
                energy: EnergyBreakdown { instructions: 1.0, sram: 1.0, dram: 1.0, total: 1.0 },
                energy_quanta: EnergyQuantaBreakdown::ZERO,
                wall,
                failure_causes: vec![format!("panic: {msg}")],
                panic: Some(msg),
                fault_counts: FaultCounters::new(),
                events: Vec::new(),
                attempts: 1,
                recovered_at_level: None,
                recovery_energy_overhead: 0.0,
                recovery_energy_overhead_quanta: EnergyQuanta::ZERO,
                scheduled_level: spec.scheduled_level.clone(),
            }
        }
    }
}

/// An indexed source of trial specs: the campaign engine asks for the spec
/// of each index on demand, so sources can generate lazily (O(1) spec
/// memory) or borrow from a pre-built slice.
///
/// Workers call `spec(i)` from multiple threads, in arbitrary order, once
/// per index, immediately before running trial `i`. The returned spec must
/// be a *deterministic* function of `i` and of campaign state that is
/// itself deterministic at the moment of the call — for plain sources that
/// means a pure function of `i`; a scheduling source
/// ([`scheduler::ScheduledSource`](crate::scheduler::ScheduledSource)) may
/// additionally consult controller state derived from the drained trial
/// prefix, and may *block* until that prefix is long enough, provided it
/// only ever waits on trials with indices strictly below `i` (the engine
/// guarantees all lower indices are already claimed, so such a wait cannot
/// deadlock).
pub trait SpecSource: Sync {
    /// Number of trials in the campaign.
    fn len(&self) -> usize;

    /// The spec for trial `index` (`index < len()`). Borrowed for slice
    /// sources, generated on the fly for lazy ones.
    fn spec(&self, index: usize) -> Cow<'_, TrialSpec>;

    /// Whether the campaign has no trials.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl SpecSource for [TrialSpec] {
    fn len(&self) -> usize {
        self.len()
    }

    fn spec(&self, index: usize) -> Cow<'_, TrialSpec> {
        Cow::Borrowed(&self[index])
    }
}

/// A lazy [`SpecSource`]: `len` trials whose specs are generated per index
/// by a pure function. This is how protocol campaigns
/// ([`run_level_campaign`], [`harness::mean_output_error_vs`](crate::harness::mean_output_error_vs),
/// the tuner) avoid materializing million-entry spec vectors.
pub struct SpecFn<F: Fn(usize) -> TrialSpec + Sync> {
    len: usize,
    generate: F,
}

impl<F: Fn(usize) -> TrialSpec + Sync> SpecFn<F> {
    /// A source of `len` trials with specs from `generate`.
    pub fn new(len: usize, generate: F) -> Self {
        SpecFn { len, generate }
    }
}

impl<F: Fn(usize) -> TrialSpec + Sync> SpecSource for SpecFn<F> {
    fn len(&self) -> usize {
        self.len
    }

    fn spec(&self, index: usize) -> Cow<'_, TrialSpec> {
        Cow::Owned((self.generate)(index))
    }
}

/// Where completed trials go. The engine calls `accept` exactly once per
/// trial, in strict index order, from whichever worker drained the reorder
/// buffer (hence `Send`). A sink that errors does not abort the campaign —
/// remaining trials still run and aggregate — but the error is returned
/// from [`run_campaign_streamed`] and later trials are dropped instead of
/// delivered.
pub trait TrialSink: Send {
    /// Consumes the next trial (indices arrive as 0, 1, 2, …).
    fn accept(&mut self, trial: TrialResult) -> std::io::Result<()>;

    /// Flushes buffered output. The engine calls this exactly once per
    /// campaign, after the last delivered trial (including campaigns that
    /// truncated at a deadline); an error surfaces as the campaign's
    /// `io::Result`, so a buffered sink can never silently lose its tail.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Collects every trial in memory — the compatibility sink behind
/// [`run_campaign`], O(trials) memory by design.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The collected trials, in index order.
    pub trials: Vec<TrialResult>,
}

impl TrialSink for VecSink {
    fn accept(&mut self, trial: TrialResult) -> std::io::Result<()> {
        self.trials.push(trial);
        Ok(())
    }
}

/// Discards every trial (aggregates still accumulate in the summary) —
/// for campaigns that only need totals, e.g. mean-error sweeps.
#[derive(Debug, Default)]
pub struct NullSink;

impl TrialSink for NullSink {
    fn accept(&mut self, _trial: TrialResult) -> std::io::Result<()> {
        Ok(())
    }
}

/// Streams each trial as one JSON line ([`trial_json`]) — the
/// campaign-scale sink: a million-trial run needs disk, not memory.
#[derive(Debug)]
pub struct NdjsonSink<W: std::io::Write + Send> {
    out: W,
}

impl<W: std::io::Write + Send> NdjsonSink<W> {
    /// Wraps a writer (buffer it — the engine writes one line per trial).
    pub fn new(out: W) -> Self {
        NdjsonSink { out }
    }

    /// Unwraps the writer (flush it before reading the stream back).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write + Send> TrialSink for NdjsonSink<W> {
    fn accept(&mut self, trial: TrialResult) -> std::io::Result<()> {
        self.out.write_all(trial_json(&trial).as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn flush(&mut self) -> std::io::Result<()> {
        std::io::Write::flush(&mut self.out)
    }
}

/// A streamed campaign's aggregate outcome: everything a
/// [`CampaignReport`] derives from its trial vector, accumulated at the
/// reorder buffer's drain point in strict index order — bit-identical to
/// post-hoc aggregation over an in-memory result vector, at O(1) memory.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Trials run.
    pub trials: usize,
    /// Mean output error, summed in trial-index order (0.0 when empty).
    pub mean_error: f64,
    /// Trials that panicked.
    pub panics: usize,
    /// Trials whose accepted output came from an escalation rung.
    pub recovered: usize,
    /// Statistics of all non-panicked trials, merged in trial order.
    pub merged_stats: Stats,
    /// Exact energy totals over every trial.
    pub energy_quanta: EnergyQuantaBreakdown,
    /// Per-kind fault counters merged over all trials.
    pub fault_totals: FaultCounters,
    /// Total energy charged to rejected recovery attempts, in exact quanta.
    pub recovery_energy_overhead_quanta: EnergyQuanta,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
    /// Chunk size used (after auto-resolution).
    pub chunk: usize,
    /// High-water mark of results parked in the reorder buffer (0 on the
    /// serial path, which streams directly). Always ≤ `buffer_capacity`.
    pub peak_buffered: usize,
    /// The reorder buffer's capacity bound: `2 × threads × chunk`.
    pub buffer_capacity: usize,
    /// Whether the campaign truncated at its [`CampaignOptions::deadline`]:
    /// `true` exactly when fewer than the source's trials ran. Truncation
    /// happens at a chunk boundary, so [`trials`](Self::trials) counts a
    /// contiguous, fully drained index prefix.
    pub deadline_exceeded: bool,
}

/// Running totals, folded at the drain point in index order.
struct Totals {
    error_sum: f64,
    count: usize,
    panics: usize,
    recovered: usize,
    merged_stats: Stats,
    energy: EnergyQuantaBreakdown,
    faults: FaultCounters,
    overhead: EnergyQuanta,
}

impl Totals {
    fn new() -> Self {
        Totals {
            error_sum: 0.0,
            count: 0,
            panics: 0,
            recovered: 0,
            merged_stats: Stats::new(),
            energy: EnergyQuantaBreakdown::ZERO,
            faults: FaultCounters::new(),
            overhead: EnergyQuanta::ZERO,
        }
    }

    /// Folds one trial in. Callers guarantee index order; the f64 error sum
    /// is the only order-sensitive total (the quanta are associative).
    fn accept(&mut self, t: &TrialResult) {
        self.error_sum += t.error;
        self.count += 1;
        if t.panicked() {
            self.panics += 1;
        } else {
            self.merged_stats.merge(&t.stats);
        }
        if t.recovered() {
            self.recovered += 1;
        }
        self.energy.merge(&t.energy_quanta);
        self.faults.merge(&t.fault_counts);
        self.overhead += t.recovery_energy_overhead_quanta;
    }

    fn into_summary(
        self,
        wall: Duration,
        threads: usize,
        chunk: usize,
        peak_buffered: usize,
        buffer_capacity: usize,
        deadline_exceeded: bool,
    ) -> CampaignSummary {
        CampaignSummary {
            trials: self.count,
            mean_error: if self.count == 0 { 0.0 } else { self.error_sum / self.count as f64 },
            panics: self.panics,
            recovered: self.recovered,
            merged_stats: self.merged_stats,
            energy_quanta: self.energy,
            fault_totals: self.faults,
            recovery_energy_overhead_quanta: self.overhead,
            wall,
            threads,
            chunk,
            peak_buffered,
            buffer_capacity,
            deadline_exceeded,
        }
    }
}

/// The chunk size a campaign actually runs with: explicit when nonzero,
/// otherwise sized so each worker claims ~8 chunks (decent balance without
/// per-trial claiming), clamped to `1..=64`. Deterministic in (len,
/// threads) — though chunking never affects outcomes anyway.
fn resolve_chunk(requested: usize, len: usize, threads: usize) -> usize {
    if requested != 0 {
        requested
    } else {
        (len / (threads * 8).max(1)).clamp(1, 64)
    }
}

/// The bounded reorder window between workers and the sink.
///
/// Workers insert completed trials at their index; whichever insert fills
/// the gap at the drain cursor drains the ready prefix — folding totals and
/// feeding the sink *in index order* — while holding the lock. An insert
/// whose index is at least `capacity` ahead of the cursor blocks
/// (backpressure), which is what bounds peak result memory to O(threads ×
/// chunk).
///
/// Deadlock-free: the worker owning the cursor's chunk inserts its indices
/// in order, so its next insert is never ahead of the cursor and therefore
/// never blocks; every drain wakes all waiters.
///
/// That argument assumes every worker survives to publish its claimed
/// slots. A worker that dies *between* claiming a chunk and pushing all of
/// its indices (a panicking [`SpecSource`], a harness bug — app panics are
/// already contained per trial) would leave a permanent gap at the drain
/// cursor, wedging every other worker in [`push`](Self::push) forever. Each
/// worker therefore holds a [`PoisonOnUnwind`] guard that flags the window
/// dead ([`poison`](Self::poison)) as the dying thread unwinds: blocked
/// inserters wake, observe the flag, and panic with a diagnostic instead of
/// blocking — the campaign fails fast and the original panic propagates
/// through the thread scope.
struct Reorder<'a> {
    inner: Mutex<ReorderInner<'a>>,
    space: Condvar,
    capacity: usize,
}

struct ReorderInner<'a> {
    /// Window slots for indices `next_drain ..`; `None` = still running.
    window: VecDeque<Option<TrialResult>>,
    /// Index the sink expects next.
    next_drain: usize,
    /// Occupied window slots, and the campaign-wide high-water mark.
    buffered: usize,
    peak: usize,
    totals: Totals,
    sink: &'a mut dyn TrialSink,
    sink_error: Option<std::io::Error>,
    /// A worker died before publishing its claimed slots; the drain can
    /// never complete. Set via [`Reorder::poison`], observed by every
    /// blocked or arriving [`Reorder::push`].
    poisoned: bool,
}

impl Reorder<'_> {
    fn new(sink: &mut dyn TrialSink, capacity: usize) -> Reorder<'_> {
        Reorder {
            inner: Mutex::new(ReorderInner {
                window: VecDeque::new(),
                next_drain: 0,
                buffered: 0,
                peak: 0,
                totals: Totals::new(),
                sink,
                sink_error: None,
                poisoned: false,
            }),
            space: Condvar::new(),
            capacity,
        }
    }

    /// Marks the window dead after a worker failed to complete its claimed
    /// indices, and wakes every blocked inserter so the drain errors out
    /// instead of waiting forever on slots that will never fill. Tolerates
    /// a poisoned mutex: the flag must get through even when the dying
    /// worker panicked while another thread held the lock.
    fn poison(&self) {
        match self.inner.lock() {
            Ok(mut g) => g.poisoned = true,
            Err(mut e) => e.get_mut().poisoned = true,
        }
        self.space.notify_all();
    }

    fn push(&self, index: usize, result: TrialResult) {
        let mut g = self.inner.lock().expect("unpoisoned reorder buffer");
        while !g.poisoned && index >= g.next_drain + self.capacity {
            g = self.space.wait(g).expect("unpoisoned reorder buffer");
        }
        assert!(
            !g.poisoned,
            "campaign worker died before completing its chunk; \
             reorder window poisoned to unblock the drain"
        );
        let offset = index - g.next_drain;
        if g.window.len() <= offset {
            g.window.resize_with(offset + 1, || None);
        }
        debug_assert!(g.window[offset].is_none(), "trial {index} inserted twice");
        g.window[offset] = Some(result);
        g.buffered += 1;
        if g.buffered > g.peak {
            g.peak = g.buffered;
        }
        let mut drained = false;
        while matches!(g.window.front(), Some(Some(_))) {
            let t = g.window.pop_front().flatten().expect("front checked ready");
            g.next_drain += 1;
            g.buffered -= 1;
            g.totals.accept(&t);
            if g.sink_error.is_none() {
                if let Err(e) = g.sink.accept(t) {
                    g.sink_error = Some(e);
                }
            }
            drained = true;
        }
        if drained {
            self.space.notify_all();
        }
    }
}

/// Poisons the reorder window if a worker unwinds before completing its
/// claimed chunk — a harness-level failure (e.g. a panicking
/// [`SpecSource`]; app panics are contained per trial and never reach
/// here), which would otherwise leave the other workers blocked forever on
/// the dead worker's undelivered slots.
struct PoisonOnUnwind<'a, 'b>(&'a Reorder<'b>);

impl Drop for PoisonOnUnwind<'_, '_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Runs every spec, fanning trials across `threads` workers (`0` means
/// [`default_threads`]). Results and all aggregates are bit-identical for
/// any thread count.
pub fn run_campaign(specs: &[TrialSpec], threads: usize) -> CampaignReport {
    run_campaign_with(specs, &CampaignOptions::with_threads(threads))
}

/// [`run_campaign`] with explicit [`CampaignOptions`]. Telemetry switches
/// never change trial outcomes: errors, statistics and energy are
/// bit-identical for any option combination, thread count and chunk size.
pub fn run_campaign_with(specs: &[TrialSpec], opts: &CampaignOptions) -> CampaignReport {
    run_campaign_from(specs, opts)
}

/// [`run_campaign_with`] over any [`SpecSource`], collecting every trial
/// in memory. Campaigns too large to hold in memory should go through
/// [`run_campaign_streamed`] with an [`NdjsonSink`] instead.
pub fn run_campaign_from<S: SpecSource + ?Sized>(
    source: &S,
    opts: &CampaignOptions,
) -> CampaignReport {
    let mut sink = VecSink::default();
    let summary =
        run_campaign_streamed(source, opts, &mut sink).expect("the in-memory sink cannot fail");
    CampaignReport {
        trials: sink.trials,
        merged_stats: summary.merged_stats,
        wall: summary.wall,
        threads: summary.threads,
        budget_quanta: None,
        budget_met: None,
    }
}

/// The streaming campaign engine: runs every trial of `source`, drains
/// completed results in index order to `sink`, and returns the aggregate
/// [`CampaignSummary`].
///
/// Peak result memory is bounded by the reorder window (`2 × threads ×
/// chunk` results), independent of campaign length. All outcomes and
/// aggregates are bit-identical for any thread count, chunk size and sink —
/// each trial is a pure function of its spec, and aggregation happens in
/// index order at the drain point.
///
/// # Errors
///
/// Returns the first error the sink reported. The campaign still runs to
/// completion (every trial executes and aggregates), but trials after the
/// error are not delivered to the sink.
pub fn run_campaign_streamed<S: SpecSource + ?Sized>(
    source: &S,
    opts: &CampaignOptions,
    sink: &mut dyn TrialSink,
) -> std::io::Result<CampaignSummary> {
    let start = Instant::now();
    let len = source.len();
    let threads = if opts.threads == 0 { default_threads() } else { opts.threads };
    let threads = threads.min(len).max(1);
    let chunk = resolve_chunk(opts.chunk, len, threads);
    let capacity = threads.saturating_mul(chunk).saturating_mul(2).max(chunk + 1);
    let progress = Progress::new(len, opts.progress, start);
    let log_events = opts.log_events;

    if threads <= 1 {
        // Serial path: stream straight to the sink, no window needed.
        let mut ws = harness::Workspace::new();
        let mut totals = Totals::new();
        let mut sink_error: Option<std::io::Error> = None;
        let mut lo = 0usize;
        while lo < len {
            // Deadline is checked at chunk claim only, so truncation lands
            // exactly on a chunk boundary.
            if opts.deadline.is_some_and(|d| start.elapsed() >= d) {
                break;
            }
            let hi = (lo + chunk).min(len);
            let mut panics = 0usize;
            for i in lo..hi {
                let r = run_trial(i, &source.spec(i), log_events, &mut ws);
                if r.panicked() {
                    panics += 1;
                }
                totals.accept(&r);
                if sink_error.is_none() {
                    if let Err(e) = sink.accept(r) {
                        sink_error = Some(e);
                    }
                }
            }
            progress.tick_chunk(hi - lo, panics);
            lo = hi;
        }
        if sink_error.is_none() {
            if let Err(e) = sink.flush() {
                sink_error = Some(e);
            }
        }
        return match sink_error {
            Some(e) => Err(e),
            None => {
                let deadline_exceeded = totals.count < len;
                Ok(totals.into_summary(
                    start.elapsed(),
                    threads,
                    chunk,
                    0,
                    capacity,
                    deadline_exceeded,
                ))
            }
        };
    }

    let reorder = Reorder::new(sink, capacity);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // If this worker dies mid-chunk (harness bug), poison the
                // window so the other workers fail fast instead of waiting
                // forever on slots that will never fill.
                let _poison_guard = PoisonOnUnwind(&reorder);
                let mut ws = harness::Workspace::new();
                loop {
                    // Deadline is checked before claiming, so a campaign
                    // out of time truncates at a chunk boundary; chunks
                    // already claimed always run to completion.
                    if opts.deadline.is_some_and(|d| start.elapsed() >= d) {
                        break;
                    }
                    // One atomic op claims a whole chunk of indices.
                    let lo = next.fetch_add(chunk, Ordering::Relaxed);
                    if lo >= len {
                        break;
                    }
                    let hi = (lo + chunk).min(len);
                    let mut panics = 0usize;
                    for i in lo..hi {
                        let r = run_trial(i, &source.spec(i), log_events, &mut ws);
                        if r.panicked() {
                            panics += 1;
                        }
                        reorder.push(i, r);
                    }
                    progress.tick_chunk(hi - lo, panics);
                }
            });
        }
    });
    let mut inner = reorder.inner.into_inner().expect("unpoisoned reorder buffer");
    debug_assert!(
        opts.deadline.is_some() || inner.next_drain == len,
        "every trial must have drained"
    );
    if inner.sink_error.is_none() {
        if let Err(e) = inner.sink.flush() {
            inner.sink_error = Some(e);
        }
    }
    match inner.sink_error {
        Some(e) => Err(e),
        None => {
            let deadline_exceeded = inner.next_drain < len;
            Ok(inner.totals.into_summary(
                start.elapsed(),
                threads,
                chunk,
                inner.peak,
                capacity,
                deadline_exceeded,
            ))
        }
    }
}

/// The Figure 5 protocol as one campaign: per app, a fault-free reference,
/// then `runs` fault-injection trials at each level (seeds
/// `FAULT_SEED_BASE ^ i`, labels the level names). References are
/// themselves collected in a parallel campaign first.
pub fn run_level_campaign(
    apps: &[App],
    levels: &[Level],
    runs: u64,
    threads: usize,
) -> CampaignReport {
    run_level_campaign_with(apps, levels, runs, &CampaignOptions::with_threads(threads))
}

/// [`run_level_campaign`] with explicit [`CampaignOptions`]; references are
/// always collected without the fault log (they inject no faults).
///
/// Specs are generated lazily per index ([`SpecFn`]) in the canonical
/// app → level → run order; only the per-app reference outputs are held.
pub fn run_level_campaign_with(
    apps: &[App],
    levels: &[Level],
    runs: u64,
    opts: &CampaignOptions,
) -> CampaignReport {
    let ref_specs: Vec<TrialSpec> = apps.iter().map(TrialSpec::reference).collect();
    let references = run_campaign(&ref_specs, opts.threads);
    let refs: Vec<Arc<Output>> = apps
        .iter()
        .zip(&references.trials)
        .map(|(app, r)| {
            assert!(!r.panicked(), "{}: reference (fault-free) run panicked", app.meta.name);
            Arc::new(r.output.clone().expect("reference trials keep their output"))
        })
        .collect();
    let per_level = runs as usize;
    let per_app = levels.len() * per_level;
    let source = SpecFn::new(apps.len() * per_app, |i| {
        let (a, rem) = (i / per_app, i % per_app);
        let (l, r) = (rem / per_level, rem % per_level);
        TrialSpec::scored(
            &apps[a],
            levels[l].to_string(),
            HwConfig::for_level(levels[l]),
            FAULT_SEED_BASE ^ r as u64,
            Arc::clone(&refs[a]),
        )
    });
    run_campaign_from(&source, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::all_apps;

    fn app(name: &str) -> App {
        all_apps().into_iter().find(|a| a.meta.name == name).expect("registered")
    }

    #[test]
    fn empty_campaign_is_well_defined() {
        let report = run_campaign(&[], 4);
        assert_eq!(report.trials.len(), 0);
        assert_eq!(report.mean_error(), 0.0);
        assert_eq!(report.merged_stats, Stats::new());
    }

    #[test]
    fn reference_trials_score_zero_and_keep_output() {
        let specs: Vec<TrialSpec> = all_apps().iter().take(3).map(TrialSpec::reference).collect();
        let report = run_campaign(&specs, 2);
        for t in &report.trials {
            assert_eq!(t.error, 0.0, "{}", t.app);
            assert!(t.output.is_some(), "{}", t.app);
            assert!(!t.panicked());
        }
    }

    #[test]
    fn results_keep_spec_order() {
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let specs: Vec<TrialSpec> = (0..8)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "Medium",
                    HwConfig::for_level(Level::Medium),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let report = run_campaign(&specs, 4);
        for (i, t) in report.trials.iter().enumerate() {
            assert_eq!(t.index, i);
            assert_eq!(t.seed, FAULT_SEED_BASE ^ i as u64);
        }
    }

    #[test]
    fn json_report_has_schema_and_trials() {
        let specs = vec![TrialSpec::reference(&app("MonteCarlo"))];
        let report = run_campaign(&specs, 1);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"enerj-campaign/5\""));
        assert!(json.contains("\"app\":\"MonteCarlo\""));
        assert!(json.contains("\"budget_quanta\":null"));
        assert!(json.contains("\"budget_met\":null"));
        assert!(json.contains("\"scheduled_level\":null"));
        assert!(json.contains("\"merged_stats\""));
        assert!(json.contains("\"panic\":null"));
        assert!(json.contains("\"fault_totals\""));
        assert!(json.contains("\"fault_counts\""));
        assert!(json.contains("\"sram-read-upset\""));
        assert!(json.contains("\"recovered\":0"));
        assert!(json.contains("\"attempts\":1"));
        assert!(json.contains("\"recovered_at_level\":null"));
        assert!(json.contains("\"failure_causes\":[]"));
        assert!(json.contains("\"recovery_energy_overhead\":0"));
        assert!(json.contains("\"recovery_energy_overhead_quanta\":0"));
        assert!(json.contains("\"energy_quanta\":{\"instructions\":"));
        assert!(json.contains("\"baseline_total\":"));
        assert!(json.contains("\"sram_approx_quanta\":"));
        // Quanta serialize as raw integers: no sign, exponent or dot.
        let field = json.split("\"sram_precise_quanta\":").nth(1).expect("field present");
        let value: String = field.chars().take_while(|c| c.is_ascii_digit()).collect();
        assert!(!value.is_empty());
        assert_eq!(value.parse::<u128>().unwrap(), report.merged_stats.sram_precise_quanta.get());
    }

    #[test]
    fn recovery_specs_escalate_and_report_in_the_campaign() {
        use crate::recovery::{chaos_config, Policy};
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        // Threshold 0 forces every faulted trial down the ladder; the
        // Precise backstop reproduces the reference, so error ends at 0.
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let specs: Vec<TrialSpec> = (0..4)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "chaos",
                    chaos_config(50.0),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
                .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign(&specs, 2);
        assert!(report.recovered_count() > 0, "50x chaos at threshold 0 must escalate");
        assert!(report.recovery_energy_overhead() > EnergyQuanta::ZERO);
        for t in &report.trials {
            if t.recovered() {
                assert!(t.attempts >= 2);
                assert!(!t.failure_causes.is_empty());
                assert!(!t.panicked(), "recovered trials are not crashes");
            }
            assert!(t.error <= f64::EPSILON, "trial {}: error {}", t.index, t.error);
        }
        let json = report.to_json();
        assert!(
            json.contains("\"recovered_at_level\":\"Precise\"")
                || json.contains("\"recovered_at_level\":\"Mild\"")
        );
        assert!(
            json.contains("\"failure_causes\":[\"qos:")
                || json.contains("\"failure_causes\":[\"check:")
                || json.contains("\"failure_causes\":[\"panic:")
        );
    }

    #[test]
    fn recovery_campaigns_are_bit_identical_across_thread_counts() {
        use crate::recovery::{chaos_config, Policy};
        let apps = [app("SOR"), app("MonteCarlo")];
        let policy = Policy { qos_threshold: Some(0.01), ..Policy::standard() };
        let specs: Vec<TrialSpec> = apps
            .iter()
            .flat_map(|a| {
                let reference = Arc::new(harness::reference(a).output);
                let policy = policy.clone();
                (0..3).map(move |i| {
                    TrialSpec::scored(
                        a,
                        "chaos",
                        chaos_config(25.0),
                        FAULT_SEED_BASE ^ i,
                        Arc::clone(&reference),
                    )
                    .with_recovery(policy.clone())
                })
            })
            .collect();
        let digest = |r: &CampaignReport| {
            r.trials
                .iter()
                .map(|t| {
                    (
                        t.error.to_bits(),
                        t.attempts,
                        t.recovered_at_level.clone(),
                        t.failure_causes.clone(),
                        t.energy.total.to_bits(),
                        t.recovery_energy_overhead.to_bits(),
                        t.energy_quanta,
                        t.recovery_energy_overhead_quanta,
                        t.stats,
                    )
                })
                .collect::<Vec<_>>()
        };
        let base = digest(&run_campaign(&specs, 1));
        for threads in [2, 4, 8] {
            assert_eq!(digest(&run_campaign(&specs, threads)), base, "{threads} threads");
        }
        // Telemetry must not perturb recovery outcomes either.
        let opts = CampaignOptions { threads: 4, log_events: true, ..CampaignOptions::default() };
        assert_eq!(digest(&run_campaign_with(&specs, &opts)), base, "with fault log");
    }

    /// Satellite of the quanta refactor: the accounting identity
    /// `accepted-attempt energy + recovery overhead == trial energy` holds
    /// *exactly* — asserted with `==` on `u128` quanta, no epsilon — for
    /// every trial of a chaos campaign, with the accepted attempt's energy
    /// recomputed by an independent replay rather than read back from the
    /// report.
    #[test]
    fn trial_energy_decomposes_exactly_into_accepted_attempt_plus_overhead() {
        use crate::recovery::{chaos_config, retry_seed, Policy, Rung};
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let policy = Policy { qos_threshold: Some(0.0), ..Policy::standard() };
        let chaos = chaos_config(50.0);
        let specs: Vec<TrialSpec> = (0..6)
            .map(|i| {
                TrialSpec::scored(&mc, "chaos", chaos, FAULT_SEED_BASE ^ i, Arc::clone(&reference))
                    .with_recovery(policy.clone())
            })
            .collect();
        let report = run_campaign(&specs, 4);
        assert!(report.recovered_count() > 0, "50x chaos at threshold 0 must escalate");
        for t in &report.trials {
            // Exact decomposition: subtraction round-trips in u128.
            let accepted = t.energy_quanta.total - t.recovery_energy_overhead_quanta;
            assert_eq!(accepted + t.recovery_energy_overhead_quanta, t.energy_quanta.total);
            if t.panicked() || (t.recovered_at_level.is_none() && t.attempts > 1) {
                continue; // no accepted attempt to replay
            }
            // Replay the accepted attempt from its spec alone.
            let (cfg, seed) = match &t.recovered_at_level {
                None => (chaos, t.seed),
                Some(name) => {
                    let rung = if name == "Precise" {
                        Rung::Precise
                    } else {
                        let level = *Level::ALL
                            .iter()
                            .find(|l| &l.to_string() == name)
                            .expect("rung name is a Table 2 level");
                        Rung::Level(level)
                    };
                    (rung.config(), retry_seed(t.seed, t.attempts - 1))
                }
            };
            let replay = harness::measure_with(&mc, cfg, seed);
            assert_eq!(
                replay.energy_quanta.total, accepted,
                "trial {}: accepted-attempt energy must replay exactly",
                t.index
            );
        }
        // The same identity at campaign scale, summed in any order.
        let total: EnergyQuanta = report.trials.iter().map(|t| t.energy_quanta.total).sum();
        let accepted: EnergyQuanta = report
            .trials
            .iter()
            .map(|t| t.energy_quanta.total - t.recovery_energy_overhead_quanta)
            .sum();
        assert_eq!(accepted + report.recovery_energy_overhead(), total);
    }

    #[test]
    fn fault_log_lines_match_injected_faults() {
        let mc = app("MonteCarlo");
        let reference = Arc::new(harness::reference(&mc).output);
        let specs: Vec<TrialSpec> = (0..4)
            .map(|i| {
                TrialSpec::scored(
                    &mc,
                    "Aggressive",
                    HwConfig::for_level(Level::Aggressive),
                    FAULT_SEED_BASE ^ i,
                    Arc::clone(&reference),
                )
            })
            .collect();
        let opts = CampaignOptions { threads: 2, log_events: true, ..CampaignOptions::default() };
        let report = run_campaign_with(&specs, &opts);
        let totals = report.fault_totals();
        assert!(totals.total_injections() > 0, "aggressive MonteCarlo injects faults");
        let ndjson = report.fault_log_ndjson();
        let lines: Vec<&str> = ndjson.lines().collect();
        assert_eq!(lines.len() as u64, totals.total_injections());
        for line in &lines {
            assert!(line.starts_with("{\"trial\":"));
            assert!(line.contains("\"unit\":"));
            assert!(line.contains("\"width\":"));
            assert!(line.ends_with('}'));
        }
    }

    #[test]
    fn json_escaping_and_nonfinite_numbers() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "1.0");
        assert_eq!(json_f64(f64::INFINITY), "1e308");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn level_campaign_matches_serial_mean_error() {
        let apps = [app("MonteCarlo")];
        let report = run_level_campaign(&apps, &[Level::Mild], 3, 2);
        let serial = harness::mean_output_error(&apps[0], Level::Mild, 3);
        let parallel = report.mean_error_for("MonteCarlo", "Mild");
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    /// One chaos-recovery campaign per thread count in {1, 2, 4, 8},
    /// computed once and shared across proptest cases.
    fn shared_thread_reports() -> &'static Vec<(usize, CampaignReport)> {
        use std::sync::OnceLock;
        static REPORTS: OnceLock<Vec<(usize, CampaignReport)>> = OnceLock::new();
        REPORTS.get_or_init(|| {
            use crate::recovery::{chaos_config, Policy};
            let mc = app("MonteCarlo");
            let reference = Arc::new(harness::reference(&mc).output);
            let policy = Policy { qos_threshold: Some(0.01), ..Policy::standard() };
            let specs: Vec<TrialSpec> = (0..4)
                .map(|i| {
                    TrialSpec::scored(
                        &mc,
                        "chaos",
                        chaos_config(25.0),
                        FAULT_SEED_BASE ^ i,
                        Arc::clone(&reference),
                    )
                    .with_recovery(policy.clone())
                })
                .collect();
            [1usize, 2, 4, 8].iter().map(|&t| (t, run_campaign(&specs, t))).collect()
        })
    }

    /// Deterministic Fisher–Yates driven by a SplitMix64 stream.
    fn shuffle<T>(items: &mut [T], mut seed: u64) {
        let mut next = || {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..items.len()).rev() {
            items.swap(i, (next() % (i as u64 + 1)) as usize);
        }
    }

    use proptest::prelude::*;

    proptest! {
        /// Satellite of the quanta refactor: shuffle the trial merge order
        /// *and* the thread count — every campaign energy total (per-pool
        /// stats quanta, the energy breakdown, and the recovery overhead)
        /// is bit-identical, asserted with `==` on the integers.
        #[test]
        fn campaign_energy_totals_are_order_and_thread_independent(
            seed: u64,
            threads in proptest::sample::select(vec![1usize, 2, 4, 8]),
        ) {
            let reports = shared_thread_reports();
            let base = &reports[0].1;
            let report =
                &reports.iter().find(|(t, _)| *t == threads).expect("precomputed").1;

            // Thread count cannot perturb any total.
            prop_assert_eq!(report.energy_quanta_totals(), base.energy_quanta_totals());
            prop_assert_eq!(report.recovery_energy_overhead(), base.recovery_energy_overhead());
            prop_assert_eq!(report.merged_stats, base.merged_stats);

            // Neither can merge order: fold the trials in a shuffled order
            // and compare whole-struct equality against the in-order totals.
            let mut order: Vec<usize> = (0..report.trials.len()).collect();
            shuffle(&mut order, seed);
            let mut energy = EnergyQuantaBreakdown::ZERO;
            let mut overhead = EnergyQuanta::ZERO;
            let mut stats = Stats::new();
            for &i in &order {
                energy.merge(&report.trials[i].energy_quanta);
                overhead += report.trials[i].recovery_energy_overhead_quanta;
                stats.merge(&report.trials[i].stats);
            }
            prop_assert_eq!(energy, base.energy_quanta_totals());
            prop_assert_eq!(overhead, base.recovery_energy_overhead());
            prop_assert_eq!(stats, base.merged_stats);
        }
    }
}
